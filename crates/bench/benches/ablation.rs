//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! record-cache size, NV-buffer size, and hash latency sensitivity.
//! Prints simulated metrics per configuration, then benches one point.

use steins_bench::micro;
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn run(cfg: SystemConfig) -> (u64, u64) {
    let mut sys = SecureNvmSystem::new(cfg);
    let wl = Workload::new(WorkloadKind::PHash, 30_000, 11);
    let r = sys.run_trace(wl.generate()).unwrap();
    (r.cycles, r.nvm.writes)
}

fn main() {
    println!("\n-- ablation: record-cache lines (Steins-GC, phash) --");
    for lines in [1usize, 4, 16, 64] {
        let mut cfg = SystemConfig::sweep(SchemeKind::Steins, CounterMode::General);
        cfg.record_cache_lines = lines;
        let (cycles, writes) = run(cfg);
        println!("  {lines:>3} lines: cycles={cycles} writes={writes}");
    }

    println!("-- ablation: NV buffer bytes (Steins-GC, phash) --");
    for bytes in [16usize, 64, 128, 512] {
        let mut cfg = SystemConfig::sweep(SchemeKind::Steins, CounterMode::General);
        cfg.nv_buffer_bytes = bytes;
        let (cycles, writes) = run(cfg);
        println!("  {bytes:>3} B: cycles={cycles} writes={writes}");
    }

    println!("-- ablation: hash latency (Steins vs ASIT, phash) --");
    for lat in [10u64, 40, 80] {
        for scheme in [SchemeKind::Steins, SchemeKind::Asit] {
            let mut cfg = SystemConfig::sweep(scheme, CounterMode::General);
            cfg.hash_latency = lat;
            let (cycles, _) = run(cfg);
            println!(
                "  {lat:>3} cy {}: cycles={cycles}",
                scheme.label(CounterMode::General)
            );
        }
    }

    println!("-- ablation: L2 stream prefetcher (Steins-GC, lbm vs milc) --");
    for (wl, label) in [(WorkloadKind::Lbm, "lbm"), (WorkloadKind::Milc, "milc")] {
        for enabled in [false, true] {
            let mut cfg = SystemConfig::sweep(SchemeKind::Steins, CounterMode::General);
            cfg.hierarchy.prefetch.enabled = enabled;
            cfg.hierarchy.prefetch.degree = 4;
            let mut sys = SecureNvmSystem::new(cfg);
            let w = Workload::new(wl, 30_000, 11);
            let r = sys.run_trace(w.generate()).unwrap();
            println!(
                "  {label:<5} prefetch={enabled:<5} cycles={} read_stalls={}",
                r.cycles, r.read_stall_cycles
            );
        }
    }

    let mut g = micro::group("ablation_host");
    g.bench("steins_default_point", || {
        std::hint::black_box(run(SystemConfig::sweep(
            SchemeKind::Steins,
            CounterMode::General,
        )));
    });
}
