//! Component benchmark: cache-model throughput — the simulator's hottest
//! inner loops (set-associative lookup, hierarchy walks, metadata cache).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use steins_cache::{CacheConfig, CacheHierarchy, HierarchyConfig, SetAssocCache};
use steins_metadata::cache::{MetaCacheConfig, MetadataCache};
use steins_metadata::SitNode;

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_sim");
    g.throughput(Throughput::Elements(1));

    g.bench_function("set_assoc_access", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::new(256 << 10, 8));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            std::hint::black_box(cache.access((i % (1 << 20)) * 64, i & 1 == 0))
        })
    });

    g.bench_function("hierarchy_access", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            std::hint::black_box(h.access((i % (1 << 20)) * 64, i & 3 == 0))
        })
    });

    g.bench_function("metadata_cache_lookup_install", |b| {
        let mut m = MetadataCache::new(MetaCacheConfig::table1());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            let off = i % 100_000;
            if m.lookup(off).is_none() {
                std::hint::black_box(m.install(off, SitNode::zero_general(), false));
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_caches
}
criterion_main!(benches);
