//! Component benchmark: cache-model throughput — the simulator's hottest
//! inner loops (set-associative lookup, hierarchy walks, metadata cache).

use steins_bench::micro;
use steins_cache::{CacheConfig, CacheHierarchy, HierarchyConfig, SetAssocCache};
use steins_metadata::cache::{MetaCacheConfig, MetadataCache};
use steins_metadata::SitNode;

fn main() {
    let mut g = micro::group("cache_sim");

    let mut cache = SetAssocCache::new(CacheConfig::new(256 << 10, 8));
    let mut i = 0u64;
    g.bench("set_assoc_access", || {
        i = i.wrapping_add(0x9e3779b97f4a7c15);
        std::hint::black_box(cache.access((i % (1 << 20)) * 64, i & 1 == 0));
    });

    let mut h = CacheHierarchy::new(HierarchyConfig::default());
    let mut i = 0u64;
    g.bench("hierarchy_access", || {
        i = i.wrapping_add(0x9e3779b97f4a7c15);
        std::hint::black_box(h.access((i % (1 << 20)) * 64, i & 3 == 0));
    });

    let mut m = MetadataCache::new(MetaCacheConfig::table1());
    let mut i = 0u64;
    g.bench("metadata_cache_lookup_install", || {
        i = i.wrapping_add(0x9e3779b97f4a7c15);
        let off = i % 100_000;
        if m.lookup(off).is_none() {
            std::hint::black_box(m.install(off, SitNode::zero_general(), false));
        }
    });
}
