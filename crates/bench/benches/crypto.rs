//! Component benchmark: the from-scratch crypto primitives — the MC's
//! per-access costs (OTP generation, 64-bit MACs) at both fidelity levels.

use steins_bench::micro;
use steins_crypto::{engine::make_engine, Aes128, CryptoKind, SecretKey, Sha256, SipHash24};

fn main() {
    let mut g = micro::group("crypto");

    let aes = Aes128::new(&[7; 16]);
    let seed = [3u8; 16];
    g.bench("aes128_otp64", || {
        std::hint::black_box(aes.otp64(&seed));
    });

    let data = [9u8; 64];
    g.bench("sha256_64B", || {
        std::hint::black_box(Sha256::digest(&data));
    });

    let sip = SipHash24::new(&[5; 16]);
    g.bench("siphash24_64B", || {
        std::hint::black_box(sip.hash(&data));
    });

    for kind in [CryptoKind::Real, CryptoKind::Fast] {
        let e = make_engine(kind, SecretKey([1; 16]));
        let data = [4u8; 64];
        g.bench(&format!("data_mac_{kind:?}"), || {
            std::hint::black_box(e.data_mac(0x40, &data, 7, 3));
        });
        g.bench(&format!("otp_{kind:?}"), || {
            std::hint::black_box(e.otp(0x40, 7, 3));
        });
    }
}
