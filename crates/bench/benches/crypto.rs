//! Component benchmark: the from-scratch crypto primitives — the MC's
//! per-access costs (OTP generation, 64-bit MACs) at both fidelity levels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use steins_crypto::{engine::make_engine, Aes128, CryptoKind, SecretKey, Sha256, SipHash24};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(64));

    let aes = Aes128::new(&[7; 16]);
    g.bench_function("aes128_otp64", |b| {
        let seed = [3u8; 16];
        b.iter(|| std::hint::black_box(aes.otp64(&seed)))
    });

    g.bench_function("sha256_64B", |b| {
        let data = [9u8; 64];
        b.iter(|| std::hint::black_box(Sha256::digest(&data)))
    });

    let sip = SipHash24::new(&[5; 16]);
    g.bench_function("siphash24_64B", |b| {
        let data = [9u8; 64];
        b.iter(|| std::hint::black_box(sip.hash(&data)))
    });

    for kind in [CryptoKind::Real, CryptoKind::Fast] {
        let e = make_engine(kind, SecretKey([1; 16]));
        let data = [4u8; 64];
        g.bench_function(format!("data_mac_{kind:?}"), |b| {
            b.iter(|| std::hint::black_box(e.data_mac(0x40, &data, 7, 3)))
        });
        g.bench_function(format!("otp_{kind:?}"), |b| {
            b.iter(|| std::hint::black_box(e.otp(0x40, 7, 3)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto
}
criterion_main!(benches);
