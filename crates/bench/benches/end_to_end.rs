//! Macro benchmark: whole-simulator throughput (trace ops per second of
//! host time) per scheme — the cost of regenerating the paper's figures.

use steins_bench::micro;
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn main() {
    const OPS: u64 = 20_000;
    let mut g = micro::group("end_to_end").measurement_time(std::time::Duration::from_secs(4));
    for (scheme, mode) in [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ] {
        for wl in [WorkloadKind::Lbm, WorkloadKind::Milc] {
            g.bench(&format!("{}/{}", scheme.label(mode), wl.label()), || {
                let cfg = SystemConfig::sweep(scheme, mode);
                let mut sys = SecureNvmSystem::new(cfg);
                let w = Workload::new(wl, OPS, 5);
                std::hint::black_box(sys.run_trace(w.generate()).unwrap());
            });
        }
    }
}
