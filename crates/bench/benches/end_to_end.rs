//! Macro benchmark: whole-simulator throughput (trace ops per second of
//! host time) per scheme — the cost of regenerating the paper's figures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn bench_end_to_end(c: &mut Criterion) {
    const OPS: u64 = 20_000;
    let mut g = c.benchmark_group("end_to_end");
    g.throughput(Throughput::Elements(OPS));
    g.sample_size(10);
    for (scheme, mode) in [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ] {
        for wl in [WorkloadKind::Lbm, WorkloadKind::Milc] {
            g.bench_function(format!("{}/{}", scheme.label(mode), wl.label()), |b| {
                b.iter(|| {
                    let cfg = SystemConfig::sweep(scheme, mode);
                    let mut sys = SecureNvmSystem::new(cfg);
                    let w = Workload::new(wl, OPS, 5);
                    std::hint::black_box(sys.run_trace(w.generate()).unwrap())
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_end_to_end
}
criterion_main!(benches);
