//! Macro benchmark: recovery host throughput + simulated recovery effort
//! per scheme (the mechanism behind Fig. 17).

use steins_bench::micro;
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn crashed(scheme: SchemeKind, mode: CounterMode) -> steins_core::CrashedSystem {
    let cfg = SystemConfig::small_for_tests(scheme, mode);
    let data_lines = cfg.data_lines;
    let mut sys = SecureNvmSystem::new(cfg);
    let mut wl = Workload::new(WorkloadKind::PHash, 2_000, 3);
    wl.footprint_lines = data_lines;
    sys.run_trace(wl.generate()).unwrap();
    sys.crash()
}

fn main() {
    let mut g = micro::group("recovery");
    for (scheme, mode) in [
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ] {
        g.bench_batched(
            &scheme.label(mode),
            || crashed(scheme, mode),
            |crashed| {
                std::hint::black_box(crashed.recover().expect("verifies"));
            },
        );
    }
}
