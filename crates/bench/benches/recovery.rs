//! Macro benchmark: recovery host throughput + simulated recovery effort
//! per scheme (the mechanism behind Fig. 17).

use criterion::{criterion_group, criterion_main, Criterion};
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn crashed(scheme: SchemeKind, mode: CounterMode) -> steins_core::CrashedSystem {
    let cfg = SystemConfig::small_for_tests(scheme, mode);
    let data_lines = cfg.data_lines;
    let mut sys = SecureNvmSystem::new(cfg);
    let mut wl = Workload::new(WorkloadKind::PHash, 2_000, 3);
    wl.footprint_lines = data_lines;
    sys.run_trace(wl.generate()).unwrap();
    sys.crash()
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    for (scheme, mode) in [
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ] {
        g.bench_function(scheme.label(mode), |b| {
            b.iter_batched(
                || crashed(scheme, mode),
                |crashed| std::hint::black_box(crashed.recover().expect("verifies")),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_recovery
}
criterion_main!(benches);
