//! Component benchmark: the SIT write path per scheme — how much simulated
//! *and* host work each scheme's metadata hooks add to one secure write —
//! plus the §II-C BMT-vs-SIT serial-hash comparison.

use steins_bench::micro;
use steins_core::bmt::BmtSystem;
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;

/// §II-C quantified: serial HMAC operations per secure write, BMT vs the
/// lazy SIT, printed once before the host-time benchmarks.
fn print_bmt_vs_sit() {
    const WRITES: u64 = 50_000;
    let mut bmt = BmtSystem::new(SystemConfig::sweep(
        SchemeKind::WriteBack,
        CounterMode::General,
    ));
    for i in 0..WRITES {
        bmt.write((i * 13 % (1 << 18)) * 64, &[i as u8; 64])
            .unwrap();
    }
    let cfg = SystemConfig::sweep(SchemeKind::WriteBack, CounterMode::General);
    let mut sit = SecureNvmSystem::new(cfg);
    for i in 0..WRITES {
        sit.write((i * 13 % (1 << 18)) * 64, &[i as u8; 64])
            .unwrap();
    }
    let sit_hashes = sit.report().energy_events.hashes;
    println!(
        "BMT vs SIT over {WRITES} writes: BMT {} hashes ({:.2}/write) vs SIT {} ({:.2}/write) — x{:.2}",
        bmt.hash_ops,
        bmt.hash_ops as f64 / WRITES as f64,
        sit_hashes,
        sit_hashes as f64 / WRITES as f64,
        bmt.hash_ops as f64 / sit_hashes as f64
    );
}

fn main() {
    print_bmt_vs_sit();
    let mut g = micro::group("sit_update");
    for (scheme, mode) in [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ] {
        let mut cfg = SystemConfig::sweep(scheme, mode);
        cfg.crypto = steins_crypto::CryptoKind::Fast;
        let mut sys = SecureNvmSystem::new(cfg);
        let mut i = 0u64;
        let mut now = 0u64;
        g.bench(&scheme.label(mode), || {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            let addr = (i % (1 << 18)) * 64;
            now += 1000;
            std::hint::black_box(sys.ctrl.write_data(now, addr, &[i as u8; 64]).unwrap());
        });
    }
}
