//! Macro benchmark: *simulated* write latency per scheme (the quantity of
//! Fig. 10), measured as MC cycles per secure write on a fixed write burst.
//! The harness measures host time; the printed custom metric is the
//! simulated latency ratio.

use steins_bench::micro;
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn simulated_write_latency(scheme: SchemeKind, mode: CounterMode) -> f64 {
    let cfg = SystemConfig::sweep(scheme, mode);
    let mut sys = SecureNvmSystem::new(cfg);
    let wl = Workload::new(WorkloadKind::PHash, 30_000, 11);
    sys.run_trace(wl.generate()).unwrap().write_latency
}

fn main() {
    // Print the Fig. 10-style numbers once, then benchmark the host cost of
    // producing them (simulator throughput).
    let wb = simulated_write_latency(SchemeKind::WriteBack, CounterMode::General);
    for (scheme, mode) in [
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
    ] {
        let lat = simulated_write_latency(scheme, mode);
        println!(
            "simulated write latency {}: {:.1} cycles ({:.2}x WB-GC)",
            scheme.label(mode),
            lat,
            lat / wb
        );
    }
    let mut g = micro::group("write_path_host");
    g.bench("steins_gc_30k_phash", || {
        std::hint::black_box(simulated_write_latency(
            SchemeKind::Steins,
            CounterMode::General,
        ));
    });
}
