//! Runs the full evaluation (every table and figure) and prints a summary
//! comparing the measured shapes against the paper's headline claims.
//!
//! `cargo run -p steins-bench --release --bin all`

use steins_bench::metrics::{matrix_metrics, write_metrics};
use steins_bench::recovery_bench::{recovery_at_cache_size, CACHE_SWEEP};
use steins_bench::{gmean, print_normalized, run_matrix, GC_MATRIX, SC_MATRIX};
use steins_core::SchemeKind;
use steins_metadata::CounterMode;
use steins_trace::WorkloadKind;

fn main() {
    let t0 = std::time::Instant::now();
    println!(
        "Running full sweep: ops/workload = {}, seed = {}",
        steins_bench::ops(),
        steins_bench::seed()
    );

    // One simulation pass serves Figs. 9, 10, 11, 13, 15 (GC matrix) and
    // Figs. 12, 14, 16 (SC matrix).
    let gc = run_matrix(&GC_MATRIX, &WorkloadKind::ALL);
    let sc = run_matrix(&SC_MATRIX, &WorkloadKind::ALL);

    let all = WorkloadKind::ALL;
    let fig9 = print_normalized(
        "Fig. 9: execution time / WB-GC",
        &gc,
        &GC_MATRIX,
        &all,
        GC_MATRIX[0],
        |r| r.cycles as f64,
    );
    let fig10 = print_normalized(
        "Fig. 10: write latency / WB-GC",
        &gc,
        &GC_MATRIX,
        &all,
        GC_MATRIX[0],
        |r| r.write_latency,
    );
    let fig11 = print_normalized(
        "Fig. 11: read latency / WB-GC",
        &gc,
        &GC_MATRIX,
        &all,
        GC_MATRIX[0],
        |r| r.read_latency,
    );
    let fig12 = print_normalized(
        "Fig. 12: execution time / WB-SC",
        &sc,
        &SC_MATRIX,
        &all,
        SC_MATRIX[0],
        |r| r.cycles as f64,
    );
    let fig13 = print_normalized(
        "Fig. 13: write traffic / WB-GC",
        &gc,
        &GC_MATRIX,
        &all,
        GC_MATRIX[0],
        |r| r.nvm.writes as f64,
    );
    let fig14 = print_normalized(
        "Fig. 14: write traffic / WB-SC",
        &sc,
        &SC_MATRIX,
        &all,
        SC_MATRIX[0],
        |r| r.nvm.writes as f64,
    );
    let fig15 = print_normalized(
        "Fig. 15: energy / WB-GC",
        &gc,
        &GC_MATRIX,
        &all,
        GC_MATRIX[0],
        |r| r.energy_pj,
    );
    let fig16 = print_normalized(
        "Fig. 16: energy / WB-SC",
        &sc,
        &SC_MATRIX,
        &all,
        SC_MATRIX[0],
        |r| r.energy_pj,
    );

    for (name, rows) in [
        ("fig09_exec_time", &fig9),
        ("fig10_write_latency", &fig10),
        ("fig11_read_latency", &fig11),
        ("fig12_exec_time_sc", &fig12),
        ("fig13_write_traffic", &fig13),
        ("fig14_write_traffic_sc", &fig14),
        ("fig15_energy", &fig15),
        ("fig16_energy_sc", &fig16),
    ] {
        steins_bench::write_csv(name, &all, rows);
    }

    // SC-vs-GC ratios straight from the two matrices.
    let sc_over_gc_exec: Vec<f64> = all
        .iter()
        .map(|w| {
            sc[&("Steins-SC".to_string(), w.label())].cycles as f64
                / gc[&("Steins-GC".to_string(), w.label())].cycles as f64
        })
        .collect();
    let sc_over_gc_energy: Vec<f64> = all
        .iter()
        .map(|w| {
            sc[&("Steins-SC".to_string(), w.label())].energy_pj
                / gc[&("Steins-GC".to_string(), w.label())].energy_pj
        })
        .collect();

    // Fig. 17.
    println!("\n== Fig. 17: recovery time (s) vs metadata cache size ==");
    let cells = [
        (SchemeKind::Asit, CounterMode::General, "ASIT"),
        (SchemeKind::Star, CounterMode::General, "STAR"),
        (SchemeKind::Steins, CounterMode::General, "Steins-GC"),
        (SchemeKind::Steins, CounterMode::Split, "Steins-SC"),
    ];
    type RecoverySeries = Vec<(f64, steins_obs::MetricRegistry)>;
    let fig17: Vec<(String, RecoverySeries)> =
        steins_bench::par::map(cells.to_vec(), |(s, m, label)| {
            (
                label.to_string(),
                CACHE_SWEEP
                    .iter()
                    .map(|&c| {
                        let r = recovery_at_cache_size(s, m, c);
                        (r.est_seconds, r.metrics)
                    })
                    .collect(),
            )
        });
    print!("{:<12}", "scheme");
    for c in CACHE_SWEEP {
        print!("{:>10}", format!("{}KB", c >> 10));
    }
    println!();
    for (label, series) in &fig17 {
        print!("{label:<12}");
        for (s, _) in series {
            print!("{s:>10.4}");
        }
        println!();
    }

    // One registry for the whole run: both sweep matrices plus the
    // per-scheme recovery phase counters, exported deterministically.
    let mut reg = matrix_metrics(&gc);
    reg.merge(&matrix_metrics(&sc));
    for (label, series) in &fig17 {
        for ((secs, m), &cache) in series.iter().zip(CACHE_SWEEP.iter()) {
            let prefix = format!("{label}.recovery.cache_{:04}kb", cache >> 10);
            reg.merge(&m.prefixed(&prefix));
            reg.gauge_set(&format!("{prefix}.est_seconds"), *secs);
        }
    }
    write_metrics("all", &reg);

    // Headline comparison.
    let g = |rows: &Vec<(String, Vec<f64>, f64)>, label: &str| {
        rows.iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, _, g)| *g)
            .unwrap_or(f64::NAN)
    };
    println!("\n== Headline shapes: paper vs measured ==");
    println!("{:<46}{:>10}{:>10}", "claim", "paper", "measured");
    let rows = [
        (
            "ASIT exec time vs WB-GC (Fig. 9)",
            1.20,
            g(&fig9, "ASIT-GC"),
        ),
        (
            "STAR exec time vs WB-GC (Fig. 9)",
            1.12,
            g(&fig9, "STAR-GC"),
        ),
        (
            "Steins-GC exec time vs WB-GC (Fig. 9)",
            1.00,
            g(&fig9, "Steins-GC"),
        ),
        (
            "ASIT write latency vs WB-GC (Fig. 10)",
            2.14,
            g(&fig10, "ASIT-GC"),
        ),
        (
            "STAR write latency vs WB-GC (Fig. 10)",
            1.67,
            g(&fig10, "STAR-GC"),
        ),
        (
            "Steins-GC write latency vs WB-GC (Fig. 10)",
            1.06,
            g(&fig10, "Steins-GC"),
        ),
        (
            "Steins-GC read latency vs WB-GC (Fig. 11)",
            1.00,
            g(&fig11, "Steins-GC"),
        ),
        (
            "Steins-SC exec time vs WB-SC (Fig. 12)",
            0.998,
            g(&fig12, "Steins-SC"),
        ),
        (
            "ASIT write traffic vs WB-GC (Fig. 13)",
            2.00,
            g(&fig13, "ASIT-GC"),
        ),
        (
            "STAR write traffic vs WB-GC (Fig. 13)",
            1.30,
            g(&fig13, "STAR-GC"),
        ),
        (
            "Steins-GC write traffic vs WB-GC (Fig. 13)",
            1.05,
            g(&fig13, "Steins-GC"),
        ),
        (
            "Steins-SC write traffic vs WB-SC (Fig. 14)",
            1.01,
            g(&fig14, "Steins-SC"),
        ),
        (
            "Steins-GC energy vs WB-GC (Fig. 15)",
            0.998,
            g(&fig15, "Steins-GC"),
        ),
        (
            "Steins-SC energy vs WB-SC (Fig. 16)",
            1.00,
            g(&fig16, "Steins-SC"),
        ),
        (
            "Steins-SC / Steins-GC exec time",
            0.61,
            gmean(&sc_over_gc_exec),
        ),
        (
            "Steins-SC / Steins-GC energy",
            0.906,
            gmean(&sc_over_gc_energy),
        ),
    ];
    for (claim, paper, measured) in rows {
        println!("{claim:<46}{paper:>10.3}{measured:>10.3}");
    }
    let at4 = |label: &str| {
        fig17
            .iter()
            .find(|(l, _)| l == label)
            .and_then(|(_, s)| s.last().map(|(v, _)| *v))
            .unwrap_or(f64::NAN)
    };
    let recov = [
        ("ASIT recovery @4MB (s, Fig. 17)", 0.02, at4("ASIT")),
        ("STAR recovery @4MB (s, Fig. 17)", 0.065, at4("STAR")),
        (
            "Steins-GC recovery @4MB (s, Fig. 17)",
            0.08,
            at4("Steins-GC"),
        ),
        (
            "Steins-SC recovery @4MB (s, Fig. 17)",
            0.44,
            at4("Steins-SC"),
        ),
    ];
    for (claim, paper, measured) in recov {
        println!("{claim:<46}{paper:>10.3}{measured:>10.3}");
    }
    println!(
        "\nTotal sweep wall time: {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
