//! Chaos-under-load — the CI graceful-degradation gate.
//!
//! Spins up a sharded engine with the online integrity service enabled and
//! serves a seeded Zipfian write mix from worker threads while media faults
//! (bit flips, stuck-at lines, uncorrectable and transient reads) and
//! whole-shard power cuts land mid-traffic. The run must degrade
//! gracefully, never fail:
//!
//! * **zero unwinds** — no panic ever escapes an operation;
//! * **zero silent-wrong acks** — a read is correct, a typed
//!   `IntegrityError`, or indeterminate-by-crash, never wrong-as-`Ok`;
//! * **alarm shape** — every quarantined line sits behind an alarm carrying
//!   its `(shard, addr)`, every fault ends up healed or quarantined (or its
//!   whole shard parked `Degraded` behind the lifecycle alarm);
//! * **scrub overhead** — with zero faults, enabling the service at the
//!   *default* policy may cost at most 10% modeled makespan versus serving
//!   with the service off.
//!
//! With `STEINS_CHAOS_REPAIR=1`, tripped shards come back through the
//! bounded self-healing repair loop (quarantine capture → laned rebuild →
//! full re-verification → audited replay) and the gate additionally
//! requires [`steins_core::ChaosReport::repair_clean`]: after the soak
//! every shard is `Serving` again or permanently parked behind its alarm
//! trail.
//!
//! Fully deterministic for a fixed seed regardless of `STEINS_CHAOS_THREADS`.
//! Env knobs: `STEINS_CHAOS_SHARDS` (default 4), `STEINS_CHAOS_THREADS`
//! (default 4), `STEINS_CHAOS_OPS` (ops per shard, default 192),
//! `STEINS_CHAOS_FAULTS` (faults per shard, default 5), `STEINS_CHAOS_SEED`,
//! `STEINS_CHAOS_REPAIR` (any value enables the repair loop).
//! Writes `results/METRICS_chaos.json`; exits non-zero on any gate failure.

use steins_bench::metrics::write_metrics;
use steins_core::campaign::{run_chaos, ChaosConfig};
use steins_core::OnlinePolicy;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        })
        .unwrap_or(default)
}

const OVERHEAD_LIMIT: f64 = 1.10;

fn main() {
    let defaults = ChaosConfig::default();
    let repair = std::env::var("STEINS_CHAOS_REPAIR").is_ok();
    let cfg = ChaosConfig {
        seed: env_u64("STEINS_CHAOS_SEED", defaults.seed),
        shards: env_u64("STEINS_CHAOS_SHARDS", 4) as usize,
        threads: env_u64("STEINS_CHAOS_THREADS", 4) as usize,
        ops_per_shard: env_u64("STEINS_CHAOS_OPS", 192) as usize,
        faults_per_shard: env_u64("STEINS_CHAOS_FAULTS", 5) as usize,
        repair,
        ..defaults
    };
    println!(
        "Chaos: seed {:#x}, {} shards x {} ops ({} faults/shard), {} workers, scrub on, repair {}",
        cfg.seed,
        cfg.shards,
        cfg.ops_per_shard,
        cfg.faults_per_shard,
        cfg.threads,
        if repair { "on" } else { "off" },
    );

    let r = run_chaos(&cfg);
    println!("{r}");
    let repair_ok = !repair || r.repair_clean();
    if !repair_ok {
        println!(
            "repair gate FAIL: degraded {:?} vs parked {:?} — a shard was \
             abandoned without a repair verdict",
            r.degraded_shards, r.parked_shards
        );
    }
    if !r.clean() || !repair_ok || std::env::var("STEINS_CHAOS_VERBOSE").is_ok() {
        for e in &r.events {
            println!("  {e}");
        }
        for a in r.alarms.events() {
            println!("  alarm: {a:?}");
        }
    }

    // Scrub-overhead gate: identical fault-free traffic, service off vs on
    // at the *default* policy (the chaos run above deliberately runs an
    // aggressive policy to maximize fault coverage).
    let quiet = ChaosConfig {
        faults_per_shard: 0,
        scrub: false,
        ..cfg.clone()
    };
    let base = run_chaos(&quiet);
    let scrubbed = run_chaos(&ChaosConfig {
        scrub: true,
        policy: OnlinePolicy::default(),
        ..quiet.clone()
    });
    assert_eq!(
        base.unwinds + scrubbed.unwinds,
        0,
        "quiet runs must not panic"
    );
    let overhead = scrubbed.makespan_cycles as f64 / base.makespan_cycles.max(1) as f64;
    let overhead_ok = overhead <= OVERHEAD_LIMIT;
    println!(
        "Scrub overhead (fault-free, default policy): {} -> {} cycles ({:.2}x, limit {:.2}x) [{}]",
        base.makespan_cycles,
        scrubbed.makespan_cycles,
        overhead,
        OVERHEAD_LIMIT,
        if overhead_ok { "pass" } else { "FAIL" }
    );

    let mut m = r.metrics();
    m.gauge_set(
        "core.chaos.overhead.base_cycles",
        base.makespan_cycles as f64,
    );
    m.gauge_set(
        "core.chaos.overhead.scrubbed_cycles",
        scrubbed.makespan_cycles as f64,
    );
    m.gauge_set("core.chaos.overhead.ratio", overhead);
    if let Some(path) = write_metrics("chaos", &m) {
        println!("metrics -> {}", path.display());
    }

    if let Ok(step) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(step) {
            let _ = f.write_all(
                format!(
                    "### Chaos under load\n\n\
                     | ops | ok | typed | unwinds | silent-wrong | crashes | repairs | restored | parked | faults | healed | quarantined | alarms | scrub overhead | result |\n\
                     |---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n\
                     | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.2}x | {} |\n",
                    r.ops_attempted,
                    r.served_ok,
                    r.typed_errors,
                    r.unwinds,
                    r.silent_wrong,
                    r.crashes_recovered,
                    r.repairs_attempted,
                    r.shards_restored,
                    r.shards_parked,
                    r.faults_injected,
                    r.faults_healed,
                    r.faults_quarantined,
                    r.alarms.len(),
                    overhead,
                    if r.clean() && repair_ok && overhead_ok {
                        "pass"
                    } else {
                        "FAIL"
                    }
                )
                .as_bytes(),
            );
        }
    }

    if !r.clean() || !repair_ok || !overhead_ok {
        std::process::exit(1);
    }
}
