//! Exhaustive persist-boundary crash sweep — every scheme × counter mode.
//!
//! For each supported combination, replays a fixed op stream once to
//! enumerate every durable-state transition (64 B line writes and in-place
//! ADR updates), then for every transition `k` replays the stream with the
//! NVM device armed to lose power the instant transition `k` completes,
//! runs the scheme's recovery, and verifies the full tree plus a read-back
//! of every acknowledged write. WB is swept against its contract instead:
//! it must *refuse* recovery at every point. ASIT-SC and STAR-SC are
//! skipped — those baselines are general-counter-only by design (their
//! recovery needs self-increasing parent counters).
//!
//! Phase two tears the writes: every selected 64 B line-write boundary is
//! re-crashed under partial word masks (NVM guarantees 8 B, not 64 B,
//! atomicity) — a dropped write, a one-word prefix, a half line, and two
//! sparse patterns. The contract per (point, mask): strict recovery
//! succeeds with the torn line failing closed, or the lenient scrub
//! salvages every other acknowledged line without panicking.
//!
//! Phase three nests the crashes: at selected outer boundaries (whole-line
//! and torn), the second crash is armed at a persist point *recovery
//! itself* fires — journal updates, record/shadow rewrites, scrub pokes —
//! and the doubly-crashed machine must recover again, restartably, off the
//! ADR recovery journal.
//!
//! Phase four replays the same protocol through the sharded front-end:
//! the stream routes across `STEINS_SHARD_SWEEP_SHARDS` controllers and
//! the crash (whole-line and torn) is armed on one target shard at a
//! time, with its neighbors required to keep serving and to report
//! pristine journals afterwards. A nested leg re-crashes each target
//! shard during its own recovery.
//!
//! Env knobs: `STEINS_SWEEP_OPS` (stream length, default 150),
//! `STEINS_TORN_POINTS` (line-write boundaries torn per combo, default 48),
//! `STEINS_NESTED_OUTER` (outer boundaries nested per combo, default 12),
//! `STEINS_NESTED_INNER` (recovery-time points per outer crash, default 6),
//! `STEINS_SHARD_SWEEP_SHARDS` (shard count of phase four, default 2),
//! `STEINS_SHARD_POINTS` (points per target shard, default 4),
//! `STEINS_SHARD_NESTED` (outer × inner nested points per shard, default 2),
//! `STEINS_THREADS` (worker pool size).

use steins_bench::par;
use steins_core::{CounterMode, CrashSweep, PointSelection, SchemeKind, ShardSweep};

/// Torn-word masks swept at every selected line-write boundary: dropped,
/// one-word prefix, half-line prefix, sparse even words, sparse odd words.
const TORN_MASKS: [u8; 5] = [0x00, 0x01, 0x0F, 0x55, 0xAA];

/// Outer masks of the nested sweep: the classic whole-line crash plus a
/// half-line tear (which forces the scrub leg under a second crash).
const NESTED_OUTER_MASKS: [u8; 2] = [0xFF, 0x0F];

/// Inner masks re-armed against recovery's own writes.
const NESTED_INNER_MASKS: [u8; 2] = [0xFF, 0x0F];

/// Masks of the sharded phase: whole-line crash plus a half-line tear
/// (exercising the per-shard scrub leg).
const SHARD_MASKS: [u8; 2] = [0xFF, 0x0F];

fn main() {
    let ops: usize = std::env::var("STEINS_SWEEP_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let torn_points: usize = std::env::var("STEINS_TORN_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let nested_outer: usize = std::env::var("STEINS_NESTED_OUTER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let nested_inner: usize = std::env::var("STEINS_NESTED_INNER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let combos = [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::WriteBack, CounterMode::Split),
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ];
    println!(
        "Crash sweep: {ops}-op stream, every persist point, {} workers",
        par::threads()
    );
    println!("{:>10}  {:>8}  {:>8}  result", "combo", "points", "failed");
    let mut all_clean = true;
    for (scheme, mode) in combos {
        let sweep = CrashSweep::small(scheme, mode, ops, PointSelection::All);
        let total = match sweep.total_points() {
            Ok(t) => t,
            Err(e) => {
                all_clean = false;
                println!("{:>10}  baseline run failed: {e}", scheme.label(mode));
                continue;
            }
        };
        let failures: Vec<_> = par::map((1..=total).collect(), |k| sweep.probe_point(k))
            .into_iter()
            .flatten()
            .collect();
        let verdict = if failures.is_empty() {
            "all points recovered & verified".to_string()
        } else {
            all_clean = false;
            "UNRECOVERABLE POINTS".to_string()
        };
        println!(
            "{:>10}  {:>8}  {:>8}  {verdict}",
            scheme.label(mode),
            total,
            failures.len()
        );
        for repro in failures.iter().take(3) {
            println!("{repro}");
        }
    }
    println!("{:>10}  skipped: general-counter-only baseline", "Asit-SC");
    println!("{:>10}  skipped: general-counter-only baseline", "Star-SC");

    println!(
        "\nTorn-write sweep: {} masks × ≤{torn_points} line-write boundaries per combo",
        TORN_MASKS.len()
    );
    println!("{:>10}  {:>8}  {:>8}  result", "combo", "torn", "failed");
    for (scheme, mode) in combos {
        let sweep = CrashSweep::small(scheme, mode, ops, PointSelection::AtMost(torn_points));
        let points = match sweep.tearable_points() {
            Ok(p) => p,
            Err(e) => {
                all_clean = false;
                println!("{:>10}  baseline run failed: {e}", scheme.label(mode));
                continue;
            }
        };
        let jobs: Vec<(u64, u8)> = points
            .iter()
            .flat_map(|&k| TORN_MASKS.iter().map(move |&m| (k, m)))
            .collect();
        let tested = jobs.len();
        let failures: Vec<_> = par::map(jobs, |(k, m)| sweep.probe_point_torn(k, m))
            .into_iter()
            .flatten()
            .collect();
        let verdict = if failures.is_empty() {
            "all torn points recovered or scrubbed".to_string()
        } else {
            all_clean = false;
            "TORN CONTRACT VIOLATIONS".to_string()
        };
        println!(
            "{:>10}  {:>8}  {:>8}  {verdict}",
            scheme.label(mode),
            tested,
            failures.len()
        );
        for repro in failures.iter().take(3) {
            println!("{repro}");
        }
    }

    println!(
        "\nNested sweep: crash during recovery, ≤{nested_outer} outer × ≤{nested_inner} \
         recovery-time points per combo, outer masks {NESTED_OUTER_MASKS:02x?}, \
         inner masks {NESTED_INNER_MASKS:02x?}"
    );
    println!("{:>10}  {:>8}  {:>8}  result", "combo", "nested", "failed");
    for (scheme, mode) in combos {
        let sweep = CrashSweep::small(scheme, mode, ops, PointSelection::AtMost(nested_outer));
        let jobs = match sweep.nested_jobs(
            &NESTED_OUTER_MASKS,
            &NESTED_INNER_MASKS,
            PointSelection::AtMost(nested_inner),
        ) {
            Ok(j) => j,
            Err(e) => {
                all_clean = false;
                println!("{:>10}  baseline run failed: {e}", scheme.label(mode));
                continue;
            }
        };
        let tested = jobs.len();
        let failures: Vec<_> = par::map(jobs, |(k, m0, j, m1)| {
            sweep.probe_point_nested(k, m0, j, m1)
        })
        .into_iter()
        .flatten()
        .collect();
        let verdict = if failures.is_empty() {
            "all nested points re-recovered".to_string()
        } else {
            all_clean = false;
            "NESTED CONTRACT VIOLATIONS".to_string()
        };
        println!(
            "{:>10}  {:>8}  {:>8}  {verdict}",
            scheme.label(mode),
            tested,
            failures.len()
        );
        for repro in failures.iter().take(3) {
            println!("{repro}");
        }
    }

    let shard_shards: usize = std::env::var("STEINS_SHARD_SWEEP_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let shard_points: usize = std::env::var("STEINS_SHARD_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let shard_nested: usize = std::env::var("STEINS_SHARD_NESTED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    println!(
        "\nSharded sweep: {shard_shards} shards, crash+torn ≤{shard_points} points per target \
         shard (masks {SHARD_MASKS:02x?}), nested ≤{shard_nested}×{shard_nested}"
    );
    println!("{:>10}  {:>8}  {:>8}  result", "combo", "tested", "failed");
    let shard_jobs: Vec<_> = combos
        .iter()
        .flat_map(|&(scheme, mode)| [(scheme, mode, false), (scheme, mode, true)])
        .collect();
    let shard_reports = par::map(shard_jobs, |(scheme, mode, nested)| {
        let sweep = ShardSweep::small(scheme, mode, shard_shards, ops);
        let report = if nested {
            sweep.run_nested(
                PointSelection::AtMost(shard_nested),
                PointSelection::AtMost(shard_nested),
            )
        } else {
            sweep.run(PointSelection::AtMost(shard_points), &SHARD_MASKS)
        };
        (scheme, mode, nested, report)
    });
    for (scheme, mode, nested, report) in shard_reports {
        let verdict = if report.clean() {
            if nested {
                "all shards re-recovered, neighbors pristine".to_string()
            } else {
                "all shards recovered, neighbors kept serving".to_string()
            }
        } else {
            all_clean = false;
            "SHARDED CONTRACT VIOLATIONS".to_string()
        };
        let label = if nested {
            format!("{}*", scheme.label(mode))
        } else {
            scheme.label(mode)
        };
        println!(
            "{:>10}  {:>8}  {:>8}  {verdict}",
            label,
            report.tested_points,
            report.failures.len()
        );
        for repro in report.failures.iter().take(3) {
            println!("{repro}");
        }
    }
    println!("{:>10}  (* = nested crash-during-recovery leg)", "");

    if !all_clean {
        std::process::exit(1);
    }
}
