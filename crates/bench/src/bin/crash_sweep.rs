//! Exhaustive persist-boundary crash sweep — every scheme × counter mode.
//!
//! For each supported combination, replays a fixed op stream once to
//! enumerate every durable-state transition (64 B line writes and in-place
//! ADR updates), then for every transition `k` replays the stream with the
//! NVM device armed to lose power the instant transition `k` completes,
//! runs the scheme's recovery, and verifies the full tree plus a read-back
//! of every acknowledged write. WB is swept against its contract instead:
//! it must *refuse* recovery at every point. ASIT-SC and STAR-SC are
//! skipped — those baselines are general-counter-only by design (their
//! recovery needs self-increasing parent counters).
//!
//! Env knobs: `STEINS_SWEEP_OPS` (stream length, default 150),
//! `STEINS_THREADS` (worker pool size).

use steins_bench::par;
use steins_core::{CounterMode, CrashSweep, PointSelection, SchemeKind};

fn main() {
    let ops: usize = std::env::var("STEINS_SWEEP_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);
    let combos = [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::WriteBack, CounterMode::Split),
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ];
    println!(
        "Crash sweep: {ops}-op stream, every persist point, {} workers",
        par::threads()
    );
    println!("{:>10}  {:>8}  {:>8}  result", "combo", "points", "failed");
    let mut all_clean = true;
    for (scheme, mode) in combos {
        let sweep = CrashSweep::small(scheme, mode, ops, PointSelection::All);
        let total = match sweep.total_points() {
            Ok(t) => t,
            Err(e) => {
                all_clean = false;
                println!("{:>10}  baseline run failed: {e}", scheme.label(mode));
                continue;
            }
        };
        let failures: Vec<_> = par::map((1..=total).collect(), |k| sweep.probe_point(k))
            .into_iter()
            .flatten()
            .collect();
        let verdict = if failures.is_empty() {
            "all points recovered & verified".to_string()
        } else {
            all_clean = false;
            "UNRECOVERABLE POINTS".to_string()
        };
        println!(
            "{:>10}  {:>8}  {:>8}  {verdict}",
            scheme.label(mode),
            total,
            failures.len()
        );
        for repro in failures.iter().take(3) {
            println!("{repro}");
        }
    }
    println!("{:>10}  skipped: general-counter-only baseline", "Asit-SC");
    println!("{:>10}  skipped: general-counter-only baseline", "Star-SC");
    if !all_clean {
        std::process::exit(1);
    }
}
