//! Diagnostic tool: run one scheme/workload and, on an integrity failure,
//! report which counter value the stored HMAC actually corresponds to.
//! The probing itself lives in `steins_core::diagnose` (shared with the
//! crash-sweep harness); this binary is the ad-hoc CLI front end.
//! Select with SCHEME=wb|asit|star|steins, MODE=gc|sc, WL=phash|ptree.

use steins_core::diagnose::{probe_data_mac, probe_node_mac};
use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn main() {
    let scheme = match std::env::var("SCHEME").as_deref() {
        Ok("steins") => SchemeKind::Steins,
        Ok("asit") => SchemeKind::Asit,
        Ok("star") => SchemeKind::Star,
        _ => SchemeKind::WriteBack,
    };
    let mode = if std::env::var("MODE").as_deref() == Ok("sc") {
        CounterMode::Split
    } else {
        CounterMode::General
    };
    let cfg = SystemConfig::sweep(scheme, mode);
    let mut sys = SecureNvmSystem::new(cfg);
    let kind = if std::env::var("WL").as_deref() == Ok("ptree") {
        WorkloadKind::PTree
    } else {
        WorkloadKind::PHash
    };
    let wl = Workload::new(kind, 200_000, 42);
    match sys.run_trace(wl.generate()) {
        Ok(_) => println!("no failure"),
        Err(e) => {
            println!("error: {e}");
            if let steins_core::IntegrityError::DataMac { addr } = e {
                let dline = addr / 64;
                let geo = sys.ctrl.layout().geometry.clone();
                let (leaf, slot) = geo.leaf_of_data(dline);
                let loff = geo.offset_of(leaf);
                let cached = sys.ctrl.meta_peek(loff);
                let rec = sys.ctrl.data_mac_record(dline);
                let (rmaj, rmin) = steins_core::cme::MacRecord::unpack_recovery(rec.recovery);
                println!("data line {dline} leaf {leaf:?} slot {slot}");
                println!("record: mac={:#x} recovery=({rmaj},{rmin})", rec.mac);
                if let Some(l) = cached {
                    println!("cached leaf pair for slot: {:?}", l.counters.enc_pair(slot));
                }
                // Which pair does the stored mac actually match?
                let line_addr = addr & !63;
                let data = sys.ctrl.nvm().peek(line_addr);
                let span = mode.leaf_coverage().max(64);
                let diag = probe_data_mac(&sys.ctrl, line_addr, &data, rec.mac, rmaj, 3, span);
                println!("{diag}");
                return;
            }
            if let steins_core::IntegrityError::NodeMac { node } = e {
                let geo = sys.ctrl.layout().geometry.clone();
                let off = geo.offset_of(node);
                let addr = sys.ctrl.layout().node_addr(off);
                let line = sys.ctrl.nvm().peek(addr);
                let n = steins_metadata::SitNode::general_from_line(&line);
                println!("node {node:?} offset {off} stored hmac {:#x}", n.hmac);
                // Parent info.
                let (pid, slot) = geo.parent_of(node).unwrap();
                let poff = geo.offset_of(pid);
                let pcache = sys.ctrl.meta_peek(poff);
                let pline = sys.ctrl.nvm().peek(sys.ctrl.layout().node_addr(poff));
                let pnvm = steins_metadata::SitNode::general_from_line(&pline);
                println!(
                    "parent {pid:?} slot {slot}: cached={:?} nvm={}",
                    pcache.map(|p| p.counters.as_general().get(slot)),
                    pnvm.counters.as_general().get(slot)
                );
                let pc_now = pcache
                    .map(|p| p.counters.as_general().get(slot))
                    .unwrap_or_else(|| pnvm.counters.as_general().get(slot));
                let diag = probe_node_mac(&sys.ctrl, &n, off, pc_now, 2000);
                println!("{diag}");
            }
        }
    }
}
