//! Seeded randomized fault campaign — the CI robustness gate.
//!
//! Composes the full fault model at every injected point: a random crash
//! point × a torn-word mask (whole, prefix, sparse, dropped) × — on every
//! other iteration — post-crash corruption (node/data bit flips, offset
//! record rewrites, raw overwrites) and media faults (stuck-at lines,
//! uncorrectable reads). Crash-only points must meet the strong sweep
//! contract (every acknowledged line back, torn line failing closed);
//! attacked points must meet the robustness contract (no panic anywhere in
//! strict recovery, the lenient scrub, or post-scrub reads; tampered
//! durable data never whitewashed as intact; no read ever returns wrong
//! data as `Ok`).
//!
//! Every fourth iteration is a **nested point**: the crash is injected,
//! recovery starts, and a second crash lands on one of recovery's own
//! persist points (journal updates, record/shadow rewrites) — the second
//! recovery must converge off the ADR recovery journal.
//!
//! Fully deterministic for a fixed seed: any failure reproduces from the
//! `(seed, combo, iteration)` tuple in its repro line — replay exactly one
//! point with `fault_campaign --repro <combo-label>:<iteration>` (e.g.
//! `--repro Steins-GC:42`) under the same seed/ops env. Exits non-zero on
//! any contract violation or escaped panic.
//!
//! Env knobs: `STEINS_CAMPAIGN_POINTS` (fault points per combo, default
//! 168 → 1008 total), `STEINS_CAMPAIGN_OPS` (stream length, default 40),
//! `STEINS_CAMPAIGN_SEED` (default `0x5EED_FA17`), `STEINS_THREADS`.

use steins_bench::metrics::write_metrics;
use steins_bench::par;
use steins_core::campaign::{CampaignConfig, CampaignReport, FaultCampaign, COMBOS};

/// Parses a `--repro` point spec `<combo-label>:<iteration>` against the
/// campaign's combo labels.
fn parse_repro(spec: &str) -> Option<(usize, usize)> {
    let (label, iter) = spec.rsplit_once(':')?;
    let iter = iter.trim().parse().ok()?;
    let combo = COMBOS
        .iter()
        .position(|(s, m)| s.label(*m) == label.trim())?;
    Some((combo, iter))
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            }
        })
        .unwrap_or(default)
}

fn main() {
    let cfg = CampaignConfig {
        seed: env_u64("STEINS_CAMPAIGN_SEED", 0x5EED_FA17),
        points_per_combo: env_u64("STEINS_CAMPAIGN_POINTS", 168) as usize,
        ops: env_u64("STEINS_CAMPAIGN_OPS", 40) as usize,
    };

    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--repro") {
        let spec = args.get(pos + 1).cloned().unwrap_or_default();
        let Some((combo, iter)) = parse_repro(&spec) else {
            eprintln!(
                "usage: fault_campaign --repro <combo-label>:<iteration>  (e.g. Steins-GC:42)\n\
                 combo labels: {}",
                COMBOS
                    .iter()
                    .map(|(s, m)| s.label(*m))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        };
        let (scheme, mode) = COMBOS[combo];
        println!(
            "Repro: {} iteration {iter}, seed {:#x}, {} ops/stream",
            scheme.label(mode),
            cfg.seed,
            cfg.ops
        );
        let r = FaultCampaign::new(cfg)
            .run_point(combo, iter)
            .expect("combo index in range");
        println!("{r}");
        std::process::exit(if r.clean() { 0 } else { 1 });
    }

    println!(
        "Fault campaign: seed {:#x}, {} points × {} combos ({} ops/stream), {} workers",
        cfg.seed,
        cfg.points_per_combo,
        COMBOS.len(),
        cfg.ops,
        par::threads()
    );

    let campaign = FaultCampaign::new(cfg.clone());
    let reports: Vec<(String, CampaignReport)> = par::map(
        COMBOS.iter().enumerate().collect::<Vec<_>>(),
        |(ci, (scheme, mode))| (scheme.label(*mode), campaign.run_combo(ci, *scheme, *mode)),
    );

    let mut summary = String::from(
        "### Fault campaign\n\n\
         | combo | points | crash | nested | attack | panics | detected | unrecoverable | result |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    println!(
        "{:>10}  {:>7}  {:>6}  {:>7}  {:>7}  {:>7}  {:>9}  {:>14}  result",
        "combo", "points", "crash", "nested", "attack", "panics", "detected", "unrecoverable"
    );
    let mut merged = CampaignReport {
        seed: cfg.seed,
        ..CampaignReport::default()
    };
    for (label, r) in &reports {
        let verdict = if r.clean() { "pass" } else { "FAIL" };
        println!(
            "{:>10}  {:>7}  {:>6}  {:>7}  {:>7}  {:>7}  {:>9}  {:>14}  {verdict}",
            label,
            r.points(),
            r.crash_points,
            r.nested_points,
            r.attack_points,
            r.panics,
            r.strict_detected,
            r.data_unrecoverable
        );
        summary.push_str(&format!(
            "| {label} | {} | {} | {} | {} | {} | {} | {} | {verdict} |\n",
            r.points(),
            r.crash_points,
            r.nested_points,
            r.attack_points,
            r.panics,
            r.strict_detected,
            r.data_unrecoverable
        ));
        merged.merge(r);
    }
    println!("\n{merged}");
    summary.push_str(&format!(
        "\n**{} total points ({} nested), {} panics, {} failures.**\n",
        merged.points(),
        merged.nested_points,
        merged.panics,
        merged.failures.len()
    ));

    if let Some(path) = write_metrics("campaign", &merged.metrics()) {
        println!("metrics -> {}", path.display());
    }
    if let Ok(step) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(step) {
            let _ = f.write_all(summary.as_bytes());
        }
    }
    if !merged.clean() {
        std::process::exit(1);
    }
}
