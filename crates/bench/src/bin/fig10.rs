//! Fig. 10 — memory-controller write latency normalized to WB-GC.
//!
//! Paper shape: ASIT ≈ 2.14×, STAR ≈ 1.67×, Steins-GC ≈ 1.06×.

fn main() {
    steins_bench::figure_gc(
        "fig10",
        "Fig. 10: write latency (normalized to WB-GC)",
        |r| r.write_latency,
    );
}
