//! Fig. 11 — memory-controller read latency normalized to WB-GC.
//!
//! Paper shape: Steins-GC ≈ WB-GC (−0.02%); ASIT/STAR pay their
//! cache-tree and shadow-table pressure on the read path too.

fn main() {
    steins_bench::figure_gc(
        "fig11",
        "Fig. 11: read latency (normalized to WB-GC)",
        |r| r.read_latency,
    );
}
