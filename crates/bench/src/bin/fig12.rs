//! Fig. 12 — execution time normalized to WB-SC, plus the SC-vs-GC
//! comparison (§IV-A: Steins-SC ≈ 0.998× WB-SC and ~39% faster than
//! Steins-GC).

use steins_core::SchemeKind;
use steins_metadata::CounterMode;
use steins_trace::WorkloadKind;

fn main() {
    steins_bench::figure_sc(
        "fig12",
        "Fig. 12: execution time (normalized to WB-SC)",
        |r| r.cycles as f64,
    );
    // SC vs GC cross-check: Steins-SC cycles / Steins-GC cycles per workload.
    let ops = steins_bench::ops();
    let seed = steins_bench::seed();
    println!("\n-- Steins-SC vs Steins-GC (execution-time ratio; paper: ~0.61) --");
    let mut ratios = Vec::new();
    for w in WorkloadKind::ALL {
        let gc = steins_bench::run_one((SchemeKind::Steins, CounterMode::General), w, ops, seed);
        let sc = steins_bench::run_one((SchemeKind::Steins, CounterMode::Split), w, ops, seed);
        let ratio = sc.cycles as f64 / gc.cycles as f64;
        println!("{:<12}{ratio:>10.3}", w.label());
        ratios.push(ratio);
    }
    println!("{:<12}{:>10.3}", "gmean", steins_bench::gmean(&ratios));
}
