//! Fig. 13 — NVM write traffic normalized to WB-GC.
//!
//! Paper shape: ASIT ≈ 2×, STAR ≈ 1.3×, Steins-GC ≈ 1.05×.

fn main() {
    steins_bench::figure_gc(
        "fig13",
        "Fig. 13: write traffic (normalized to WB-GC)",
        |r| r.nvm.writes as f64,
    );
}
