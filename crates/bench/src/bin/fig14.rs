//! Fig. 14 — NVM write traffic normalized to WB-SC.
//!
//! Paper shape: Steins-SC ≈ 1.01× WB-SC.

fn main() {
    steins_bench::figure_sc(
        "fig14",
        "Fig. 14: write traffic (normalized to WB-SC)",
        |r| r.nvm.writes as f64,
    );
}
