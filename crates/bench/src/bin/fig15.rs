//! Fig. 15 — energy consumption normalized to WB-GC.
//!
//! Paper shape: ASIT and STAR well above WB-GC (extra writes + HMACs);
//! Steins-GC ≈ WB-GC (−0.2%).

fn main() {
    steins_bench::figure_gc("fig15", "Fig. 15: energy (normalized to WB-GC)", |r| {
        r.energy_pj
    });
}
