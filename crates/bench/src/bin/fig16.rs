//! Fig. 16 — energy consumption normalized to WB-SC (plus the paper's
//! SC-vs-GC point: Steins-SC ≈ −9.4% vs Steins-GC).

use steins_core::SchemeKind;
use steins_metadata::CounterMode;
use steins_trace::WorkloadKind;

fn main() {
    steins_bench::figure_sc("fig16", "Fig. 16: energy (normalized to WB-SC)", |r| {
        r.energy_pj
    });
    let ops = steins_bench::ops();
    let seed = steins_bench::seed();
    println!("\n-- Steins-SC vs Steins-GC (energy ratio; paper: ~0.906) --");
    let mut ratios = Vec::new();
    for w in WorkloadKind::ALL {
        let gc = steins_bench::run_one((SchemeKind::Steins, CounterMode::General), w, ops, seed);
        let sc = steins_bench::run_one((SchemeKind::Steins, CounterMode::Split), w, ops, seed);
        ratios.push(sc.energy_pj / gc.energy_pj);
    }
    println!("gmean ratio: {:.3}", steins_bench::gmean(&ratios));
}
