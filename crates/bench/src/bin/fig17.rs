//! Fig. 17 — recovery time vs metadata cache size (256 KB → 4 MB),
//! all cached metadata dirty, 100 ns per metadata read-and-verify.
//!
//! Paper shape at 4 MB: ASIT ≈ 0.02 s < STAR ≈ 0.065 s < Steins-GC ≈
//! 0.08 s < Steins-SC ≈ 0.44 s. WB cannot recover.

use steins_bench::recovery_bench::{recovery_at_cache_size, CACHE_SWEEP};
use steins_core::SchemeKind;
use steins_metadata::CounterMode;

fn main() {
    let cells = [
        (SchemeKind::Asit, CounterMode::General, "ASIT"),
        (SchemeKind::Star, CounterMode::General, "STAR"),
        (SchemeKind::Steins, CounterMode::General, "Steins-GC"),
        (SchemeKind::Steins, CounterMode::Split, "Steins-SC"),
    ];
    println!("== Fig. 17: recovery time (seconds) vs metadata cache size ==\n");
    print!("{:<12}", "scheme");
    for c in CACHE_SWEEP {
        print!("{:>10}", format!("{}KB", c >> 10));
    }
    println!();
    type Series = Vec<(f64, u64, usize, steins_obs::MetricRegistry)>;
    let rows: Vec<(String, Series)> =
        steins_bench::par::map(cells.to_vec(), |(scheme, mode, label)| {
            let series = CACHE_SWEEP
                .iter()
                .map(|&cache| {
                    let r = recovery_at_cache_size(scheme, mode, cache);
                    (r.est_seconds, r.nvm_reads, r.nodes_recovered, r.metrics)
                })
                .collect();
            (label.to_string(), series)
        });
    for (label, series) in &rows {
        print!("{label:<12}");
        for (secs, _, _, _) in series {
            print!("{secs:>10.4}");
        }
        println!();
    }
    println!("\n(reads and recovered-node counts at 4 MB)");
    for (label, series) in &rows {
        let (_, reads, nodes, _) = series.last().unwrap();
        println!("{label:<12} reads={reads:<10} nodes={nodes}");
    }
    let mut reg = steins_obs::MetricRegistry::new();
    for (label, series) in &rows {
        for ((secs, _, _, m), &cache) in series.iter().zip(CACHE_SWEEP.iter()) {
            let prefix = format!("{label}.recovery.cache_{:04}kb", cache >> 10);
            reg.merge(&m.prefixed(&prefix));
            reg.gauge_set(&format!("{prefix}.est_seconds"), *secs);
        }
    }
    steins_bench::metrics::write_metrics("fig17", &reg);
    println!("\nWB: no recovery support (metadata loss is unrecoverable).");
}
