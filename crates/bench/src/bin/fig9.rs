//! Fig. 9 — execution time normalized to WB-GC (lower is better).
//!
//! Paper shape: ASIT ≈ 1.20×, STAR ≈ 1.12×, Steins-GC ≈ WB-GC.

fn main() {
    steins_bench::figure_gc(
        "fig9",
        "Fig. 9: execution time (normalized to WB-GC)",
        |r| r.cycles as f64,
    );
}
