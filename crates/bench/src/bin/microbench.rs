//! Before/after hot-path microbench suite.
//!
//! Measures the optimized implementations against retained in-tree
//! references (byte-oriented AES, clone-based HMAC, SipHash-keyed line
//! store) and writes the comparison to `results/BENCH_crypto.json`:
//!
//! * AES-128 OTP generation (B/s) — T-table vs byte-oriented reference
//! * HMAC-SHA-256/64 over the 72 B node-MAC message (msgs/s) — midstate
//!   fast path vs clone-based two-hasher reference
//! * the 88 B data-MAC (msgs/s)
//! * sparse line-store reads (reads/s) — FxHash store vs std SipHash map
//! * end-to-end secure writes (writes/s) at both crypto fidelities
//!
//! Knobs: `STEINS_MICRO_MS` (per-bench budget, ms), `STEINS_MICRO_OPS`
//! (trace length of the end-to-end runs, default 2000).

use std::collections::HashMap;
use steins_bench::micro;
use steins_core::{SchemeKind, SystemConfig};
use steins_crypto::aes::reference::RefAes128;
use steins_crypto::{engine::make_engine, Aes128, CryptoKind, HmacSha256, SecretKey, Sha256};
use steins_metadata::CounterMode;
use steins_nvm::SparseStore;
use steins_trace::{Workload, WorkloadKind};

/// The pre-optimization HMAC shape: cloned hashers and intermediate digest
/// copies (what `HmacSha256` did before the midstate rewrite).
struct RefHmac {
    inner: Sha256,
    outer: Sha256,
}

impl RefHmac {
    fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        k[..key.len()].copy_from_slice(key);
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        RefHmac { inner, outer }
    }

    fn mac64(&self, msg: &[u8]) -> u64 {
        let mut h = self.inner.clone();
        h.update(msg);
        let d = h.finalize();
        let mut o = self.outer.clone();
        o.update(&d);
        let full = o.finalize();
        u64::from_le_bytes(full[..8].try_into().unwrap())
    }
}

struct Entry {
    name: &'static str,
    unit: &'static str,
    before_ns: f64,
    after_ns: f64,
    rate_unit: &'static str,
    /// Work per op in `rate_unit` terms (64 for B/op, 1 for msgs etc.).
    work_per_op: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.before_ns / self.after_ns
    }
    fn rate_after(&self) -> f64 {
        self.work_per_op / (self.after_ns * 1e-9)
    }
}

fn end_to_end_ns_per_write(g: &mut micro::Group, label: &str, kind: CryptoKind) -> f64 {
    let ops: u64 = std::env::var("STEINS_MICRO_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let med_run_ns = g.bench_batched(
        label,
        || {
            let mut cfg = SystemConfig::sweep(SchemeKind::Steins, CounterMode::Split);
            cfg.crypto = kind;
            let sys = steins_core::SecureNvmSystem::new(cfg);
            let trace = Workload::new(WorkloadKind::Lbm, ops, 42).generate();
            (sys, trace)
        },
        |(mut sys, trace)| {
            std::hint::black_box(sys.run_trace(trace).expect("clean run"));
        },
    );
    med_run_ns / ops as f64
}

fn main() {
    let mut entries: Vec<Entry> = Vec::new();

    let mut g = micro::group("aes_otp");
    let key = [7u8; 16];
    let seed = [3u8; 16];
    let aes_ref = RefAes128::new(&key);
    let before = g.bench("otp64_bytewise_ref", || {
        std::hint::black_box(aes_ref.otp64(&seed));
    });
    let aes = Aes128::new(&key);
    let after = g.bench("otp64_ttable", || {
        std::hint::black_box(aes.otp64(&seed));
    });
    entries.push(Entry {
        name: "aes128_otp64",
        unit: "ns per 64 B OTP",
        before_ns: before,
        after_ns: after,
        rate_unit: "B/s",
        work_per_op: 64.0,
    });

    let mut g = micro::group("hmac");
    let msg72 = [0x5a_u8; 72];
    let href = RefHmac::new(b"steins-mac-key");
    let before = g.bench("mac64_72B_clone_ref", || {
        std::hint::black_box(href.mac64(&msg72));
    });
    let hmac = HmacSha256::new(b"steins-mac-key");
    let after = g.bench("mac64_72B_midstate", || {
        std::hint::black_box(hmac.mac64_fixed(&msg72));
    });
    assert_eq!(
        href.mac64(&msg72),
        hmac.mac64_fixed(&msg72),
        "fast path must compute the same MAC"
    );
    entries.push(Entry {
        name: "hmac_mac64_72B",
        unit: "ns per 72 B MAC",
        before_ns: before,
        after_ns: after,
        rate_unit: "msgs/s",
        work_per_op: 1.0,
    });

    let engine = make_engine(CryptoKind::Real, SecretKey([1; 16]));
    let data = [4u8; 64];
    let mut msg88 = [0u8; 88];
    msg88[..64].copy_from_slice(&data);
    msg88[64..72].copy_from_slice(&0x40u64.to_le_bytes());
    msg88[72..80].copy_from_slice(&7u64.to_le_bytes());
    msg88[80..88].copy_from_slice(&3u64.to_le_bytes());
    let ref88 = RefHmac::new(b"steins-mac-key");
    let before = g.bench("data_mac_88B_clone_ref", || {
        std::hint::black_box(ref88.mac64(&msg88));
    });
    let after = g.bench("data_mac_88B_real", || {
        std::hint::black_box(engine.data_mac(0x40, &data, 7, 3));
    });
    entries.push(Entry {
        name: "data_mac_88B",
        unit: "ns per 88 B data MAC",
        before_ns: before,
        after_ns: after,
        rate_unit: "msgs/s",
        work_per_op: 1.0,
    });

    // Satellite routing guard: the two hot message sizes must stay on the
    // monomorphized fixed-length path. If either falls off this list (the
    // `data_mac_88B` regression), the bench run fails loudly instead of the
    // slowdown only showing up as a worse number.
    for len in [72usize, 88] {
        assert!(
            HmacSha256::FIXED_FAST_LENS.contains(&len),
            "{len} B messages fell off the fixed fast-path list"
        );
    }
    assert_eq!(
        engine.data_mac(0x40, &data, 7, 3),
        engine.mac64_88(&msg88),
        "data_mac must build the canonical 88 B message and route it through mac64_88"
    );

    let mut g = micro::group("hmac_batched");
    const BATCH: usize = 64;
    let msgs72: Vec<[u8; 72]> = (0..BATCH)
        .map(|i| core::array::from_fn(|j| (i * 7 + j) as u8))
        .collect();
    let msgs88: Vec<[u8; 88]> = (0..BATCH)
        .map(|i| core::array::from_fn(|j| (i * 11 + j + 1) as u8))
        .collect();
    let mut out = [0u64; BATCH];
    let before = g.bench("mac64_72B_serial_loop", || {
        for (m, o) in msgs72.iter().zip(out.iter_mut()) {
            *o = hmac.mac64_72(m);
        }
        std::hint::black_box(&out);
    }) / BATCH as f64;
    let after = g.bench("mac64_72B_multi_lane", || {
        hmac.mac64_72_many(&msgs72, &mut out);
        std::hint::black_box(&out);
    }) / BATCH as f64;
    {
        // Differential: the measured batch must produce the serial bytes.
        let mut serial = [0u64; BATCH];
        for (m, o) in msgs72.iter().zip(serial.iter_mut()) {
            *o = hmac.mac64_72(m);
        }
        let mut batched = [0u64; BATCH];
        hmac.mac64_72_many(&msgs72, &mut batched);
        assert_eq!(serial, batched, "batched path must compute the same MACs");
    }
    entries.push(Entry {
        name: "hmac_mac64_72B_batched",
        unit: "ns per 72 B MAC (batch of 64, serial loop vs multi-lane)",
        before_ns: before,
        after_ns: after,
        rate_unit: "msgs/s",
        work_per_op: 1.0,
    });
    let before = g.bench("mac64_88B_serial_loop", || {
        for (m, o) in msgs88.iter().zip(out.iter_mut()) {
            *o = hmac.mac64_88(m);
        }
        std::hint::black_box(&out);
    }) / BATCH as f64;
    let after = g.bench("mac64_88B_multi_lane", || {
        hmac.mac64_88_many(&msgs88, &mut out);
        std::hint::black_box(&out);
    }) / BATCH as f64;
    entries.push(Entry {
        name: "data_mac_88B_batched",
        unit: "ns per 88 B data MAC (batch of 64, serial loop vs multi-lane)",
        before_ns: before,
        after_ns: after,
        rate_unit: "msgs/s",
        work_per_op: 1.0,
    });

    let mut g = micro::group("line_store");
    const LINES: u64 = 4096;
    let mut sip_map: HashMap<u64, [u8; 64]> = HashMap::new();
    let mut fx_store = SparseStore::new();
    for i in 0..LINES {
        sip_map.insert(i, [i as u8; 64]);
        fx_store.write(i * 64, &[i as u8; 64]);
    }
    let mut k = 0u64;
    let before = g.bench("reads_std_siphash_map", || {
        k = (k.wrapping_mul(6364136223846793005).wrapping_add(1)) % LINES;
        std::hint::black_box(sip_map.get(&k));
    });
    let mut k = 0u64;
    let after = g.bench("reads_fxhash_store", || {
        k = (k.wrapping_mul(6364136223846793005).wrapping_add(1)) % LINES;
        std::hint::black_box(fx_store.read(k * 64));
    });
    entries.push(Entry {
        name: "sparse_store_read",
        unit: "ns per line read",
        before_ns: before,
        after_ns: after,
        rate_unit: "reads/s",
        work_per_op: 1.0,
    });

    let mut g = micro::group("end_to_end");
    let real = end_to_end_ns_per_write(&mut g, "steins_writes_real_crypto", CryptoKind::Real);
    let fast = end_to_end_ns_per_write(&mut g, "steins_writes_fast_crypto", CryptoKind::Fast);
    entries.push(Entry {
        name: "end_to_end_write_real_vs_fast",
        unit: "ns per op (Real as before, Fast as after)",
        before_ns: real,
        after_ns: fast,
        rate_unit: "ops/s",
        work_per_op: 1.0,
    });

    // Hand-rolled JSON (the repo has no serde dependency).
    let mut json = String::from("{\n  \"suite\": \"steins microbench (hot-path before/after)\",\n");
    json.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"before_ns\": {:.1}, \"after_ns\": {:.1}, \"speedup\": {:.2}, \"rate_after\": {:.3e}, \"rate_unit\": \"{}\"}}{}\n",
            e.name,
            e.unit,
            e.before_ns,
            e.after_ns,
            e.speedup(),
            e.rate_after(),
            e.rate_unit,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_crypto.json", &json).expect("write json");

    println!("\n== speedups ==");
    for e in &entries {
        println!(
            "{:<32} {:>8.1} ns -> {:>8.1} ns   {:>6.2}x   ({:.3e} {})",
            e.name,
            e.before_ns,
            e.after_ns,
            e.speedup(),
            e.rate_after(),
            e.rate_unit
        );
    }
    println!("\nwrote results/BENCH_crypto.json");

    let aes = &entries[0];
    if aes.speedup() < 5.0 {
        eprintln!(
            "WARNING: AES OTP speedup {:.2}x is below the 5x target",
            aes.speedup()
        );
    }
}
