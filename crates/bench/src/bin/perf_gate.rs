//! CI gate: compares a freshly measured `results/BENCH_crypto.json`
//! against a committed baseline and fails on hot-path speedup regressions.
//!
//! Usage: `perf_gate <baseline.json> <fresh.json>` (defaults:
//! `results/BENCH_crypto_baseline.json results/BENCH_crypto.json`).
//!
//! Both files carry per-bench *speedup ratios* (`before_ns / after_ns`
//! measured on the same machine in the same process), so the comparison is
//! machine-independent: a fresh speedup may fall below the baseline's by at
//! most `STEINS_PERF_TOL` (relative, default 0.25). Absolute nanoseconds
//! are printed for context but never gated on. A bench present in the
//! baseline but missing from the fresh run is a failure; extra fresh
//! benches are ignored (additions should land with a new baseline).

use steins_obs::json::{parse, Json};

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    parse(&text).unwrap_or_else(|e| die(&format!("{path}: invalid JSON: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("perf_gate: {msg}");
    std::process::exit(2);
}

/// `benches` array as (name, speedup, after_ns) tuples.
fn benches(doc: &Json, path: &str) -> Vec<(String, f64, f64)> {
    let arr = doc
        .get("benches")
        .and_then(|b| b.as_arr())
        .unwrap_or_else(|| die(&format!("{path}: no `benches` array")));
    arr.iter()
        .map(|b| {
            let name = b
                .get("name")
                .and_then(|n| n.as_str())
                .unwrap_or_else(|| die(&format!("{path}: bench without a name")));
            let speedup = b
                .get("speedup")
                .and_then(|s| s.as_f64())
                .unwrap_or_else(|| die(&format!("{path}: {name} has no speedup")));
            let after = b.get("after_ns").and_then(|s| s.as_f64()).unwrap_or(0.0);
            (name.to_string(), speedup, after)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("results/BENCH_crypto_baseline.json");
    let fresh_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("results/BENCH_crypto.json");
    let tol: f64 = std::env::var("STEINS_PERF_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    let baseline = benches(&load(baseline_path), baseline_path);
    let fresh = benches(&load(fresh_path), fresh_path);
    println!("perf_gate: baseline {baseline_path}, fresh {fresh_path}, tol {tol}");
    println!(
        "{:<28}{:>10}{:>10}{:>10}{:>12}",
        "bench", "base", "fresh", "floor", "after_ns"
    );

    let mut failures = Vec::new();
    for (name, base_speedup, _) in &baseline {
        let floor = base_speedup * (1.0 - tol);
        match fresh.iter().find(|(n, _, _)| n == name) {
            Some((_, speedup, after_ns)) => {
                println!(
                    "{name:<28}{base_speedup:>10.2}{speedup:>10.2}{floor:>10.2}{after_ns:>12.1}"
                );
                // `partial_cmp` so a NaN speedup counts as a regression.
                if speedup.partial_cmp(&floor) == Some(std::cmp::Ordering::Less) || speedup.is_nan()
                {
                    failures.push(format!(
                        "{name}: speedup {speedup:.2} below floor {floor:.2} \
                         (baseline {base_speedup:.2}, tol {tol})"
                    ));
                }
            }
            None => failures.push(format!(
                "{name}: present in baseline, missing from fresh run"
            )),
        }
    }

    if failures.is_empty() {
        println!(
            "\nperf_gate: all {} benches within tolerance",
            baseline.len()
        );
    } else {
        eprintln!("\nperf_gate: {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
