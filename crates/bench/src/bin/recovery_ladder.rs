//! Parallel-recovery seconds-per-GB ladder with a scaling gate.
//!
//! Crashes and recovers an N-shard engine at each modeled image size,
//! models the worker axis by folding per-region read bills onto lanes,
//! and fails (exit 1) if any rung × workers cell misses its speedup
//! floor. Writes `results/BENCH_recovery.json` (deterministic — see
//! [`steins_bench::ladder`]), `results/BENCH_recovery.md` (step-summary
//! table), and `results/METRICS_recovery_ladder.json`.

use steins_bench::ladder::{run_ladder, LadderConfig};

fn main() {
    let lc = LadderConfig::from_env();
    let exec_workers = steins_bench::par::threads().min(lc.shards).max(1);
    println!(
        "== recovery ladder: {:?} MB x {:?} workers, {} shards (exec on {exec_workers} threads) ==",
        lc.rungs_mb, lc.workers, lc.shards
    );

    let start = std::time::Instant::now();
    let report = run_ladder(&lc, exec_workers);
    let wall = start.elapsed();

    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>12} {:>12} {:>9}",
        "image", "workers", "total_reads", "makespan", "est_sec", "sec/GB", "speedup"
    );
    for r in &report.rungs {
        println!(
            "{:>6}MB {:>8} {:>14} {:>14} {:>12.6} {:>12.6} {:>8.2}x",
            r.mb,
            r.workers,
            r.total_reads,
            r.makespan_reads,
            r.est_seconds,
            r.sec_per_gb,
            r.speedup
        );
    }
    println!(
        "(wall {:.2?} — wall clock is never part of the artifact)",
        wall
    );

    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("results/: {e}");
    }
    for (path, body) in [
        ("results/BENCH_recovery.json", &report.json),
        ("results/BENCH_recovery.md", &report.markdown),
    ] {
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("{path}: {e}"),
        }
    }
    steins_bench::metrics::write_metrics("recovery_ladder", &report.metrics);

    if report.pass() {
        println!(
            "GATE PASS: every cell met its scaling floor (tol {:.3})",
            lc.tol
        );
    } else {
        for f in &report.failures {
            eprintln!("GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
