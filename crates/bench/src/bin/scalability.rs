//! §IV-F — scalability across memory controllers.
//!
//! The paper: each Cascade-Lake socket has two MCs with three Optane DIMMs
//! each; clients hitting *different* DIMMs proceed in parallel (one Steins
//! instance per MC), clients hitting the *same* DIMM serialize in that
//! controller's front end.
//!
//! We reproduce both regimes: `K` clients × `M` controllers, each
//! controller a full independent Steins system (worker thread). Simulated
//! completion time is per-controller CPU time; the "same DIMM" regime runs
//! all clients through one controller back to back.

use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

const OPS_PER_CLIENT: u64 = 100_000;

/// Runs `clients` client op-streams through one controller, serially (the
/// same-DIMM regime). Returns simulated cycles.
fn same_dimm(clients: usize) -> u64 {
    let cfg = SystemConfig::sweep(SchemeKind::Steins, CounterMode::Split);
    let mut sys = SecureNvmSystem::new(cfg);
    for c in 0..clients {
        let wl = Workload::new(WorkloadKind::PHash, OPS_PER_CLIENT, c as u64 + 1);
        sys.run_trace(wl.generate()).expect("clean run");
    }
    sys.report().cycles
}

/// Runs `clients` clients spread over `mcs` controllers (different-DIMM
/// regime): controllers are independent and run as parallel worker tasks;
/// simulated completion is the slowest controller.
fn different_dimms(clients: usize, mcs: usize) -> u64 {
    let per_mc = clients.div_ceil(mcs);
    steins_bench::par::map((0..mcs).collect::<Vec<_>>(), |m| {
        let cfg = SystemConfig::sweep(SchemeKind::Steins, CounterMode::Split);
        let mut sys = SecureNvmSystem::new(cfg);
        for c in 0..per_mc {
            let wl = Workload::new(
                WorkloadKind::PHash,
                OPS_PER_CLIENT,
                (m * per_mc + c) as u64 + 1,
            );
            sys.run_trace(wl.generate()).expect("clean run");
        }
        sys.report().cycles
    })
    .into_iter()
    .max()
    .unwrap_or(0)
}

fn main() {
    println!("== §IV-F: Steins scalability across memory controllers ==");
    println!("({OPS_PER_CLIENT} ops/client, Steins-SC, phash)\n");
    let base = same_dimm(1);
    println!(
        "{:<28}{:>16}{:>12}",
        "configuration", "sim. cycles", "vs 1 client"
    );
    println!("{:<28}{:>16}{:>12.2}", "1 client, 1 MC", base, 1.0);
    for clients in [2usize, 4, 6] {
        let serial = same_dimm(clients);
        println!(
            "{:<28}{:>16}{:>12.2}",
            format!("{clients} clients, same DIMM"),
            serial,
            serial as f64 / base as f64
        );
        let parallel = different_dimms(clients, clients.min(6));
        println!(
            "{:<28}{:>16}{:>12.2}",
            format!("{clients} clients, {} DIMMs", clients.min(6)),
            parallel,
            parallel as f64 / base as f64
        );
    }
    println!("\nShape: same-DIMM completion grows ~linearly with clients (the MC");
    println!("serializes requests); different-DIMM completion stays ~flat (one");
    println!("independent Steins instance per controller).");
}
