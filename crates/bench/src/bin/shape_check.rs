//! CI gate: reruns a small-budget sweep and asserts the qualitative shape
//! recorded in EXPERIMENTS.md, exiting non-zero on any violation.
//!
//! Invariants (gmean across all ten workloads, normalized to WB-GC /
//! WB-SC):
//!
//! * Steins-GC beats ASIT and STAR on execution time, write latency, and
//!   NVM write traffic;
//! * Steins-SC tracks WB-SC on execution time within `STEINS_SHAPE_TOL`
//!   (default 15%);
//! * recovery cost at a 256 KB metadata cache orders
//!   ASIT < STAR < Steins-GC < Steins-SC.
//!
//! Knobs: `STEINS_SHAPE_OPS` (default 20,000 — small enough for CI,
//! large enough that the orderings are stable), `STEINS_SEED`,
//! `STEINS_SHAPE_TOL`. The check logic itself lives in
//! [`steins_bench::shape`] so the trip conditions are unit-tested.

use std::collections::BTreeMap;
use steins_bench::recovery_bench::recovery_at_cache_size;
use steins_bench::shape::{check_below, check_close, check_increasing};
use steins_bench::{gmean, par, run_one, Cell, GC_MATRIX, SC_MATRIX};
use steins_core::{RunReport, SchemeKind};
use steins_metadata::CounterMode;
use steins_trace::WorkloadKind;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Gmean over all workloads of `metric(cell) / metric(baseline)`.
fn norm_gmean(
    matrix: &BTreeMap<(String, &'static str), RunReport>,
    cell: Cell,
    baseline: Cell,
    metric: impl Fn(&RunReport) -> f64,
) -> f64 {
    let label = cell.0.label(cell.1);
    let base = baseline.0.label(baseline.1);
    let ratios: Vec<f64> = WorkloadKind::ALL
        .iter()
        .map(|w| {
            metric(&matrix[&(label.clone(), w.label())])
                / metric(&matrix[&(base.clone(), w.label())])
        })
        // Zero-write workloads at tiny op budgets yield 0/0; skip them
        // rather than poisoning the gmean (matches `print_normalized`).
        .filter(|r| r.is_finite() && *r > 0.0)
        .collect();
    gmean(&ratios)
}

fn main() {
    let ops = env_u64("STEINS_SHAPE_OPS", 20_000);
    let seed = env_u64("STEINS_SEED", 42);
    let tol = env_f64("STEINS_SHAPE_TOL", 0.15);
    println!("shape_check: ops/workload = {ops}, seed = {seed}, tol = {tol}");

    let cells: Vec<Cell> = GC_MATRIX.iter().chain(SC_MATRIX.iter()).copied().collect();
    let jobs: Vec<(Cell, WorkloadKind)> = cells
        .iter()
        .flat_map(|c| WorkloadKind::ALL.iter().map(move |w| (*c, *w)))
        .collect();
    let matrix: BTreeMap<(String, &'static str), RunReport> = par::map(jobs, |(cell, wl)| {
        (
            (cell.0.label(cell.1), wl.label()),
            run_one(cell, wl, ops, seed),
        )
    })
    .into_iter()
    .collect();

    let wb_gc = GC_MATRIX[0];
    let asit = GC_MATRIX[1];
    let star = GC_MATRIX[2];
    let steins_gc = GC_MATRIX[3];
    let wb_sc = SC_MATRIX[0];
    let steins_sc = SC_MATRIX[1];

    let mut violations = Vec::new();
    for (metric_name, metric) in [
        (
            "exec_time",
            (|r: &RunReport| r.cycles as f64) as fn(&RunReport) -> f64,
        ),
        ("write_latency", |r: &RunReport| r.write_latency),
        ("write_traffic", |r: &RunReport| r.nvm.writes as f64),
    ] {
        let s = norm_gmean(&matrix, steins_gc, wb_gc, metric);
        let a = norm_gmean(&matrix, asit, wb_gc, metric);
        let t = norm_gmean(&matrix, star, wb_gc, metric);
        println!("{metric_name:<14} Steins-GC {s:.4}  ASIT-GC {a:.4}  STAR-GC {t:.4}");
        violations.extend(check_below(
            metric_name,
            "Steins-GC",
            s,
            &[("ASIT-GC", a), ("STAR-GC", t)],
        ));
    }

    let sc_ratio = norm_gmean(&matrix, steins_sc, wb_sc, |r| r.cycles as f64);
    println!("exec_time_sc   Steins-SC/WB-SC {sc_ratio:.4}");
    violations.extend(check_close(
        "exec_time_sc",
        "Steins-SC",
        sc_ratio,
        "WB-SC",
        1.0,
        tol,
    ));

    // Recovery ladder at the smallest (256 KB) metadata cache.
    let recovery_cells = [
        (SchemeKind::Asit, CounterMode::General, "ASIT"),
        (SchemeKind::Star, CounterMode::General, "STAR"),
        (SchemeKind::Steins, CounterMode::General, "Steins-GC"),
        (SchemeKind::Steins, CounterMode::Split, "Steins-SC"),
    ];
    let secs: Vec<(&str, f64)> = par::map(recovery_cells.to_vec(), |(s, m, label)| {
        (label, recovery_at_cache_size(s, m, 256 << 10).est_seconds)
    });
    print!("recovery_256kb");
    for (label, v) in &secs {
        print!("  {label} {v:.4}");
    }
    println!();
    violations.extend(check_increasing("recovery_seconds_256kb", &secs));

    if violations.is_empty() {
        println!("\nshape_check: all ordering invariants hold");
    } else {
        eprintln!("\nshape_check: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
