//! §IV-E — storage overhead analysis for a 16 GB NVM.
//!
//! Paper numbers: GC leaf region 2 GB vs SC 256 MB; STAR +1/64 cache for
//! set-MACs; ASIT +1/8 cache for per-line MACs; Steins instead uses one
//! 64 B LInc register + a 128 B NV buffer.

use steins_metadata::{CounterMode, SitGeometry};

fn human(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn main() {
    let data_lines = (16u64 << 30) / 64;
    println!("== §IV-E: storage overhead over 16 GB NVM ==\n");
    for mode in [CounterMode::General, CounterMode::Split] {
        let g = SitGeometry::new(mode, data_lines);
        println!(
            "{} SIT: height {} (incl. root), leaves {} ({}), intermediate {} ({}), total {}",
            mode.label(),
            g.height(),
            g.nodes_at(0),
            human(g.leaf_bytes()),
            g.total_nodes() - g.nodes_at(0),
            human(g.intermediate_bytes()),
            human(g.total_nodes() * 64),
        );
    }
    let cache = 256u64 << 10;
    println!("\nPer-scheme extras (256 KB metadata cache):");
    println!(
        "  ASIT    shadow table {} in NVM; cache-tree +1/8 cache space ({}); 64 B NV root register",
        human(cache),
        human(cache / 8)
    );
    println!(
        "  STAR    bitmap {} in NVM; cache-tree +1/64 cache space ({}); 64 B NV root register",
        human(((16u64 << 30) / 64 / 8).next_multiple_of(64)),
        human(cache / 64)
    );
    println!(
        "  Steins  offset records {} in NVM; 64 B LInc register + 128 B NV buffer on chip",
        human((cache / 64) * 4)
    );
    println!("  WB      none (no recovery support)");
}
