//! Contended sharded-throughput stress bench and scaling gate.
//!
//! Sweeps write mixes over a shards × threads grid (see
//! [`steins_bench::stress`]), prints the scaling table, writes the
//! deterministic `results/BENCH_shard.json` artifact plus the per-shard
//! metric registry `results/METRICS_shard_stress.json`, and exits nonzero
//! if any uniform cell misses its scaling floor
//! (`min(shards, threads) × (1 − STEINS_SCALE_TOL)`).

use steins_bench::stress::{default_cfg, run_grid, Mix, StressConfig};

fn main() {
    let sc = StressConfig::from_env();
    let cfg = default_cfg();
    let workers = steins_bench::par::threads();
    println!(
        "sharded stress: {} ops/cell, seed {}, shards {:?} x threads {:?}, {} workers, tol {}",
        sc.ops, sc.seed, sc.shards, sc.threads, workers, sc.tol
    );

    let report = run_grid(&cfg, &sc, workers);

    for mix in [Mix::Uniform, Mix::Zipfian] {
        println!("\n{} writes (scaling vs 1 shard / 1 thread):", mix.label());
        println!(
            "{:>8} {:>8} {:>16} {:>14} {:>9}",
            "shards", "threads", "makespan_cycles", "ops/kcycle", "scaling"
        );
        for c in report.cells.iter().filter(|c| c.mix == mix) {
            println!(
                "{:>8} {:>8} {:>16} {:>14.1} {:>9.2}",
                c.shards,
                c.threads,
                c.makespan_cycles,
                sc.ops as f64 * 1000.0 / c.makespan_cycles as f64,
                c.scaling
            );
        }
    }

    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("results/: {e}");
    }
    match std::fs::write("results/BENCH_shard.json", &report.json) {
        Ok(()) => println!("\nwrote results/BENCH_shard.json"),
        Err(e) => eprintln!("results/BENCH_shard.json: {e}"),
    }
    if let Some(p) = steins_bench::metrics::write_metrics("shard_stress", &report.metrics) {
        println!("wrote {}", p.display());
    }

    if report.pass() {
        println!("scaling gate: PASS");
    } else {
        eprintln!("scaling gate: FAIL");
        for f in &report.failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
