//! Table I — the evaluated NVM system configuration.

use steins_core::{SchemeKind, SystemConfig};
use steins_metadata::CounterMode;

fn main() {
    let cfg = SystemConfig::table1(SchemeKind::Steins, CounterMode::Split);
    let t = &cfg.nvm.timings;
    println!("== Table I: configurations of the evaluated NVM system ==\n");
    println!("Processor");
    println!(
        "  CPU                  trace-driven x86-64 model, {} GHz",
        t.freq_ghz
    );
    println!(
        "  Private L1i/d cache  {} KB, {}-way, LRU, 64 B block",
        cfg.hierarchy.l1_bytes >> 10,
        cfg.hierarchy.l1_ways
    );
    println!(
        "  Shared L2 cache      {} KB, {}-way, LRU, 64 B block",
        cfg.hierarchy.l2_bytes >> 10,
        cfg.hierarchy.l2_ways
    );
    println!(
        "  Shared L3 cache      {} MB, {}-way, LRU, 64 B block",
        cfg.hierarchy.l3_bytes >> 20,
        cfg.hierarchy.l3_ways
    );
    println!("DDR-based NVM");
    println!("  Capacity             {} GB", cfg.nvm.capacity_bytes >> 30);
    println!(
        "  PCM latency model    tRCD/tCL/tCWD/tFAW/tWTR/tWR = {}/{}/{}/{}/{}/{} ns",
        t.t_rcd_ns, t.t_cl_ns, t.t_cwd_ns, t.t_faw_ns, t.t_wtr_ns, t.t_wr_ns
    );
    println!(
        "  Write queue          {} entries",
        cfg.nvm.write_queue_entries
    );
    println!("Secure parameters");
    println!(
        "  Metadata cache       {} KB, {}-way, LRU, 64 B block",
        cfg.meta_cache.capacity_bytes >> 10,
        cfg.meta_cache.ways
    );
    let gc = steins_metadata::SitGeometry::new(CounterMode::General, cfg.nvm.lines() * 3 / 4);
    let sc = steins_metadata::SitGeometry::new(CounterMode::Split, cfg.nvm.lines() * 3 / 4);
    println!(
        "  SIT                  {}/{} levels (SC/GC, incl. root), 8-way, 64 B block",
        sc.height(),
        gc.height()
    );
    println!("  Hash latency         {} cycles", cfg.hash_latency);
    println!("  Non-volatile buffer  {} B", cfg.nv_buffer_bytes);
    println!(
        "  Offset records       {} KB region, {} lines cached in the MC",
        (cfg.meta_cache.slots() * 4) >> 10,
        cfg.record_cache_lines
    );
}
