//! Write-endurance attribution: where each scheme's NVM writes land.
//!
//! NVM cells wear out; a recovery scheme that doubles writes (ASIT) or
//! hammers one small region (STAR's bitmap, Steins' records) concentrates
//! wear. This experiment runs the same workload under every scheme and
//! attributes every timed NVM write to its region — data, SIT metadata,
//! offset records, shadow table, or bitmap — plus the single hottest line.

use steins_core::{SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

fn main() {
    let ops = std::env::var("STEINS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000u64);
    println!("== Write-endurance attribution ({ops} ops of phash) ==\n");
    println!(
        "{:<11}{:>10}{:>10}{:>10}{:>10}{:>10}{:>12}{:>10}",
        "scheme", "data", "SIT", "records", "shadow", "bitmap", "total", "max/line"
    );
    for (scheme, mode) in [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ] {
        let cfg = SystemConfig::sweep(scheme, mode);
        let mut sys = SecureNvmSystem::new(cfg);
        let wl = Workload::new(WorkloadKind::PHash, ops, 42);
        sys.run_trace(wl.generate()).expect("clean run");
        let layout = sys.ctrl.layout().clone();
        let wear = sys.ctrl.nvm().wear();
        let data = wear.in_range(layout.data_base, layout.mac_base);
        let sit = wear.in_range(layout.metadata_base, layout.records_base);
        let records = wear.in_range(layout.records_base, layout.shadow_base);
        let shadow = wear.in_range(layout.shadow_base, layout.bitmap_base);
        let bitmap = wear.in_range(layout.bitmap_base, layout.end);
        let summary = wear.summary().expect("writes happened");
        println!(
            "{:<11}{:>10}{:>10}{:>10}{:>10}{:>10}{:>12}{:>10}",
            scheme.label(mode),
            data,
            sit,
            records,
            shadow,
            bitmap,
            summary.total_writes,
            summary.max_writes
        );
    }
    println!("\nReading the table: ASIT's shadow column ≈ its data+SIT columns");
    println!("combined (the 2× of Fig. 13); STAR's bitmap column is its");
    println!("write-through tracking; Steins' record column is the small");
    println!("ADR-buffered residue the paper's design aims for.");
}
