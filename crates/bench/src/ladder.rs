//! Parallel-recovery seconds-per-GB ladder.
//!
//! The recovery-at-scale experiment behind `results/BENCH_recovery.json`:
//! for each rung (a modeled protected-image size), an N-shard
//! [`ShardedEngine`] is dirtied the way §IV-D assumes — (nearly) every
//! per-shard metadata-cache slot holds a dirty node when the power cut
//! lands — then the whole engine crashes and recovers through
//! [`ShardedEngine::recover_all`]. Per-shard recovery work (counted NVM
//! read-and-verifies) is measured once per rung; the worker axis is then
//! *modeled* by folding those per-region costs onto `w` lanes with the
//! same deterministic LPT fold recovery itself reports
//! ([`steins_core::par::fold_lanes`]). Seconds follow the paper's charge
//! of `recovery_read_ns` (100 ns) per read.
//!
//! The rung's cache footprint scales with the modeled image — 256 B of
//! per-shard metadata cache per modeled MB, floored at 8 KB — so the
//! 256 MB → 4 GB ladder sweeps dirty-state sizes two orders of magnitude
//! apart without simulating terabytes of traffic.
//!
//! Determinism: the artifact depends only on the rung list, worker list,
//! shard count, and tolerance. The OS worker count used to *execute*
//! the recovery affects wall clock (printed, never exported) — per-shard
//! reports are worker-count-invariant by the lane contract, so the JSON is
//! byte-identical across `STEINS_THREADS` settings and host core counts.
//!
//! The scaling gate: every rung × workers cell must reach
//! `min(workers, shards) × (1 − STEINS_RECOVERY_SCALE_TOL)` speedup over
//! the same rung's 1-worker fold (default tolerance 0.375, so 4 workers
//! must clear 2.5×).
//!
//! Knobs: `STEINS_LADDER_MB` (comma list, default `256,1024,4096`),
//! `STEINS_LADDER_WORKERS` (default `1,2,4,8`), `STEINS_LADDER_SHARDS`
//! (default 8), `STEINS_RECOVERY_SCALE_TOL`.

use std::fmt::Write as _;

use steins_core::par;
use steins_core::{SchemeKind, ShardedEngine, SystemConfig};
use steins_metadata::cache::MetaCacheConfig;
use steins_metadata::CounterMode;
use steins_obs::MetricRegistry;
use steins_trace::{Pattern, Workload, WorkloadKind};

/// The rung/worker grid and knobs one ladder run covers.
#[derive(Clone, Debug)]
pub struct LadderConfig {
    /// Modeled image sizes in MB.
    pub rungs_mb: Vec<u64>,
    /// Worker counts the fold models.
    pub workers: Vec<usize>,
    /// Shards (= independent recovery regions).
    pub shards: usize,
    /// Scaling-gate tolerance (fraction of ideal allowed to be lost).
    pub tol: f64,
}

impl LadderConfig {
    /// Grid from the environment (see module docs for the knobs).
    pub fn from_env() -> Self {
        fn list(var: &str) -> Option<Vec<u64>> {
            let v: Vec<u64> = std::env::var(var)
                .ok()?
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            (!v.is_empty()).then_some(v)
        }
        let num = |var: &str, default: f64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        LadderConfig {
            rungs_mb: list("STEINS_LADDER_MB").unwrap_or_else(|| vec![256, 1024, 4096]),
            workers: list("STEINS_LADDER_WORKERS")
                .map(|v| v.into_iter().map(|n| n as usize).collect())
                .unwrap_or_else(|| vec![1, 2, 4, 8]),
            shards: num("STEINS_LADDER_SHARDS", 8.0) as usize,
            tol: num("STEINS_RECOVERY_SCALE_TOL", 0.375),
        }
    }
}

/// One rung × workers cell of the ladder.
#[derive(Clone, Debug)]
pub struct Rung {
    /// Modeled image size in MB.
    pub mb: u64,
    /// Modeled worker count.
    pub workers: usize,
    /// Sum of every region's recovery reads.
    pub total_reads: u64,
    /// Busiest lane's reads after the LPT fold onto `workers` lanes.
    pub makespan_reads: u64,
    /// Modeled recovery time: `makespan_reads × recovery_read_ns`.
    pub est_seconds: f64,
    /// `est_seconds` normalized per modeled GB.
    pub sec_per_gb: f64,
    /// Speedup of this fold over the same rung's 1-worker fold.
    pub speedup: f64,
}

/// A full ladder run: cells in (rung, workers) grid order, the gate
/// verdict, the largest rung's folded recovery registry, the deterministic
/// JSON artifact, and the step-summary markdown table.
pub struct LadderReport {
    /// Every cell, rung-major.
    pub rungs: Vec<Rung>,
    /// Gate failures (empty = pass).
    pub failures: Vec<String>,
    /// The largest rung's [`ShardedEngine::recover_all`] registry.
    pub metrics: MetricRegistry,
    /// `results/BENCH_recovery.json` contents.
    pub json: String,
    /// Markdown seconds-per-GB table (for `$GITHUB_STEP_SUMMARY`).
    pub markdown: String,
}

impl LadderReport {
    /// True when every cell met its scaling floor.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The per-shard system one rung runs on: Steins-GC over a metadata cache
/// of 256 B per modeled MB (≥ 8 KB), with the data region and device sized
/// to fit the leaf-strided dirtying workload.
pub fn rung_config(mb: u64, shards: usize) -> SystemConfig {
    let mut cfg = SystemConfig::sweep(SchemeKind::Steins, CounterMode::General);
    let per_shard_bytes = (mb * 256).max(8 << 10);
    cfg.meta_cache = MetaCacheConfig {
        capacity_bytes: per_shard_bytes * shards as u64,
        ways: 8,
    };
    let per_shard = MetaCacheConfig {
        capacity_bytes: per_shard_bytes,
        ways: 8,
    };
    let coverage = CounterMode::General.leaf_coverage();
    let footprint = per_shard.slots() * 3 / 2 * coverage;
    cfg.data_lines = footprint * shards as u64;
    // Per-shard device: data (64 B/line) + MACs + metadata + headroom.
    cfg.nvm.capacity_bytes = (footprint * 64 * 3 / 2).next_power_of_two();
    cfg
}

/// Dirties (nearly) every metadata-cache slot of every shard: one write
/// per leaf, strided at the leaf coverage, 1.5× the slot count, driven at
/// shard-local addresses so each region's recovery bill is independent of
/// the striping mode.
fn dirty_all_shards(engine: &ShardedEngine) {
    let per_shard = engine.shard_config();
    let coverage = CounterMode::General.leaf_coverage();
    let writes = per_shard.meta_cache.slots() * 3 / 2;
    for s in 0..engine.shards() {
        engine.with_shard(s, |sys| {
            let mut wl = Workload::new(WorkloadKind::PHash, writes, 7 + s as u64);
            wl.footprint_lines = per_shard.data_lines;
            wl.write_ratio = 1.0;
            wl.flush_stores = true;
            wl.pattern = Pattern::Sequential { stride: coverage };
            sys.run_trace(wl.generate())
                .expect("fill run is attack-free");
        });
    }
}

/// Runs the whole ladder, executing each rung's recovery once on
/// `exec_workers` OS threads and modeling the worker axis from its
/// per-region read counts. The artifact never depends on `exec_workers`.
pub fn run_ladder(lc: &LadderConfig, exec_workers: usize) -> LadderReport {
    let mut rungs = Vec::new();
    let mut failures = Vec::new();
    let mut metrics = MetricRegistry::new();
    let mut read_ns = 100.0;

    for &mb in &lc.rungs_mb {
        let cfg = rung_config(mb, lc.shards);
        read_ns = cfg.recovery_read_ns;
        let engine = ShardedEngine::new(cfg, lc.shards);
        dirty_all_shards(&engine);
        let images = engine.crash_all();
        let pr = engine
            .recover_all(images, exec_workers)
            .expect("ladder recovery is attack-free");
        // The exported registry is rebuilt from the per-shard reports (which
        // are worker-count-invariant) — `pr.metrics` itself folds lanes by
        // the *execution* worker count, which must never leak into results.
        metrics = MetricRegistry::new();
        for (s, r) in pr.reports.iter().enumerate() {
            metrics.fold_shard(&format!("shard.{s:02}"), &r.metrics);
        }
        metrics.gauge_set("bench.ladder.mb", mb as f64);
        metrics.gauge_set("bench.ladder.shards", lc.shards as f64);

        let costs: Vec<u64> = pr.reports.iter().map(|r| r.nvm_reads).collect();
        let total_reads: u64 = costs.iter().sum();
        let serial = par::makespan(&costs, 1).max(1);
        let gb = mb as f64 / 1024.0;
        for &w in &lc.workers {
            let makespan = par::makespan(&costs, w).max(1);
            let est_seconds = makespan as f64 * read_ns * 1e-9;
            let speedup = serial as f64 / makespan as f64;
            let ideal = w.min(lc.shards) as f64;
            let floor = ideal * (1.0 - lc.tol);
            if speedup + 1e-9 < floor {
                failures.push(format!(
                    "{mb} MB x {w} workers: speedup {speedup:.2} < floor {floor:.2}"
                ));
            }
            rungs.push(Rung {
                mb,
                workers: w,
                total_reads,
                makespan_reads: makespan,
                est_seconds,
                sec_per_gb: est_seconds / gb,
                speedup,
            });
        }
    }

    let json = render_json(lc, read_ns, &rungs, &failures);
    let markdown = render_markdown(lc, &rungs);
    LadderReport {
        rungs,
        failures,
        metrics,
        json,
        markdown,
    }
}

/// Deterministic artifact: fixed field order, integers for reads, fixed
/// decimal widths for derived quantities. Wall clock is never written.
fn render_json(lc: &LadderConfig, read_ns: f64, rungs: &[Rung], failures: &[String]) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(
        j,
        "  \"suite\": \"parallel recovery ladder (modeled reads)\","
    );
    let _ = writeln!(j, "  \"shards\": {},", lc.shards);
    let _ = writeln!(j, "  \"read_ns\": {read_ns:.1},");
    let _ = writeln!(j, "  \"tolerance\": {:.3},", lc.tol);
    let _ = writeln!(j, "  \"rungs\": [");
    for (i, r) in rungs.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"mb\": {}, \"workers\": {}, \"total_reads\": {}, \
             \"makespan_reads\": {}, \"est_seconds\": {:.6}, \
             \"sec_per_gb\": {:.6}, \"speedup\": {:.3}}}{}",
            r.mb,
            r.workers,
            r.total_reads,
            r.makespan_reads,
            r.est_seconds,
            r.sec_per_gb,
            r.speedup,
            if i + 1 == rungs.len() { "" } else { "," }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"gate\": {{");
    let _ = writeln!(j, "    \"pass\": {},", failures.is_empty());
    let _ = writeln!(j, "    \"failures\": [");
    for (i, f) in failures.iter().enumerate() {
        let _ = writeln!(
            j,
            "      \"{f}\"{}",
            if i + 1 == failures.len() { "" } else { "," }
        );
    }
    let _ = writeln!(j, "    ]");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

/// Markdown seconds-per-GB table: one row per rung, one column per worker
/// count.
fn render_markdown(lc: &LadderConfig, rungs: &[Rung]) -> String {
    let mut m = String::new();
    let _ = writeln!(
        m,
        "### Recovery ladder — seconds per GB ({} shards)\n",
        lc.shards
    );
    let mut header = String::from("| image |");
    let mut rule = String::from("|---|");
    for w in &lc.workers {
        let _ = write!(header, " {w} worker{} |", if *w == 1 { "" } else { "s" });
        rule.push_str("---|");
    }
    let _ = writeln!(m, "{header}");
    let _ = writeln!(m, "{rule}");
    for &mb in &lc.rungs_mb {
        let mut row = if mb >= 1024 && mb % 1024 == 0 {
            format!("| {} GB |", mb / 1024)
        } else {
            format!("| {mb} MB |")
        };
        for &w in &lc.workers {
            if let Some(r) = rungs.iter().find(|r| r.mb == mb && r.workers == w) {
                let _ = write!(row, " {:.4} ({:.2}x) |", r.sec_per_gb, r.speedup);
            } else {
                row.push_str(" — |");
            }
        }
        let _ = writeln!(m, "{row}");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LadderConfig {
        LadderConfig {
            rungs_mb: vec![1, 2],
            workers: vec![1, 2],
            shards: 2,
            tol: 0.375,
        }
    }

    #[test]
    fn tiny_ladder_scales_and_gate_passes() {
        let report = run_ladder(&tiny(), 1);
        assert!(report.pass(), "{:?}", report.failures);
        let cell = report
            .rungs
            .iter()
            .find(|r| r.mb == 2 && r.workers == 2)
            .unwrap();
        assert!(cell.speedup >= 1.25, "2-worker speedup {}", cell.speedup);
        assert!(cell.est_seconds > 0.0 && cell.sec_per_gb > 0.0);
    }

    /// The BENCH_recovery.json artifact must not depend on how many OS
    /// workers executed the recovery.
    #[test]
    fn artifact_is_byte_identical_across_exec_worker_counts() {
        let lc = tiny();
        let one = run_ladder(&lc, 1);
        let four = run_ladder(&lc, 4);
        assert_eq!(one.json, four.json);
        assert_eq!(one.markdown, four.markdown);
        assert_eq!(
            one.metrics.to_json_deterministic().pretty(),
            four.metrics.to_json_deterministic().pretty()
        );
    }

    #[test]
    fn bigger_rungs_cost_more_reads() {
        let report = run_ladder(&tiny(), 2);
        let small = report
            .rungs
            .iter()
            .find(|r| r.mb == 1 && r.workers == 1)
            .unwrap();
        let large = report
            .rungs
            .iter()
            .find(|r| r.mb == 2 && r.workers == 1)
            .unwrap();
        // Both rungs clamp to the 8 KB cache floor at these toy sizes, so
        // equality is allowed — monotonicity is what the ladder promises.
        assert!(large.total_reads >= small.total_reads);
    }
}
