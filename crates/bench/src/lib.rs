//! Figure/table regeneration harness.
//!
//! Every evaluation artifact of the paper (§IV, Table I and Figs. 9–17 plus
//! the storage analysis) has a binary in `src/bin/` that reruns the
//! experiment and prints the paper's series. This library holds the shared
//! machinery: scheme matrices, parallel sweep execution (std threads — each
//! simulation is independent, mirroring §IV-F's parallel memory
//! controllers), normalization, and table formatting.
//!
//! Knobs (environment variables):
//!
//! * `STEINS_OPS` — memory operations per workload (default 1,000,000).
//! * `STEINS_SEED` — trace seed (default 42).
//! * `STEINS_THREADS` — sweep worker count (default: available parallelism).
//!
//! Besides the printed tables and `results/*.csv`, every figure run exports
//! its full metric registry (tail-latency histograms, device/cache/metadata
//! counters) as `results/METRICS_<run>.json` — see [`metrics`].

use std::collections::BTreeMap;
use steins_core::{RunReport, SchemeKind, SystemConfig};
use steins_metadata::CounterMode;
use steins_trace::{Workload, WorkloadKind};

pub mod ladder;
pub mod metrics;
pub mod micro;
pub mod par;
pub mod recovery_bench;
pub mod shape;
pub mod stress;

/// Writes one figure's normalized rows as CSV under `results/` (one file
/// per figure), so the series can be plotted without re-running the sweep.
/// Errors are reported but non-fatal — the printed tables are the primary
/// output.
pub fn write_csv(figure: &str, workloads: &[WorkloadKind], rows: &[(String, Vec<f64>, f64)]) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("results/: {e}");
        return;
    }
    let mut out = String::from("scheme");
    for w in workloads {
        out.push(',');
        out.push_str(w.label());
    }
    out.push_str(",gmean\n");
    for (label, vals, g) in rows {
        out.push_str(label);
        for v in vals {
            out.push_str(&format!(",{v:.4}"));
        }
        out.push_str(&format!(",{g:.4}\n"));
    }
    let path = dir.join(format!("{figure}.csv"));
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("{}: {e}", path.display());
    }
}

/// One scheme/mode cell of the comparison matrix.
pub type Cell = (SchemeKind, CounterMode);

/// The GC comparison of Figs. 9–11, 13, 15: baseline first.
pub const GC_MATRIX: [Cell; 4] = [
    (SchemeKind::WriteBack, CounterMode::General),
    (SchemeKind::Asit, CounterMode::General),
    (SchemeKind::Star, CounterMode::General),
    (SchemeKind::Steins, CounterMode::General),
];

/// The SC comparison of Figs. 12, 14, 16: baseline first.
pub const SC_MATRIX: [Cell; 2] = [
    (SchemeKind::WriteBack, CounterMode::Split),
    (SchemeKind::Steins, CounterMode::Split),
];

/// Memory operations per workload (env `STEINS_OPS`).
pub fn ops() -> u64 {
    std::env::var("STEINS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Trace seed (env `STEINS_SEED`).
pub fn seed() -> u64 {
    std::env::var("STEINS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Runs one (scheme, mode, workload) simulation and returns its report.
pub fn run_one(cell: Cell, kind: WorkloadKind, ops: u64, seed: u64) -> RunReport {
    let (scheme, mode) = cell;
    let cfg = SystemConfig::sweep(scheme, mode);
    let mut sys = steins_core::SecureNvmSystem::new(cfg);
    let wl = Workload::new(kind, ops, seed);
    sys.run_trace(wl.generate()).unwrap_or_else(|e| {
        panic!("integrity failure in clean run ({scheme:?}/{mode:?}/{kind:?}): {e}")
    })
}

/// Results keyed by `(cell label, workload label)`.
pub type Matrix = BTreeMap<(String, &'static str), RunReport>;

/// Runs `cells × workloads` in parallel — one job per simulation on the
/// std-thread shared-counter work queue in [`par`] (`STEINS_THREADS`
/// controls the worker count; there is no rayon dependency).
pub fn run_matrix(cells: &[Cell], workloads: &[WorkloadKind]) -> Matrix {
    let ops = ops();
    let seed = seed();
    let jobs: Vec<(Cell, WorkloadKind)> = cells
        .iter()
        .flat_map(|c| workloads.iter().map(move |w| (*c, *w)))
        .collect();
    par::map(jobs, |(cell, wl)| {
        let report = run_one(cell, wl, ops, seed);
        ((cell.0.label(cell.1), wl.label()), report)
    })
    .into_iter()
    .collect()
}

/// Geometric mean (the summary bar in each figure).
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints one figure: a metric per (scheme, workload), normalized to the
/// baseline scheme per workload, with a trailing geometric mean column.
/// Returns the rows as `(scheme, per-workload normalized values, gmean)`.
pub fn print_normalized(
    title: &str,
    matrix: &Matrix,
    cells: &[Cell],
    workloads: &[WorkloadKind],
    baseline: Cell,
    metric: impl Fn(&RunReport) -> f64,
) -> Vec<(String, Vec<f64>, f64)> {
    println!("\n== {title} ==");
    print!("{:<12}", "scheme");
    for w in workloads {
        print!("{:>12}", w.label());
    }
    println!("{:>12}", "gmean");
    let base_label = baseline.0.label(baseline.1);
    let mut rows = Vec::new();
    for cell in cells {
        let label = cell.0.label(cell.1);
        let mut vals = Vec::new();
        for w in workloads {
            let r = &matrix[&(label.clone(), w.label())];
            let b = &matrix[&(base_label.clone(), w.label())];
            let (m, mb) = (metric(r), metric(b));
            vals.push(if mb == 0.0 { f64::NAN } else { m / mb });
        }
        let valid: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
        let g = gmean(&valid);
        print!("{label:<12}");
        for v in &vals {
            print!("{v:>12.3}");
        }
        println!("{g:>12.3}");
        rows.push((label, vals, g));
    }
    rows
}

/// Convenience: run + print a GC-normalized figure in one call, exporting
/// the sweep's registry as `results/METRICS_<run>.json`.
pub fn figure_gc(
    run: &str,
    title: &str,
    metric: impl Fn(&RunReport) -> f64,
) -> Vec<(String, Vec<f64>, f64)> {
    let matrix = run_matrix(&GC_MATRIX, &WorkloadKind::ALL);
    let rows = print_normalized(
        title,
        &matrix,
        &GC_MATRIX,
        &WorkloadKind::ALL,
        GC_MATRIX[0],
        metric,
    );
    metrics::write_metrics(run, &metrics::matrix_metrics(&matrix));
    rows
}

/// Convenience: run + print an SC-normalized figure in one call, exporting
/// the sweep's registry as `results/METRICS_<run>.json`.
pub fn figure_sc(
    run: &str,
    title: &str,
    metric: impl Fn(&RunReport) -> f64,
) -> Vec<(String, Vec<f64>, f64)> {
    let matrix = run_matrix(&SC_MATRIX, &WorkloadKind::ALL);
    let rows = print_normalized(
        title,
        &matrix,
        &SC_MATRIX,
        &WorkloadKind::ALL,
        SC_MATRIX[0],
        metric,
    );
    metrics::write_metrics(run, &metrics::matrix_metrics(&matrix));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn run_one_smoke() {
        std::env::set_var("STEINS_OPS", "2000");
        let r = run_one(
            (SchemeKind::Steins, CounterMode::General),
            WorkloadKind::PHash,
            2_000,
            1,
        );
        assert!(r.cycles > 0);
        assert!(r.nvm.writes > 0);
    }
}
