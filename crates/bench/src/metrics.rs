//! Run-level metric aggregation and `results/METRICS_*.json` export.
//!
//! Each simulation produces a full [`steins_obs::MetricRegistry`] in its
//! [`steins_core::RunReport`]. A figure run folds those into one registry:
//!
//! * `<scheme>.<workload>.core.{read,write}.latency_cycles` — per-cell
//!   tail-latency histograms (the series behind the EXPERIMENTS.md p99
//!   table), and
//! * `<scheme>.<path>` — the scheme's registries merged across all
//!   workloads (counters add, histograms merge), so `Steins-GC.nvm.device.
//!   writes` is the scheme's total write traffic for the sweep.
//!
//! Export uses [`MetricRegistry::to_json_deterministic`], so the file is
//! byte-identical across runs with the same `STEINS_OPS`/`STEINS_SEED`.

use crate::Matrix;
use std::collections::BTreeMap;
use std::path::PathBuf;
use steins_obs::MetricRegistry;

/// Folds a figure matrix into one run-level registry (see module docs).
pub fn matrix_metrics(matrix: &Matrix) -> MetricRegistry {
    let mut out = MetricRegistry::new();
    let mut per_scheme: BTreeMap<&str, MetricRegistry> = BTreeMap::new();
    for ((label, wl), report) in matrix {
        out.insert_hist(
            &format!("{label}.{wl}.core.read.latency_cycles"),
            &report.read_hist,
        );
        out.insert_hist(
            &format!("{label}.{wl}.core.write.latency_cycles"),
            &report.write_hist,
        );
        per_scheme
            .entry(label.as_str())
            .or_default()
            .merge(&report.metrics);
    }
    for (label, reg) in &per_scheme {
        out.merge(&reg.prefixed(label));
    }
    out
}

/// Writes `reg` as `results/METRICS_<run>.json` (deterministic export,
/// `wall.` subtree excluded). Errors are reported but non-fatal, mirroring
/// [`crate::write_csv`]; returns the path on success.
pub fn write_metrics(run: &str, reg: &MetricRegistry) -> Option<PathBuf> {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("results/: {e}");
        return None;
    }
    let path = dir.join(format!("METRICS_{run}.json"));
    match std::fs::write(&path, reg.to_json_deterministic().pretty()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_core::{RunReport, SchemeKind};
    use steins_metadata::CounterMode;
    use steins_trace::WorkloadKind;

    fn tiny_matrix() -> Matrix {
        let cells = [
            (SchemeKind::WriteBack, CounterMode::General),
            (SchemeKind::Steins, CounterMode::General),
        ];
        let mut m = Matrix::new();
        for cell in cells {
            for wl in [WorkloadKind::PHash, WorkloadKind::PTree] {
                let r: RunReport = crate::run_one(cell, wl, 1_500, 7);
                m.insert((cell.0.label(cell.1), wl.label()), r);
            }
        }
        m
    }

    #[test]
    fn matrix_metrics_has_per_cell_and_merged_paths() {
        let m = tiny_matrix();
        let reg = matrix_metrics(&m);
        let h = reg
            .hist("Steins-GC.phash.core.write.latency_cycles")
            .expect("per-cell write hist");
        assert!(h.count() > 0);
        assert!(h.p99() >= h.p50());
        // Merged-across-workloads counter equals the sum of the per-run ones.
        let merged = reg.counter("Steins-GC.nvm.device.writes").unwrap();
        let sum: u64 = [WorkloadKind::PHash, WorkloadKind::PTree]
            .iter()
            .map(|w| m[&("Steins-GC".to_string(), w.label())].nvm.writes)
            .sum();
        assert_eq!(merged, sum);
    }

    #[test]
    fn matrix_metrics_is_deterministic_across_rebuilds() {
        let a = matrix_metrics(&tiny_matrix())
            .to_json_deterministic()
            .pretty();
        let b = matrix_metrics(&tiny_matrix())
            .to_json_deterministic()
            .pretty();
        assert_eq!(a, b);
        assert!(!a.contains("wall."));
    }
}
