//! Minimal std-only micro-benchmark harness (criterion replacement).
//!
//! Calibrates an iteration count to a target measurement time, takes a
//! handful of samples, and prints median ± spread in ns/op. Good enough
//! to compare the simulator's hot paths release-to-release; not a
//! statistics engine.

use std::time::{Duration, Instant};

/// One named group of benchmarks (prints a header line).
pub struct Group {
    name: String,
    target: Duration,
    samples: usize,
}

/// Starts a benchmark group with default settings (2 s target, 7 samples).
/// `STEINS_MICRO_MS` overrides the per-benchmark budget in milliseconds —
/// CI's perf-smoke job sets a small value so the suite completes quickly.
pub fn group(name: &str) -> Group {
    println!("\n== bench group: {name} ==");
    let target = std::env::var("STEINS_MICRO_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_secs(2));
    Group {
        name: name.to_string(),
        target,
        samples: 7,
    }
}

impl Group {
    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target = d;
        self
    }

    /// Benchmarks `f`, printing median ns/op. Returns the median so suites
    /// can record results (e.g. the `BENCH_crypto.json` speedup table).
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> f64 {
        // Calibrate: how many iters fit in ~1/10 of the budget?
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let el = t.elapsed();
            if el >= self.target / 10 || iters >= 1 << 30 {
                break;
            }
            iters = if el.is_zero() {
                iters * 128
            } else {
                (iters as f64 * (self.target.as_secs_f64() / 10.0 / el.as_secs_f64()).min(128.0))
                    .ceil() as u64
            }
            .max(iters + 1);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_secs_f64() * 1e9 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let med = per_iter[per_iter.len() / 2];
        let spread = per_iter[per_iter.len() - 1] - per_iter[0];
        println!(
            "{}/{name:<32} {med:>12.1} ns/op  (±{spread:.1} over {} samples × {iters} iters)",
            self.name, self.samples
        );
        med
    }

    /// Benchmarks `f` with a fresh `setup()` value per invocation; only the
    /// time inside `f` is counted. Returns the median ns per invocation.
    pub fn bench_batched<S, Setup, F>(&mut self, name: &str, mut setup: Setup, mut f: F) -> f64
    where
        Setup: FnMut() -> S,
        F: FnMut(S),
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            f(input);
            samples.push(t.elapsed().as_secs_f64() * 1e9);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let med = samples[samples.len() / 2];
        println!(
            "{}/{name:<32} {med:>12.1} ns/op  (median of {} one-shot samples)",
            self.name, self.samples
        );
        med
    }
}
