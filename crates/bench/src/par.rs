//! Minimal std-only parallel map (work-stealing-free, index-chunked).
//!
//! Each simulation job is independent and long-running (seconds), so a
//! simple shared-counter work queue over `std::thread::scope` gets the
//! same utilization a full work-stealing pool would, without any
//! external dependency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads: env `STEINS_THREADS`, default = available
/// parallelism.
pub fn threads() -> usize {
    std::env::var("STEINS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Applies `f` to every job on a pool of [`threads()`] workers, preserving
/// input order in the result.
pub fn map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_with(threads(), jobs, f)
}

/// [`map`] with an explicit worker count, bypassing `STEINS_THREADS`.
/// Lets tests compare 1-worker vs N-worker runs of the same sweep without
/// racing on process-global environment variables.
pub fn map_with<T, R, F>(workers: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("job taken once");
                *results[i].lock().unwrap() = Some(f(job));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = map((0..100u64).collect(), |x| x * 2);
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_ok() {
        let out: Vec<u64> = map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job() {
        assert_eq!(map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn map_with_matches_sequential() {
        let jobs: Vec<u64> = (0..37).collect();
        let seq = map_with(1, jobs.clone(), |x| x * x);
        let par = map_with(4, jobs, |x| x * x);
        assert_eq!(seq, par);
    }
}
