//! Shared machinery for the recovery-time experiment (Fig. 17).
//!
//! §IV-D's setup: assume *all* cached metadata is dirty when the crash
//! hits, and charge 100 ns per metadata read-and-verify. We reproduce it
//! functionally: stride one write across each leaf's coverage so (nearly)
//! every metadata-cache slot ends up holding a dirty node, crash, run the
//! scheme's real recovery, and read off the counted NVM reads.

use steins_core::{RecoveryReport, SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::cache::MetaCacheConfig;
use steins_metadata::CounterMode;
use steins_trace::{Pattern, Workload, WorkloadKind};

/// Builds a system with the given metadata-cache size, dirties (close to)
/// the whole cache, crashes it, and recovers. Returns the recovery report.
pub fn recovery_at_cache_size(
    scheme: SchemeKind,
    mode: CounterMode,
    cache_bytes: u64,
) -> RecoveryReport {
    let mut cfg = SystemConfig::sweep(scheme, mode);
    cfg.meta_cache = MetaCacheConfig {
        capacity_bytes: cache_bytes,
        ways: 8,
    };
    let slots = cfg.meta_cache.slots();
    let coverage = mode.leaf_coverage();
    // One write per leaf dirties that leaf; overshoot the slot count so the
    // cache ends (nearly) full of dirty nodes, as §IV-D assumes. Size the
    // data region (and device) to fit the stride.
    let writes = slots * 3 / 2;
    let footprint = writes * coverage;
    if footprint > cfg.data_lines {
        cfg.data_lines = footprint;
        // Regions ≈ data (64 B/line) + MACs (16 B/line) + metadata + extras.
        cfg.nvm.capacity_bytes = (footprint * 64 * 3 / 2).next_power_of_two();
    }
    let mut sys = SecureNvmSystem::new(cfg);
    let mut wl = Workload::new(WorkloadKind::PHash, writes, 7);
    wl.footprint_lines = footprint;
    wl.write_ratio = 1.0;
    wl.flush_stores = true;
    wl.pattern = Pattern::Sequential { stride: coverage };
    sys.run_trace(wl.generate())
        .expect("fill run is attack-free");
    let crashed = sys.crash();
    let (_, report) = crashed.recover().expect("clean recovery");
    report
}

/// The cache-size sweep of Fig. 17 (256 KB → 4 MB).
pub const CACHE_SWEEP: [u64; 5] = [256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20];
