//! Pure ordering-invariant checks behind `--bin shape_check`.
//!
//! EXPERIMENTS.md records the qualitative shape of §IV's results:
//! Steins-GC beats ASIT and STAR on execution time, write latency, and
//! write traffic; Steins-SC tracks WB-SC; recovery cost orders
//! ASIT < STAR < Steins-GC < Steins-SC. These functions take the measured
//! numbers and return human-readable violations (empty = shape holds), so
//! the CI gate's logic is unit-testable without running a sweep — including
//! the deliberately-swapped-ordering test below.

/// `value` must be strictly below every entry of `above` (e.g. Steins-GC's
/// normalized execution time vs ASIT's and STAR's).
pub fn check_below(metric: &str, label: &str, value: f64, above: &[(&str, f64)]) -> Vec<String> {
    let mut violations = Vec::new();
    for (other, v) in above {
        // `partial_cmp` so NaN (incomparable) counts as a violation.
        if value.partial_cmp(v) != Some(std::cmp::Ordering::Less) {
            violations.push(format!(
                "{metric}: expected {label} ({value:.4}) < {other} ({v:.4})"
            ));
        }
    }
    violations
}

/// `a` and `b` must agree within relative tolerance `tol`
/// (|a - b| / max(a, b) ≤ tol) — the "Steins-SC ≈ WB-SC" check.
pub fn check_close(
    metric: &str,
    a_label: &str,
    a: f64,
    b_label: &str,
    b: f64,
    tol: f64,
) -> Vec<String> {
    let denom = a.max(b).max(1e-12);
    let rel = (a - b).abs() / denom;
    if rel > tol {
        vec![format!(
            "{metric}: expected {a_label} ({a:.4}) within {:.0}% of {b_label} ({b:.4}), \
             got {:.1}% apart",
            tol * 100.0,
            rel * 100.0
        )]
    } else {
        Vec::new()
    }
}

/// The series must be strictly increasing in the given order (the recovery
/// cost ladder ASIT < STAR < Steins-GC < Steins-SC).
pub fn check_increasing(metric: &str, series: &[(&str, f64)]) -> Vec<String> {
    let mut violations = Vec::new();
    for pair in series.windows(2) {
        let (la, a) = pair[0];
        let (lb, b) = pair[1];
        if a.partial_cmp(&b) != Some(std::cmp::Ordering::Less) {
            violations.push(format!("{metric}: expected {la} ({a:.4}) < {lb} ({b:.4})"));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_shape_numbers_pass() {
        assert!(check_below("exec", "Steins-GC", 1.0, &[("ASIT", 1.2), ("STAR", 1.1)]).is_empty());
        assert!(check_close("exec", "Steins-SC", 1.02, "WB-SC", 1.0, 0.15).is_empty());
        assert!(check_increasing(
            "recovery",
            &[
                ("ASIT", 0.003),
                ("STAR", 0.0033),
                ("Steins-GC", 0.0039),
                ("Steins-SC", 0.024)
            ]
        )
        .is_empty());
    }

    #[test]
    fn swapped_ordering_is_reported() {
        // Swap Steins-GC and ASIT in the recovery ladder: the gate must trip.
        let v = check_increasing(
            "recovery_seconds",
            &[
                ("ASIT", 0.0039),
                ("STAR", 0.0033),
                ("Steins-GC", 0.0030),
                ("Steins-SC", 0.0239),
            ],
        );
        assert_eq!(
            v.len(),
            2,
            "both inverted adjacent pairs are flagged: {v:?}"
        );
        assert!(v[0].contains("ASIT") && v[0].contains("STAR"));

        // And a Steins-GC regression above ASIT trips the latency check.
        let v = check_below(
            "write_latency",
            "Steins-GC",
            2.5,
            &[("ASIT", 2.4), ("STAR", 2.7)],
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("expected Steins-GC (2.5000) < ASIT (2.4000)"));
    }

    #[test]
    fn close_check_is_symmetric_and_tolerant() {
        assert!(check_close("m", "a", 1.0, "b", 1.1, 0.15).is_empty());
        assert!(check_close("m", "a", 1.1, "b", 1.0, 0.15).is_empty());
        assert_eq!(check_close("m", "a", 1.0, "b", 2.0, 0.15).len(), 1);
        // Ties and equal values pass.
        assert!(check_close("m", "a", 5.0, "b", 5.0, 0.0).is_empty());
    }

    #[test]
    fn nan_never_passes_ordering() {
        assert!(!check_below("m", "x", f64::NAN, &[("y", 1.0)]).is_empty());
        assert!(!check_increasing("m", &[("x", f64::NAN), ("y", 1.0)]).is_empty());
    }
}
