//! Contended multi-shard write-throughput stress bench.
//!
//! Drives uniform and Zipfian(θ≈0.99) write mixes through a
//! [`ShardedEngine`] over a grid of shard counts × model thread counts and
//! reports *modeled* throughput: operations per simulated cycle, where a
//! cell's makespan is the longest serial lane after assigning shard clocks
//! round-robin to `t` model threads. The model is fully deterministic —
//! the same stream partitions the same way regardless of how many OS
//! workers actually executed it — so `results/BENCH_shard.json` is
//! byte-identical across `STEINS_THREADS` settings and CI boxes of any
//! core count. Wall-clock time is printed for context but never written
//! to the artifact.
//!
//! The scaling gate: every **uniform** cell must reach
//! `min(shards, threads) × (1 − STEINS_SCALE_TOL)` speedup over the
//! 1-shard/1-thread baseline (default tolerance 0.25, so the 4×4 cell
//! must clear 3.0×). Zipfian cells are reported but not gated — a skewed
//! mix legitimately loses some balance to its hottest lines.
//!
//! Knobs: `STEINS_STRESS_SHARDS` / `STEINS_STRESS_THREADS` (comma lists,
//! default `1,2,4,8`), `STEINS_STRESS_OPS` (writes per cell), `STEINS_SEED`,
//! `STEINS_SCALE_TOL`.

use std::fmt::Write as _;

use steins_core::engine::synth_data;
use steins_core::{SchemeKind, ShardedEngine, SystemConfig};
use steins_metadata::CounterMode;
use steins_obs::MetricRegistry;

/// The grid and knobs one stress run covers.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Shard counts to sweep.
    pub shards: Vec<usize>,
    /// Model thread counts to sweep.
    pub threads: Vec<usize>,
    /// Writes per cell.
    pub ops: usize,
    /// Stream seed.
    pub seed: u64,
    /// Scaling-gate tolerance (fraction of ideal allowed to be lost).
    pub tol: f64,
}

impl StressConfig {
    /// Grid from the environment (see module docs for the knobs).
    pub fn from_env() -> Self {
        fn list(var: &str) -> Option<Vec<usize>> {
            let v: Vec<usize> = std::env::var(var)
                .ok()?
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            (!v.is_empty()).then_some(v)
        }
        let num = |var: &str, default: f64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        StressConfig {
            shards: list("STEINS_STRESS_SHARDS").unwrap_or_else(|| vec![1, 2, 4, 8]),
            threads: list("STEINS_STRESS_THREADS").unwrap_or_else(|| vec![1, 2, 4, 8]),
            ops: num("STEINS_STRESS_OPS", 24_000.0) as usize,
            seed: num("STEINS_SEED", 42.0) as u64,
            tol: num("STEINS_SCALE_TOL", 0.25),
        }
    }
}

/// Address mix of a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// Every line equally likely.
    Uniform,
    /// Zipfian with θ ≈ 0.99 (hottest lines are the lowest-numbered, which
    /// interleave striping spreads across shards).
    Zipfian,
}

impl Mix {
    /// Stable label used in the JSON artifact.
    pub fn label(&self) -> &'static str {
        match self {
            Mix::Uniform => "uniform",
            Mix::Zipfian => "zipfian",
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A deterministic write stream: `len` line numbers over `[0, lines)`.
/// Zipfian sampling walks a precomputed CDF by binary search.
pub fn stream(mix: Mix, seed: u64, lines: u64, len: usize) -> Vec<u64> {
    let mut rng = seed ^ 0xda3e_39cb_94b9_5bdb;
    match mix {
        Mix::Uniform => (0..len).map(|_| splitmix64(&mut rng) % lines).collect(),
        Mix::Zipfian => {
            const THETA: f64 = 0.99;
            let mut cdf = Vec::with_capacity(lines as usize);
            let mut sum = 0.0;
            for i in 0..lines {
                sum += 1.0 / ((i + 1) as f64).powf(THETA);
                cdf.push(sum);
            }
            (0..len)
                .map(|_| {
                    let u = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 * sum;
                    cdf.partition_point(|&c| c < u) as u64
                })
                .collect()
        }
    }
}

/// One cell's outcome (`scaling` is filled in against the 1×1 baseline).
#[derive(Clone, Debug)]
pub struct Cell {
    /// Shard count.
    pub shards: usize,
    /// Model thread count (lanes the shard clocks are folded onto).
    pub threads: usize,
    /// Address mix.
    pub mix: Mix,
    /// Modeled makespan: the longest lane after round-robin assignment of
    /// per-shard simulated clocks to `threads` lanes.
    pub makespan_cycles: u64,
    /// The single slowest shard's clock (the `threads ≥ shards` makespan).
    pub max_shard_cycles: u64,
    /// Speedup over the same mix's 1-shard/1-thread cell.
    pub scaling: f64,
    /// Wall-clock nanoseconds the replay took (informational only).
    pub wall_ns: u128,
}

/// Runs one cell: partitions the global stream per shard (routing order is
/// preserved inside each shard, so the result is independent of `workers`),
/// replays it on `workers` OS threads claiming whole-shard jobs, and folds
/// the per-shard clocks onto `threads` model lanes.
pub fn run_cell(
    cfg: &SystemConfig,
    mix: Mix,
    shards: usize,
    threads: usize,
    ops: usize,
    seed: u64,
    workers: usize,
) -> (Cell, ShardedEngine) {
    let engine = ShardedEngine::new(cfg.clone(), shards);
    let global = stream(mix, seed, cfg.data_lines, ops);
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for &line in &global {
        per_shard[engine.map().shard_of(line)].push(line);
    }

    let t0 = std::time::Instant::now();
    crate::par::map_with(workers, (0..shards).collect(), |s| {
        for &line in &per_shard[s] {
            engine
                .write(line * 64, &synth_data(line * 64, line))
                .expect("stress write");
        }
    });
    let wall_ns = t0.elapsed().as_nanos();

    let clocks: Vec<u64> = (0..shards)
        .map(|s| engine.with_shard(s, |sys| sys.sim_cycles()))
        .collect();
    let lanes = threads.min(shards).max(1);
    let mut lane_cycles = vec![0u64; lanes];
    for (s, &c) in clocks.iter().enumerate() {
        lane_cycles[s % lanes] += c;
    }
    let cell = Cell {
        shards,
        threads,
        mix,
        makespan_cycles: lane_cycles.iter().copied().max().unwrap_or(0),
        max_shard_cycles: clocks.iter().copied().max().unwrap_or(0),
        scaling: 1.0,
        wall_ns,
    };
    (cell, engine)
}

/// A full grid run: cells, the gate verdict, the shard-stress metric
/// registry (per-shard write-queue occupancy/stall histograms from the
/// largest uniform cell), and the deterministic JSON artifact.
pub struct StressReport {
    /// Every cell, uniform then Zipfian, in grid order.
    pub cells: Vec<Cell>,
    /// Gate failures (empty = pass).
    pub failures: Vec<String>,
    /// The largest uniform cell's folded registry (per-shard `shard.NN.`
    /// prefixes plus the merged aggregate).
    pub metrics: MetricRegistry,
    /// `results/BENCH_shard.json` contents.
    pub json: String,
}

impl StressReport {
    /// True when every gated cell met its scaling floor.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the whole grid on `workers` OS threads. The artifact and gate
/// verdict depend only on the grid, ops, and seed — never on `workers`.
pub fn run_grid(cfg: &SystemConfig, sc: &StressConfig, workers: usize) -> StressReport {
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    let mut metrics = MetricRegistry::new();
    let mut biggest_uniform = 0usize;

    for &mix in &[Mix::Uniform, Mix::Zipfian] {
        let (baseline, _) = run_cell(cfg, mix, 1, 1, sc.ops, sc.seed, workers);
        let base_cycles = baseline.makespan_cycles.max(1);
        for &s in &sc.shards {
            // One replay per shard count; the model lanes reuse its clocks.
            let (proto, engine) = run_cell(cfg, mix, s, 1, sc.ops, sc.seed, workers);
            if mix == Mix::Uniform && s >= biggest_uniform {
                biggest_uniform = s;
                metrics = engine.report();
            }
            let clocks: Vec<u64> = (0..s)
                .map(|i| engine.with_shard(i, |sys| sys.sim_cycles()))
                .collect();
            for &t in &sc.threads {
                let lanes = t.min(s).max(1);
                let mut lane_cycles = vec![0u64; lanes];
                for (i, &c) in clocks.iter().enumerate() {
                    lane_cycles[i % lanes] += c;
                }
                let makespan = lane_cycles.iter().copied().max().unwrap_or(0).max(1);
                let scaling = base_cycles as f64 / makespan as f64;
                let ideal = s.min(t) as f64;
                if mix == Mix::Uniform {
                    let floor = ideal * (1.0 - sc.tol);
                    if scaling + 1e-9 < floor {
                        failures.push(format!(
                            "uniform {s} shards x {t} threads: scaling {scaling:.2} < floor {floor:.2}"
                        ));
                    }
                }
                cells.push(Cell {
                    shards: s,
                    threads: t,
                    mix,
                    makespan_cycles: makespan,
                    max_shard_cycles: proto.max_shard_cycles,
                    scaling,
                    wall_ns: proto.wall_ns,
                });
            }
        }
    }

    let json = render_json(sc, &cells, &failures);
    StressReport {
        cells,
        failures,
        metrics,
        json,
    }
}

/// Deterministic artifact: fixed field order, integers for cycles, three
/// decimals for derived ratios. Wall clock is deliberately excluded.
fn render_json(sc: &StressConfig, cells: &[Cell], failures: &[String]) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(
        j,
        "  \"suite\": \"sharded write-throughput stress (modeled cycles)\","
    );
    let _ = writeln!(j, "  \"ops_per_cell\": {},", sc.ops);
    let _ = writeln!(j, "  \"seed\": {},", sc.seed);
    let _ = writeln!(j, "  \"tolerance\": {:.3},", sc.tol);
    let _ = writeln!(j, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let ops_per_kcycle = sc.ops as f64 * 1000.0 / c.makespan_cycles as f64;
        let _ = writeln!(
            j,
            "    {{\"mix\": \"{}\", \"shards\": {}, \"threads\": {}, \
             \"makespan_cycles\": {}, \"max_shard_cycles\": {}, \
             \"ops_per_kcycle\": {:.3}, \"scaling\": {:.3}}}{}",
            c.mix.label(),
            c.shards,
            c.threads,
            c.makespan_cycles,
            c.max_shard_cycles,
            ops_per_kcycle,
            c.scaling,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"gate\": {{");
    let _ = writeln!(j, "    \"pass\": {},", failures.is_empty());
    let _ = writeln!(j, "    \"failures\": [");
    for (i, f) in failures.iter().enumerate() {
        let _ = writeln!(
            j,
            "      \"{f}\"{}",
            if i + 1 == failures.len() { "" } else { "," }
        );
    }
    let _ = writeln!(j, "    ]");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");
    j
}

/// The default stress system: the small-but-real-crypto configuration the
/// crash sweeps use, Steins scheme, general counters.
pub fn default_cfg() -> SystemConfig {
    SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StressConfig {
        StressConfig {
            shards: vec![1, 2],
            threads: vec![1, 2],
            ops: 1_500,
            seed: 7,
            tol: 0.25,
        }
    }

    #[test]
    fn streams_are_deterministic_and_in_range() {
        let a = stream(Mix::Zipfian, 9, 256, 2_000);
        assert_eq!(a, stream(Mix::Zipfian, 9, 256, 2_000));
        assert!(a.iter().all(|&l| l < 256));
        // Zipf skew: the hottest line dominates a uniform line's share.
        let hot = a.iter().filter(|&&l| l == 0).count();
        assert!(hot > 2_000 / 256 * 4, "hottest line drew {hot}");
        let u = stream(Mix::Uniform, 9, 256, 2_000);
        assert!(u.iter().filter(|&&l| l == 0).count() < hot);
    }

    #[test]
    fn two_shards_scale_and_gate_passes() {
        let report = run_grid(&default_cfg(), &tiny(), 1);
        assert!(report.pass(), "{:?}", report.failures);
        let cell = report
            .cells
            .iter()
            .find(|c| c.mix == Mix::Uniform && c.shards == 2 && c.threads == 2)
            .unwrap();
        assert!(cell.scaling >= 1.5, "2x2 scaling {}", cell.scaling);
    }

    /// The BENCH_shard.json artifact must not depend on how many OS
    /// workers executed the replay (the satellite determinism contract:
    /// byte-identical across `STEINS_THREADS` settings).
    #[test]
    fn artifact_is_byte_identical_across_worker_counts() {
        let cfg = default_cfg();
        let one = run_grid(&cfg, &tiny(), 1);
        let four = run_grid(&cfg, &tiny(), 4);
        assert_eq!(one.json, four.json);
        assert_eq!(
            one.metrics.to_json_deterministic().pretty(),
            four.metrics.to_json_deterministic().pretty()
        );
    }

    #[test]
    fn per_shard_histograms_survive_the_fold() {
        let report = run_grid(&default_cfg(), &tiny(), 1);
        let m = &report.metrics;
        assert!(m.counter("shard.00.nvm.device.writes").unwrap_or(0) > 0);
        assert!(m.counter("shard.01.nvm.device.writes").unwrap_or(0) > 0);
        assert!(
            m.hist("shard.00.nvm.write_queue.occupancy").is_some(),
            "per-shard occupancy histogram missing"
        );
        assert!(m.hist("nvm.write_queue.occupancy").is_some());
    }
}
