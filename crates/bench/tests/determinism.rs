//! The exported metrics JSON must not depend on sweep parallelism: a
//! 1-worker and a 4-worker run of the same metric-emitting sweep produce
//! byte-identical deterministic exports (`par::map_with` preserves input
//! order, and each simulation is fully seeded).

use std::collections::BTreeMap;
use steins_bench::metrics::matrix_metrics;
use steins_bench::{par, run_one, Cell};
use steins_core::campaign::{CampaignConfig, CampaignReport, FaultCampaign, COMBOS};
use steins_core::SchemeKind;
use steins_metadata::CounterMode;
use steins_trace::WorkloadKind;

fn sweep_json(workers: usize) -> String {
    let cells: [Cell; 2] = [
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ];
    let workloads = [WorkloadKind::PHash, WorkloadKind::PTree];
    let jobs: Vec<(Cell, WorkloadKind)> = cells
        .iter()
        .flat_map(|c| workloads.iter().map(move |w| (*c, *w)))
        .collect();
    let matrix: BTreeMap<(String, &'static str), _> = par::map_with(workers, jobs, |(cell, wl)| {
        (
            (cell.0.label(cell.1), wl.label()),
            run_one(cell, wl, 2_000, 42),
        )
    })
    .into_iter()
    .collect();
    matrix_metrics(&matrix).to_json_deterministic().pretty()
}

#[test]
fn metrics_export_identical_for_1_and_4_workers() {
    let seq = sweep_json(1);
    let par4 = sweep_json(4);
    assert!(seq.contains("core.read.latency_cycles"));
    assert!(!seq.contains("wall."), "wall-clock must be excluded");
    assert_eq!(seq, par4, "worker count must not change exported metrics");
}

/// The fault campaign's exported metrics — including the nested
/// crash-during-recovery axis (every iteration with `i % 4 == 2`) — must be
/// byte-identical across worker counts: each iteration's RNG derives from
/// `(seed, combo, i)` alone and combos merge in a fixed order.
fn campaign_json(workers: usize) -> String {
    let cfg = CampaignConfig {
        seed: 0xD17E,
        points_per_combo: 4,
        ops: 14,
    };
    let campaign = FaultCampaign::new(cfg.clone());
    let reports = par::map_with(
        workers,
        COMBOS.iter().enumerate().collect::<Vec<_>>(),
        |(ci, (scheme, mode))| campaign.run_combo(ci, *scheme, *mode),
    );
    let mut merged = CampaignReport {
        seed: cfg.seed,
        ..CampaignReport::default()
    };
    for r in &reports {
        merged.merge(r);
    }
    merged.metrics().to_json_deterministic().pretty()
}

#[test]
fn campaign_metrics_with_nested_axis_identical_for_1_and_4_workers() {
    let seq = campaign_json(1);
    let par4 = campaign_json(4);
    assert!(seq.contains("core.campaign.points.nested"));
    assert_eq!(seq, par4, "worker count must not change campaign metrics");
}
