//! Trace-driven in-order CPU front end.
//!
//! Converts a memory trace into execution cycles: non-memory instructions
//! retire at a fixed IPC; loads that miss to memory block the core for the
//! fill's service latency (minus a fixed overlap credit modeling limited
//! memory-level parallelism); stores retire into the cache/write-queue path
//! and only stall when the write queue back-pressures (the secure engine
//! reports that as part of the store's issue time).
//!
//! This is the substitution documented in DESIGN.md §2.1: relative
//! execution-time shapes come from memory-controller behaviour, which is
//! modeled in detail; the core is deliberately simple.

/// CPU front-end parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpuConfig {
    /// Non-memory instructions retired per cycle.
    pub ipc: f64,
    /// Fraction of a read-miss latency hidden by MLP/prefetch overlap.
    pub read_overlap: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            ipc: 2.0,
            read_overlap: 0.3,
        }
    }
}

/// Cycle accumulator for the in-order core.
#[derive(Clone, Debug)]
pub struct CpuModel {
    cfg: CpuConfig,
    /// Current core time in cycles.
    pub now: u64,
    /// Instructions retired (memory + non-memory).
    pub instructions: u64,
    /// Cycles spent stalled on memory reads.
    pub read_stall_cycles: u64,
    /// Cycles spent stalled on write-queue back-pressure.
    pub write_stall_cycles: u64,
}

impl CpuModel {
    /// Creates a core at cycle 0.
    pub fn new(cfg: CpuConfig) -> Self {
        CpuModel {
            cfg,
            now: 0,
            instructions: 0,
            read_stall_cycles: 0,
            write_stall_cycles: 0,
        }
    }

    /// Retires `n` non-memory instructions.
    pub fn compute(&mut self, n: u64) {
        self.instructions += n;
        self.now += (n as f64 / self.cfg.ipc).ceil() as u64;
    }

    /// Accounts one load: `on_chip` cycles of cache latency plus, if the
    /// access reached memory, the fill latency `mem` (overlap-discounted).
    pub fn load(&mut self, on_chip: u64, mem: Option<u64>) {
        self.instructions += 1;
        self.now += on_chip;
        if let Some(m) = mem {
            let exposed = (m as f64 * (1.0 - self.cfg.read_overlap)) as u64;
            self.now += exposed;
            self.read_stall_cycles += exposed;
        }
    }

    /// Accounts one store: on-chip latency plus any stall the write path
    /// reported (write-queue full, metadata-path serialization).
    pub fn store(&mut self, on_chip: u64, stall: u64) {
        self.instructions += 1;
        self.now += on_chip + stall;
        self.write_stall_cycles += stall;
    }

    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.now as f64 / (freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_respects_ipc() {
        let mut cpu = CpuModel::new(CpuConfig {
            ipc: 2.0,
            read_overlap: 0.0,
        });
        cpu.compute(100);
        assert_eq!(cpu.now, 50);
        assert_eq!(cpu.instructions, 100);
    }

    #[test]
    fn load_miss_stalls_with_overlap_credit() {
        let mut cpu = CpuModel::new(CpuConfig {
            ipc: 1.0,
            read_overlap: 0.5,
        });
        cpu.load(10, Some(100));
        assert_eq!(cpu.now, 10 + 50);
        assert_eq!(cpu.read_stall_cycles, 50);
    }

    #[test]
    fn load_hit_no_memory_stall() {
        let mut cpu = CpuModel::new(CpuConfig::default());
        cpu.load(2, None);
        assert_eq!(cpu.now, 2);
        assert_eq!(cpu.read_stall_cycles, 0);
    }

    #[test]
    fn store_accumulates_write_stalls() {
        let mut cpu = CpuModel::new(CpuConfig::default());
        cpu.store(2, 0);
        cpu.store(2, 40);
        assert_eq!(cpu.write_stall_cycles, 40);
        assert_eq!(cpu.now, 44);
    }

    #[test]
    fn seconds_conversion() {
        let mut cpu = CpuModel::new(CpuConfig::default());
        cpu.now = 2_000_000_000;
        assert!((cpu.seconds(2.0) - 1.0).abs() < 1e-12);
    }
}
