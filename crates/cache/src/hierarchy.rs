//! The three-level CPU cache hierarchy of Table I.
//!
//! The hierarchy is inclusive-enough-for-simulation: each access walks
//! L1 → L2 → L3; a miss installs the line at every level; dirty evictions
//! propagate downward and only LLC write-backs reach the memory controller.
//! The output of an access is the list of [`MemEvent`]s the secure memory
//! controller must service, in order.

use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use crate::set_assoc::{AccessOutcome, CacheConfig, SetAssocCache};
use crate::stats::CacheStats;

/// Geometry of the three levels.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyConfig {
    /// L1 data cache capacity in bytes (Table I: 32 KB, 2-way).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 capacity (512 KB, 8-way).
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L3 capacity (2 MB, 8-way).
    pub l3_bytes: u64,
    /// L3 associativity.
    pub l3_ways: usize,
    /// L1 hit latency, cycles.
    pub l1_lat: u64,
    /// L2 hit latency, cycles.
    pub l2_lat: u64,
    /// L3 hit latency, cycles.
    pub l3_lat: u64,
    /// Optional L2 stream prefetcher.
    pub prefetch: PrefetchConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1_bytes: 32 << 10,
            l1_ways: 2,
            l2_bytes: 512 << 10,
            l2_ways: 8,
            l3_bytes: 2 << 20,
            l3_ways: 8,
            l1_lat: 2,
            l2_lat: 10,
            l3_lat: 30,
            prefetch: PrefetchConfig::default(),
        }
    }
}

impl HierarchyConfig {
    /// A scaled-down hierarchy for tests: tiny caches so LLC misses and
    /// write-backs occur within a few hundred accesses.
    pub fn small_for_tests() -> Self {
        HierarchyConfig {
            l1_bytes: 512,
            l1_ways: 2,
            l2_bytes: 2048,
            l2_ways: 4,
            l3_bytes: 8192,
            l3_ways: 4,
            l1_lat: 2,
            l2_lat: 10,
            l3_lat: 30,
            prefetch: PrefetchConfig::default(),
        }
    }
}

/// A request the LLC issues to the memory controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemEvent {
    /// Demand line fill (on the CPU's critical path).
    Fill { addr: u64 },
    /// Dirty line write-back (off the critical path; enters the write queue).
    WriteBack { addr: u64 },
    /// Prefetch fill (off the critical path; ignore its latency).
    Prefetch { addr: u64 },
}

/// Result of one CPU access against the hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyAccess {
    /// Cycles of on-chip latency (hit level's latency; memory latency is
    /// added by the caller from the Fill's service time).
    pub on_chip_cycles: u64,
    /// Events for the memory controller, in issue order (write-backs first,
    /// then the fill if any).
    pub events: Vec<MemEvent>,
}

/// Three-level write-back hierarchy.
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    prefetcher: StreamPrefetcher,
    cfg: HierarchyConfig,
}

impl CacheHierarchy {
    /// Builds the hierarchy per `cfg`.
    pub fn new(cfg: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(CacheConfig::new(cfg.l1_bytes, cfg.l1_ways)),
            l2: SetAssocCache::new(CacheConfig::new(cfg.l2_bytes, cfg.l2_ways)),
            l3: SetAssocCache::new(CacheConfig::new(cfg.l3_bytes, cfg.l3_ways)),
            prefetcher: StreamPrefetcher::new(cfg.prefetch),
            cfg,
        }
    }

    /// Performs one load (`write = false`) or store (`write = true`).
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyAccess {
        let mut events = Vec::new();

        // L1.
        let l1_out = self.l1.access(addr, write);
        if l1_out == AccessOutcome::Hit {
            return HierarchyAccess {
                on_chip_cycles: self.cfg.l1_lat,
                events,
            };
        }
        if let AccessOutcome::Miss { victim: Some(v) } = l1_out {
            if v.dirty {
                // Dirty L1 victim lands in L2.
                Self::install_dirty(&mut self.l2, &mut self.l3, v.addr, &mut events);
            }
        }

        // L2.
        let l2_out = self.l2.access(addr, write);
        if l2_out == AccessOutcome::Hit {
            return HierarchyAccess {
                on_chip_cycles: self.cfg.l1_lat + self.cfg.l2_lat,
                events,
            };
        }
        if let AccessOutcome::Miss { victim: Some(v) } = l2_out {
            if v.dirty {
                Self::install_dirty_l3(&mut self.l3, v.addr, &mut events);
            }
        }

        // L3 (LLC).
        let l3_out = self.l3.access(addr, write);
        let on_chip = self.cfg.l1_lat + self.cfg.l2_lat + self.cfg.l3_lat;
        match l3_out {
            AccessOutcome::Hit => HierarchyAccess {
                on_chip_cycles: on_chip,
                events,
            },
            AccessOutcome::Miss { victim } => {
                if let Some(v) = victim {
                    if v.dirty {
                        events.push(MemEvent::WriteBack { addr: v.addr });
                    }
                }
                events.push(MemEvent::Fill { addr });
                // Stream prefetcher: install candidates at L3 (and emit
                // off-critical-path fills) on confirmed strides.
                for pf_addr in self.prefetcher.observe_miss(addr) {
                    if !self.l3.contains(pf_addr) {
                        if let AccessOutcome::Miss { victim: Some(v) } =
                            self.l3.access(pf_addr, false)
                        {
                            if v.dirty {
                                events.push(MemEvent::WriteBack { addr: v.addr });
                            }
                        }
                        events.push(MemEvent::Prefetch { addr: pf_addr });
                    }
                }
                HierarchyAccess {
                    on_chip_cycles: on_chip,
                    events,
                }
            }
        }
    }

    /// Installs a dirty line evicted from L1 into L2, cascading evictions.
    fn install_dirty(
        l2: &mut SetAssocCache,
        l3: &mut SetAssocCache,
        addr: u64,
        events: &mut Vec<MemEvent>,
    ) {
        if let AccessOutcome::Miss { victim: Some(v) } = l2.access(addr, true) {
            if v.dirty {
                Self::install_dirty_l3(l3, v.addr, events);
            }
        }
    }

    /// Installs a dirty line evicted from L2 into L3, emitting a write-back
    /// if L3 in turn evicts a dirty victim.
    fn install_dirty_l3(l3: &mut SetAssocCache, addr: u64, events: &mut Vec<MemEvent>) {
        if let AccessOutcome::Miss { victim: Some(v) } = l3.access(addr, true) {
            if v.dirty {
                events.push(MemEvent::WriteBack { addr: v.addr });
            }
        }
    }

    /// Flushes one line out of the whole hierarchy (clwb/clflush semantics of
    /// the persistent workloads). Returns a `WriteBack` event if any level
    /// held the line dirty.
    pub fn flush_line(&mut self, addr: u64) -> Option<MemEvent> {
        let d1 = self.l1.invalidate(addr);
        let d2 = self.l2.invalidate(addr);
        let d3 = self.l3.invalidate(addr);
        if d1 || d2 || d3 {
            Some(MemEvent::WriteBack { addr })
        } else {
            None
        }
    }

    /// Drains every dirty line in the hierarchy (used at end-of-trace so
    /// all functional state reaches the controller). Returns write-backs.
    pub fn drain(&mut self) -> Vec<MemEvent> {
        let mut dirty: Vec<u64> = self.l1.dirty_lines();
        dirty.extend(self.l2.dirty_lines());
        dirty.extend(self.l3.dirty_lines());
        dirty.sort_unstable();
        dirty.dedup();
        for &a in &dirty {
            self.l1.invalidate(a);
            self.l2.invalidate(a);
            self.l3.invalidate(a);
        }
        dirty
            .into_iter()
            .map(|addr| MemEvent::WriteBack { addr })
            .collect()
    }

    /// Per-level statistics `(l1, l2, l3)`.
    pub fn stats(&self) -> (&CacheStats, &CacheStats, &CacheStats) {
        (self.l1.stats(), self.l2.stats(), self.l3.stats())
    }

    /// Exports per-level hit/miss/eviction counters under `cache.l1.` /
    /// `cache.l2.` / `cache.l3.`.
    pub fn export_metrics(&self, reg: &mut steins_obs::MetricRegistry) {
        self.l1.stats().export_metrics(reg, "cache.l1");
        self.l2.stats().export_metrics(reg, "cache.l2");
        self.l3.stats().export_metrics(reg, "cache.l3");
    }

    /// All line addresses dirty anywhere in the hierarchy, without mutating
    /// state (crash modeling: these contents are lost at power failure).
    pub fn dirty_lines(&self) -> Vec<u64> {
        let mut dirty: Vec<u64> = self.l1.dirty_lines();
        dirty.extend(self.l2.dirty_lines());
        dirty.extend(self.l3.dirty_lines());
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::small_for_tests())
    }

    #[test]
    fn first_access_misses_to_memory() {
        let mut h = small();
        let a = h.access(0, false);
        assert_eq!(a.events, vec![MemEvent::Fill { addr: 0 }]);
        // Second access hits in L1 with no events.
        let b = h.access(0, false);
        assert!(b.events.is_empty());
        assert_eq!(b.on_chip_cycles, 2);
    }

    #[test]
    fn store_then_capacity_eviction_writes_back() {
        let mut h = small();
        h.access(0, true);
        // Touch enough distinct lines to push line 0 out of all levels.
        let mut seen_wb = false;
        for i in 1..1024u64 {
            let a = h.access(i * 64, false);
            if a.events.contains(&MemEvent::WriteBack { addr: 0 }) {
                seen_wb = true;
            }
        }
        assert!(seen_wb, "dirty line 0 must eventually write back");
    }

    #[test]
    fn flush_line_emits_writeback_only_if_dirty() {
        let mut h = small();
        h.access(0, false);
        assert_eq!(h.flush_line(0), None);
        h.access(64, true);
        assert_eq!(h.flush_line(64), Some(MemEvent::WriteBack { addr: 64 }));
        // Flushed: next access misses again.
        let a = h.access(64, false);
        assert_eq!(a.events, vec![MemEvent::Fill { addr: 64 }]);
    }

    #[test]
    fn drain_returns_all_dirty_lines_once() {
        let mut h = small();
        h.access(0, true);
        h.access(64, true);
        h.access(128, false);
        let wbs = h.drain();
        let mut addrs: Vec<u64> = wbs
            .iter()
            .map(|e| match e {
                MemEvent::WriteBack { addr } => *addr,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0, 64]);
        assert!(h.drain().is_empty(), "second drain is empty");
    }

    #[test]
    fn latencies_grow_with_depth() {
        let mut h = small();
        h.access(0, false); // install everywhere
        let l1 = h.access(0, false).on_chip_cycles;
        // Evict from L1 only: touch other lines mapping to set of addr 0 in L1.
        // L1 small: 512B/2way/64B = 4 sets; lines 0,256,512 share set 0.
        h.access(256, false);
        h.access(512, false);
        let deeper = h.access(0, false).on_chip_cycles;
        assert!(deeper > l1);
    }
}
