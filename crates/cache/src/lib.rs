//! Set-associative cache models and the trace-driven CPU side of the
//! simulator.
//!
//! * [`set_assoc::SetAssocCache`] — a generic tag-array cache (configurable
//!   size/ways, true-LRU) with dirty-bit tracking and full statistics. It is
//!   *tag-only*: user data is synthesized functionally at the memory
//!   controller, so the CPU caches need no payloads.
//! * [`hierarchy::CacheHierarchy`] — the Table I three-level hierarchy
//!   (L1 32 KB/2-way, L2 512 KB/8-way, L3 2 MB/8-way, all 64 B lines, LRU),
//!   returning for each CPU access the stream of LLC fills and write-backs
//!   that reach the memory controller.
//! * [`cpu::CpuModel`] — a trace-driven in-order front end with a
//!   configurable non-memory IPC and bounded outstanding misses; it converts
//!   memory-system latencies into execution cycles (Fig. 9/12's metric).

pub mod cpu;
pub mod hierarchy;
pub mod prefetch;
pub mod set_assoc;
pub mod stats;

pub use cpu::{CpuConfig, CpuModel};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, MemEvent};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
pub use set_assoc::{AccessOutcome, CacheConfig, SetAssocCache};
pub use stats::CacheStats;
