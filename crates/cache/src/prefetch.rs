//! Stream prefetcher.
//!
//! Real memory systems hide part of their miss latency behind hardware
//! prefetchers; sequential workloads like `lbm` are almost fully covered.
//! This is a classic stride/stream detector: it tracks a small table of
//! recent miss streams, confirms a stride after two repeats, and then emits
//! prefetch candidates `degree` lines ahead. The hierarchy issues the
//! candidates as ordinary fills tagged off the critical path.
//!
//! Disabled by default so the recorded figure runs stay exactly
//! reproducible; enable via [`crate::hierarchy::HierarchyConfig`] to study
//! how much prefetching narrows the scheme gaps (misses that the
//! prefetcher absorbs never reach the secure engine's critical path).

/// Prefetcher configuration.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Enable the prefetcher.
    pub enabled: bool,
    /// Tracked concurrent streams.
    pub streams: usize,
    /// Lines fetched ahead once a stream is confirmed.
    pub degree: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: false,
            streams: 8,
            degree: 2,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Stream {
    last_line: u64,
    stride: i64,
    confirmations: u8,
    lru: u64,
}

/// Stride-confirming stream prefetcher.
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    table: Vec<Stream>,
    stamp: u64,
    /// Prefetches issued (stats).
    pub issued: u64,
}

impl StreamPrefetcher {
    /// Builds the prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        StreamPrefetcher {
            cfg,
            table: Vec::with_capacity(cfg.streams),
            stamp: 0,
            issued: 0,
        }
    }

    /// Observes a demand miss at byte address `addr`; returns the line
    /// addresses to prefetch (empty when disabled or unconfirmed).
    pub fn observe_miss(&mut self, addr: u64) -> Vec<u64> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        self.stamp += 1;
        let line = addr / 64;

        // Match an existing stream whose next expected line is this one
        // (or whose stride can be re-derived from the delta).
        for s in self.table.iter_mut() {
            let delta = line as i64 - s.last_line as i64;
            if delta == 0 {
                s.lru = self.stamp;
                return Vec::new();
            }
            if delta == s.stride && delta != 0 {
                s.last_line = line;
                s.confirmations = s.confirmations.saturating_add(1);
                s.lru = self.stamp;
                if s.confirmations >= 2 {
                    let stride = s.stride;
                    self.issued += self.cfg.degree as u64;
                    return (1..=self.cfg.degree as i64)
                        .filter_map(|i| {
                            let l = line as i64 + stride * i;
                            (l >= 0).then(|| l as u64 * 64)
                        })
                        .collect();
                }
                return Vec::new();
            }
            if delta.abs() <= 64 && s.confirmations == 0 {
                // First repeat: adopt the observed stride.
                s.stride = delta;
                s.last_line = line;
                s.confirmations = 1;
                s.lru = self.stamp;
                return Vec::new();
            }
        }

        // New stream: allocate (evict LRU when full).
        let entry = Stream {
            last_line: line,
            stride: 0,
            confirmations: 0,
            lru: self.stamp,
        };
        if self.table.len() < self.cfg.streams {
            self.table.push(entry);
        } else if let Some(victim) = self.table.iter_mut().min_by_key(|s| s.lru) {
            *victim = entry;
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetchConfig {
            enabled: true,
            streams: 4,
            degree: 2,
        })
    }

    #[test]
    fn disabled_emits_nothing() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        for i in 0..10u64 {
            assert!(p.observe_miss(i * 64).is_empty());
        }
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn sequential_stream_confirms_and_prefetches_ahead() {
        let mut p = on();
        assert!(p.observe_miss(0).is_empty()); // allocate
        assert!(p.observe_miss(64).is_empty()); // stride adopted
        let pf = p.observe_miss(128); // confirmed
        assert_eq!(pf, vec![192, 256]);
        assert_eq!(p.issued, 2);
    }

    #[test]
    fn strided_stream_detected() {
        let mut p = on();
        p.observe_miss(0);
        p.observe_miss(3 * 64);
        let pf = p.observe_miss(6 * 64);
        assert_eq!(pf, vec![9 * 64, 12 * 64]);
    }

    #[test]
    fn random_misses_never_confirm() {
        let mut p = on();
        let mut s = 99u64;
        for _ in 0..200 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let _ = p.observe_miss((s % 100_000) * 64);
        }
        // Random deltas may occasionally alias to a stride repeat, but the
        // prefetcher must stay essentially quiet.
        assert!(p.issued < 20, "issued {} on random traffic", p.issued);
    }

    #[test]
    fn table_is_bounded_with_lru_replacement() {
        let mut p = on();
        // 10 interleaved streams into a 4-entry table: no panic, and the
        // most recent streams still confirm.
        for round in 0..3u64 {
            for stream in 0..10u64 {
                p.observe_miss((stream * 1_000_000 + round) * 64);
            }
        }
        assert!(p.table.len() <= 4);
    }
}
