//! Generic set-associative, true-LRU, write-back cache (tag array only).
//!
//! Used three ways in this repository: as the CPU L1/L2/L3 levels, as the
//! secure metadata cache's replacement engine, and in unit benches. Lines
//! are 64 B (the whole system's granularity, Table I).

use crate::stats::CacheStats;

/// Line size shared by every cache in the system.
pub const LINE_BYTES: u64 = 64;

/// Cache geometry.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a config, asserting the geometry is realizable.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        let cfg = CacheConfig {
            capacity_bytes,
            ways,
        };
        assert!(cfg.sets() >= 1, "capacity too small for associativity");
        cfg
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / LINE_BYTES / self.ways as u64
    }

    /// Total lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / LINE_BYTES
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Monotone use stamp; smaller = older (true LRU).
    lru: u64,
}

/// What happened on an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present.
    Hit,
    /// Line absent; `victim` is a dirty line that must be written back, if
    /// any. The requested line is now installed.
    Miss { victim: Option<Victim> },
}

/// An evicted line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// Byte address of the evicted line.
    pub addr: u64,
    /// Whether it was dirty (needs a write-back).
    pub dirty: bool,
}

/// Tag-array set-associative cache with true LRU and write-back dirty bits.
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    stamp: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache for `cfg`.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = (0..cfg.sets())
            .map(|_| vec![Way::default(); cfg.ways])
            .collect();
        SetAssocCache {
            cfg,
            sets,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / LINE_BYTES;
        let set = (line % self.cfg.sets()) as usize;
        let tag = line / self.cfg.sets();
        (set, tag)
    }

    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        (tag * self.cfg.sets() + set as u64) * LINE_BYTES
    }

    /// Accesses `addr`; `write` marks the line dirty on hit/install.
    /// On a miss the line is installed (allocate-on-miss for both reads and
    /// writes, the policy of write-back caches with write-allocate).
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.stamp += 1;
        let (set_idx, tag) = self.index(addr);
        let sets_count = self.cfg.sets();
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.stamp;
            way.dirty |= write;
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        self.stats.misses += 1;
        // Choose victim: an invalid way, else the true-LRU way.
        let victim_idx = set.iter().position(|w| !w.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("ways nonzero")
        });
        let victim = if set[victim_idx].valid {
            let v = set[victim_idx];
            if v.dirty {
                self.stats.writebacks += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
            Some(Victim {
                addr: (v.tag * sets_count + set_idx as u64) * LINE_BYTES,
                dirty: v.dirty,
            })
        } else {
            None
        };
        set[victim_idx] = Way {
            valid: true,
            dirty: write,
            tag,
            lru: self.stamp,
        };
        AccessOutcome::Miss { victim }
    }

    /// Whether `addr` is currently cached (no LRU update, no stats).
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Whether `addr` is cached *and* dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set]
            .iter()
            .any(|w| w.valid && w.tag == tag && w.dirty)
    }

    /// Clears the dirty bit of `addr` (after an explicit write-back/flush).
    pub fn clean(&mut self, addr: u64) {
        let (set, tag) = self.index(addr);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            w.dirty = false;
        }
    }

    /// Invalidates `addr`, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            let dirty = w.dirty;
            w.valid = false;
            w.dirty = false;
            dirty
        } else {
            false
        }
    }

    /// All currently-resident dirty line addresses (crash modeling: these are
    /// the lines whose latest contents are lost).
    pub fn dirty_lines(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (set_idx, set) in self.sets.iter().enumerate() {
            for w in set {
                if w.valid && w.dirty {
                    out.push(self.addr_of(set_idx, w.tag));
                }
            }
        }
        out
    }

    /// All resident line addresses.
    pub fn resident_lines(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (set_idx, set) in self.sets.iter().enumerate() {
            for w in set {
                if w.valid {
                    out.push(self.addr_of(set_idx, w.tag));
                }
            }
        }
        out
    }

    /// Drops every line (crash: volatile contents vanish).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for w in set.iter_mut() {
                *w = Way::default();
            }
        }
    }

    /// Statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The set index `addr` maps to (exposed for STAR's per-set cache-tree).
    pub fn set_of(&self, addr: u64) -> usize {
        self.index(addr).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets × 2 ways × 64B = 512B.
        SetAssocCache::new(CacheConfig::new(512, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(512, 2);
        assert_eq!(c.sets(), 4);
        assert_eq!(c.lines(), 8);
    }

    #[test]
    fn hit_after_install() {
        let mut c = small();
        assert!(matches!(c.access(0, false), AccessOutcome::Miss { .. }));
        assert_eq!(c.access(0, false), AccessOutcome::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        // Set 0 holds lines 0 and 4*64=256 (tags 0,1); line 512 (tag 2) evicts LRU.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false); // refresh line 0; 256 is now LRU
        match c.access(512, false) {
            AccessOutcome::Miss { victim: Some(v) } => assert_eq!(v.addr, 256),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(0));
        assert!(!c.contains(256));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.access(0, true);
        c.access(256, false);
        match c.access(512, false) {
            AccessOutcome::Miss { victim: Some(v) } => {
                assert_eq!(v.addr, 0);
                assert!(v.dirty);
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = small();
        c.access(64, false);
        assert!(!c.is_dirty(64));
        c.access(64, true);
        assert!(c.is_dirty(64));
        c.clean(64);
        assert!(!c.is_dirty(64));
    }

    #[test]
    fn dirty_lines_enumerates() {
        let mut c = small();
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut dirty = c.dirty_lines();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 128]);
        assert_eq!(c.resident_lines().len(), 3);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access(0, true);
        assert!(c.invalidate(0));
        assert!(!c.contains(0));
        assert!(!c.invalidate(0));
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = small();
        c.access(0, true);
        c.access(64, true);
        c.clear();
        assert!(c.dirty_lines().is_empty());
        assert!(!c.contains(0));
    }

    #[test]
    fn address_reconstruction_is_inverse() {
        let mut c = small();
        for addr in [0u64, 64, 512, 4096, 1 << 20] {
            c.access(addr, false);
            assert!(c.contains(addr), "addr {addr}");
            assert!(c.resident_lines().contains(&addr));
        }
    }
}
