//! Cache statistics.

use steins_obs::MetricRegistry;

/// Hit/miss/write-back counters for one cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Read or write accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted (write-backs toward the next level).
    pub writebacks: u64,
    /// Clean evictions (silently dropped).
    pub clean_evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.clean_evictions += other.clean_evictions;
    }

    /// Exports the counters as `<prefix>.hits`, `.misses`, `.writebacks`,
    /// `.clean_evictions` (e.g. `cache.l1.hits`).
    pub fn export_metrics(&self, reg: &mut MetricRegistry, prefix: &str) {
        reg.counter_add(&format!("{prefix}.hits"), self.hits);
        reg.counter_add(&format!("{prefix}.misses"), self.misses);
        reg.counter_add(&format!("{prefix}.writebacks"), self.writebacks);
        reg.counter_add(&format!("{prefix}.clean_evictions"), self.clean_evictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_zero_safe() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.accesses(), 4);
    }
}
