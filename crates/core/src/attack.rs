//! Attack injection against a crashed machine (§III-H's threat catalogue).
//!
//! With the machine down, the attacker owns the NVM: they can flip bits
//! (tampering), restore old line contents they recorded earlier (replay),
//! and rewrite the offset records (mis-marking dirty/clean). Recovery must
//! detect all of it — the security tests drive these helpers and assert the
//! right [`crate::IntegrityError`] comes back.

use crate::crash::CrashedSystem;
use steins_metadata::records::{record_coords, RecordLine, RECORD_EMPTY};

impl CrashedSystem {
    /// Snapshot of a metadata node's current NVM line (record now, replay
    /// later).
    pub fn snapshot_node(&self, offset: u64) -> [u8; 64] {
        self.nvm.peek(self.layout.node_addr(offset))
    }

    /// Replays a previously recorded node line into NVM.
    pub fn replay_node(&mut self, offset: u64, old_line: &[u8; 64]) {
        self.nvm.poke(self.layout.node_addr(offset), old_line);
    }

    /// Flips one bit of a metadata node in NVM (tampering), at the default
    /// position (byte 13, mask `0x40` — mid-counter-region).
    pub fn tamper_node(&mut self, offset: u64) {
        self.tamper_node_at(offset, 13, 0x40);
    }

    /// XORs `mask` into byte `byte` of a metadata node in NVM: the
    /// position-parameterized tamper primitive (randomized campaigns pick
    /// byte/mask; a zero `mask` is a no-op and is rejected by debug builds).
    pub fn tamper_node_at(&mut self, offset: u64, byte: usize, mask: u8) {
        debug_assert!(mask != 0, "zero mask tampers nothing");
        let addr = self.layout.node_addr(offset);
        let mut line = self.nvm.peek(addr);
        line[byte % 64] ^= mask;
        self.nvm.poke(addr, &line);
    }

    /// Flips one bit of a user data line in NVM (tampering), at the default
    /// position (byte 0, mask `0x01`).
    pub fn tamper_data(&mut self, data_line: u64) {
        self.tamper_data_at(data_line, 0, 0x01);
    }

    /// XORs `mask` into byte `byte` of a user data line in NVM.
    pub fn tamper_data_at(&mut self, data_line: u64, byte: usize, mask: u8) {
        debug_assert!(mask != 0, "zero mask tampers nothing");
        let addr = self.layout.data_base + data_line * 64;
        let mut line = self.nvm.peek(addr);
        line[byte % 64] ^= mask;
        self.nvm.poke(addr, &line);
    }

    /// Snapshot of a user data line (for data replay).
    pub fn snapshot_data(&self, data_line: u64) -> [u8; 64] {
        self.nvm.peek(self.layout.data_base + data_line * 64)
    }

    /// Replays a previously recorded data line.
    pub fn replay_data(&mut self, data_line: u64, old_line: &[u8; 64]) {
        self.nvm
            .poke(self.layout.data_base + data_line * 64, old_line);
    }

    /// Rewrites the offset record for metadata-cache slot `slot` — either
    /// pointing it at `Some(offset)` (marking that node dirty) or clearing
    /// it (`None`: marking whatever was there as clean).
    pub fn rewrite_record(&mut self, slot: u64, entry: Option<u64>) {
        let (rline, idx) = record_coords(slot);
        let addr = self.layout.record_addr(rline);
        let mut line = self.nvm.peek(addr);
        let mut rl = RecordLine::from_line(&line);
        match entry {
            Some(off) => rl.set(idx, off as u32),
            None => rl.clear(idx),
        }
        line = rl.to_line();
        self.nvm.poke(addr, &line);
    }

    /// Reads the persisted record entry for cache slot `slot`.
    pub fn record_entry(&self, slot: u64) -> Option<u64> {
        let (rline, idx) = record_coords(slot);
        let line = self.nvm.peek(self.layout.record_addr(rline));
        RecordLine::from_line(&line).get(idx).map(u64::from)
    }

    /// NVM address of ASIT's shadow-table line for cache slot `slot`.
    pub fn shadow_probe(&self, slot: u64) -> u64 {
        self.layout.shadow_addr(slot)
    }

    /// Raw NVM overwrite at an arbitrary line address (generic attack
    /// primitive for regions without a dedicated helper).
    pub fn poke_raw(&mut self, addr: u64, line: &[u8; 64]) {
        self.nvm.poke(addr, line);
    }

    /// Every node offset currently marked dirty by the persisted records
    /// (attack reconnaissance / test assertions).
    pub fn recorded_dirty_offsets(&self) -> Vec<u64> {
        let slots = self.cfg.meta_cache.slots();
        let lines = slots.div_ceil(steins_metadata::records::RECORDS_PER_LINE);
        let mut out = Vec::new();
        for r in 0..lines {
            let line = self.nvm.peek(self.layout.record_addr(r));
            let rl = RecordLine::from_line(&line);
            for (_, off) in rl.entries() {
                if off != RECORD_EMPTY {
                    out.push(u64::from(off));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}
