//! Bonsai Merkle Tree baseline (§II-C, Fig. 2).
//!
//! Before SIT, secure memories used the BMT: counter blocks are hashed into
//! parent HMAC blocks, recursively up to an on-chip root. Because a parent
//! hash is computed **over the child's content**, updating a leaf forces a
//! *sequential* chain of HMAC computations up the branch — the cost §II-C
//! contrasts with SIT's parallel self-increasing counters, and the reason
//! this repository's main engine (like the paper) builds on SIT.
//!
//! This module is a compact, self-contained BMT-protected write-back memory
//! over the same substrates (NVM device, metadata cache, crypto). It exists
//! to reproduce the background claim: per secure write, the BMT spends
//! `O(height)` serial hashes where the lazy SIT spends one. The
//! `sit_update` bench and `bmt_vs_sit` unit tests quantify it.
//!
//! Layout: level 0 nodes are the CME counter blocks (8 × 56-bit counters);
//! every level ≥ 1 node packs eight 56-bit truncated child hashes (reusing
//! the 64 B general-node layout; a production BMT stores 8 × 64-bit hashes
//! in a 64 B line with no slack — the truncation only shortens the tags,
//! not the structure). The root's eight (≤ 64) child hashes live on chip.

use crate::cme::xor_otp;
use crate::config::SystemConfig;
use crate::error::IntegrityError;
use steins_crypto::CryptoEngine;
use steins_metadata::counter::CTR56_MAX;
use steins_metadata::{MemoryLayout, MetadataCache, NodeId, SitNode};
use steins_nvm::{Cycle, NvmDevice, WriteQueue};

/// A BMT-protected write-back secure memory (comparison baseline).
pub struct BmtSystem {
    cfg: SystemConfig,
    layout: MemoryLayout,
    crypto: Box<dyn CryptoEngine>,
    nvm: NvmDevice,
    wq: WriteQueue,
    meta: MetadataCache,
    /// On-chip hashes of the top NVM level's nodes.
    root_hashes: Vec<u64>,
    front_free: Cycle,
    /// Serial HMAC computations performed (the §II-C comparison metric).
    pub hash_ops: u64,
    /// Total serial hash latency charged, cycles.
    pub hash_cycles: u64,
    now: Cycle,
}

impl BmtSystem {
    /// Builds the system (general counters only — the classic BMT).
    pub fn new(cfg: SystemConfig) -> Self {
        assert_eq!(
            cfg.mode,
            steins_metadata::CounterMode::General,
            "the classic BMT hashes general counter blocks"
        );
        let layout = MemoryLayout::new(cfg.mode, cfg.data_lines, cfg.meta_cache.slots());
        let crypto = steins_crypto::engine::make_engine(cfg.crypto, cfg.secret_key());
        let nvm = NvmDevice::new(cfg.nvm.clone());
        let wq = WriteQueue::new(cfg.nvm.write_queue_entries);
        let meta = MetadataCache::new(cfg.meta_cache);
        let root_hashes = vec![0; layout.geometry.root_fanout()];
        BmtSystem {
            cfg,
            layout,
            crypto,
            nvm,
            wq,
            meta,
            root_hashes,
            front_free: 0,
            hash_ops: 0,
            hash_cycles: 0,
            now: 0,
        }
    }

    /// 56-bit node hash over the counter payload and address.
    fn node_hash(&mut self, node: &SitNode, offset: u64) -> u64 {
        self.hash_ops += 1;
        self.hash_cycles += self.cfg.hash_latency;
        let mut msg = [0u8; 64];
        msg[..56].copy_from_slice(&node.counter_bytes());
        msg[56..].copy_from_slice(&self.layout.node_addr(offset).to_le_bytes());
        self.crypto.mac64(&msg) & CTR56_MAX
    }

    /// Fetches + verifies a node against its parent's stored hash.
    fn ensure_cached(&mut self, mut t: Cycle, id: NodeId) -> Result<Cycle, IntegrityError> {
        let offset = self.layout.geometry.offset_of(id);
        if self.meta.lookup(offset).is_some() {
            return Ok(t);
        }
        // Parent first (recursively), to obtain the trusted hash.
        let expected = match self.layout.geometry.parent_of(id) {
            None => self.root_hashes[self.layout.geometry.root_slot(id)],
            Some((pid, slot)) => {
                t = self.ensure_cached(t, pid)?;
                let poff = self.layout.geometry.offset_of(pid);
                self.meta
                    .peek(poff)
                    .expect("parent ensured")
                    .counters
                    .as_general()
                    .get(slot)
            }
        };
        let (line, t2) = self.nvm.read(t, self.layout.node_addr(offset));
        t = t2 + self.cfg.hash_latency;
        let node = SitNode::general_from_line(&line);
        let actual = self.node_hash(&node, offset);
        if expected != actual && !(expected == 0 && line == [0u8; 64]) {
            return Err(IntegrityError::NodeMac { node: id });
        }
        // Install; dirty victims flush through the sequential-hash path.
        loop {
            if self.meta.contains(offset) {
                return Ok(t);
            }
            match self.meta.probe_victim(offset, &[offset]) {
                Some((voff, true)) => t = self.flush(t, voff)?,
                _ => break,
            }
        }
        self.meta.install(offset, node, false);
        Ok(t)
    }

    /// Flushes a dirty node: write it, then recompute the parent's stored
    /// hash — which dirties the parent, whose own flush will hash again:
    /// the BMT's *sequential* HMAC chain (here propagated eagerly to the
    /// first cached ancestor, as cached-BMT designs do).
    fn flush(&mut self, mut t: Cycle, offset: u64) -> Result<Cycle, IntegrityError> {
        let id = self.layout.geometry.node_at_offset(offset);
        let node = *self.meta.peek(offset).expect("flush target resident");
        let addr = self.layout.node_addr(offset);
        t = self.wq.push(t, addr, &node.to_line(), &mut self.nvm);
        self.meta.mark_clean(offset);
        let h = self.node_hash(&node, offset);
        t += self.cfg.hash_latency; // serial: the parent hash needs this one
        match self.layout.geometry.parent_of(id) {
            None => {
                self.root_hashes[self.layout.geometry.root_slot(id)] = h;
            }
            Some((pid, slot)) => {
                t = self.ensure_cached(t, pid)?;
                let poff = self.layout.geometry.offset_of(pid);
                let mut p = self.meta.read(poff).expect("parent ensured");
                p.counters.as_general_mut().set(slot, h);
                self.meta.write(poff, p);
                self.meta.mark_dirty(poff);
            }
        }
        Ok(t)
    }

    /// Secure write of one line.
    pub fn write(&mut self, addr: u64, plaintext: &[u8; 64]) -> Result<(), IntegrityError> {
        let arrival = self.now;
        let mut t = arrival.max(self.front_free);
        let dline = addr / 64;
        let (leaf, slot) = self.layout.geometry.leaf_of_data(dline);
        t = self.ensure_cached(t, leaf)?;
        let loff = self.layout.geometry.offset_of(leaf);
        let mut node = self.meta.read(loff).expect("leaf ensured");
        node.counters.as_general_mut().increment(slot);
        let (major, minor) = node.counters.enc_pair(slot);
        self.meta.write(loff, node);
        self.meta.mark_dirty(loff);
        let mut line = *plaintext;
        xor_otp(self.crypto.as_ref(), addr, major, minor, &mut line);
        self.hash_ops += 1;
        self.hash_cycles += self.cfg.hash_latency;
        t += self.cfg.hash_latency; // data HMAC
        t = self.wq.push(t, addr, &line, &mut self.nvm);
        self.front_free = t;
        self.now = t;
        Ok(())
    }

    /// Secure read of one line (decrypt via the leaf counter).
    pub fn read(&mut self, addr: u64) -> Result<[u8; 64], IntegrityError> {
        let arrival = self.now;
        let mut t = arrival.max(self.front_free);
        let dline = addr / 64;
        let (leaf, slot) = self.layout.geometry.leaf_of_data(dline);
        t = self.ensure_cached(t, leaf)?;
        let loff = self.layout.geometry.offset_of(leaf);
        let (major, minor) = self
            .meta
            .peek(loff)
            .expect("leaf ensured")
            .counters
            .enc_pair(slot);
        let (ct, t2) = self.nvm.read(t, addr);
        t = t2;
        let mut out = ct;
        xor_otp(self.crypto.as_ref(), addr, major, minor, &mut out);
        self.front_free = t;
        self.now = t;
        Ok(out)
    }

    /// Simulated cycles so far.
    pub fn cycles(&self) -> Cycle {
        self.now
    }

    /// NVM statistics.
    pub fn nvm_stats(&self) -> &steins_nvm::NvmStats {
        self.nvm.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use crate::engine::SecureNvmSystem;
    use steins_metadata::CounterMode;

    fn bmt() -> BmtSystem {
        BmtSystem::new(SystemConfig::small_for_tests(
            SchemeKind::WriteBack,
            CounterMode::General,
        ))
    }

    #[test]
    fn write_read_roundtrip() {
        let mut b = bmt();
        b.write(0x400, &[0x5C; 64]).unwrap();
        assert_eq!(b.read(0x400).unwrap(), [0x5C; 64]);
    }

    #[test]
    fn survives_evictions() {
        let mut b = bmt();
        for i in 0..500u64 {
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&i.to_le_bytes());
            b.write((i % 2048) * 64, &data).unwrap();
        }
        for i in (0..500u64).step_by(37) {
            let got = b.read((i % 2048) * 64).unwrap();
            assert_eq!(u64::from_le_bytes(got[..8].try_into().unwrap()), i);
        }
    }

    #[test]
    fn bmt_spends_more_serial_hashes_than_sit() {
        // §II-C's claim quantified: same write stream, count HMAC ops.
        let mut b = bmt();
        for i in 0..800u64 {
            b.write((i * 13 % 2048) * 64, &[i as u8; 64]).unwrap();
        }
        let bmt_hashes = b.hash_ops;

        let cfg = SystemConfig::small_for_tests(SchemeKind::WriteBack, CounterMode::General);
        let mut s = SecureNvmSystem::new(cfg);
        for i in 0..800u64 {
            s.write((i * 13 % 2048) * 64, &[i as u8; 64]).unwrap();
        }
        let sit_hashes = s.report().energy_events.hashes;
        assert!(
            bmt_hashes > sit_hashes,
            "BMT must hash more: bmt={bmt_hashes} sit={sit_hashes}"
        );
    }

    #[test]
    fn detects_tampered_node() {
        let mut b = bmt();
        for i in 0..300u64 {
            b.write((i * 7 % 2048) * 64, &[i as u8; 64]).unwrap();
        }
        // Find a leaf that is currently NOT cached and corrupt its NVM copy.
        let geo = b.layout.geometry.clone();
        let mut victim = None;
        for idx in 0..geo.nodes_at(0) {
            let off = geo.offset_of(NodeId {
                level: 0,
                index: idx,
            });
            let addr = b.layout.node_addr(off);
            if !b.meta.contains(off) && b.nvm.peek(addr) != [0u8; 64] {
                victim = Some((off, addr, idx));
                break;
            }
        }
        let (_, addr, idx) = victim.expect("some persisted uncached leaf");
        let mut line = b.nvm.peek(addr);
        line[5] ^= 1;
        b.nvm.poke(addr, &line);
        let data_line = geo.data_of_leaf(NodeId {
            level: 0,
            index: idx,
        })[0];
        assert!(
            b.read(data_line * 64).is_err(),
            "tampered BMT node must fail verification"
        );
    }
}
