//! The cache-tree used by ASIT and STAR (§II-D, §IV).
//!
//! A small Merkle tree whose leaves summarize metadata-cache state:
//!
//! * **ASIT**: one leaf per cache *slot* — `H(node line ‖ slot)` — rebuilt
//!   whenever that slot's content changes (4 levels over 4096 slots).
//! * **STAR**: one leaf per cache *set* — the set-MAC over the set's dirty
//!   nodes, sorted by address (the sorting the paper calls out as STAR's
//!   extra overhead).
//!
//! Intermediate levels are volatile MC SRAM; only the root lives in an
//! on-chip NV register. Every leaf update recomputes the path to the root —
//! `depth` serial HMACs, the computation cost Steins' LIncs avoid.

use steins_crypto::CryptoEngine;

/// Fanout of cache-tree levels.
pub const CT_FANOUT: usize = 8;

/// Merkle tree over `leaves` 64-bit summaries.
#[derive(Clone, Debug)]
pub struct CacheTree {
    /// `levels[0]` = leaf macs; last = single root.
    levels: Vec<Vec<u64>>,
}

impl CacheTree {
    /// A tree over `leaves` all-zero leaves, with every interior MAC
    /// computed — so incremental updates and full rebuilds always agree.
    pub fn new(engine: &dyn CryptoEngine, leaves: usize) -> Self {
        assert!(leaves >= 1);
        let mut levels = vec![vec![0u64; leaves]];
        while levels.last().expect("nonempty").len() > 1 {
            let next = levels.last().unwrap().len().div_ceil(CT_FANOUT);
            levels.push(vec![0u64; next]);
        }
        let mut tree = CacheTree { levels };
        tree.recompute_all(engine);
        tree
    }

    fn recompute_all(&mut self, engine: &dyn CryptoEngine) {
        for level in 1..self.levels.len() {
            let (lower, upper) = self.levels.split_at_mut(level);
            let below = lower.last().expect("level >= 1");
            let here = upper.first_mut().expect("level exists");
            // Present the whole level as one batch: every parent's node-MAC
            // message is independent, so the engine can fill its lanes
            // (full-fanout parents share one length; a ragged tail parent
            // falls back to the scalar path inside the engine).
            let msgs: Vec<([u8; CT_FANOUT * 8 + 16], usize)> = (0..here.len())
                .map(|parent| {
                    let first = parent * CT_FANOUT;
                    let last = (first + CT_FANOUT).min(below.len());
                    Self::node_mac_message(level, parent, &below[first..last])
                })
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|(m, n)| &m[..*n]).collect();
            engine.mac64_many(&refs, here);
        }
    }

    /// Number of levels above the leaves (= serial HMACs per update).
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// Builds the node-MAC message (`children LE ‖ level ‖ index`) into a
    /// stack buffer, returning it with its used length. Shared by the
    /// scalar per-update path and the batched level recomputation so both
    /// MAC the exact same bytes.
    fn node_mac_message(
        level: usize,
        index: usize,
        children: &[u64],
    ) -> ([u8; CT_FANOUT * 8 + 16], usize) {
        debug_assert!(children.len() <= CT_FANOUT);
        let mut msg = [0u8; CT_FANOUT * 8 + 16];
        for (i, c) in children.iter().enumerate() {
            msg[i * 8..i * 8 + 8].copy_from_slice(&c.to_le_bytes());
        }
        let n = children.len() * 8;
        msg[n..n + 8].copy_from_slice(&(level as u64).to_le_bytes());
        msg[n + 8..n + 16].copy_from_slice(&(index as u64).to_le_bytes());
        (msg, n + 16)
    }

    fn node_mac(engine: &dyn CryptoEngine, level: usize, index: usize, children: &[u64]) -> u64 {
        // Stack buffer: ≤ CT_FANOUT children plus level/index, never larger.
        // This runs `depth` times per leaf update — the hot inner loop of
        // every ASIT/STAR write.
        let (msg, n) = Self::node_mac_message(level, index, children);
        engine.mac64(&msg[..n])
    }

    /// Sets leaf `slot` to `leaf_mac` and recomputes the path to the root.
    /// Returns the number of HMACs computed (the latency the caller
    /// charges: `hashes × hash_latency`, serial).
    pub fn update(&mut self, engine: &dyn CryptoEngine, slot: usize, leaf_mac: u64) -> usize {
        self.levels[0][slot] = leaf_mac;
        let mut index = slot;
        let mut hashes = 0;
        for level in 1..self.levels.len() {
            let parent = index / CT_FANOUT;
            let first = parent * CT_FANOUT;
            let last = (first + CT_FANOUT).min(self.levels[level - 1].len());
            let mac = Self::node_mac(engine, level, parent, &self.levels[level - 1][first..last]);
            self.levels[level][parent] = mac;
            hashes += 1;
            index = parent;
        }
        hashes
    }

    /// The current root.
    pub fn root(&self) -> u64 {
        *self.levels.last().expect("nonempty").first().expect("root")
    }

    /// Builds a whole tree over the given `leaf_macs` with every interior
    /// MAC computed. Recovery seeds a restartable tree from the durable
    /// leaf summaries it has just verified, then resumes incremental
    /// updates from there.
    pub fn from_leaves(engine: &dyn CryptoEngine, leaf_macs: &[u64]) -> Self {
        assert!(!leaf_macs.is_empty());
        let mut tree = CacheTree {
            levels: vec![leaf_macs.to_vec()],
        };
        while tree.levels.last().expect("nonempty").len() > 1 {
            let next = tree.levels.last().unwrap().len().div_ceil(CT_FANOUT);
            tree.levels.push(vec![0u64; next]);
        }
        tree.recompute_all(engine);
        tree
    }

    /// Rebuilds a whole tree from scratch over `leaf_macs` (recovery path),
    /// returning `(root, hashes_computed)`.
    pub fn rebuild(engine: &dyn CryptoEngine, leaf_macs: &[u64]) -> (u64, usize) {
        let tree = Self::from_leaves(engine, leaf_macs);
        let hashes: usize = tree.levels[1..].iter().map(|l| l.len()).sum();
        (tree.root(), hashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_crypto::{engine::make_engine, CryptoKind, SecretKey};

    fn eng() -> Box<dyn CryptoEngine> {
        make_engine(CryptoKind::Fast, SecretKey([7; 16]))
    }

    #[test]
    fn depth_matches_anubis_4_levels() {
        // 4096 slots / fanout 8 ⇒ 512, 64, 8, 1: 4 levels above leaves.
        let e = eng();
        let t = CacheTree::new(e.as_ref(), 4096);
        assert_eq!(t.depth(), 4, "§IV: ASIT's 4-level cache-tree");
    }

    #[test]
    fn update_changes_root_and_counts_hashes() {
        let e = eng();
        let mut t = CacheTree::new(e.as_ref(), 64);
        let r0 = t.root();
        let hashes = t.update(e.as_ref(), 5, 0x1234);
        assert_eq!(hashes, t.depth());
        assert_ne!(t.root(), r0);
    }

    #[test]
    fn incremental_equals_rebuild() {
        let e = eng();
        let mut t = CacheTree::new(e.as_ref(), 100);
        let mut leaves = vec![0u64; 100];
        for (i, v) in [(3usize, 7u64), (99, 8), (0, 9), (50, 10)] {
            t.update(e.as_ref(), i, v);
            leaves[i] = v;
        }
        let (root, _) = CacheTree::rebuild(e.as_ref(), &leaves);
        assert_eq!(t.root(), root);
    }

    #[test]
    fn rebuild_detects_any_leaf_change() {
        let e = eng();
        let leaves: Vec<u64> = (0..32).collect();
        let (root, _) = CacheTree::rebuild(e.as_ref(), &leaves);
        let mut tampered = leaves.clone();
        tampered[17] ^= 1;
        let (root2, _) = CacheTree::rebuild(e.as_ref(), &tampered);
        assert_ne!(root, root2);
    }

    #[test]
    fn from_leaves_resumes_incremental_updates() {
        let e = eng();
        let leaves: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let mut seeded = CacheTree::from_leaves(e.as_ref(), &leaves);
        let (root, _) = CacheTree::rebuild(e.as_ref(), &leaves);
        assert_eq!(seeded.root(), root);
        // Incremental update on the seeded tree matches a fresh rebuild.
        seeded.update(e.as_ref(), 17, 0xBEEF);
        let mut changed = leaves;
        changed[17] = 0xBEEF;
        let (root2, _) = CacheTree::rebuild(e.as_ref(), &changed);
        assert_eq!(seeded.root(), root2);
    }

    #[test]
    fn single_leaf_tree() {
        let e = eng();
        let mut t = CacheTree::new(e.as_ref(), 1);
        assert_eq!(t.depth(), 0);
        t.update(e.as_ref(), 0, 42);
        assert_eq!(t.root(), 42);
    }
}
