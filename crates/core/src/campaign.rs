//! Seeded randomized fault campaign (§III-H hardening, fault-model edition).
//!
//! The exhaustive crash sweep ([`crate::crash::CrashSweep`]) enumerates
//! *every* persist boundary but only one fault shape at a time. The campaign
//! composes the whole fault model at once, randomly but reproducibly:
//!
//! * a crash point drawn from the stream's persist-boundary range,
//! * a torn-word mask (whole-line, prefix, arbitrary subset, dropped),
//! * and — on attack iterations — post-crash NVM corruption: node/data bit
//!   flips, offset-record rewrites, raw line overwrites, plus *media*
//!   faults (stuck-at lines, uncorrectable reads) injected into the device.
//!
//! The contract is two-tier. **Crash-only points** must satisfy the strong
//! sweep contract: recovery (strict, or the lenient scrub when a torn
//! metadata line defeats fail-stop recovery) brings back every acknowledged
//! line, with the torn line failing closed. **Attacked points** get the
//! robustness contract: neither strict recovery nor the scrub may panic
//! (arbitrary corruption is the scrub's whole reason to exist), tampered
//! durable data must not be reported `Intact`, and no read of the scrubbed
//! machine may ever return wrong data with an `Ok` — detection, not
//! correction, is the promise under active attack.
//!
//! Every iteration derives its own RNG from `(seed, combo, iteration)`, so
//! a failure reproduces from the tuple printed in the report — and the
//! campaign re-runs the failing iteration on a truncated op stream to
//! shrink the repro before reporting it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use steins_metadata::CounterMode;
use steins_obs::{Histogram, MetricRegistry};
use steins_trace::rng::SmallRng;

use crate::config::{SchemeKind, SystemConfig};
use crate::crash::{CrashSweep, PointSelection, SweepOp, TornCrash};
use crate::scrub::ScrubReport;

/// The six supported (scheme, counter-mode) combinations: ASIT and STAR are
/// general-counter designs (split-counter variants are out of scope by
/// design), WB and Steins run in both modes.
pub const COMBOS: [(SchemeKind, CounterMode); 6] = [
    (SchemeKind::WriteBack, CounterMode::General),
    (SchemeKind::WriteBack, CounterMode::Split),
    (SchemeKind::Asit, CounterMode::General),
    (SchemeKind::Star, CounterMode::General),
    (SchemeKind::Steins, CounterMode::General),
    (SchemeKind::Steins, CounterMode::Split),
];

/// Campaign parameters. Fully deterministic for a fixed config.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every iteration's RNG derives from it.
    pub seed: u64,
    /// Fault points injected per (scheme, mode) combination.
    pub points_per_combo: usize,
    /// Length of the op stream replayed before each crash.
    pub ops: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x5EED_FA17,
            points_per_combo: 32,
            ops: 60,
        }
    }
}

/// How one injected fault point resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// Crash-only point: the strong sweep contract held.
    CrashRecovered,
    /// Crash-only point: the strong contract was violated.
    CrashFailed,
    /// Attacked point: no panic, verdicts and read-backs consistent.
    AttackHandled,
    /// Attacked point: strict recovery or the scrub unwound.
    AttackPanicked,
    /// Attacked point: a tampered durable line was reported intact, or a
    /// read returned wrong data with `Ok`.
    AttackInconsistent,
}

/// Aggregated campaign results (merge-able across combos).
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Crash-only points injected / passed.
    pub crash_points: u64,
    /// Nested points injected (crash *during* recovery of a crash).
    pub nested_points: u64,
    /// Attacked points injected.
    pub attack_points: u64,
    /// Panics that escaped recovery or the scrub (must be zero).
    pub panics: u64,
    /// Strict-recovery integrity errors observed under attack (detection
    /// events; informational).
    pub strict_detected: u64,
    /// Aggregated scrub verdict counters over all attack iterations.
    pub data_intact: u64,
    /// Data lines the scrub classified unrecoverable (expected under
    /// attack; informational).
    pub data_unrecoverable: u64,
    /// Metadata nodes rebuilt by the scrub.
    pub meta_recovered: u64,
    /// Human-readable minimal repros, one per failed point.
    pub failures: Vec<String>,
    /// Distribution of injected crash points (persist-boundary index).
    pub point_hist: Histogram,
}

impl CampaignReport {
    /// True when every injected point met its contract.
    pub fn clean(&self) -> bool {
        self.failures.is_empty() && self.panics == 0
    }

    /// Total injected fault points.
    pub fn points(&self) -> u64 {
        self.crash_points + self.nested_points + self.attack_points
    }

    /// Folds another combo's report into this one.
    pub fn merge(&mut self, other: &CampaignReport) {
        self.crash_points += other.crash_points;
        self.nested_points += other.nested_points;
        self.attack_points += other.attack_points;
        self.panics += other.panics;
        self.strict_detected += other.strict_detected;
        self.data_intact += other.data_intact;
        self.data_unrecoverable += other.data_unrecoverable;
        self.meta_recovered += other.meta_recovered;
        self.failures.extend(other.failures.iter().cloned());
        self.point_hist.merge(&other.point_hist);
    }

    /// Exports the campaign counters under `core.campaign.`.
    pub fn metrics(&self) -> MetricRegistry {
        let mut m = MetricRegistry::new();
        m.counter_add("core.campaign.points.crash", self.crash_points);
        m.counter_add("core.campaign.points.nested", self.nested_points);
        m.counter_add("core.campaign.points.attack", self.attack_points);
        m.counter_add("core.campaign.panics", self.panics);
        m.counter_add("core.campaign.failures", self.failures.len() as u64);
        m.counter_add("core.campaign.strict.detected", self.strict_detected);
        m.counter_add("core.campaign.scrub.data.intact", self.data_intact);
        m.counter_add(
            "core.campaign.scrub.data.unrecoverable",
            self.data_unrecoverable,
        );
        m.counter_add("core.campaign.scrub.meta.recovered", self.meta_recovered);
        m.insert_hist("core.campaign.point", &self.point_hist);
        m
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "campaign seed {:#x}: {} points ({} crash, {} nested, {} attack), \
             {} panics, {} strict detections, scrub {{intact {}, \
             unrecoverable {}, meta-recovered {}}}",
            self.seed,
            self.points(),
            self.crash_points,
            self.nested_points,
            self.attack_points,
            self.panics,
            self.strict_detected,
            self.data_intact,
            self.data_unrecoverable,
            self.meta_recovered,
        )?;
        if self.failures.is_empty() {
            write!(f, "  PASS: every point met its contract")?;
        } else {
            writeln!(
                f,
                "  FAIL: {} point(s) broke the contract",
                self.failures.len()
            )?;
            for fail in &self.failures {
                writeln!(f, "  - {fail}")?;
            }
        }
        Ok(())
    }
}

/// One random post-crash corruption, drawn per attack iteration.
#[derive(Clone, Copy, Debug)]
enum Attack {
    TamperNode {
        offset: u64,
        byte: usize,
        mask: u8,
    },
    TamperData {
        line: u64,
        byte: usize,
        mask: u8,
    },
    RewriteRecord {
        slot: u64,
        entry: Option<u64>,
    },
    RawOverwrite {
        node_offset: u64,
        fill: u8,
    },
    StuckLine {
        node_offset: u64,
        fill: u8,
    },
    Unreadable {
        data_line: u64,
    },
    BitFlip {
        data_line: u64,
        byte: usize,
        bit: u8,
    },
}

/// The randomized fault-campaign driver.
pub struct FaultCampaign {
    pub cfg: CampaignConfig,
}

impl FaultCampaign {
    /// A campaign with the given parameters.
    pub fn new(cfg: CampaignConfig) -> Self {
        FaultCampaign { cfg }
    }

    /// Per-iteration RNG: independent of execution order, so any single
    /// iteration reproduces from `(seed, combo, i)` alone.
    fn rng_for(&self, combo: usize, i: usize) -> SmallRng {
        SmallRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(combo as u32 * 7)
                ^ (i as u64).wrapping_mul(0xD134_2543_DE82_EF95),
        )
    }

    /// Draws the torn-word mask: whole-line persists stay the common case,
    /// with prefix tears, arbitrary subsets, and dropped writes mixed in.
    fn draw_mask(rng: &mut SmallRng) -> u8 {
        match rng.next_u64() % 4 {
            0 | 1 => 0xFF,
            2 => {
                // Prefix tear: the first 1..=7 words landed.
                let words = 1 + (rng.next_u64() % 7) as u8;
                (1u16 << words).wrapping_sub(1) as u8
            }
            _ => (rng.next_u64() & 0xFF) as u8, // arbitrary subset, 0x00 possible
        }
    }

    /// Draws one post-crash corruption against the given image geometry.
    fn draw_attack(
        rng: &mut SmallRng,
        total_nodes: u64,
        data_lines: u64,
        cache_slots: u64,
    ) -> Attack {
        let nz = |m: u8| if m == 0 { 1 } else { m };
        match rng.next_u64() % 7 {
            0 => Attack::TamperNode {
                offset: rng.next_u64() % total_nodes,
                byte: (rng.next_u64() % 64) as usize,
                mask: nz((rng.next_u64() & 0xFF) as u8),
            },
            1 => Attack::TamperData {
                line: rng.next_u64() % data_lines,
                byte: (rng.next_u64() % 64) as usize,
                mask: nz((rng.next_u64() & 0xFF) as u8),
            },
            2 => Attack::RewriteRecord {
                slot: rng.next_u64() % cache_slots,
                entry: if rng.next_u64() % 2 == 0 {
                    Some(rng.next_u64() % total_nodes)
                } else {
                    None
                },
            },
            3 => Attack::RawOverwrite {
                node_offset: rng.next_u64() % total_nodes,
                fill: (rng.next_u64() & 0xFF) as u8,
            },
            4 => Attack::StuckLine {
                node_offset: rng.next_u64() % total_nodes,
                fill: (rng.next_u64() & 0xFF) as u8,
            },
            5 => Attack::Unreadable {
                data_line: rng.next_u64() % data_lines,
            },
            _ => Attack::BitFlip {
                data_line: rng.next_u64() % data_lines,
                byte: (rng.next_u64() % 64) as usize,
                bit: (rng.next_u64() % 8) as u8,
            },
        }
    }

    /// Applies a drawn attack to a crashed image. Returns the *data*
    /// address the attack corrupted in storage, when it targeted the data
    /// plane directly (used for the no-false-`Intact` assertion), and
    /// whether the attack was a read-path media fault.
    fn apply_attack(tc: &mut TornCrash, a: Attack) -> (Option<u64>, bool) {
        let crashed = &mut tc.crashed;
        match a {
            Attack::TamperNode { offset, byte, mask } => {
                crashed.tamper_node_at(offset, byte, mask);
                (None, false)
            }
            Attack::TamperData { line, byte, mask } => {
                crashed.tamper_data_at(line, byte, mask);
                (Some(crashed.layout.data_base + line * 64), false)
            }
            Attack::RewriteRecord { slot, entry } => {
                crashed.rewrite_record(slot, entry);
                (None, false)
            }
            Attack::RawOverwrite { node_offset, fill } => {
                let addr = crashed.layout.node_addr(node_offset);
                crashed.poke_raw(addr, &[fill; 64]);
                (None, false)
            }
            Attack::StuckLine { node_offset, fill } => {
                let addr = crashed.layout.node_addr(node_offset);
                crashed.nvm_mut().inject_stuck_line(addr, [fill; 64]);
                (None, true)
            }
            Attack::Unreadable { data_line } => {
                let addr = crashed.layout.data_base + data_line * 64;
                crashed.nvm_mut().inject_unreadable(addr);
                (None, true)
            }
            Attack::BitFlip {
                data_line,
                byte,
                bit,
            } => {
                let addr = crashed.layout.data_base + data_line * 64;
                crashed.nvm_mut().inject_bit_flip(addr, byte, bit);
                (Some(addr), false)
            }
        }
    }

    /// Builds the crashed-and-attacked image for one attack iteration.
    /// Rebuilding from scratch (rather than cloning) keeps the image's
    /// fault plane and truth map exactly as recovery will see them.
    fn attacked_image(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        mask: u8,
        attacks: &[Attack],
    ) -> Option<(TornCrash, Vec<u64>, bool)> {
        let mut tc = CrashSweep::crash_torn(cfg, ops, k, mask).ok()??;
        let mut tampered_data = Vec::new();
        let mut media = false;
        for &a in attacks {
            let (data_addr, is_media) = Self::apply_attack(&mut tc, a);
            if let Some(addr) = data_addr {
                tampered_data.push(addr);
            }
            media |= is_media;
        }
        Some((tc, tampered_data, media))
    }

    /// Runs one attack iteration; returns `Ok(outcome)` or a failure
    /// description.
    fn attack_iteration(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        mask: u8,
        attacks: &[Attack],
        report: &mut CampaignReport,
    ) -> Result<CampaignOutcome, String> {
        // Strict recovery first: it may detect (Err) or even succeed (the
        // attack can land on untouched regions) — it must never unwind.
        let Some((tc, tampered, media)) = Self::attacked_image(cfg, ops, k, mask, attacks) else {
            return Err("attack image not reproducible".into());
        };
        let expected = tc.expected.clone();
        let sacrificed = tc.sacrificed;
        let crashed = tc.crashed;
        let recoverable = crashed.recoverable();
        match catch_unwind(AssertUnwindSafe(move || crashed.recover().err())) {
            Ok(Some(_)) => report.strict_detected += 1,
            Ok(None) => {}
            Err(_) => {
                report.panics += 1;
                return Err("strict recovery panicked".into());
            }
        }

        // The lenient scrub on a fresh copy of the same image: total by
        // contract, and its damage report must not whitewash the attack.
        let Some((tc2, _, _)) = Self::attacked_image(cfg, ops, k, mask, attacks) else {
            return Err("attack image not reproducible".into());
        };
        let crashed2 = tc2.crashed;
        let (sys, scrub): (Option<crate::SecureNvmSystem>, ScrubReport) =
            match catch_unwind(AssertUnwindSafe(move || crashed2.recover_lenient())) {
                Ok(r) => r,
                Err(_) => {
                    report.panics += 1;
                    return Err("lenient scrub panicked".into());
                }
            };
        report.data_intact += scrub.data_intact;
        report.data_unrecoverable += scrub.data_unrecoverable;
        report.meta_recovered += scrub.meta_recovered;

        // No false Intact: a data line whose *storage* the attack corrupted
        // and that held acknowledged content must show up unrecoverable —
        // unless a read-path media fault shadows what the scrub saw, or the
        // tear already sacrificed it.
        if !media {
            for &addr in &tampered {
                if expected.contains_key(&addr)
                    && Some(addr) != sacrificed
                    && !scrub.unrecoverable_addrs.contains(&addr)
                {
                    return Err(format!(
                        "tampered durable line {addr:#x} not flagged unrecoverable"
                    ));
                }
            }
        }

        // Post-scrub reads must never panic and never return wrong data as
        // `Ok` — Err is acceptable (detection), wrong-Ok is a MAC break.
        if recoverable {
            let Some(mut sys) = sys else {
                return Err("scrub returned no system for a recoverable scheme".into());
            };
            let mut addrs: Vec<u64> = expected.keys().copied().collect();
            addrs.sort_unstable();
            let verdict = catch_unwind(AssertUnwindSafe(move || {
                for addr in addrs {
                    if let Ok(got) = sys.read(addr) {
                        if got != expected[&addr] {
                            return Some(addr);
                        }
                    }
                }
                None
            }));
            match verdict {
                Ok(None) => {}
                Ok(Some(addr)) => {
                    return Err(format!(
                        "read of {addr:#x} returned wrong data as Ok after scrub"
                    ));
                }
                Err(_) => {
                    report.panics += 1;
                    return Err("post-scrub read panicked".into());
                }
            }
        }
        Ok(CampaignOutcome::AttackHandled)
    }

    /// Runs the campaign for one (scheme, mode) combination.
    pub fn run_combo(&self, combo: usize, scheme: SchemeKind, mode: CounterMode) -> CampaignReport {
        self.run_combo_range(combo, scheme, mode, 0..self.cfg.points_per_combo)
    }

    /// Re-runs exactly one campaign iteration — the `--repro` path. The
    /// per-iteration RNG derives from `(seed, combo, i)` alone, so this
    /// replays the very same point, masks and attacks the full campaign
    /// drew. `None` for an out-of-range combo.
    pub fn run_point(&self, combo: usize, i: usize) -> Option<CampaignReport> {
        let (scheme, mode) = *COMBOS.get(combo)?;
        Some(self.run_combo_range(combo, scheme, mode, i..i + 1))
    }

    /// [`Self::run_combo`] over an explicit iteration range.
    fn run_combo_range(
        &self,
        combo: usize,
        scheme: SchemeKind,
        mode: CounterMode,
        range: std::ops::Range<usize>,
    ) -> CampaignReport {
        let cfg = SystemConfig::small_for_tests(scheme, mode);
        let ops = SweepOp::stream(self.cfg.seed ^ ((combo as u64) << 17), 192, self.cfg.ops);
        let sweep = CrashSweep::new(cfg.clone(), ops.clone(), PointSelection::All);
        let label = scheme.label(mode);
        let mut report = CampaignReport {
            seed: self.cfg.seed,
            ..CampaignReport::default()
        };
        let total = match sweep.total_points() {
            Ok(t) if t > 0 => t,
            Ok(_) => return report,
            Err(e) => {
                report
                    .failures
                    .push(format!("{label}: baseline run failed: {e}"));
                return report;
            }
        };
        let data_lines = 192u64; // the stream's line universe (SweepOp::stream)
        let layout =
            steins_metadata::MemoryLayout::new(cfg.mode, cfg.data_lines, cfg.meta_cache.slots());
        let total_nodes = layout.geometry.total_nodes();
        let cache_slots = cfg.meta_cache.slots();

        for i in range {
            let mut rng = self.rng_for(combo, i);
            let k = rng.gen_range_inclusive(1, total);
            let mask = Self::draw_mask(&mut rng);
            report.point_hist.record(k);
            if i % 4 == 2 {
                // Nested point: crash during recovery, then recover again.
                // The inner point is drawn from the persist points recovery
                // itself fires for this exact outer crash; its mask only
                // applies to tearable (line-write) boundaries.
                report.nested_points += 1;
                let draw = rng.next_u64();
                let m1_draw = Self::draw_mask(&mut rng);
                let inner = match CrashSweep::recovery_points(&cfg, &ops, k, mask) {
                    Ok(pts) => pts,
                    Err(fail) => {
                        report.failures.push(format!(
                            "{label} nested point {k} mask {mask:#04x} \
                             (seed {:#x}, iter {i}, {} ops): {}",
                            self.cfg.seed,
                            ops.len(),
                            fail.error
                        ));
                        continue;
                    }
                };
                let (j, m1) = if inner.is_empty() {
                    // WB never starts recovery: the synthetic point checks
                    // the refusal contract under nested arming.
                    (k + 1, 0xFF)
                } else {
                    let p = inner[(draw % inner.len() as u64) as usize];
                    let m1 = if p.kind == steins_nvm::PersistKind::LineWrite {
                        m1_draw
                    } else {
                        0xFF
                    };
                    (p.seq, m1)
                };
                if let Some(repro) = sweep.probe_point_nested(k, mask, j, m1) {
                    report.failures.push(format!(
                        "{label} nested point {k}>{j} masks {mask:#04x}>{m1:#04x} \
                         (seed {:#x}, iter {i}, {} ops): {}",
                        self.cfg.seed,
                        repro.ops.len(),
                        repro.error
                    ));
                }
            } else if i % 2 == 0 {
                // Crash-only point: the strong sweep contract, torn-aware.
                report.crash_points += 1;
                if let Some(repro) = sweep.probe_point_torn(k, mask) {
                    report.failures.push(format!(
                        "{label} crash point {k} mask {mask:#04x} \
                         (seed {:#x}, iter {i}, {} ops): {}",
                        self.cfg.seed,
                        repro.ops.len(),
                        repro.error
                    ));
                }
            } else {
                // Attacked point: robustness contract.
                report.attack_points += 1;
                let n_attacks = 1 + (rng.next_u64() % 3) as usize;
                let attacks: Vec<Attack> = (0..n_attacks)
                    .map(|_| Self::draw_attack(&mut rng, total_nodes, data_lines, cache_slots))
                    .collect();
                if let Err(why) = Self::attack_iteration(&cfg, &ops, k, mask, &attacks, &mut report)
                {
                    // Shrink: re-run on the stream truncated past the
                    // in-flight op; keep the shorter repro when it still
                    // fails the same way.
                    let mut repro_ops = ops.len();
                    if let Ok(Some(tc)) = CrashSweep::crash_torn(&cfg, &ops, k, mask) {
                        let cut = tc.op_index + 1;
                        let mut scratch = CampaignReport::default();
                        if cut < ops.len()
                            && Self::attack_iteration(
                                &cfg,
                                &ops[..cut],
                                k,
                                mask,
                                &attacks,
                                &mut scratch,
                            )
                            .is_err()
                        {
                            repro_ops = cut;
                        }
                    }
                    report.failures.push(format!(
                        "{label} attack point {k} mask {mask:#04x} \
                         (seed {:#x}, iter {i}, {repro_ops} ops, {attacks:?}): {why}",
                        self.cfg.seed
                    ));
                }
            }
        }
        report
    }

    /// Runs all six combinations and merges the reports.
    pub fn run_all(&self) -> CampaignReport {
        let mut merged = CampaignReport {
            seed: self.cfg.seed,
            ..CampaignReport::default()
        };
        for (ci, (scheme, mode)) in COMBOS.iter().enumerate() {
            merged.merge(&self.run_combo(ci, *scheme, *mode));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_for_a_fixed_seed() {
        let cfg = CampaignConfig {
            seed: 0xABCD,
            points_per_combo: 4,
            ops: 18,
        };
        let a =
            FaultCampaign::new(cfg.clone()).run_combo(4, SchemeKind::Steins, CounterMode::General);
        let b = FaultCampaign::new(cfg).run_combo(4, SchemeKind::Steins, CounterMode::General);
        assert_eq!(a.clean(), b.clean());
        assert_eq!(a.points(), b.points());
        assert_eq!(a.data_intact, b.data_intact);
        assert_eq!(a.data_unrecoverable, b.data_unrecoverable);
        assert_eq!(a.strict_detected, b.strict_detected);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.point_hist.count(), b.point_hist.count());
        assert_eq!(a.point_hist.sum(), b.point_hist.sum());
    }

    #[test]
    fn small_campaign_passes_on_steins_and_asit() {
        let cfg = CampaignConfig {
            seed: 0xFA17,
            points_per_combo: 6,
            ops: 20,
        };
        let fc = FaultCampaign::new(cfg);
        for (ci, scheme) in [(2, SchemeKind::Asit), (4, SchemeKind::Steins)] {
            let r = fc.run_combo(ci, scheme, CounterMode::General);
            assert!(r.clean(), "campaign failed:\n{r}");
            assert_eq!(r.points(), 6);
            assert_eq!(r.panics, 0);
        }
    }

    #[test]
    fn campaign_metrics_export_round_trips() {
        let cfg = CampaignConfig {
            seed: 1,
            points_per_combo: 2,
            ops: 12,
        };
        let r = FaultCampaign::new(cfg).run_combo(0, SchemeKind::WriteBack, CounterMode::General);
        let m = r.metrics();
        assert_eq!(
            m.counter("core.campaign.points.crash").unwrap()
                + m.counter("core.campaign.points.nested").unwrap()
                + m.counter("core.campaign.points.attack").unwrap(),
            r.points()
        );
        assert!(m.hist("core.campaign.point").is_some());
    }

    #[test]
    fn campaign_includes_nested_axis_and_passes() {
        // points_per_combo ≥ 3 makes iteration 2 a nested point.
        let cfg = CampaignConfig {
            seed: 0x2E57ED,
            points_per_combo: 4,
            ops: 16,
        };
        let fc = FaultCampaign::new(cfg);
        for (ci, scheme) in [(2, SchemeKind::Asit), (3, SchemeKind::Star)] {
            let r = fc.run_combo(ci, scheme, CounterMode::General);
            assert_eq!(r.nested_points, 1, "iteration 2 must be nested");
            assert!(r.clean(), "campaign failed:\n{r}");
        }
    }

    #[test]
    fn repro_replays_a_single_iteration_identically() {
        let cfg = CampaignConfig {
            seed: 0xFA17,
            points_per_combo: 6,
            ops: 20,
        };
        let fc = FaultCampaign::new(cfg.clone());
        // Iteration 2 is the nested slot; replaying it alone must draw the
        // same point and meet the same contract as inside the full run.
        let one = fc.run_point(4, 2).unwrap();
        assert_eq!(one.points(), 1);
        assert_eq!(one.nested_points, 1);
        let two = fc.run_point(4, 2).unwrap();
        assert_eq!(one.clean(), two.clean());
        assert_eq!(one.point_hist.sum(), two.point_hist.sum());
        assert!(fc.run_point(99, 0).is_none(), "unknown combo");
    }
}
