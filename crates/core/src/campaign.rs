//! Seeded randomized fault campaign (§III-H hardening, fault-model edition).
//!
//! The exhaustive crash sweep ([`crate::crash::CrashSweep`]) enumerates
//! *every* persist boundary but only one fault shape at a time. The campaign
//! composes the whole fault model at once, randomly but reproducibly:
//!
//! * a crash point drawn from the stream's persist-boundary range,
//! * a torn-word mask (whole-line, prefix, arbitrary subset, dropped),
//! * and — on attack iterations — post-crash NVM corruption: node/data bit
//!   flips, offset-record rewrites, raw line overwrites, plus *media*
//!   faults (stuck-at lines, uncorrectable reads) injected into the device.
//!
//! The contract is two-tier. **Crash-only points** must satisfy the strong
//! sweep contract: recovery (strict, or the lenient scrub when a torn
//! metadata line defeats fail-stop recovery) brings back every acknowledged
//! line, with the torn line failing closed. **Attacked points** get the
//! robustness contract: neither strict recovery nor the scrub may panic
//! (arbitrary corruption is the scrub's whole reason to exist), tampered
//! durable data must not be reported `Intact`, and no read of the scrubbed
//! machine may ever return wrong data with an `Ok` — detection, not
//! correction, is the promise under active attack.
//!
//! Every iteration derives its own RNG from `(seed, combo, iteration)`, so
//! a failure reproduces from the tuple printed in the report — and the
//! campaign re-runs the failing iteration on a truncated op stream to
//! shrink the repro before reporting it.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use steins_metadata::CounterMode;
use steins_nvm::CrashTripped;
use steins_obs::{Alarm, AlarmKind, AlarmLog, Histogram, MetricRegistry};
use steins_trace::rng::SmallRng;

use crate::config::{SchemeKind, SystemConfig};
use crate::crash::{silence_crash_trips, CrashSweep, PointSelection, SweepOp, TornCrash};
use crate::engine::synth_data;
use crate::online::{OnlinePolicy, OnlineService};
use crate::par;
use crate::scrub::ScrubReport;
use crate::shard::{RepairOutcome, RepairPolicy, ShardedEngine};

/// The six supported (scheme, counter-mode) combinations: ASIT and STAR are
/// general-counter designs (split-counter variants are out of scope by
/// design), WB and Steins run in both modes.
pub const COMBOS: [(SchemeKind, CounterMode); 6] = [
    (SchemeKind::WriteBack, CounterMode::General),
    (SchemeKind::WriteBack, CounterMode::Split),
    (SchemeKind::Asit, CounterMode::General),
    (SchemeKind::Star, CounterMode::General),
    (SchemeKind::Steins, CounterMode::General),
    (SchemeKind::Steins, CounterMode::Split),
];

/// Campaign parameters. Fully deterministic for a fixed config.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every iteration's RNG derives from it.
    pub seed: u64,
    /// Fault points injected per (scheme, mode) combination.
    pub points_per_combo: usize,
    /// Length of the op stream replayed before each crash.
    pub ops: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x5EED_FA17,
            points_per_combo: 32,
            ops: 60,
        }
    }
}

/// How one injected fault point resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// Crash-only point: the strong sweep contract held.
    CrashRecovered,
    /// Crash-only point: the strong contract was violated.
    CrashFailed,
    /// Attacked point: no panic, verdicts and read-backs consistent.
    AttackHandled,
    /// Attacked point: strict recovery or the scrub unwound.
    AttackPanicked,
    /// Attacked point: a tampered durable line was reported intact, or a
    /// read returned wrong data with `Ok`.
    AttackInconsistent,
}

/// Aggregated campaign results (merge-able across combos).
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Master seed the campaign ran under.
    pub seed: u64,
    /// Crash-only points injected / passed.
    pub crash_points: u64,
    /// Nested points injected (crash *during* recovery of a crash).
    pub nested_points: u64,
    /// Attacked points injected.
    pub attack_points: u64,
    /// Panics that escaped recovery or the scrub (must be zero).
    pub panics: u64,
    /// Strict-recovery integrity errors observed under attack (detection
    /// events; informational).
    pub strict_detected: u64,
    /// Aggregated scrub verdict counters over all attack iterations.
    pub data_intact: u64,
    /// Data lines the scrub classified unrecoverable (expected under
    /// attack; informational).
    pub data_unrecoverable: u64,
    /// Metadata nodes rebuilt by the scrub.
    pub meta_recovered: u64,
    /// Human-readable minimal repros, one per failed point.
    pub failures: Vec<String>,
    /// Distribution of injected crash points (persist-boundary index).
    pub point_hist: Histogram,
}

impl CampaignReport {
    /// True when every injected point met its contract.
    pub fn clean(&self) -> bool {
        self.failures.is_empty() && self.panics == 0
    }

    /// Total injected fault points.
    pub fn points(&self) -> u64 {
        self.crash_points + self.nested_points + self.attack_points
    }

    /// Folds another combo's report into this one.
    pub fn merge(&mut self, other: &CampaignReport) {
        self.crash_points += other.crash_points;
        self.nested_points += other.nested_points;
        self.attack_points += other.attack_points;
        self.panics += other.panics;
        self.strict_detected += other.strict_detected;
        self.data_intact += other.data_intact;
        self.data_unrecoverable += other.data_unrecoverable;
        self.meta_recovered += other.meta_recovered;
        self.failures.extend(other.failures.iter().cloned());
        self.point_hist.merge(&other.point_hist);
    }

    /// Exports the campaign counters under `core.campaign.`.
    pub fn metrics(&self) -> MetricRegistry {
        let mut m = MetricRegistry::new();
        m.counter_add("core.campaign.points.crash", self.crash_points);
        m.counter_add("core.campaign.points.nested", self.nested_points);
        m.counter_add("core.campaign.points.attack", self.attack_points);
        m.counter_add("core.campaign.panics", self.panics);
        m.counter_add("core.campaign.failures", self.failures.len() as u64);
        m.counter_add("core.campaign.strict.detected", self.strict_detected);
        m.counter_add("core.campaign.scrub.data.intact", self.data_intact);
        m.counter_add(
            "core.campaign.scrub.data.unrecoverable",
            self.data_unrecoverable,
        );
        m.counter_add("core.campaign.scrub.meta.recovered", self.meta_recovered);
        m.insert_hist("core.campaign.point", &self.point_hist);
        m
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "campaign seed {:#x}: {} points ({} crash, {} nested, {} attack), \
             {} panics, {} strict detections, scrub {{intact {}, \
             unrecoverable {}, meta-recovered {}}}",
            self.seed,
            self.points(),
            self.crash_points,
            self.nested_points,
            self.attack_points,
            self.panics,
            self.strict_detected,
            self.data_intact,
            self.data_unrecoverable,
            self.meta_recovered,
        )?;
        if self.failures.is_empty() {
            write!(f, "  PASS: every point met its contract")?;
        } else {
            writeln!(
                f,
                "  FAIL: {} point(s) broke the contract",
                self.failures.len()
            )?;
            for fail in &self.failures {
                writeln!(f, "  - {fail}")?;
            }
        }
        Ok(())
    }
}

/// One random post-crash corruption, drawn per attack iteration.
#[derive(Clone, Copy, Debug)]
enum Attack {
    TamperNode {
        offset: u64,
        byte: usize,
        mask: u8,
    },
    TamperData {
        line: u64,
        byte: usize,
        mask: u8,
    },
    RewriteRecord {
        slot: u64,
        entry: Option<u64>,
    },
    RawOverwrite {
        node_offset: u64,
        fill: u8,
    },
    StuckLine {
        node_offset: u64,
        fill: u8,
    },
    Unreadable {
        data_line: u64,
    },
    BitFlip {
        data_line: u64,
        byte: usize,
        bit: u8,
    },
}

/// The randomized fault-campaign driver.
pub struct FaultCampaign {
    pub cfg: CampaignConfig,
}

impl FaultCampaign {
    /// A campaign with the given parameters.
    pub fn new(cfg: CampaignConfig) -> Self {
        FaultCampaign { cfg }
    }

    /// Per-iteration RNG: independent of execution order, so any single
    /// iteration reproduces from `(seed, combo, i)` alone.
    fn rng_for(&self, combo: usize, i: usize) -> SmallRng {
        SmallRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(combo as u32 * 7)
                ^ (i as u64).wrapping_mul(0xD134_2543_DE82_EF95),
        )
    }

    /// Draws the torn-word mask: whole-line persists stay the common case,
    /// with prefix tears, arbitrary subsets, and dropped writes mixed in.
    fn draw_mask(rng: &mut SmallRng) -> u8 {
        match rng.next_u64() % 4 {
            0 | 1 => 0xFF,
            2 => {
                // Prefix tear: the first 1..=7 words landed.
                let words = 1 + (rng.next_u64() % 7) as u8;
                (1u16 << words).wrapping_sub(1) as u8
            }
            _ => (rng.next_u64() & 0xFF) as u8, // arbitrary subset, 0x00 possible
        }
    }

    /// Draws one post-crash corruption against the given image geometry.
    fn draw_attack(
        rng: &mut SmallRng,
        total_nodes: u64,
        data_lines: u64,
        cache_slots: u64,
    ) -> Attack {
        let nz = |m: u8| if m == 0 { 1 } else { m };
        match rng.next_u64() % 7 {
            0 => Attack::TamperNode {
                offset: rng.next_u64() % total_nodes,
                byte: (rng.next_u64() % 64) as usize,
                mask: nz((rng.next_u64() & 0xFF) as u8),
            },
            1 => Attack::TamperData {
                line: rng.next_u64() % data_lines,
                byte: (rng.next_u64() % 64) as usize,
                mask: nz((rng.next_u64() & 0xFF) as u8),
            },
            2 => Attack::RewriteRecord {
                slot: rng.next_u64() % cache_slots,
                entry: if rng.next_u64() % 2 == 0 {
                    Some(rng.next_u64() % total_nodes)
                } else {
                    None
                },
            },
            3 => Attack::RawOverwrite {
                node_offset: rng.next_u64() % total_nodes,
                fill: (rng.next_u64() & 0xFF) as u8,
            },
            4 => Attack::StuckLine {
                node_offset: rng.next_u64() % total_nodes,
                fill: (rng.next_u64() & 0xFF) as u8,
            },
            5 => Attack::Unreadable {
                data_line: rng.next_u64() % data_lines,
            },
            _ => Attack::BitFlip {
                data_line: rng.next_u64() % data_lines,
                byte: (rng.next_u64() % 64) as usize,
                bit: (rng.next_u64() % 8) as u8,
            },
        }
    }

    /// Applies a drawn attack to a crashed image. Returns the *data*
    /// address the attack corrupted in storage, when it targeted the data
    /// plane directly (used for the no-false-`Intact` assertion), and
    /// whether the attack was a read-path media fault.
    fn apply_attack(tc: &mut TornCrash, a: Attack) -> (Option<u64>, bool) {
        let crashed = &mut tc.crashed;
        match a {
            Attack::TamperNode { offset, byte, mask } => {
                crashed.tamper_node_at(offset, byte, mask);
                (None, false)
            }
            Attack::TamperData { line, byte, mask } => {
                crashed.tamper_data_at(line, byte, mask);
                (Some(crashed.layout.data_base + line * 64), false)
            }
            Attack::RewriteRecord { slot, entry } => {
                crashed.rewrite_record(slot, entry);
                (None, false)
            }
            Attack::RawOverwrite { node_offset, fill } => {
                let addr = crashed.layout.node_addr(node_offset);
                crashed.poke_raw(addr, &[fill; 64]);
                (None, false)
            }
            Attack::StuckLine { node_offset, fill } => {
                let addr = crashed.layout.node_addr(node_offset);
                crashed.nvm_mut().inject_stuck_line(addr, [fill; 64]);
                (None, true)
            }
            Attack::Unreadable { data_line } => {
                let addr = crashed.layout.data_base + data_line * 64;
                crashed.nvm_mut().inject_unreadable(addr);
                (None, true)
            }
            Attack::BitFlip {
                data_line,
                byte,
                bit,
            } => {
                let addr = crashed.layout.data_base + data_line * 64;
                crashed.nvm_mut().inject_bit_flip(addr, byte, bit);
                (Some(addr), false)
            }
        }
    }

    /// Builds the crashed-and-attacked image for one attack iteration.
    /// Rebuilding from scratch (rather than cloning) keeps the image's
    /// fault plane and truth map exactly as recovery will see them.
    fn attacked_image(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        mask: u8,
        attacks: &[Attack],
    ) -> Option<(TornCrash, Vec<u64>, bool)> {
        let mut tc = CrashSweep::crash_torn(cfg, ops, k, mask).ok()??;
        let mut tampered_data = Vec::new();
        let mut media = false;
        for &a in attacks {
            let (data_addr, is_media) = Self::apply_attack(&mut tc, a);
            if let Some(addr) = data_addr {
                tampered_data.push(addr);
            }
            media |= is_media;
        }
        Some((tc, tampered_data, media))
    }

    /// Runs one attack iteration; returns `Ok(outcome)` or a failure
    /// description.
    fn attack_iteration(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        mask: u8,
        attacks: &[Attack],
        report: &mut CampaignReport,
    ) -> Result<CampaignOutcome, String> {
        // Strict recovery first: it may detect (Err) or even succeed (the
        // attack can land on untouched regions) — it must never unwind.
        let Some((tc, tampered, media)) = Self::attacked_image(cfg, ops, k, mask, attacks) else {
            return Err("attack image not reproducible".into());
        };
        let expected = tc.expected.clone();
        let sacrificed = tc.sacrificed;
        let crashed = tc.crashed;
        let recoverable = crashed.recoverable();
        match catch_unwind(AssertUnwindSafe(move || crashed.recover().err())) {
            Ok(Some(_)) => report.strict_detected += 1,
            Ok(None) => {}
            Err(_) => {
                report.panics += 1;
                return Err("strict recovery panicked".into());
            }
        }

        // The lenient scrub on a fresh copy of the same image: total by
        // contract, and its damage report must not whitewash the attack.
        let Some((tc2, _, _)) = Self::attacked_image(cfg, ops, k, mask, attacks) else {
            return Err("attack image not reproducible".into());
        };
        let crashed2 = tc2.crashed;
        let (sys, scrub): (Option<crate::SecureNvmSystem>, ScrubReport) =
            match catch_unwind(AssertUnwindSafe(move || crashed2.recover_lenient())) {
                Ok(r) => r,
                Err(_) => {
                    report.panics += 1;
                    return Err("lenient scrub panicked".into());
                }
            };
        report.data_intact += scrub.data_intact;
        report.data_unrecoverable += scrub.data_unrecoverable;
        report.meta_recovered += scrub.meta_recovered;

        // No false Intact: a data line whose *storage* the attack corrupted
        // and that held acknowledged content must show up unrecoverable —
        // unless a read-path media fault shadows what the scrub saw, or the
        // tear already sacrificed it.
        if !media {
            for &addr in &tampered {
                if expected.contains_key(&addr)
                    && Some(addr) != sacrificed
                    && !scrub.unrecoverable_addrs.contains(&addr)
                {
                    return Err(format!(
                        "tampered durable line {addr:#x} not flagged unrecoverable"
                    ));
                }
            }
        }

        // Post-scrub reads must never panic and never return wrong data as
        // `Ok` — Err is acceptable (detection), wrong-Ok is a MAC break.
        if recoverable {
            let Some(mut sys) = sys else {
                return Err("scrub returned no system for a recoverable scheme".into());
            };
            let mut addrs: Vec<u64> = expected.keys().copied().collect();
            addrs.sort_unstable();
            let verdict = catch_unwind(AssertUnwindSafe(move || {
                for addr in addrs {
                    if let Ok(got) = sys.read(addr) {
                        if got != expected[&addr] {
                            return Some(addr);
                        }
                    }
                }
                None
            }));
            match verdict {
                Ok(None) => {}
                Ok(Some(addr)) => {
                    return Err(format!(
                        "read of {addr:#x} returned wrong data as Ok after scrub"
                    ));
                }
                Err(_) => {
                    report.panics += 1;
                    return Err("post-scrub read panicked".into());
                }
            }
        }
        Ok(CampaignOutcome::AttackHandled)
    }

    /// Runs the campaign for one (scheme, mode) combination.
    pub fn run_combo(&self, combo: usize, scheme: SchemeKind, mode: CounterMode) -> CampaignReport {
        self.run_combo_range(combo, scheme, mode, 0..self.cfg.points_per_combo)
    }

    /// Re-runs exactly one campaign iteration — the `--repro` path. The
    /// per-iteration RNG derives from `(seed, combo, i)` alone, so this
    /// replays the very same point, masks and attacks the full campaign
    /// drew. `None` for an out-of-range combo.
    pub fn run_point(&self, combo: usize, i: usize) -> Option<CampaignReport> {
        let (scheme, mode) = *COMBOS.get(combo)?;
        Some(self.run_combo_range(combo, scheme, mode, i..i + 1))
    }

    /// [`Self::run_combo`] over an explicit iteration range.
    fn run_combo_range(
        &self,
        combo: usize,
        scheme: SchemeKind,
        mode: CounterMode,
        range: std::ops::Range<usize>,
    ) -> CampaignReport {
        let cfg = SystemConfig::small_for_tests(scheme, mode);
        let ops = SweepOp::stream(self.cfg.seed ^ ((combo as u64) << 17), 192, self.cfg.ops);
        let sweep = CrashSweep::new(cfg.clone(), ops.clone(), PointSelection::All);
        let label = scheme.label(mode);
        let mut report = CampaignReport {
            seed: self.cfg.seed,
            ..CampaignReport::default()
        };
        let total = match sweep.total_points() {
            Ok(t) if t > 0 => t,
            Ok(_) => return report,
            Err(e) => {
                report
                    .failures
                    .push(format!("{label}: baseline run failed: {e}"));
                return report;
            }
        };
        let data_lines = 192u64; // the stream's line universe (SweepOp::stream)
        let layout =
            steins_metadata::MemoryLayout::new(cfg.mode, cfg.data_lines, cfg.meta_cache.slots());
        let total_nodes = layout.geometry.total_nodes();
        let cache_slots = cfg.meta_cache.slots();

        for i in range {
            let mut rng = self.rng_for(combo, i);
            let k = rng.gen_range_inclusive(1, total);
            let mask = Self::draw_mask(&mut rng);
            report.point_hist.record(k);
            if i % 4 == 2 {
                // Nested point: crash during recovery, then recover again.
                // The inner point is drawn from the persist points recovery
                // itself fires for this exact outer crash; its mask only
                // applies to tearable (line-write) boundaries.
                report.nested_points += 1;
                let draw = rng.next_u64();
                let m1_draw = Self::draw_mask(&mut rng);
                let inner = match CrashSweep::recovery_points(&cfg, &ops, k, mask) {
                    Ok(pts) => pts,
                    Err(fail) => {
                        report.failures.push(format!(
                            "{label} nested point {k} mask {mask:#04x} \
                             (seed {:#x}, iter {i}, {} ops): {}",
                            self.cfg.seed,
                            ops.len(),
                            fail.error
                        ));
                        continue;
                    }
                };
                let (j, m1) = if inner.is_empty() {
                    // WB never starts recovery: the synthetic point checks
                    // the refusal contract under nested arming.
                    (k + 1, 0xFF)
                } else {
                    let p = inner[(draw % inner.len() as u64) as usize];
                    let m1 = if p.kind == steins_nvm::PersistKind::LineWrite {
                        m1_draw
                    } else {
                        0xFF
                    };
                    (p.seq, m1)
                };
                if let Some(repro) = sweep.probe_point_nested(k, mask, j, m1) {
                    report.failures.push(format!(
                        "{label} nested point {k}>{j} masks {mask:#04x}>{m1:#04x} \
                         (seed {:#x}, iter {i}, {} ops): {}",
                        self.cfg.seed,
                        repro.ops.len(),
                        repro.error
                    ));
                }
            } else if i % 2 == 0 {
                // Crash-only point: the strong sweep contract, torn-aware.
                report.crash_points += 1;
                if let Some(repro) = sweep.probe_point_torn(k, mask) {
                    report.failures.push(format!(
                        "{label} crash point {k} mask {mask:#04x} \
                         (seed {:#x}, iter {i}, {} ops): {}",
                        self.cfg.seed,
                        repro.ops.len(),
                        repro.error
                    ));
                }
            } else {
                // Attacked point: robustness contract.
                report.attack_points += 1;
                let n_attacks = 1 + (rng.next_u64() % 3) as usize;
                let attacks: Vec<Attack> = (0..n_attacks)
                    .map(|_| Self::draw_attack(&mut rng, total_nodes, data_lines, cache_slots))
                    .collect();
                if let Err(why) = Self::attack_iteration(&cfg, &ops, k, mask, &attacks, &mut report)
                {
                    // Shrink: re-run on the stream truncated past the
                    // in-flight op; keep the shorter repro when it still
                    // fails the same way.
                    let mut repro_ops = ops.len();
                    if let Ok(Some(tc)) = CrashSweep::crash_torn(&cfg, &ops, k, mask) {
                        let cut = tc.op_index + 1;
                        let mut scratch = CampaignReport::default();
                        if cut < ops.len()
                            && Self::attack_iteration(
                                &cfg,
                                &ops[..cut],
                                k,
                                mask,
                                &attacks,
                                &mut scratch,
                            )
                            .is_err()
                        {
                            repro_ops = cut;
                        }
                    }
                    report.failures.push(format!(
                        "{label} attack point {k} mask {mask:#04x} \
                         (seed {:#x}, iter {i}, {repro_ops} ops, {attacks:?}): {why}",
                        self.cfg.seed
                    ));
                }
            }
        }
        report
    }

    /// Runs all six combinations and merges the reports.
    pub fn run_all(&self) -> CampaignReport {
        let mut merged = CampaignReport {
            seed: self.cfg.seed,
            ..CampaignReport::default()
        };
        for (ci, (scheme, mode)) in COMBOS.iter().enumerate() {
            merged.merge(&self.run_combo(ci, *scheme, *mode));
        }
        merged
    }
}

// ---------------------------------------------------------------------------
// Chaos mode: faults injected under live multi-shard serving traffic.
// ---------------------------------------------------------------------------

/// Chaos-mode parameters. Unlike the offline campaign above (which crashes
/// a single machine at chosen persist boundaries), chaos mode keeps a
/// [`ShardedEngine`] *serving* a Zipfian write mix from worker threads
/// while media faults, torn writes, and whole-shard crashes land mid
/// traffic — and checks graceful degradation: no panic ever escapes, no
/// acknowledged read is silently wrong, and (with the online integrity
/// service enabled) every injected fault ends up healed or quarantined
/// behind a typed alarm.
///
/// Everything is seeded: each shard's op stream, fault schedule, and
/// modeled clock are independent of the host thread schedule, so the
/// report — event log, alarm log, metrics — is byte-identical for a fixed
/// seed no matter how many worker threads serve it.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Master seed for every per-shard stream and fault schedule.
    pub seed: u64,
    /// Shard count of the engine under test.
    pub shards: usize,
    /// Serving worker threads (affects wall-clock only, never the report).
    pub threads: usize,
    /// Operations served per shard.
    pub ops_per_shard: usize,
    /// Faults injected per shard, spread over its op stream.
    pub faults_per_shard: usize,
    /// Whether the online integrity service runs during the chaos.
    pub scrub: bool,
    /// Whether a tripped shard comes back through the bounded self-healing
    /// repair loop ([`ShardedEngine::repair_shard_from`]) instead of the
    /// plain lenient scrub: the volatile quarantine set is captured before
    /// the plug is pulled and replayed (audited) against the rebuilt,
    /// re-verified tree, and a shard whose repair budget runs dry is
    /// parked permanently rather than retried forever.
    pub repair: bool,
    /// Policy for the online service (when `scrub`).
    pub policy: OnlinePolicy,
    /// Counter mode (the scheme is always Steins — chaos exercises the
    /// paper's design; `Split` additionally drives epoch re-encryption).
    pub mode: CounterMode,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            shards: 4,
            threads: 4,
            ops_per_shard: 96,
            faults_per_shard: 3,
            scrub: true,
            repair: false,
            policy: OnlinePolicy {
                scrub_period_ops: 16,
                scrub_batch_lines: 4,
                throttle_occupancy: 0.9,
                epoch_threshold: u64::MAX,
                wear_rotation_writes: u64::MAX,
            },
            mode: CounterMode::Split,
        }
    }
}

/// One scheduled chaos fault (addresses are shard-local data lines).
#[derive(Clone, Copy, Debug)]
enum ChaosFault {
    /// Silent storage corruption: one bit of a data line flips.
    BitFlip { line: u64, byte: usize, bit: u8 },
    /// Stuck-at media fault: reads of the line return a fixed pattern.
    Stuck { line: u64, fill: u8 },
    /// Uncorrectable media fault: the line stops being readable.
    Unreadable { line: u64 },
    /// Transient read fault: the next `failures` reads fail, then heal
    /// (or exhaust the device's retry budget and promote to permanent).
    Transient { line: u64, failures: u32 },
    /// Power-fail the whole shard `delay` persist transitions from now,
    /// tearing the tripping line with `mask` (0xFF = clean cut).
    ShardCrash { delay: u64, mask: u8 },
}

impl ChaosFault {
    fn label(&self) -> &'static str {
        match self {
            ChaosFault::BitFlip { .. } => "bit-flip",
            ChaosFault::Stuck { .. } => "stuck",
            ChaosFault::Unreadable { .. } => "unreadable",
            ChaosFault::Transient { .. } => "transient",
            ChaosFault::ShardCrash { .. } => "shard-crash",
        }
    }
}

/// A shard's precomputed chaos schedule.
struct ChaosPlan {
    /// `(local data line, is_write)` per op.
    ops: Vec<(u64, bool)>,
    /// `(op index, fault)` — injected just before serving that op.
    faults: Vec<(usize, ChaosFault)>,
}

/// Zipfian CDF over `n` items, skew `theta` (θ = 0.99, the YCSB default,
/// matches the stress bench's hot-set mix).
fn zipf_cdf(n: u64, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n as usize);
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
        cdf.push(sum);
    }
    for v in &mut cdf {
        *v /= sum;
    }
    cdf
}

fn zipf_draw(cdf: &[f64], rng: &mut SmallRng) -> u64 {
    let u = rng.gen_f64();
    (cdf.partition_point(|&c| c < u) as u64).min(cdf.len() as u64 - 1)
}

/// Aggregated chaos-run results. [`Self::clean`] is the CI gate.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Seed the run used.
    pub seed: u64,
    /// Shards served.
    pub shards: usize,
    /// Operations attempted across all shards.
    pub ops_attempted: u64,
    /// Operations that completed `Ok`.
    pub served_ok: u64,
    /// Operations that failed with a *typed* [`crate::IntegrityError`]
    /// (degraded shard, quarantined line, MAC/media detection) — graceful
    /// degradation, not failure.
    pub typed_errors: u64,
    /// Panics that escaped an operation (anything but the intentional
    /// [`CrashTripped`] unwind). Must be zero.
    pub unwinds: u64,
    /// Reads acknowledged `Ok` with wrong bytes. Must be zero.
    pub silent_wrong: u64,
    /// Whole-shard crashes tripped and brought back through the lenient
    /// scrub mid-run.
    pub crashes_recovered: u64,
    /// Media faults injected (bit flips, stuck, unreadable, transient).
    pub faults_injected: u64,
    /// Faults skipped because their shard was degraded at injection time.
    pub faults_skipped_degraded: u64,
    /// Injected faults whose line verifies clean again after the drain
    /// pass (transient consumed by retries, or overwritten by traffic).
    pub faults_healed: u64,
    /// Injected faults whose line is quarantined behind an alarm.
    pub faults_quarantined: u64,
    /// Faults neither healed nor quarantined (with `scrub`, must be
    /// empty; shard-granular degradation also accounts).
    pub unaccounted_faults: Vec<String>,
    /// Quarantined lines missing a matching alarm (must be empty).
    pub alarm_shape_violations: Vec<String>,
    /// Every alarm raised, in canonical order (engine lifecycle + every
    /// shard's service log).
    pub alarms: AlarmLog,
    /// Human-readable event log, shard-major then op order.
    pub events: Vec<String>,
    /// Deterministic modeled makespan (max shard clock).
    pub makespan_cycles: u64,
    /// Shards still parked degraded at the end of the run.
    pub degraded_shards: Vec<u16>,
    /// Shards permanently parked by the repair loop (attempt budget spent).
    pub parked_shards: Vec<u16>,
    /// Repair-loop attempts run against tripped shards (with
    /// [`ChaosConfig::repair`]).
    pub repairs_attempted: u64,
    /// Tripped shards the repair loop rebuilt, re-verified, and returned
    /// to `Serving` mid-run.
    pub shards_restored: u64,
    /// Tripped shards the repair loop parked permanently mid-run.
    pub shards_parked: u64,
}

impl ChaosReport {
    /// The chaos contract: no escaped panic, no silently wrong ack, every
    /// quarantined line behind an alarm, and — when the scrub ran — every
    /// injected fault accounted for (healed, quarantined, or its whole
    /// shard degraded).
    pub fn clean(&self) -> bool {
        self.unwinds == 0
            && self.silent_wrong == 0
            && self.alarm_shape_violations.is_empty()
            && self.unaccounted_faults.is_empty()
    }

    /// The self-healing contract on top of [`Self::clean`]: after the
    /// soak, every shard is either `Serving` again or permanently parked
    /// behind its alarm trail — a shard left `Degraded` but un-parked
    /// means the repair loop abandoned it without a verdict.
    pub fn repair_clean(&self) -> bool {
        self.degraded_shards
            .iter()
            .all(|s| self.parked_shards.contains(s))
    }

    /// Exports the chaos counters under `core.chaos.` plus the alarm
    /// counters.
    pub fn metrics(&self) -> MetricRegistry {
        let mut m = MetricRegistry::new();
        m.counter_add("core.chaos.ops", self.ops_attempted);
        m.counter_add("core.chaos.served_ok", self.served_ok);
        m.counter_add("core.chaos.typed_errors", self.typed_errors);
        m.counter_add("core.chaos.unwinds", self.unwinds);
        m.counter_add("core.chaos.silent_wrong", self.silent_wrong);
        m.counter_add("core.chaos.crashes_recovered", self.crashes_recovered);
        m.counter_add("core.chaos.faults.injected", self.faults_injected);
        m.counter_add(
            "core.chaos.faults.skipped_degraded",
            self.faults_skipped_degraded,
        );
        m.counter_add("core.chaos.faults.healed", self.faults_healed);
        m.counter_add("core.chaos.faults.quarantined", self.faults_quarantined);
        m.counter_add(
            "core.chaos.faults.unaccounted",
            self.unaccounted_faults.len() as u64,
        );
        m.counter_add(
            "core.chaos.alarm_shape_violations",
            self.alarm_shape_violations.len() as u64,
        );
        m.counter_add("core.chaos.repairs.attempted", self.repairs_attempted);
        m.counter_add("core.chaos.repairs.restored", self.shards_restored);
        m.counter_add("core.chaos.repairs.parked", self.shards_parked);
        m.gauge_set("core.chaos.makespan_cycles", self.makespan_cycles as f64);
        m.gauge_set(
            "core.chaos.shards.degraded",
            self.degraded_shards.len() as f64,
        );
        m.gauge_set("core.chaos.shards.parked", self.parked_shards.len() as f64);
        m.merge(&self.alarms.metrics());
        m
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos seed {:#x}: {} shards, {} ops ({} ok, {} typed), \
             {} unwinds, {} silent-wrong, {} crashes recovered",
            self.seed,
            self.shards,
            self.ops_attempted,
            self.served_ok,
            self.typed_errors,
            self.unwinds,
            self.silent_wrong,
            self.crashes_recovered,
        )?;
        writeln!(
            f,
            "  faults: {} injected ({} skipped on degraded shards) -> \
             {} healed, {} quarantined, {} unaccounted; {} alarms",
            self.faults_injected,
            self.faults_skipped_degraded,
            self.faults_healed,
            self.faults_quarantined,
            self.unaccounted_faults.len(),
            self.alarms.len(),
        )?;
        if self.repairs_attempted > 0 {
            writeln!(
                f,
                "  repair: {} attempts -> {} restored, {} parked permanently \
                 ({} shards parked at end)",
                self.repairs_attempted,
                self.shards_restored,
                self.shards_parked,
                self.parked_shards.len(),
            )?;
        }
        if self.clean() {
            write!(f, "  PASS: graceful degradation held")?;
        } else {
            writeln!(f, "  FAIL:")?;
            for e in self
                .unaccounted_faults
                .iter()
                .chain(self.alarm_shape_violations.iter())
            {
                writeln!(f, "  - {e}")?;
            }
        }
        Ok(())
    }
}

/// Per-shard serving outcome, merged into the [`ChaosReport`] in shard
/// order after the workers join.
#[derive(Default)]
struct ShardOutcome {
    served_ok: u64,
    typed_errors: u64,
    unwinds: u64,
    silent_wrong: u64,
    crashes_recovered: u64,
    faults_injected: u64,
    faults_skipped_degraded: u64,
    /// `(local line addr, fault label)` of every injected media fault.
    media_faults: Vec<(u64, &'static str)>,
    /// Global-address ground truth of every acknowledged write.
    expected: HashMap<u64, [u8; 64]>,
    /// Lines whose durable state a mid-write power cut left undefined.
    indeterminate: HashSet<u64>,
    events: Vec<String>,
    healed: u64,
    quarantined: u64,
    unaccounted: Vec<String>,
    repairs_attempted: u64,
    shards_restored: u64,
    shards_parked: u64,
}

fn draw_chaos_fault(rng: &mut SmallRng, lines: u64) -> ChaosFault {
    let line = rng.next_u64() % lines;
    match rng.next_u64() % 5 {
        0 => ChaosFault::BitFlip {
            line,
            byte: (rng.next_u64() % 64) as usize,
            bit: (rng.next_u64() % 8) as u8,
        },
        1 => ChaosFault::Stuck {
            line,
            fill: (rng.next_u64() & 0xFF) as u8,
        },
        2 => ChaosFault::Unreadable { line },
        3 => ChaosFault::Transient {
            line,
            failures: if rng.next_u64() % 4 == 0 {
                64 // past the retry budget: promotes to permanent
            } else {
                1 + (rng.next_u64() % 2) as u32
            },
        },
        _ => ChaosFault::ShardCrash {
            delay: rng.next_u64() % 12,
            mask: FaultCampaign::draw_mask(rng),
        },
    }
}

fn chaos_plan(cfg: &ChaosConfig, shard: usize, lines: u64) -> ChaosPlan {
    let mut rng =
        SmallRng::seed_from_u64(cfg.seed ^ (shard as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407));
    let universe = lines.clamp(1, 128);
    let cdf = zipf_cdf(universe, 0.99);
    let ops = (0..cfg.ops_per_shard)
        .map(|_| {
            let line = zipf_draw(&cdf, &mut rng);
            let is_write = rng.next_u64() % 3 != 0; // write-heavy mix
            (line, is_write)
        })
        .collect();
    let mut faults: Vec<(usize, ChaosFault)> = (0..cfg.faults_per_shard)
        .map(|_| {
            let idx = (rng.next_u64() % cfg.ops_per_shard.max(1) as u64) as usize;
            (idx, draw_chaos_fault(&mut rng, universe))
        })
        .collect();
    faults.sort_by_key(|&(i, _)| i);
    ChaosPlan { ops, faults }
}

/// Injects one fault into shard `s`. Degraded shards are skipped (their
/// media is already behind a typed wall).
fn inject_chaos_fault(
    engine: &ShardedEngine,
    s: usize,
    i: usize,
    fault: ChaosFault,
    out: &mut ShardOutcome,
    armed_mask: &mut Option<u8>,
) {
    if engine.is_degraded(s) {
        out.faults_skipped_degraded += 1;
        out.events.push(format!(
            "s{s} op{i}: skip {} (shard degraded)",
            fault.label()
        ));
        return;
    }
    out.faults_injected += 1;
    out.events.push(format!("s{s} op{i}: inject {:?}", fault));
    match fault {
        ChaosFault::BitFlip { line, byte, bit } => {
            engine.with_shard(s, |sys| sys.ctrl.nvm.inject_bit_flip(line * 64, byte, bit));
            out.media_faults.push((line * 64, fault.label()));
        }
        ChaosFault::Stuck { line, fill } => {
            engine.with_shard(s, |sys| {
                sys.ctrl.nvm.inject_stuck_line(line * 64, [fill; 64])
            });
            out.media_faults.push((line * 64, fault.label()));
        }
        ChaosFault::Unreadable { line } => {
            engine.with_shard(s, |sys| sys.ctrl.nvm.inject_unreadable(line * 64));
            out.media_faults.push((line * 64, fault.label()));
        }
        ChaosFault::Transient { line, failures } => {
            engine.with_shard(s, |sys| {
                sys.ctrl
                    .nvm
                    .inject_transient_unreadable(line * 64, failures)
            });
            out.media_faults.push((line * 64, fault.label()));
        }
        ChaosFault::ShardCrash { delay, mask } => {
            engine.with_shard(s, |sys| {
                let at = sys.ctrl.nvm.persist_seq() + 1 + delay;
                sys.ctrl.nvm.arm_crash_torn(at, mask);
            });
            *armed_mask = Some(mask);
        }
    }
}

/// The power-fail path: the shard that tripped is parked `Degraded`
/// (raising the lifecycle alarm), its image is crashed and leniently
/// scrubbed back in, and the online service resumes its pass from the
/// [`journal::ONLINE`](crate::recovery::journal::ONLINE) marks the
/// interrupted scrub left in the ADR journal.
fn recover_tripped_shard(
    cfg: &ChaosConfig,
    engine: &ShardedEngine,
    s: usize,
    i: usize,
    out: &mut ShardOutcome,
    armed_mask: &mut Option<u8>,
) {
    let Some(mut sys) = engine.park_degraded(s) else {
        out.unwinds += 1;
        out.events
            .push(format!("s{s} op{i}: trip on an already-empty slot"));
        return;
    };
    // The power cut drops dirty CPU-cache lines: a previously acknowledged
    // write may come back as an *older* acknowledged version. Durability
    // across crashes is the crash sweep's contract, not chaos's — chaos
    // checks detection — so every pre-crash expectation turns
    // indeterminate until traffic rewrites the line.
    out.indeterminate
        .extend(out.expected.drain().map(|(a, _)| a));
    let trip = sys.ctrl.nvm.tripped_at();
    if armed_mask.take().map(|m| m != 0xFF) == Some(true) {
        engine.raise_alarm(Alarm {
            kind: AlarmKind::TornWrite,
            shard: s as u16,
            addr: trip.map(|p| p.addr),
            cycle: 0,
        });
    }
    sys.ctrl.nvm.disarm_crash();
    let lines = engine.shard_config().data_lines;
    if cfg.repair {
        // Self-healing path: capture the volatile quarantine set before
        // the plug is pulled, then drive the bounded repair loop to a
        // verdict. `now = u64::MAX` forces past the backoff gate — the
        // chaos worker must never read another shard's clock, and a
        // host-time backoff would make the report schedule-dependent.
        let quarantine: Vec<u64> = sys
            .online()
            .map(|o| o.quarantined().collect())
            .unwrap_or_default();
        let trip_seq = trip.map(|p| p.seq);
        let mut crashed = Some(sys.crash());
        loop {
            out.repairs_attempted += 1;
            let outcome = match crashed.take() {
                Some(c) => engine.repair_shard_from(s, c, &quarantine, u64::MAX),
                None => engine.repair_shard(s, u64::MAX),
            };
            match outcome {
                RepairOutcome::Restored(scrub) => {
                    out.shards_restored += 1;
                    out.events.push(format!(
                        "s{s} op{i}: crash tripped at {trip_seq:?}, repaired online \
                         (data unrec {}, {} quarantined replayed)",
                        scrub.data_unrecoverable,
                        quarantine.len(),
                    ));
                    break;
                }
                RepairOutcome::Parked => {
                    out.shards_parked += 1;
                    out.events.push(format!(
                        "s{s} op{i}: crash tripped at {trip_seq:?}, repair budget \
                         spent, shard parked permanently"
                    ));
                    break;
                }
                RepairOutcome::Failed { .. } => continue,
                // Unreachable with a forced `now`; never spin on them.
                RepairOutcome::Backoff { .. } | RepairOutcome::NotDegraded => break,
            }
        }
        out.crashes_recovered += 1;
        return;
    }
    let crashed = sys.crash();
    let resume = OnlineService::resume_cursor(&crashed.nvm().recovery_journal(), lines);
    let scrub = engine.scrub_shard(s, crashed);
    out.crashes_recovered += 1;
    out.events.push(format!(
        "s{s} op{i}: crash tripped at {:?}, scrubbed back (data unrec {}), cursor {:?}",
        trip.map(|p| p.seq),
        scrub.data_unrecoverable,
        resume,
    ));
    if cfg.scrub && !engine.is_degraded(s) {
        engine.with_shard(s, |sys| {
            sys.enable_online(cfg.policy);
            if let (Some(c), Some(svc)) = (resume, sys.online_mut()) {
                svc.set_cursor(c);
            }
        });
    }
}

/// Serves shard `s`'s whole chaos schedule. Entirely shard-local (own op
/// stream, own fault schedule, own modeled clock), so the outcome is
/// independent of which worker thread runs it and when.
fn serve_chaos_shard(
    cfg: &ChaosConfig,
    engine: &ShardedEngine,
    s: usize,
    plan: &ChaosPlan,
) -> ShardOutcome {
    let mut out = ShardOutcome::default();
    let mut armed_mask: Option<u8> = None;
    let mut next_fault = 0usize;
    let mut seq = 0u64;
    for (i, &(line, is_write)) in plan.ops.iter().enumerate() {
        while next_fault < plan.faults.len() && plan.faults[next_fault].0 <= i {
            let (_, fault) = plan.faults[next_fault];
            next_fault += 1;
            inject_chaos_fault(engine, s, i, fault, &mut out, &mut armed_mask);
        }
        let gaddr = engine.map().global_line(s, line) * 64;
        if is_write {
            seq += 1;
            let data = synth_data(gaddr, seq);
            match catch_unwind(AssertUnwindSafe(|| engine.write(gaddr, &data))) {
                Ok(Ok(())) => {
                    out.served_ok += 1;
                    out.expected.insert(gaddr, data);
                    out.indeterminate.remove(&gaddr);
                }
                Ok(Err(_)) => out.typed_errors += 1,
                Err(p) if p.is::<CrashTripped>() => {
                    // The cut may or may not have persisted this write.
                    out.expected.remove(&gaddr);
                    out.indeterminate.insert(gaddr);
                    recover_tripped_shard(cfg, engine, s, i, &mut out, &mut armed_mask);
                }
                Err(_) => {
                    out.unwinds += 1;
                    out.events.push(format!("s{s} op{i}: write panicked"));
                }
            }
        } else {
            match catch_unwind(AssertUnwindSafe(|| engine.read(gaddr))) {
                Ok(Ok(got)) => {
                    out.served_ok += 1;
                    if !out.indeterminate.contains(&gaddr) {
                        if let Some(want) = out.expected.get(&gaddr) {
                            if got != *want {
                                out.silent_wrong += 1;
                                out.events
                                    .push(format!("s{s} op{i}: read {gaddr:#x} wrong as Ok"));
                            }
                        }
                    }
                }
                Ok(Err(_)) => out.typed_errors += 1,
                Err(p) if p.is::<CrashTripped>() => {
                    recover_tripped_shard(cfg, engine, s, i, &mut out, &mut armed_mask);
                }
                Err(_) => {
                    out.unwinds += 1;
                    out.events.push(format!("s{s} op{i}: read panicked"));
                }
            }
        }
    }
    // Disarm any crash that never tripped, then — if any media fault hit
    // this shard — run the settling pass so every surviving fault gets
    // classified before accounting. Fault-free shards skip the drain:
    // incremental patrol is the service's steady state, and the full pass
    // would dominate the scrub-overhead measurement.
    if !engine.is_degraded(s) {
        engine.with_shard(s, |sys| sys.ctrl.nvm.disarm_crash());
        if cfg.scrub && !out.media_faults.is_empty() {
            engine.with_shard(s, |sys| sys.online_scrub_pass());
        }
    }
    // Fault accounting: healed, quarantined, or the whole shard is parked.
    for &(laddr, label) in &out.media_faults {
        if engine.is_degraded(s) {
            out.quarantined += 1; // shard-granular: behind the typed wall
            continue;
        }
        let (quarantined, readable) = engine.with_shard(s, |sys| {
            (
                sys.online().is_some_and(|o| o.is_quarantined(laddr)),
                sys.ctrl.nvm.is_readable(laddr),
            )
        });
        if quarantined {
            out.quarantined += 1;
        } else if readable {
            out.healed += 1;
        } else if cfg.scrub {
            out.unaccounted.push(format!(
                "s{s} {label} at local {laddr:#x}: unreadable yet not quarantined"
            ));
        }
    }
    out
}

/// Runs chaos mode: `cfg.threads` workers serve `cfg.shards` shards'
/// schedules off a work-stealing queue while faults land mid-traffic, then
/// a single-threaded verification sweep re-reads every acknowledged line.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    silence_crash_trips();
    let sys_cfg = SystemConfig::small_for_tests(SchemeKind::Steins, cfg.mode);
    let mut engine = ShardedEngine::new(sys_cfg, cfg.shards);
    if cfg.repair {
        // The rebuilt shard comes back with the run's own online policy.
        engine.set_repair_policy(RepairPolicy {
            online: cfg.policy,
            ..RepairPolicy::default()
        });
    }
    let engine = engine;
    if cfg.scrub {
        engine.enable_online(cfg.policy);
    }
    let plans: Vec<ChaosPlan> = (0..cfg.shards)
        .map(|s| chaos_plan(cfg, s, engine.shard_config().data_lines))
        .collect();
    let (outcomes, _steals) = par::run_regions(cfg.threads.max(1), cfg.shards, |s, _w| {
        serve_chaos_shard(cfg, &engine, s, &plans[s])
    });

    let mut report = ChaosReport {
        seed: cfg.seed,
        shards: cfg.shards,
        ops_attempted: (cfg.shards * cfg.ops_per_shard) as u64,
        ..ChaosReport::default()
    };
    for out in &outcomes {
        report.served_ok += out.served_ok;
        report.typed_errors += out.typed_errors;
        report.unwinds += out.unwinds;
        report.silent_wrong += out.silent_wrong;
        report.crashes_recovered += out.crashes_recovered;
        report.faults_injected += out.faults_injected;
        report.faults_skipped_degraded += out.faults_skipped_degraded;
        report.faults_healed += out.healed;
        report.faults_quarantined += out.quarantined;
        report.repairs_attempted += out.repairs_attempted;
        report.shards_restored += out.shards_restored;
        report.shards_parked += out.shards_parked;
        report
            .unaccounted_faults
            .extend(out.unaccounted.iter().cloned());
        report.events.extend(out.events.iter().cloned());
    }

    // Verification sweep: every acknowledged line reads back correct or
    // fails typed — never wrong-as-Ok, never a panic.
    for (s, out) in outcomes.iter().enumerate() {
        let mut addrs: Vec<u64> = out.expected.keys().copied().collect();
        addrs.sort_unstable();
        for addr in addrs {
            match catch_unwind(AssertUnwindSafe(|| engine.read(addr))) {
                Ok(Ok(got)) => {
                    if got != out.expected[&addr] {
                        report.silent_wrong += 1;
                        report
                            .events
                            .push(format!("s{s} verify: {addr:#x} wrong as Ok"));
                    }
                }
                Ok(Err(_)) => report.typed_errors += 1,
                Err(_) => {
                    report.unwinds += 1;
                    report
                        .events
                        .push(format!("s{s} verify: read {addr:#x} panicked"));
                }
            }
        }
    }

    // Alarm shape: every quarantined line must sit behind at least one
    // alarm carrying its (shard, addr).
    let drained = engine.drain_alarms();
    for s in 0..cfg.shards {
        if engine.is_degraded(s) {
            continue;
        }
        let quarantined: Vec<u64> = engine.with_shard(s, |sys| match sys.online() {
            Some(o) => o.quarantined().collect(),
            None => Vec::new(),
        });
        for laddr in quarantined {
            let covered = drained
                .events()
                .iter()
                .any(|a| a.shard == s as u16 && a.addr == Some(laddr));
            if !covered {
                report.alarm_shape_violations.push(format!(
                    "s{s} local {laddr:#x} quarantined without an alarm"
                ));
            }
        }
    }
    let mut alarms = AlarmLog::new();
    for a in drained.canonical() {
        alarms.raise(a);
    }
    report.alarms = alarms;
    report.makespan_cycles = engine.sim_cycles();
    report.degraded_shards = engine.degraded_shards();
    report.parked_shards = engine.parked_shards();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_for_a_fixed_seed() {
        let cfg = CampaignConfig {
            seed: 0xABCD,
            points_per_combo: 4,
            ops: 18,
        };
        let a =
            FaultCampaign::new(cfg.clone()).run_combo(4, SchemeKind::Steins, CounterMode::General);
        let b = FaultCampaign::new(cfg).run_combo(4, SchemeKind::Steins, CounterMode::General);
        assert_eq!(a.clean(), b.clean());
        assert_eq!(a.points(), b.points());
        assert_eq!(a.data_intact, b.data_intact);
        assert_eq!(a.data_unrecoverable, b.data_unrecoverable);
        assert_eq!(a.strict_detected, b.strict_detected);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.point_hist.count(), b.point_hist.count());
        assert_eq!(a.point_hist.sum(), b.point_hist.sum());
    }

    #[test]
    fn small_campaign_passes_on_steins_and_asit() {
        let cfg = CampaignConfig {
            seed: 0xFA17,
            points_per_combo: 6,
            ops: 20,
        };
        let fc = FaultCampaign::new(cfg);
        for (ci, scheme) in [(2, SchemeKind::Asit), (4, SchemeKind::Steins)] {
            let r = fc.run_combo(ci, scheme, CounterMode::General);
            assert!(r.clean(), "campaign failed:\n{r}");
            assert_eq!(r.points(), 6);
            assert_eq!(r.panics, 0);
        }
    }

    #[test]
    fn campaign_metrics_export_round_trips() {
        let cfg = CampaignConfig {
            seed: 1,
            points_per_combo: 2,
            ops: 12,
        };
        let r = FaultCampaign::new(cfg).run_combo(0, SchemeKind::WriteBack, CounterMode::General);
        let m = r.metrics();
        assert_eq!(
            m.counter("core.campaign.points.crash").unwrap()
                + m.counter("core.campaign.points.nested").unwrap()
                + m.counter("core.campaign.points.attack").unwrap(),
            r.points()
        );
        assert!(m.hist("core.campaign.point").is_some());
    }

    #[test]
    fn campaign_includes_nested_axis_and_passes() {
        // points_per_combo ≥ 3 makes iteration 2 a nested point.
        let cfg = CampaignConfig {
            seed: 0x2E57ED,
            points_per_combo: 4,
            ops: 16,
        };
        let fc = FaultCampaign::new(cfg);
        for (ci, scheme) in [(2, SchemeKind::Asit), (3, SchemeKind::Star)] {
            let r = fc.run_combo(ci, scheme, CounterMode::General);
            assert_eq!(r.nested_points, 1, "iteration 2 must be nested");
            assert!(r.clean(), "campaign failed:\n{r}");
        }
    }

    #[test]
    fn repro_replays_a_single_iteration_identically() {
        let cfg = CampaignConfig {
            seed: 0xFA17,
            points_per_combo: 6,
            ops: 20,
        };
        let fc = FaultCampaign::new(cfg.clone());
        // Iteration 2 is the nested slot; replaying it alone must draw the
        // same point and meet the same contract as inside the full run.
        let one = fc.run_point(4, 2).unwrap();
        assert_eq!(one.points(), 1);
        assert_eq!(one.nested_points, 1);
        let two = fc.run_point(4, 2).unwrap();
        assert_eq!(one.clean(), two.clean());
        assert_eq!(one.point_hist.sum(), two.point_hist.sum());
        assert!(fc.run_point(99, 0).is_none(), "unknown combo");
    }

    #[test]
    fn chaos_smoke_degrades_gracefully() {
        let cfg = ChaosConfig::default();
        let r = run_chaos(&cfg);
        assert!(r.clean(), "chaos failed:\n{r}");
        assert_eq!(r.unwinds, 0, "panics escaped:\n{r}");
        assert_eq!(r.silent_wrong, 0, "silently wrong acks:\n{r}");
        assert!(r.faults_injected > 0, "no faults drawn — widen the plan");
        assert!(
            r.served_ok > 0,
            "nothing served despite {} ops",
            r.ops_attempted
        );
        // The fault mix makes shard crashes likely across 4 shards; with
        // the default seed at least one must trip and be scrubbed back.
        assert!(r.crashes_recovered > 0, "no crash exercised:\n{r}");
    }

    #[test]
    fn chaos_report_is_identical_across_worker_counts() {
        let base = ChaosConfig {
            seed: 0xD1CE,
            threads: 1,
            ..ChaosConfig::default()
        };
        let one = run_chaos(&base);
        let four = run_chaos(&ChaosConfig {
            threads: 4,
            ..base.clone()
        });
        assert_eq!(one.events, four.events, "event logs diverged");
        assert_eq!(
            one.alarms.to_json().pretty(),
            four.alarms.to_json().pretty(),
            "alarm logs diverged"
        );
        assert_eq!(
            one.metrics().to_json_deterministic().pretty(),
            four.metrics().to_json_deterministic().pretty(),
            "metrics diverged"
        );
        assert_eq!(one.makespan_cycles, four.makespan_cycles);
        assert_eq!(one.degraded_shards, four.degraded_shards);
    }

    #[test]
    fn chaos_with_repair_restores_or_parks_every_shard() {
        let cfg = ChaosConfig {
            repair: true,
            ..ChaosConfig::default()
        };
        let r = run_chaos(&cfg);
        assert!(r.clean(), "chaos failed:\n{r}");
        assert!(r.repair_clean(), "shard left degraded but un-parked:\n{r}");
        assert!(r.crashes_recovered > 0, "no crash exercised:\n{r}");
        assert!(r.repairs_attempted >= r.crashes_recovered);
        assert_eq!(
            r.shards_restored + r.shards_parked,
            r.crashes_recovered,
            "every tripped shard needs a repair verdict:\n{r}"
        );
        // A restored shard announces itself: started + restored alarms.
        if r.shards_restored > 0 {
            let started = r
                .alarms
                .events()
                .iter()
                .filter(|a| a.kind == AlarmKind::ShardRepairStarted)
                .count() as u64;
            let restored = r
                .alarms
                .events()
                .iter()
                .filter(|a| a.kind == AlarmKind::ShardRestored)
                .count() as u64;
            assert!(started >= r.shards_restored);
            assert_eq!(restored, r.shards_restored);
        }
    }

    #[test]
    fn chaos_repair_report_is_identical_across_worker_counts() {
        let base = ChaosConfig {
            seed: 0xD1CE,
            threads: 1,
            repair: true,
            ..ChaosConfig::default()
        };
        let one = run_chaos(&base);
        let two = run_chaos(&ChaosConfig {
            threads: 2,
            ..base.clone()
        });
        let eight = run_chaos(&ChaosConfig {
            threads: 8,
            ..base.clone()
        });
        for other in [&two, &eight] {
            assert_eq!(one.events, other.events, "event logs diverged");
            assert_eq!(
                one.alarms.to_json().pretty(),
                other.alarms.to_json().pretty(),
                "alarm logs diverged"
            );
            assert_eq!(
                one.metrics().to_json_deterministic().pretty(),
                other.metrics().to_json_deterministic().pretty(),
                "metrics diverged"
            );
            assert_eq!(one.makespan_cycles, other.makespan_cycles);
            assert_eq!(one.degraded_shards, other.degraded_shards);
            assert_eq!(one.parked_shards, other.parked_shards);
        }
    }

    #[test]
    fn chaos_without_scrub_still_never_lies() {
        let r = run_chaos(&ChaosConfig {
            seed: 0x0BAD_5EED,
            scrub: false,
            ..ChaosConfig::default()
        });
        // Without the online service there is no quarantine ledger, so
        // fault accounting is relaxed — but the core contract holds.
        assert_eq!(r.unwinds, 0, "panics escaped:\n{r}");
        assert_eq!(r.silent_wrong, 0, "silently wrong acks:\n{r}");
    }
}
