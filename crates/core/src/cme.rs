//! Counter-mode encryption helpers and the per-block MAC record.
//!
//! CME (§II-B): a data line is XORed with a one-time pad generated from
//! `(line address, major counter, minor counter)` — the pad is never reused
//! because each write advances the counter.
//!
//! Each data block also carries a 16-byte **MAC record**: its 64-bit HMAC
//! and a 64-bit *recovery field* packing the encryption counter
//! (`(major << 6) | minor` for split counters, the raw counter for general
//! ones). §II-D: "we store the major counter in the HMAC of the data block
//! for recovery"; DESIGN.md §2.7 documents the ECC-spare-bits substitution.

use steins_crypto::CryptoEngine;

/// XORs a 64 B line with the OTP for `(addr, major, minor)` — both
/// encryption and decryption.
pub fn xor_otp(engine: &dyn CryptoEngine, addr: u64, major: u64, minor: u64, line: &mut [u8; 64]) {
    let otp = engine.otp(addr, major, minor);
    for (b, o) in line.iter_mut().zip(otp.iter()) {
        *b ^= o;
    }
}

/// The 16-byte per-data-block MAC + recovery record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MacRecord {
    /// 64-bit HMAC over (ciphertext ‖ address ‖ major ‖ minor).
    pub mac: u64,
    /// Packed recovery counter.
    pub recovery: u64,
}

impl MacRecord {
    /// Packs `(major, minor)` into the recovery field.
    pub fn pack_recovery(major: u64, minor: u64) -> u64 {
        debug_assert!(minor < 64, "minor exceeds 6 bits");
        debug_assert!(major < (1 << 58), "major exceeds 58 bits");
        (major << 6) | minor
    }

    /// Unpacks the recovery field into `(major, minor)`.
    pub fn unpack_recovery(recovery: u64) -> (u64, u64) {
        (recovery >> 6, recovery & 63)
    }

    /// Serializes into 16 bytes.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.mac.to_le_bytes());
        out[8..].copy_from_slice(&self.recovery.to_le_bytes());
        out
    }

    /// Deserializes from 16 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        MacRecord {
            mac: u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            recovery: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        }
    }

    /// Reads record `slot` (0–3) out of a 64 B MAC-region line.
    pub fn read_slot(line: &[u8; 64], slot: usize) -> Self {
        debug_assert!(slot < 4);
        Self::from_bytes(&line[slot * 16..slot * 16 + 16])
    }

    /// Writes this record into `slot` of a MAC-region line.
    pub fn write_slot(&self, line: &mut [u8; 64], slot: usize) {
        debug_assert!(slot < 4);
        line[slot * 16..slot * 16 + 16].copy_from_slice(&self.to_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_crypto::{CryptoKind, SecretKey};

    fn engine() -> Box<dyn CryptoEngine> {
        steins_crypto::engine::make_engine(CryptoKind::Real, SecretKey([1; 16]))
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let e = engine();
        let plain = [0x3C; 64];
        let mut line = plain;
        xor_otp(e.as_ref(), 0x1000, 7, 3, &mut line);
        assert_ne!(line, plain, "ciphertext differs");
        xor_otp(e.as_ref(), 0x1000, 7, 3, &mut line);
        assert_eq!(line, plain, "XOR is an involution");
    }

    #[test]
    fn wrong_counter_garbles() {
        let e = engine();
        let plain = [9u8; 64];
        let mut line = plain;
        xor_otp(e.as_ref(), 0x40, 1, 0, &mut line);
        xor_otp(e.as_ref(), 0x40, 2, 0, &mut line);
        assert_ne!(line, plain);
    }

    #[test]
    fn recovery_pack_roundtrip() {
        for (maj, min) in [(0u64, 0u64), (1, 63), (12345, 17), ((1 << 56) - 1, 63)] {
            let packed = MacRecord::pack_recovery(maj, min);
            assert_eq!(MacRecord::unpack_recovery(packed), (maj, min));
        }
    }

    #[test]
    fn slots_are_independent() {
        let mut line = [0u8; 64];
        let a = MacRecord {
            mac: 1,
            recovery: 2,
        };
        let b = MacRecord {
            mac: 3,
            recovery: 4,
        };
        a.write_slot(&mut line, 0);
        b.write_slot(&mut line, 3);
        assert_eq!(MacRecord::read_slot(&line, 0), a);
        assert_eq!(MacRecord::read_slot(&line, 3), b);
        assert_eq!(MacRecord::read_slot(&line, 1), MacRecord::default());
    }
}
