//! System configuration (the knobs of Table I).

use steins_cache::{CpuConfig, HierarchyConfig};
use steins_crypto::CryptoKind;
use steins_metadata::cache::MetaCacheConfig;
pub use steins_metadata::CounterMode;
use steins_nvm::NvmConfig;

/// Which recovery scheme protects the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Plain write-back secure NVM: CME + lazy-update SIT, **no recovery
    /// support**. The figures' baseline (WB-GC / WB-SC).
    WriteBack,
    /// Anubis for SGX integrity trees: every metadata-cache modification is
    /// mirrored to a shadow table (2× writes) and verified through a 4-level
    /// cache-tree over cached nodes.
    Asit,
    /// SIT trace-and-recovery: parent-counter LSBs stored in children,
    /// multi-layer dirty bitmap (updated on clean↔dirty both ways), and a
    /// cache-tree over dirty nodes requiring per-set address sorting.
    Star,
    /// This paper: generated parent counters, offset records (clean→dirty
    /// only, ADR-cached), per-level LInc trust bases, NV parent-counter
    /// buffer removing parent reads from the write critical path.
    Steins,
}

impl SchemeKind {
    /// Figure label combined with a counter mode ("Steins-GC" etc.).
    pub fn label(&self, mode: CounterMode) -> String {
        let base = match self {
            SchemeKind::WriteBack => "WB",
            SchemeKind::Asit => "ASIT",
            SchemeKind::Star => "STAR",
            SchemeKind::Steins => "Steins",
        };
        format!("{}-{}", base, mode.label())
    }

    /// Whether the scheme can recover security metadata after a crash.
    pub fn supports_recovery(&self) -> bool {
        !matches!(self, SchemeKind::WriteBack)
    }
}

/// How a leaf node's counters are recovered after a crash (§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafRecovery {
    /// Default: the encryption counter rides in the per-block MAC record
    /// (the ECC-spare-bits substitution of DESIGN.md §2.7) — §II-D's
    /// "store the major counter in the HMAC of the data block".
    MacRecord,
    /// Osiris-style (§V): no counter is stored with the data. Instead every
    /// counter is write-through-flushed each `window` increments
    /// (stop-loss), and recovery *probes* counters in
    /// `[stale, stale + window]` until the data MAC verifies. The retrieved
    /// leaves are then verified with `L0Inc`, exactly as the paper sketches
    /// for the Osiris integration.
    OsirisProbe {
        /// Stop-loss window (Osiris' N).
        window: u64,
    },
}

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Recovery scheme.
    pub scheme: SchemeKind,
    /// Leaf counter organization (GC/SC).
    pub mode: CounterMode,
    /// Crypto fidelity (real AES/HMAC vs fast keyed hash).
    pub crypto: CryptoKind,
    /// NVM device organization + timings.
    pub nvm: NvmConfig,
    /// CPU cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// CPU front end.
    pub cpu: CpuConfig,
    /// Metadata cache geometry.
    pub meta_cache: MetaCacheConfig,
    /// User data lines protected by the tree (the rest of the device holds
    /// metadata regions).
    pub data_lines: u64,
    /// HMAC unit latency in cycles (Table I: 40).
    pub hash_latency: u64,
    /// Steins' non-volatile parent-counter buffer capacity in bytes
    /// (Table I: 128 B ⇒ 8 × 16 B entries).
    pub nv_buffer_bytes: usize,
    /// Record lines cached in the memory controller's ADR region
    /// (Table I: 16).
    pub record_cache_lines: usize,
    /// STAR: bitmap lines cached in the controller.
    pub bitmap_cache_lines: usize,
    /// Secret key seed (deterministic runs).
    pub key_seed: u64,
    /// Assumed latency to read-and-verify one metadata line during
    /// *recovery*, in nanoseconds (§IV-D: 100 ns, as in Anubis/STAR/Osiris).
    pub recovery_read_ns: f64,
    /// Leaf-counter recovery mechanism (§V).
    pub leaf_recovery: LeafRecovery,
    /// Eager tree updates (§II-C): every data write updates the whole
    /// ancestor branch instead of only the leaf. Kept as an ablation
    /// baseline (WB only) to quantify why all evaluated schemes use the
    /// lazy scheme.
    pub eager_update: bool,
}

impl SystemConfig {
    /// The paper's Table I configuration.
    pub fn table1(scheme: SchemeKind, mode: CounterMode) -> Self {
        let nvm = NvmConfig::default();
        SystemConfig {
            scheme,
            mode,
            crypto: CryptoKind::Fast,
            data_lines: nvm.lines() * 3 / 4, // data region; the rest holds metadata
            nvm,
            hierarchy: HierarchyConfig::default(),
            cpu: CpuConfig::default(),
            meta_cache: MetaCacheConfig::table1(),
            hash_latency: 40,
            nv_buffer_bytes: 128,
            record_cache_lines: 16,
            bitmap_cache_lines: 16,
            key_seed: 0x57E_145,
            recovery_read_ns: 100.0,
            leaf_recovery: LeafRecovery::MacRecord,
            eager_update: false,
        }
    }

    /// A fast configuration for the figure sweeps: Table I secure
    /// parameters, scaled-down footprint-matched device.
    pub fn sweep(scheme: SchemeKind, mode: CounterMode) -> Self {
        let mut cfg = Self::table1(scheme, mode);
        cfg.nvm.capacity_bytes = 256 << 20;
        cfg.data_lines = (128u64 << 20) / 64; // 128 MB data region
        cfg
    }

    /// A tiny configuration for unit/integration tests: small caches so
    /// evictions, crashes and recovery paths trigger within a few hundred
    /// operations. Uses real AES/HMAC crypto.
    pub fn small_for_tests(scheme: SchemeKind, mode: CounterMode) -> Self {
        SystemConfig {
            scheme,
            mode,
            crypto: CryptoKind::Real,
            nvm: NvmConfig::small_for_tests(),
            hierarchy: HierarchyConfig::small_for_tests(),
            cpu: CpuConfig::default(),
            meta_cache: MetaCacheConfig {
                capacity_bytes: 8 << 10, // 128 slots: 16 sets × 8 ways
                ways: 8,
            },
            data_lines: 1 << 12, // 256 KB of data
            hash_latency: 40,
            nv_buffer_bytes: 128,
            record_cache_lines: 4,
            bitmap_cache_lines: 4,
            key_seed: 0xDEC0DE,
            recovery_read_ns: 100.0,
            leaf_recovery: LeafRecovery::MacRecord,
            eager_update: false,
        }
    }

    /// The derived secret key.
    pub fn secret_key(&self) -> steins_crypto::SecretKey {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&self.key_seed.to_le_bytes());
        k[8..].copy_from_slice(&self.key_seed.rotate_left(17).to_le_bytes());
        steins_crypto::SecretKey(k)
    }

    /// Validates cross-field constraints, panicking with a clear message on
    /// nonsense (ASIT/STAR are GC-only designs, §IV: "neither ASIT nor STAR
    /// considers the split counter block").
    pub fn validate(&self) {
        if matches!(self.scheme, SchemeKind::Asit | SchemeKind::Star) {
            assert_eq!(
                self.mode,
                CounterMode::General,
                "{:?} does not support split counter blocks",
                self.scheme
            );
        }
        assert!(self.data_lines >= 1, "empty data region");
        assert!(
            self.nv_buffer_bytes >= 16,
            "NV buffer must hold at least one 16 B entry"
        );
        assert!(self.record_cache_lines >= 1);
        if self.eager_update {
            assert_eq!(
                self.scheme,
                SchemeKind::WriteBack,
                "eager updates are an ablation baseline for WB only"
            );
        }
        if let LeafRecovery::OsirisProbe { window } = self.leaf_recovery {
            assert!(window >= 2, "Osiris stop-loss window must be at least 2");
            assert_eq!(
                self.mode,
                CounterMode::General,
                "Osiris probing recovers plain counters; use GC mode"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SchemeKind::Steins.label(CounterMode::Split), "Steins-SC");
        assert_eq!(SchemeKind::WriteBack.label(CounterMode::General), "WB-GC");
    }

    #[test]
    fn recovery_support() {
        assert!(!SchemeKind::WriteBack.supports_recovery());
        assert!(SchemeKind::Steins.supports_recovery());
        assert!(SchemeKind::Asit.supports_recovery());
        assert!(SchemeKind::Star.supports_recovery());
    }

    #[test]
    fn table1_matches_paper() {
        let c = SystemConfig::table1(SchemeKind::Steins, CounterMode::Split);
        assert_eq!(c.hash_latency, 40);
        assert_eq!(c.nv_buffer_bytes, 128);
        assert_eq!(c.record_cache_lines, 16);
        assert_eq!(c.meta_cache.capacity_bytes, 256 << 10);
        assert_eq!(c.nvm.capacity_bytes, 16 << 30);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "does not support split")]
    fn asit_split_rejected() {
        SystemConfig::small_for_tests(SchemeKind::Asit, CounterMode::Split).validate();
    }

    #[test]
    fn secret_key_deterministic() {
        let a = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let b = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        assert_eq!(a.secret_key().0, b.secret_key().0);
    }
}
