//! Crash injection: what survives a power failure and what does not.
//!
//! Lost: the metadata cache (all dirty nodes — the recovery problem), the
//! CPU caches (dirty user lines — an application-level loss the persistent
//! workloads avoid by flushing), and all volatile scheme state (cache-tree
//! intermediates).
//!
//! Survives: the NVM contents including every write the write queue had
//! accepted (the queue is in the ADR domain), the ADR-cached record/bitmap
//! lines (flushed with residual power), and the on-chip NV registers — the
//! SIT root, Steins' LIncs and NV buffer, ASIT/STAR's cache-tree root.

use crate::config::{SchemeKind, SystemConfig};
use crate::diagnose;
use crate::engine::SecureNvmSystem;
use crate::error::IntegrityError;
use crate::linc::LincBank;
use crate::nvbuffer::NvBuffer;
use crate::scheme::SchemeState;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use steins_crypto::{CryptoEngine, FxHashMap};
use steins_metadata::{CounterMode, MemoryLayout, RootNode};
use steins_nvm::{CrashTripped, NvmDevice, PersistKind, PersistPoint};
use steins_trace::rng::SmallRng;

/// Per-scheme non-volatile remnants.
pub enum NvState {
    /// WB keeps nothing (and can recover nothing).
    WriteBack,
    /// ASIT: cache-tree root register + shadow-table tags (non-volatile
    /// alongside the table; see `scheme::asit`).
    Asit {
        /// NV cache-tree root.
        nv_root: u64,
        /// slot → node offset for occupied shadow entries.
        shadow_tags: HashMap<u64, u64>,
        /// ADR-domain pre-image of an in-flight shadow update (None after a
        /// clean boundary; Some exactly when the crash landed inside the
        /// shadow write, where the line may have torn).
        inflight: Option<crate::scheme::asit::AsitInflight>,
    },
    /// STAR: cache-tree root register.
    Star {
        /// NV cache-tree root.
        nv_root: u64,
    },
    /// Steins: LInc register + NV parent-counter buffer.
    Steins {
        /// The per-level trust bases.
        lincs: LincBank,
        /// Parked parent updates.
        nv_buffer: NvBuffer,
    },
}

/// A machine that lost power: only non-volatile state remains.
pub struct CrashedSystem {
    pub(crate) cfg: SystemConfig,
    pub(crate) layout: MemoryLayout,
    pub(crate) crypto: Box<dyn CryptoEngine>,
    pub(crate) nvm: NvmDevice,
    pub(crate) root: RootNode,
    pub(crate) nv: NvState,
    /// Ground truth restricted to lines whose latest value was persisted
    /// (CPU-dirty lines are genuinely lost).
    pub(crate) truth: FxHashMap<u64, [u8; 64]>,
    /// Lines whose latest stores were lost in the CPU caches.
    pub(crate) lost_lines: Vec<u64>,
    /// Recovery lane-count override for this image (None: the
    /// `STEINS_RECOVERY_WORKERS` env default). See [`crate::par`].
    pub(crate) recovery_lanes: Option<usize>,
}

impl SecureNvmSystem {
    /// Pulls the power plug. Consumes the system; only non-volatile state
    /// crosses into the [`CrashedSystem`].
    pub fn crash(mut self) -> CrashedSystem {
        // CPU-cache-resident dirty lines are lost: their last-stored values
        // never reached the controller.
        let lost_lines = self.hier.dirty_lines();
        let mut truth = self.truth;
        for addr in &lost_lines {
            truth.remove(addr);
        }

        // ADR flush: residual power pushes the controller's ADR-domain lines
        // into NVM. (Write-queue entries were applied to the device at
        // acceptance, so they are already durable.)
        let nv = match self.ctrl.scheme {
            SchemeState::WriteBack => NvState::WriteBack,
            SchemeState::Asit(st) => NvState::Asit {
                nv_root: st.nv_root,
                shadow_tags: st.shadow_tags,
                inflight: st.inflight,
            },
            SchemeState::Star(mut st) => {
                for (addr, line) in st.bitmap_cache.crash_flush() {
                    self.ctrl.nvm.poke(addr, &line);
                }
                NvState::Star {
                    nv_root: st.nv_root,
                }
            }
            SchemeState::Steins(mut st) => {
                for (addr, line) in st.record_cache.crash_flush() {
                    self.ctrl.nvm.poke(addr, &line);
                }
                NvState::Steins {
                    lincs: st.lincs,
                    nv_buffer: st.nv_buffer,
                }
            }
        };

        CrashedSystem {
            cfg: self.cfg,
            layout: self.ctrl.layout,
            crypto: self.ctrl.crypto,
            nvm: self.ctrl.nvm,
            root: self.ctrl.root,
            nv,
            truth,
            lost_lines,
            recovery_lanes: None,
        }
    }
}

impl CrashedSystem {
    /// The configuration the machine ran with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Pins the recovery worker/lane count for this image, overriding the
    /// `STEINS_RECOVERY_WORKERS` env default (clamped to
    /// `1..=`[`crate::par::MAX_WORKERS`] at use). Worker count never
    /// changes what recovery computes — install order, exported metrics and
    /// the terminal journal are lane-count-invariant — only how the
    /// in-progress journal partitions its per-lane high-water marks.
    pub fn with_recovery_lanes(mut self, lanes: usize) -> Self {
        self.recovery_lanes = Some(lanes);
        self
    }

    /// Whether the scheme can recover at all.
    pub fn recoverable(&self) -> bool {
        !matches!(self.cfg.scheme, SchemeKind::WriteBack)
    }

    /// Lines whose latest values were lost in the volatile CPU caches.
    pub fn lost_lines(&self) -> &[u64] {
        &self.lost_lines
    }

    /// Raw NVM view (used by tests and the attack helpers).
    pub fn nvm(&self) -> &NvmDevice {
        &self.nvm
    }

    /// Mutable NVM view — the media-fault injection surface (bit flips,
    /// stuck-at lines, unreadable lines land on the crashed image here).
    pub fn nvm_mut(&mut self) -> &mut NvmDevice {
        &mut self.nvm
    }
}

// ————————————— Exhaustive persist-boundary fault injection —————————————
//
// The NVM device numbers every durable-state transition (each accepted 64 B
// line write, each in-place ADR-line update). [`CrashSweep`] replays a fixed
// op stream once to enumerate those points, then for every point k replays
// the stream with the device armed to lose power the instant transition k
// completes, recovers, and verifies: every acknowledged write reads back
// (which re-verifies the whole ancestor chain of every populated tree path)
// and, under Steins, the LInc registers match a from-scratch recomputation.
// A failing point is shrunk to a minimal op stream and printed with the
// first divergent node and a MAC-probe diagnosis (`debug_repro` style).

/// One operation of the fixed, replayable stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOp {
    /// Persistent store of a recognizable payload to data line `line`.
    Write {
        /// Data line index.
        line: u64,
        /// Payload tag (mixed with the line index).
        tag: u8,
    },
    /// Verified read of data line `line`.
    Read {
        /// Data line index.
        line: u64,
    },
}

impl SweepOp {
    /// Deterministic mixed stream over `lines` data lines: ~2/3 writes, a
    /// quarter of the traffic concentrated on 8 hot lines so counters
    /// advance far enough to exercise minor-overflow re-encryption (SC) and
    /// NV-buffer churn.
    pub fn stream(seed: u64, lines: u64, len: usize) -> Vec<SweepOp> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let line = if rng.next_u64() % 4 == 0 {
                    rng.gen_range(0, 8.min(lines))
                } else {
                    rng.gen_range(0, lines)
                };
                if rng.next_u64() % 3 < 2 {
                    SweepOp::Write {
                        line,
                        tag: rng.next_u64() as u8,
                    }
                } else {
                    SweepOp::Read { line }
                }
            })
            .collect()
    }

    /// The plaintext a `Write` stores: tag-filled, line index in front.
    pub fn payload(line: u64, tag: u8) -> [u8; 64] {
        let mut data = [tag; 64];
        data[..8].copy_from_slice(&line.to_le_bytes());
        data
    }
}

/// Which crash points of the enumeration to test.
#[derive(Clone, Copy, Debug)]
pub enum PointSelection {
    /// Every point (the exhaustive sweep).
    All,
    /// At most `n` points, evenly strided across the enumeration (the
    /// bounded in-test sweep). Always includes point 1.
    AtMost(usize),
}

/// A minimized failing crash point.
#[derive(Clone, Debug)]
pub struct CrashRepro {
    /// Scheme/mode label ("Steins-SC" …).
    pub label: String,
    /// The minimized op stream that still fails.
    pub ops: Vec<SweepOp>,
    /// Index of the op in flight when the crash hit.
    pub op_index: usize,
    /// The failing persist point (1-based) within the minimized stream.
    pub crash_point: u64,
    /// What the tripping transition wrote.
    pub point: Option<PersistPoint>,
    /// The recovery/verification error.
    pub error: String,
    /// First divergent node/line plus MAC-probe diagnosis.
    pub divergent: String,
}

impl fmt::Display for CrashRepro {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: crash point {} (op {} of {}) is unrecoverable",
            self.label,
            self.crash_point,
            self.op_index,
            self.ops.len()
        )?;
        if let Some(p) = self.point {
            writeln!(f, "  tripped at {:?} of addr {:#x}", p.kind, p.addr)?;
        }
        writeln!(f, "  error: {}", self.error)?;
        writeln!(f, "  divergence: {}", self.divergent)?;
        write!(f, "  ops: {:?}", self.ops)
    }
}

/// Result of sweeping one scheme/mode.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Scheme/mode label.
    pub label: String,
    /// Durable-state transitions the stream produces (= crash points).
    pub total_points: u64,
    /// Points actually injected and verified.
    pub tested_points: u64,
    /// Minimized repros for every failing point class found (capped).
    pub failures: Vec<CrashRepro>,
}

impl SweepReport {
    /// True when every tested point recovered and verified.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>10}: {:>5}/{:<5} crash points recovered & verified",
            self.label,
            self.tested_points - self.failures.len() as u64,
            self.tested_points
        )?;
        if self.total_points != self.tested_points {
            write!(f, " (of {} enumerated)", self.total_points)?;
        }
        for repro in &self.failures {
            write!(f, "\n{repro}")?;
        }
        Ok(())
    }
}

/// How a single injected crash point failed.
pub(crate) struct PointFailure {
    pub(crate) op_index: usize,
    pub(crate) point: Option<PersistPoint>,
    pub(crate) error: String,
    pub(crate) divergent: String,
}

/// A replayed stream crashed at a (possibly torn) point, with ground truth
/// already reconciled against the in-flight op and the sacrificial torn line.
pub(crate) struct TornCrash {
    pub(crate) crashed: CrashedSystem,
    pub(crate) op_index: usize,
    pub(crate) trip: Option<PersistPoint>,
    /// Every line that must read back after recovery, with its content.
    pub(crate) expected: HashMap<u64, [u8; 64]>,
    /// A data line destroyed by the tear (in-place overwrite mixed old and
    /// new words); reads of it must fail closed.
    pub(crate) sacrificed: Option<u64>,
}

/// What the outer crash promised: carried through a nested run so the
/// final machine — however many recoveries it took — verifies against the
/// same reconciled expectations.
pub(crate) struct NestedCtx {
    op_index: usize,
    trip: Option<PersistPoint>,
    expected: HashMap<u64, [u8; 64]>,
    sacrificed: Option<u64>,
}

/// Outcome of arming a second crash *inside* recovery of an outer crash.
pub(crate) enum NestedRun {
    /// The inner point lay beyond recovery's horizon: recovery finished
    /// first and produced a fully recovered system.
    Completed(Box<SecureNvmSystem>),
    /// Strict recovery failed cleanly before the inner point tripped (a
    /// torn outer line can legitimately defeat fail-stop recovery).
    StrictFailed(IntegrityError),
    /// The inner crash tripped mid-recovery; the partial system — parked in
    /// the caller's slot before recovery's first durable write — lost power
    /// again. The doubly-crashed machine.
    Crashed(Box<CrashedSystem>),
}

/// The exhaustive persist-boundary fault-injection driver.
pub struct CrashSweep {
    cfg: SystemConfig,
    ops: Vec<SweepOp>,
    selection: PointSelection,
    /// Point-test budget for shrinking a failure (0 disables shrinking).
    pub shrink_budget: usize,
    /// Stop after this many distinct failing points (keeps a badly broken
    /// scheme from taking forever).
    pub max_failures: usize,
    /// Lane-mark override for every recovery the nested probes run
    /// (`None` = the `STEINS_RECOVERY_WORKERS` env default). With > 1 the
    /// interrupted attempts leave *laned* ADR journals, so the sweep
    /// exercises resume-from-marks instead of resume-from-prefix.
    pub recovery_lanes: Option<usize>,
}

/// Silences the panic hook for the intentional [`CrashTripped`] unwinds the
/// sweep throws (thousands per run); every other panic still reports
/// through the previously installed hook.
pub(crate) fn silence_crash_trips() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<CrashTripped>() {
                return;
            }
            prev(info);
        }));
    });
}

impl CrashSweep {
    /// A sweep of `ops` against `cfg`, testing the `selection` of points.
    pub fn new(cfg: SystemConfig, ops: Vec<SweepOp>, selection: PointSelection) -> Self {
        CrashSweep {
            cfg,
            ops,
            selection,
            shrink_budget: 2_000,
            max_failures: 3,
            recovery_lanes: None,
        }
    }

    /// Builder: run every nested probe's recoveries with `lanes` lane-mark
    /// slots (see [`CrashedSystem::with_recovery_lanes`]).
    pub fn with_recovery_lanes(mut self, lanes: usize) -> Self {
        self.recovery_lanes = Some(lanes);
        self
    }

    /// Convenience: sweep the standard stream on the small test config.
    pub fn small(
        scheme: SchemeKind,
        mode: CounterMode,
        ops: usize,
        selection: PointSelection,
    ) -> Self {
        let cfg = SystemConfig::small_for_tests(scheme, mode);
        let ops = SweepOp::stream(0x5EED ^ ops as u64, 192, ops);
        CrashSweep::new(cfg, ops, selection)
    }

    /// Enumerates the stream's persist points with a crash-free baseline
    /// run. Every `k` in `1..=total` is an injectable crash point.
    pub fn total_points(&self) -> Result<u64, IntegrityError> {
        Self::enumerate(&self.cfg, &self.ops)
    }

    /// Injects a crash at point `k`, recovers and verifies; on failure
    /// returns the minimized repro. The unit of work for point-parallel
    /// sweeps (each call replays the stream from scratch).
    pub fn probe_point(&self, k: u64) -> Option<CrashRepro> {
        match Self::test_point(&self.cfg, &self.ops, k) {
            Ok(()) => None,
            Err(fail) => Some(self.shrink(k, fail)),
        }
    }

    /// Torn variant of [`Self::probe_point`]: at point `k` only the 8-byte
    /// words selected by `word_mask` persist (bit *i* ⇒ word *i* durable;
    /// `0x00` drops the write, `0xFF` is the classic full persist). Failures
    /// are truncated to the in-flight op but not greedily shrunk.
    pub fn probe_point_torn(&self, k: u64, word_mask: u8) -> Option<CrashRepro> {
        match Self::test_point_torn(&self.cfg, &self.ops, k, word_mask) {
            Ok(()) => None,
            Err(fail) => Some(CrashRepro {
                label: format!(
                    "{} torn {word_mask:#04x}",
                    self.cfg.scheme.label(self.cfg.mode)
                ),
                ops: self.ops[..=fail.op_index].to_vec(),
                op_index: fail.op_index,
                crash_point: k,
                point: fail.point,
                error: fail.error,
                divergent: fail.divergent,
            }),
        }
    }

    fn apply_op(sys: &mut SecureNvmSystem, op: SweepOp) -> Result<(), IntegrityError> {
        match op {
            SweepOp::Write { line, tag } => sys.write(line * 64, &SweepOp::payload(line, tag)),
            SweepOp::Read { line } => sys.read(line * 64).map(|_| ()),
        }
    }

    /// Runs the stream to completion (no crash), returning the number of
    /// persist points it produces.
    fn enumerate(cfg: &SystemConfig, ops: &[SweepOp]) -> Result<u64, IntegrityError> {
        let mut sys = SecureNvmSystem::new(cfg.clone());
        for &op in ops {
            Self::apply_op(&mut sys, op)?;
        }
        Ok(sys.ctrl.nvm.persist_seq())
    }

    /// Injects a crash at point `k`, recovers, verifies. `Ok(())` means the
    /// point is recoverable (or provably unrecoverable by design for WB).
    fn test_point(cfg: &SystemConfig, ops: &[SweepOp], k: u64) -> Result<(), PointFailure> {
        Self::test_point_torn(cfg, ops, k, 0xFF)
    }

    /// Replays `ops` with a (possibly torn) crash armed at `k`, then
    /// reconciles ground truth. `Ok(None)` when `k` lies beyond the
    /// stream's horizon. Shared with the randomized fault campaign.
    pub(crate) fn crash_torn(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        word_mask: u8,
    ) -> Result<Option<TornCrash>, PointFailure> {
        silence_crash_trips();
        let mut sys = SecureNvmSystem::new(cfg.clone());
        sys.ctrl.nvm.arm_crash_torn(k, word_mask);

        // Replay until the armed point pulls the plug.
        let mut acked: HashMap<u64, [u8; 64]> = HashMap::new();
        let mut in_flight: Option<(usize, SweepOp)> = None;
        for (i, &op) in ops.iter().enumerate() {
            let run = catch_unwind(AssertUnwindSafe(|| Self::apply_op(&mut sys, op)));
            match run {
                Ok(Ok(())) => {
                    if let SweepOp::Write { line, tag } = op {
                        acked.insert(line * 64, SweepOp::payload(line, tag));
                    }
                }
                Ok(Err(e)) => {
                    return Err(PointFailure {
                        op_index: i,
                        point: None,
                        error: format!("integrity error before the crash: {e}"),
                        divergent: "runtime state diverged pre-crash".into(),
                    });
                }
                Err(payload) => {
                    if !payload.is::<CrashTripped>() {
                        std::panic::resume_unwind(payload);
                    }
                    in_flight = Some((i, op));
                    break;
                }
            }
        }
        let Some((op_index, op)) = in_flight else {
            // Armed beyond the stream's horizon: nothing to test.
            return Ok(None);
        };
        let trip = sys.ctrl.nvm.tripped_at();
        sys.ctrl.nvm.disarm_crash();

        // Lose power. Then reconcile ground truth for the op the crash
        // interrupted: its store is durable iff the tripping transition was
        // the data line's own *full* write (the MAC record rides the same
        // line's ECC bits, so the pair is atomic; a torn line is never an
        // acknowledged store).
        let mut expected = acked.clone();
        let mut crashed = sys.crash();
        if let SweepOp::Write { line, tag } = op {
            let addr = line * 64;
            let durable = word_mask == 0xFF
                && trip
                    .map(|p| p.kind == PersistKind::LineWrite && p.addr == addr)
                    .unwrap_or(false);
            if durable {
                let data = SweepOp::payload(line, tag);
                crashed.truth.insert(addr, data);
                expected.insert(addr, data);
            } else {
                match acked.get(&addr) {
                    Some(v) => {
                        crashed.truth.insert(addr, *v);
                    }
                    None => {
                        crashed.truth.remove(&addr);
                    }
                }
            }
        }

        // A partial tear of a *data* line destroys that line's previous
        // content too — the in-place overwrite mixed old and new words, an
        // inherent hazard of journal-free in-place data updates. The line is
        // sacrificial: it must fail closed (MAC mismatch), and every other
        // acked line must still read back.
        let mut sacrificed = None;
        if word_mask != 0xFF {
            if let Some(p) = trip {
                if p.kind == PersistKind::LineWrite && crashed.layout.is_data(p.addr) {
                    sacrificed = Some(p.addr);
                    expected.remove(&p.addr);
                    crashed.truth.remove(&p.addr);
                }
            }
        }

        Ok(Some(TornCrash {
            crashed,
            op_index,
            trip,
            expected,
            sacrificed,
        }))
    }

    /// Verifies a recovered (or scrubbed) machine against the reconciled
    /// expectations.
    #[allow(clippy::too_many_arguments)]
    fn verify_recovered(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        recovered: &mut SecureNvmSystem,
        expected: &HashMap<u64, [u8; 64]>,
        sacrificed: Option<u64>,
        op_index: usize,
        trip: Option<PersistPoint>,
    ) -> Result<(), PointFailure> {
        // Read back every acknowledged write: verifies the data MACs and —
        // through the fetch path — every ancestor node of every populated
        // tree branch.
        let mut lines: Vec<u64> = expected.keys().copied().collect();
        lines.sort_unstable();
        for addr in lines {
            let want = expected[&addr];
            match recovered.read(addr) {
                Ok(got) if got == want => {}
                Ok(got) => {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        error: format!("acked write at {addr:#x} diverged after recovery"),
                        divergent: format!(
                            "data line {}: got {:02x?}…, want {:02x?}…",
                            addr / 64,
                            &got[..8],
                            &want[..8]
                        ),
                    });
                }
                Err(e) => {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        divergent: Self::diagnose_error(cfg, ops, k, &e),
                        error: format!("read-back of {addr:#x} failed: {e}"),
                    });
                }
            }
        }

        // The torn line must fail closed: its stored bytes are a mix that
        // cannot verify against the MAC record.
        if let Some(addr) = sacrificed {
            if recovered.read(addr).is_ok() {
                return Err(PointFailure {
                    op_index,
                    point: trip,
                    error: format!("torn data line {addr:#x} read back Ok"),
                    divergent: "a torn line must fail its MAC, never return mixed words".into(),
                });
            }
        }

        // Steins: the recovered LInc registers must equal a from-scratch
        // recomputation over the rebuilt cache + NV buffer.
        if let (Some(stored), Some(expect)) =
            (recovered.ctrl.lincs(), recovered.ctrl.recompute_lincs())
        {
            if stored != expect {
                return Err(PointFailure {
                    op_index,
                    point: trip,
                    error: "LInc registers inconsistent after recovery".into(),
                    divergent: format!("lincs stored {stored:?} != recomputed {expect:?}"),
                });
            }
        }
        Ok(())
    }

    /// Injects a torn crash at point `k` (only `word_mask`'s words of the
    /// tripping line persist) and verifies the torn contract: strict
    /// recovery either succeeds — with every acked line intact and the torn
    /// line failing closed — or errors cleanly, in which case the lenient
    /// scrub must salvage everything except the torn line itself, without
    /// panicking.
    fn test_point_torn(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        word_mask: u8,
    ) -> Result<(), PointFailure> {
        let Some(tc) = Self::crash_torn(cfg, ops, k, word_mask)? else {
            return Ok(());
        };
        let TornCrash {
            crashed,
            op_index,
            trip,
            expected,
            sacrificed,
        } = tc;

        // WB has no recovery: the contract under fault injection is that it
        // says so, at every single point.
        if !crashed.recoverable() {
            return match crashed.recover() {
                Err(IntegrityError::RecoveryUnsupported) => Ok(()),
                other => Err(PointFailure {
                    op_index,
                    point: trip,
                    error: format!(
                        "WB must refuse recovery, got {:?}",
                        other.as_ref().err().map(|e| e.to_string())
                    ),
                    divergent: "n/a".into(),
                }),
            };
        }

        match crashed.recover() {
            Ok((mut recovered, _report)) => Self::verify_recovered(
                cfg,
                ops,
                k,
                &mut recovered,
                &expected,
                sacrificed,
                op_index,
                trip,
            ),
            Err(strict) => {
                if word_mask == 0xFF {
                    // Whole-line persists must always recover strictly.
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        divergent: Self::diagnose_error(cfg, ops, k, &strict),
                        error: strict.to_string(),
                    });
                }
                // A torn line may defeat strict (fail-stop) recovery — e.g.
                // a torn in-place node flush fails its MAC exactly like
                // tampering. The lenient scrub must then rebuild everything
                // from the data plane.
                let Some(tc2) = Self::crash_torn(cfg, ops, k, word_mask)? else {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        error: "crash image not reproducible for the scrub".into(),
                        divergent: "n/a".into(),
                    });
                };
                let crashed2 = tc2.crashed;
                let outcome = catch_unwind(AssertUnwindSafe(move || crashed2.recover_lenient()));
                let (sys, report) = match outcome {
                    Ok(r) => r,
                    Err(_) => {
                        return Err(PointFailure {
                            op_index,
                            point: trip,
                            error: format!("scrub panicked after strict error: {strict}"),
                            divergent: "lenient recovery must be total".into(),
                        });
                    }
                };
                if let Some(bad) = report
                    .unrecoverable_addrs
                    .iter()
                    .find(|a| Some(**a) != sacrificed)
                {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        error: format!(
                            "scrub lost durable data at {bad:#x} (strict error: {strict})"
                        ),
                        divergent: format!("{report}"),
                    });
                }
                let Some(mut sys) = sys else {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        error: "scrub returned no system for a recoverable scheme".into(),
                        divergent: format!("{report}"),
                    });
                };
                Self::verify_recovered(cfg, ops, k, &mut sys, &expected, sacrificed, op_index, trip)
            }
        }
    }

    /// Rebuilds the crashed NVM image for point `k` and probes which counter
    /// the failing MAC actually corresponds to (`debug_repro` style).
    fn diagnose_error(cfg: &SystemConfig, ops: &[SweepOp], k: u64, e: &IntegrityError) -> String {
        let crashed = match Self::crash_at(cfg, ops, k) {
            Some(c) => c,
            None => return "state not reproducible".into(),
        };
        let probe = SecureNvmSystem::new(cfg.clone()); // same key/layout
        match *e {
            IntegrityError::NodeMac { node } => {
                let geo = &crashed.layout.geometry;
                let off = geo.offset_of(node);
                let line = crashed.nvm.peek(crashed.layout.node_addr(off));
                let n = if node.level == 0 && cfg.mode == CounterMode::Split {
                    steins_metadata::SitNode::split_from_line(&line)
                } else {
                    steins_metadata::SitNode::general_from_line(&line)
                };
                let pc = match geo.parent_of(node) {
                    None => crashed.root.get(geo.root_slot(node)),
                    Some((pid, slot)) => {
                        let pline = crashed
                            .nvm
                            .peek(crashed.layout.node_addr(geo.offset_of(pid)));
                        steins_metadata::SitNode::general_from_line(&pline)
                            .counters
                            .as_general()
                            .get(slot)
                    }
                };
                format!(
                    "node {node:?}: {}",
                    diagnose::probe_node_mac(&probe.ctrl, &n, off, pc, 4096)
                )
            }
            IntegrityError::DataMac { addr } => {
                let dline = addr / 64;
                let (laddr, byte) = crashed.layout.mac_slot(dline);
                let rec = crate::cme::MacRecord::read_slot(&crashed.nvm.peek(laddr), byte / 16);
                let (mj, _) = crate::cme::MacRecord::unpack_recovery(rec.recovery);
                let data = crashed.nvm.peek(addr & !63);
                let span = cfg.mode.leaf_coverage().max(64);
                format!(
                    "data line {dline}: {}",
                    diagnose::probe_data_mac(&probe.ctrl, addr & !63, &data, rec.mac, mj, 8, span)
                )
            }
            IntegrityError::LIncMismatch {
                level,
                stored,
                recomputed,
            } => {
                format!("LInc level {level}: register {stored} vs recomputed {recomputed}")
            }
            ref other => format!("{other}"),
        }
    }

    /// Re-runs the stream and crashes at point `k`, returning the crashed
    /// machine (diagnostics only).
    fn crash_at(cfg: &SystemConfig, ops: &[SweepOp], k: u64) -> Option<CrashedSystem> {
        silence_crash_trips();
        let mut sys = SecureNvmSystem::new(cfg.clone());
        sys.ctrl.nvm.arm_crash(k);
        for &op in ops {
            match catch_unwind(AssertUnwindSafe(|| Self::apply_op(&mut sys, op))) {
                Ok(Ok(())) => {}
                Ok(Err(_)) => return None,
                Err(payload) => {
                    if !payload.is::<CrashTripped>() {
                        std::panic::resume_unwind(payload);
                    }
                    sys.ctrl.nvm.disarm_crash();
                    return Some(sys.crash());
                }
            }
        }
        None
    }

    /// Finds the first failing point of `ops`, spending at most `budget`
    /// point tests. Returns the point and its failure.
    fn first_failure(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        budget: &mut usize,
    ) -> Option<(u64, PointFailure)> {
        let total = Self::enumerate(cfg, ops).ok()?;
        for k in 1..=total {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            if let Err(fail) = Self::test_point(cfg, ops, k) {
                return Some((k, fail));
            }
        }
        None
    }

    /// Shrinks a failing (ops, point) pair: truncate past the in-flight op,
    /// then greedily drop earlier ops while *some* point still fails.
    fn shrink(&self, k: u64, fail: PointFailure) -> CrashRepro {
        let mut best_ops: Vec<SweepOp> = self.ops[..=fail.op_index].to_vec();
        let mut best = (k, fail);
        let mut budget = self.shrink_budget;
        // Dropping ops after the in-flight one never changes the execution
        // up to the crash, so the truncation above is free. Now try dropping
        // each earlier op, latest first (later ops are least likely to be
        // load-bearing for the corruption).
        let mut j = best_ops.len().saturating_sub(1);
        while j > 0 && budget > 0 {
            j -= 1;
            let mut candidate = best_ops.clone();
            candidate.remove(j);
            if let Some((k2, f2)) = Self::first_failure(&self.cfg, &candidate, &mut budget) {
                best_ops = candidate;
                best_ops.truncate(f2.op_index + 1);
                best = (k2, f2);
                j = j.min(best_ops.len().saturating_sub(1));
            }
        }
        let (crash_point, fail) = best;
        CrashRepro {
            label: self.cfg.scheme.label(self.cfg.mode),
            op_index: fail.op_index,
            crash_point,
            point: fail.point,
            error: fail.error,
            divergent: fail.divergent,
            ops: best_ops,
        }
    }

    /// Runs the sweep.
    pub fn run(&self) -> SweepReport {
        let label = self.cfg.scheme.label(self.cfg.mode);
        let total = match Self::enumerate(&self.cfg, &self.ops) {
            Ok(t) => t,
            Err(e) => {
                return SweepReport {
                    label: label.clone(),
                    total_points: 0,
                    tested_points: 0,
                    failures: vec![CrashRepro {
                        label,
                        ops: self.ops.clone(),
                        op_index: 0,
                        crash_point: 0,
                        point: None,
                        error: format!("baseline run failed: {e}"),
                        divergent: "stream does not complete without a crash".into(),
                    }],
                }
            }
        };
        let points: Vec<u64> = match self.selection {
            PointSelection::All => (1..=total).collect(),
            PointSelection::AtMost(n) if (n as u64) >= total => (1..=total).collect(),
            PointSelection::AtMost(n) => {
                let n = n.max(1) as u64;
                (0..n)
                    .map(|i| 1 + i * (total - 1) / (n - 1).max(1))
                    .collect()
            }
        };
        let mut failures = Vec::new();
        let mut tested = 0u64;
        for &k in &points {
            tested += 1;
            if let Err(fail) = Self::test_point(&self.cfg, &self.ops, k) {
                failures.push(self.shrink(k, fail));
                if failures.len() >= self.max_failures {
                    break;
                }
            }
        }
        SweepReport {
            label,
            total_points: total,
            tested_points: tested,
            failures,
        }
    }

    /// Runs the stream to completion with point journaling on, returning
    /// every persist point it produces (for kind-aware point selection).
    fn enumerate_journal(
        cfg: &SystemConfig,
        ops: &[SweepOp],
    ) -> Result<Vec<PersistPoint>, IntegrityError> {
        let mut sys = SecureNvmSystem::new(cfg.clone());
        sys.ctrl.nvm.journal_points(true);
        for &op in ops {
            Self::apply_op(&mut sys, op)?;
        }
        let journal = sys.ctrl.nvm.point_journal().to_vec();
        Ok(journal)
    }

    /// Applies the sweep's [`PointSelection`] to an arbitrary point list,
    /// striding by index so first and last survive bounding.
    fn select(&self, points: Vec<u64>) -> Vec<u64> {
        Self::select_with(self.selection, points)
    }

    /// [`Self::select`] with an explicit selection (nested sweeps bound
    /// outer and inner point lists independently; the sharded sweep reuses
    /// the same striding so bounded runs compare across harnesses).
    pub(crate) fn select_with<T: Copy>(selection: PointSelection, points: Vec<T>) -> Vec<T> {
        match selection {
            PointSelection::All => points,
            PointSelection::AtMost(n) if n >= points.len() => points,
            PointSelection::AtMost(n) => {
                let n = n.max(1) as u64;
                let last = (points.len() - 1) as u64;
                (0..n)
                    .map(|i| points[(i * last / (n - 1).max(1)) as usize])
                    .collect()
            }
        }
    }

    /// Every persist point of the stream that is a 64 B line write — the
    /// only transitions that can tear (ADR updates are sub-word) — after
    /// applying the sweep's [`PointSelection`]. The unit list for
    /// point-parallel torn sweeps via [`Self::probe_point_torn`].
    pub fn tearable_points(&self) -> Result<Vec<u64>, IntegrityError> {
        let journal = Self::enumerate_journal(&self.cfg, &self.ops)?;
        Ok(self.select(
            journal
                .iter()
                .filter(|p| p.kind == PersistKind::LineWrite)
                .map(|p| p.seq)
                .collect(),
        ))
    }

    /// Sweeps torn-write variants: for each selected `LineWrite` persist
    /// point, re-runs the stream crashing there under every mask in
    /// `word_masks` (bit *i* ⇒ 8-byte word *i* persists). ADR updates are
    /// sub-word and never tear, so only line writes are enumerated. The
    /// contract per (point, mask): strict recovery succeeds with the torn
    /// line failing closed, or the lenient scrub salvages everything but the
    /// torn line without panicking.
    pub fn run_torn(&self, word_masks: &[u8]) -> SweepReport {
        let label = format!("{} torn", self.cfg.scheme.label(self.cfg.mode));
        let journal = match Self::enumerate_journal(&self.cfg, &self.ops) {
            Ok(j) => j,
            Err(e) => {
                return SweepReport {
                    label: label.clone(),
                    total_points: 0,
                    tested_points: 0,
                    failures: vec![CrashRepro {
                        label,
                        ops: self.ops.clone(),
                        op_index: 0,
                        crash_point: 0,
                        point: None,
                        error: format!("baseline run failed: {e}"),
                        divergent: "stream does not complete without a crash".into(),
                    }],
                };
            }
        };
        let tearable: Vec<u64> = journal
            .iter()
            .filter(|p| p.kind == PersistKind::LineWrite)
            .map(|p| p.seq)
            .collect();
        let total = tearable.len() as u64;
        let points = self.select(tearable);
        let mut failures = Vec::new();
        let mut tested = 0u64;
        'outer: for &k in &points {
            for &mask in word_masks {
                tested += 1;
                if let Err(fail) = Self::test_point_torn(&self.cfg, &self.ops, k, mask) {
                    failures.push(CrashRepro {
                        label: format!("{label} {mask:#04x}"),
                        ops: self.ops[..=fail.op_index].to_vec(),
                        op_index: fail.op_index,
                        crash_point: k,
                        point: fail.point,
                        error: fail.error,
                        divergent: fail.divergent,
                    });
                    if failures.len() >= self.max_failures {
                        break 'outer;
                    }
                }
            }
        }
        SweepReport {
            label,
            total_points: total * word_masks.len() as u64,
            tested_points: tested,
            failures,
        }
    }

    // ———————— Nested injection: crash *during* recovery ————————
    //
    // The recovery state machine journals its progress in the ADR domain
    // (`RecoveryJournal`), parks the partial system in the caller's slot
    // before its first durable write, and replays each phase re-entrantly.
    // These drivers prove it: reproduce an outer crash, re-arm the device at
    // a persist point *recovery itself* fires (journal updates, record and
    // shadow rewrites, scrub pokes — pokes are traced as tearable points
    // during injection), crash again, and require the second recovery to
    // converge on the same verified state.

    /// Enumerates the persist points recovery fires for the outer crash
    /// `(k, outer_mask)`: journal updates, record/shadow line writes, and —
    /// with poke tracing on — every in-place rewrite. When a torn outer
    /// defeats strict recovery the scrub's points are enumerated instead
    /// (that is the path a second crash would interrupt). Empty when `k` is
    /// beyond the stream's horizon or the scheme cannot recover.
    pub(crate) fn recovery_points(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        outer_mask: u8,
    ) -> Result<Vec<PersistPoint>, PointFailure> {
        let Some(tc) = Self::crash_torn(cfg, ops, k, outer_mask)? else {
            return Ok(Vec::new());
        };
        let mut crashed = tc.crashed;
        if !crashed.recoverable() {
            return Ok(Vec::new());
        }
        crashed.nvm.trace_pokes(true);
        crashed.nvm.journal_points(true);
        let mut slot = None;
        if crashed.recover_into(&mut slot).is_ok() {
            let sys = slot.take().expect("recovery parks the rebuilt system");
            return Ok(sys.ctrl.nvm.point_journal().to_vec());
        }
        // Strict recovery refused (torn outer): the scrub is what a second
        // crash would interrupt — enumerate its points instead.
        let Some(tc2) = Self::crash_torn(cfg, ops, k, outer_mask)? else {
            return Ok(Vec::new());
        };
        let mut crashed2 = tc2.crashed;
        crashed2.nvm.trace_pokes(true);
        crashed2.nvm.journal_points(true);
        let mut slot2 = None;
        let _report = crashed2.recover_lenient_into(&mut slot2);
        Ok(slot2
            .map(|s| s.ctrl.nvm.point_journal().to_vec())
            .unwrap_or_default())
    }

    /// Reproduces the outer crash `(k, outer_mask)`, re-arms the device at
    /// absolute persist point `j` (torn by `inner_mask` for line writes)
    /// with poke tracing on, and runs strict recovery once. Returns how the
    /// nested run ended plus the outer crash's reconciled expectations.
    /// `Ok(None)` when `k` lies beyond the stream's horizon.
    pub(crate) fn crash_nested(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        outer_mask: u8,
        j: u64,
        inner_mask: u8,
        lanes: Option<usize>,
    ) -> Result<Option<(NestedRun, NestedCtx)>, PointFailure> {
        let Some(tc) = Self::crash_torn(cfg, ops, k, outer_mask)? else {
            return Ok(None);
        };
        let TornCrash {
            mut crashed,
            op_index,
            trip,
            expected,
            sacrificed,
        } = tc;
        if let Some(l) = lanes {
            crashed = crashed.with_recovery_lanes(l);
        }
        let ctx = NestedCtx {
            op_index,
            trip,
            expected,
            sacrificed,
        };
        crashed.nvm.trace_pokes(true);
        crashed.nvm.arm_crash_torn(j, inner_mask);
        let mut slot = None;
        let outcome = catch_unwind(AssertUnwindSafe(|| crashed.recover_into(&mut slot)));
        let run = match outcome {
            Ok(Ok(_report)) => {
                let Some(mut sys) = slot.take() else {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        error: "recovery returned Ok without parking the system".into(),
                        divergent: "recover_into must fill the caller's slot".into(),
                    });
                };
                sys.ctrl.nvm.disarm_crash();
                sys.ctrl.nvm.trace_pokes(false);
                NestedRun::Completed(Box::new(sys))
            }
            Ok(Err(e)) => NestedRun::StrictFailed(e),
            Err(payload) => {
                if !payload.is::<CrashTripped>() {
                    std::panic::resume_unwind(payload);
                }
                let Some(mut partial) = slot.take() else {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        error: format!(
                            "inner crash at point {j} tripped before recovery parked the system"
                        ),
                        divergent: "recovery must park before its first durable write".into(),
                    });
                };
                partial.ctrl.nvm.disarm_crash();
                partial.ctrl.nvm.trace_pokes(false);
                NestedRun::Crashed(Box::new(partial.crash()))
            }
        };
        Ok(Some((run, ctx)))
    }

    /// Tests one nested point: outer crash at `k` (mask `outer_mask`), a
    /// second crash at recovery-time point `j` (mask `inner_mask`), then a
    /// *second* recovery of the doubly-crashed machine. The contract:
    /// * WB refuses recovery at every nested point;
    /// * if the inner point never tripped, the single recovery verifies;
    /// * if it tripped, recovery must have parked a partial system whose
    ///   second recovery verifies — reporting `core.recovery.restarts ≥ 1`
    ///   unless the journal already read `DONE` (the inner crash landed on
    ///   recovery's final durable write);
    /// * only a torn write may defeat the strict path, in which case the
    ///   lenient scrub must salvage everything but the sacrificed line —
    ///   including when the inner crash interrupts the scrub itself.
    pub(crate) fn test_point_nested(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        outer_mask: u8,
        j: u64,
        inner_mask: u8,
        lanes: Option<usize>,
    ) -> Result<(), PointFailure> {
        let Some((run, ctx)) = Self::crash_nested(cfg, ops, k, outer_mask, j, inner_mask, lanes)?
        else {
            return Ok(());
        };
        let NestedCtx {
            op_index,
            trip,
            expected,
            sacrificed,
        } = ctx;

        if matches!(cfg.scheme, SchemeKind::WriteBack) {
            return match run {
                NestedRun::StrictFailed(IntegrityError::RecoveryUnsupported) => Ok(()),
                _ => Err(PointFailure {
                    op_index,
                    point: trip,
                    error: "WB must refuse recovery under nested injection".into(),
                    divergent: "n/a".into(),
                }),
            };
        }

        match run {
            NestedRun::Completed(mut sys) => {
                Self::verify_recovered(cfg, ops, k, &mut sys, &expected, sacrificed, op_index, trip)
            }
            NestedRun::Crashed(crashed2) => {
                let mut crashed2 = *crashed2;
                if let Some(l) = lanes {
                    crashed2 = crashed2.with_recovery_lanes(l);
                }
                let finished =
                    !crate::recovery::journal::in_progress(crashed2.nvm.recovery_journal().phase);
                match crashed2.recover() {
                    Ok((mut sys2, report2)) => {
                        let restarts = report2
                            .metrics
                            .counter("core.recovery.restarts")
                            .unwrap_or(0);
                        if restarts == 0 && !finished {
                            return Err(PointFailure {
                                op_index,
                                point: trip,
                                error: format!(
                                    "second recovery after inner crash at {j} reported no restart"
                                ),
                                divergent: "the ADR journal must record the interrupted attempt"
                                    .into(),
                            });
                        }
                        Self::verify_recovered(
                            cfg, ops, k, &mut sys2, &expected, sacrificed, op_index, trip,
                        )
                    }
                    Err(strict) => {
                        if outer_mask == 0xFF && inner_mask == 0xFF {
                            return Err(PointFailure {
                                op_index,
                                point: trip,
                                error: format!(
                                    "clean nested crash {k}>{j} failed second recovery: {strict}"
                                ),
                                divergent: "untorn nested crashes must recover strictly".into(),
                            });
                        }
                        Self::nested_scrub_leg(
                            cfg, ops, k, outer_mask, j, inner_mask, lanes, &expected, sacrificed,
                            op_index, trip, &strict,
                        )
                    }
                }
            }
            NestedRun::StrictFailed(strict) => {
                if outer_mask == 0xFF {
                    // Whole-line outer persists must always recover strictly
                    // — the inner crash never even fired here.
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        divergent: Self::diagnose_error(cfg, ops, k, &strict),
                        error: strict.to_string(),
                    });
                }
                Self::nested_scrub_leg(
                    cfg, ops, k, outer_mask, j, inner_mask, lanes, &expected, sacrificed, op_index,
                    trip, &strict,
                )
            }
        }
    }

    /// The lenient leg of a nested point: reproduces the nested run and
    /// scrubs whatever state the double fault left — the doubly-crashed
    /// partial machine, or the outer image with the inner crash re-armed
    /// against the scrub's own persist points (including a trip *during*
    /// the scrub, which must journal `SCRUB` and complete on the next
    /// lenient pass).
    #[allow(clippy::too_many_arguments)]
    fn nested_scrub_leg(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        outer_mask: u8,
        j: u64,
        inner_mask: u8,
        lanes: Option<usize>,
        expected: &HashMap<u64, [u8; 64]>,
        sacrificed: Option<u64>,
        op_index: usize,
        trip: Option<PersistPoint>,
        strict: &IntegrityError,
    ) -> Result<(), PointFailure> {
        let Some((run, _ctx)) = Self::crash_nested(cfg, ops, k, outer_mask, j, inner_mask, lanes)?
        else {
            return Err(PointFailure {
                op_index,
                point: trip,
                error: "nested crash not reproducible for the scrub".into(),
                divergent: "n/a".into(),
            });
        };
        match run {
            NestedRun::Completed(_) => Err(PointFailure {
                op_index,
                point: trip,
                error: "nested run is nondeterministic: completed on replay".into(),
                divergent: format!("first attempt failed with: {strict}"),
            }),
            NestedRun::Crashed(crashed2) => {
                let mut crashed2 = *crashed2;
                if let Some(l) = lanes {
                    crashed2 = crashed2.with_recovery_lanes(l);
                }
                let min_restarts = u64::from(crate::recovery::journal::in_progress(
                    crashed2.nvm.recovery_journal().phase,
                ));
                Self::scrub_and_verify(
                    cfg,
                    ops,
                    k,
                    crashed2,
                    expected,
                    sacrificed,
                    op_index,
                    trip,
                    strict,
                    min_restarts,
                )
            }
            NestedRun::StrictFailed(_) => {
                // Strict recovery refused before the inner point tripped:
                // the scrub is what runs next, with the inner crash armed
                // against its own rewrites.
                let Some(tc) = Self::crash_torn(cfg, ops, k, outer_mask)? else {
                    return Err(PointFailure {
                        op_index,
                        point: trip,
                        error: "outer crash not reproducible for the scrub".into(),
                        divergent: "n/a".into(),
                    });
                };
                let mut crashed = tc.crashed;
                if let Some(l) = lanes {
                    crashed = crashed.with_recovery_lanes(l);
                }
                crashed.nvm.trace_pokes(true);
                crashed.nvm.arm_crash_torn(j, inner_mask);
                let mut slot = None;
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| crashed.recover_lenient_into(&mut slot)));
                match outcome {
                    Ok(report) => {
                        // Inner point beyond the scrub's horizon: the plain
                        // scrub contract applies.
                        let mut sys_opt = slot.take();
                        if let Some(sys) = sys_opt.as_mut() {
                            sys.ctrl.nvm.disarm_crash();
                            sys.ctrl.nvm.trace_pokes(false);
                        }
                        Self::check_scrub_outcome(
                            cfg, ops, k, sys_opt, &report, expected, sacrificed, op_index, trip,
                            strict, 0,
                        )
                    }
                    Err(payload) => {
                        if !payload.is::<CrashTripped>() {
                            std::panic::resume_unwind(payload);
                        }
                        let Some(mut partial) = slot.take() else {
                            return Err(PointFailure {
                                op_index,
                                point: trip,
                                error: format!(
                                    "inner crash at {j} tripped before the scrub parked the system"
                                ),
                                divergent: "the scrub must park before its first rewrite".into(),
                            });
                        };
                        partial.ctrl.nvm.disarm_crash();
                        partial.ctrl.nvm.trace_pokes(false);
                        let mut crashed3 = partial.crash();
                        if let Some(l) = lanes {
                            crashed3 = crashed3.with_recovery_lanes(l);
                        }
                        // The interrupted scrub must be journaled: strict
                        // recovery is no longer sound on this image. A trip
                        // on the scrub's final write legitimately reads
                        // `DONE` — all durable work already landed.
                        let phase = crashed3.nvm.recovery_journal().phase;
                        if phase != crate::recovery::journal::SCRUB
                            && phase != crate::recovery::journal::DONE
                        {
                            return Err(PointFailure {
                                op_index,
                                point: trip,
                                error: "interrupted scrub left no SCRUB journal entry".into(),
                                divergent: format!(
                                    "journal phase {}",
                                    crate::recovery::journal::name(phase)
                                ),
                            });
                        }
                        let min_restarts = u64::from(crate::recovery::journal::in_progress(phase));
                        Self::scrub_and_verify(
                            cfg,
                            ops,
                            k,
                            crashed3,
                            expected,
                            sacrificed,
                            op_index,
                            trip,
                            strict,
                            min_restarts,
                        )
                    }
                }
            }
        }
    }

    /// Scrubs a (possibly doubly-) crashed machine and checks the lenient
    /// contract against the outer crash's expectations.
    #[allow(clippy::too_many_arguments)]
    fn scrub_and_verify(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        crashed: CrashedSystem,
        expected: &HashMap<u64, [u8; 64]>,
        sacrificed: Option<u64>,
        op_index: usize,
        trip: Option<PersistPoint>,
        strict: &IntegrityError,
        min_restarts: u64,
    ) -> Result<(), PointFailure> {
        let outcome = catch_unwind(AssertUnwindSafe(move || crashed.recover_lenient()));
        let (sys, report) = match outcome {
            Ok(r) => r,
            Err(_) => {
                return Err(PointFailure {
                    op_index,
                    point: trip,
                    error: format!("scrub panicked after nested crash (strict error: {strict})"),
                    divergent: "lenient recovery must be total".into(),
                });
            }
        };
        Self::check_scrub_outcome(
            cfg,
            ops,
            k,
            sys,
            &report,
            expected,
            sacrificed,
            op_index,
            trip,
            strict,
            min_restarts,
        )
    }

    /// The lenient contract: nothing beyond the sacrificed line is lost,
    /// a system comes back, it verifies, and an interrupted prior pass is
    /// visible as a restart.
    #[allow(clippy::too_many_arguments)]
    fn check_scrub_outcome(
        cfg: &SystemConfig,
        ops: &[SweepOp],
        k: u64,
        sys: Option<SecureNvmSystem>,
        report: &crate::scrub::ScrubReport,
        expected: &HashMap<u64, [u8; 64]>,
        sacrificed: Option<u64>,
        op_index: usize,
        trip: Option<PersistPoint>,
        strict: &IntegrityError,
        min_restarts: u64,
    ) -> Result<(), PointFailure> {
        if report.restarts < min_restarts {
            return Err(PointFailure {
                op_index,
                point: trip,
                error: format!(
                    "scrub after an interrupted pass reported {} restarts, need ≥ {min_restarts}",
                    report.restarts
                ),
                divergent: "the ADR journal must record the interrupted attempt".into(),
            });
        }
        if let Some(bad) = report
            .unrecoverable_addrs
            .iter()
            .find(|a| Some(**a) != sacrificed)
        {
            return Err(PointFailure {
                op_index,
                point: trip,
                error: format!("scrub lost durable data at {bad:#x} (strict error: {strict})"),
                divergent: format!("{report}"),
            });
        }
        let Some(mut sys) = sys else {
            return Err(PointFailure {
                op_index,
                point: trip,
                error: "scrub returned no system for a recoverable scheme".into(),
                divergent: format!("{report}"),
            });
        };
        Self::verify_recovered(cfg, ops, k, &mut sys, expected, sacrificed, op_index, trip)
    }

    /// Probes one nested point, returning the repro on failure (campaign
    /// unit of work; truncated to the in-flight op, not greedily shrunk).
    pub fn probe_point_nested(
        &self,
        k: u64,
        outer_mask: u8,
        j: u64,
        inner_mask: u8,
    ) -> Option<CrashRepro> {
        match Self::test_point_nested(
            &self.cfg,
            &self.ops,
            k,
            outer_mask,
            j,
            inner_mask,
            self.recovery_lanes,
        ) {
            Ok(()) => None,
            Err(fail) => Some(CrashRepro {
                label: format!(
                    "{} nested {k}>{j} masks {outer_mask:#04x}>{inner_mask:#04x}",
                    self.cfg.scheme.label(self.cfg.mode)
                ),
                ops: self.ops[..=fail.op_index].to_vec(),
                op_index: fail.op_index,
                crash_point: k,
                point: fail.point,
                error: fail.error,
                divergent: fail.divergent,
            }),
        }
    }

    /// Enumerates the nested sweep's job tuples `(k, outer_mask, j,
    /// inner_mask)`: for every selected outer point × outer mask, the
    /// persist points *recovery itself* fires, bounded by `inner_sel`. ADR
    /// journal updates are sub-word and never tear, so torn inner masks
    /// only pair with line writes; torn outer masks restrict the outer list
    /// to line writes. When recovery fires no points (WB's refusal, or a
    /// pre-crash error) one synthetic beyond-horizon inner point keeps the
    /// contract checked. The unit list for point-parallel nested sweeps via
    /// [`Self::probe_point_nested`].
    pub fn nested_jobs(
        &self,
        outer_masks: &[u8],
        inner_masks: &[u8],
        inner_sel: PointSelection,
    ) -> Result<Vec<(u64, u8, u64, u8)>, IntegrityError> {
        let journal = Self::enumerate_journal(&self.cfg, &self.ops)?;
        let mut jobs = Vec::new();
        for &m0 in outer_masks {
            let outer: Vec<u64> = self.select(
                journal
                    .iter()
                    .filter(|p| m0 == 0xFF || p.kind == PersistKind::LineWrite)
                    .map(|p| p.seq)
                    .collect(),
            );
            for &k in &outer {
                let inner = Self::recovery_points(&self.cfg, &self.ops, k, m0).unwrap_or_default();
                let inner = if inner.is_empty() {
                    vec![PersistPoint {
                        seq: k + 1,
                        kind: PersistKind::AdrUpdate,
                        addr: 0,
                    }]
                } else {
                    Self::select_with(inner_sel, inner)
                };
                for p in &inner {
                    for &m1 in inner_masks {
                        if p.kind != PersistKind::LineWrite && m1 != 0xFF {
                            // ADR updates are sub-word: they never tear.
                            continue;
                        }
                        jobs.push((k, m0, p.seq, m1));
                    }
                }
            }
        }
        Ok(jobs)
    }

    /// The nested sweep, serially: [`Self::nested_jobs`] × the per-point
    /// nested contract check.
    pub fn run_nested(
        &self,
        outer_masks: &[u8],
        inner_masks: &[u8],
        inner_sel: PointSelection,
    ) -> SweepReport {
        let label = format!("{} nested", self.cfg.scheme.label(self.cfg.mode));
        let jobs = match self.nested_jobs(outer_masks, inner_masks, inner_sel) {
            Ok(j) => j,
            Err(e) => {
                return SweepReport {
                    label: label.clone(),
                    total_points: 0,
                    tested_points: 0,
                    failures: vec![CrashRepro {
                        label,
                        ops: self.ops.clone(),
                        op_index: 0,
                        crash_point: 0,
                        point: None,
                        error: format!("baseline run failed: {e}"),
                        divergent: "stream does not complete without a crash".into(),
                    }],
                };
            }
        };
        let mut failures: Vec<CrashRepro> = Vec::new();
        let mut tested = 0u64;
        for &(k, m0, j, m1) in &jobs {
            tested += 1;
            if let Err(fail) =
                Self::test_point_nested(&self.cfg, &self.ops, k, m0, j, m1, self.recovery_lanes)
            {
                failures.push(CrashRepro {
                    label: format!("{label} {k}>{j} masks {m0:#04x}>{m1:#04x}"),
                    ops: self.ops[..=fail.op_index].to_vec(),
                    op_index: fail.op_index,
                    crash_point: k,
                    point: fail.point,
                    error: fail.error,
                    divergent: fail.divergent,
                });
                if failures.len() >= self.max_failures {
                    break;
                }
            }
        }
        SweepReport {
            label,
            total_points: jobs.len() as u64,
            tested_points: tested,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_metadata::CounterMode;

    #[test]
    fn crash_preserves_persisted_truth_and_drops_cpu_dirty() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let mut sys = SecureNvmSystem::new(cfg);
        // write() flushes, so this line is persisted truth.
        sys.write(0x100 * 64, &[7; 64]).unwrap();
        let crashed = sys.crash();
        assert!(crashed.truth.contains_key(&(0x100 * 64)));
        assert!(crashed.recoverable());
    }

    #[test]
    fn wb_is_not_recoverable() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::WriteBack, CounterMode::General);
        let sys = SecureNvmSystem::new(cfg);
        assert!(!sys.crash().recoverable());
    }

    #[test]
    fn sweep_stream_is_deterministic_and_mixed() {
        let a = SweepOp::stream(42, 64, 200);
        let b = SweepOp::stream(42, 64, 200);
        assert_eq!(a, b);
        assert!(a.iter().any(|op| matches!(op, SweepOp::Write { .. })));
        assert!(a.iter().any(|op| matches!(op, SweepOp::Read { .. })));
        let c = SweepOp::stream(43, 64, 200);
        assert_ne!(a, c, "different seeds must give different streams");
    }

    #[test]
    fn steins_gc_sampled_points_all_recover() {
        let sweep = CrashSweep::small(
            SchemeKind::Steins,
            CounterMode::General,
            40,
            PointSelection::AtMost(24),
        );
        let report = sweep.run();
        assert!(report.total_points > 0);
        assert!(report.clean(), "{report}");
    }

    /// Regression: (Steins, GC, crash point 1). The sweep's minimal repro
    /// was a single `Write { line: 5, tag: 128 }` crashing at the very
    /// first persist event (the ADR drain-slot update): `L0Inc` was bumped
    /// before the data line + MacRecord were durable, so recovery
    /// recomputed 0 against a stored 1. Fixed by moving the LInc bump to
    /// ride the data push's persist event.
    #[test]
    fn steins_gc_point_1_single_write_recovers() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let ops = vec![SweepOp::Write { line: 5, tag: 128 }];
        let sweep = CrashSweep::new(cfg, ops, PointSelection::All);
        for k in 1..=sweep.total_points().unwrap() {
            assert!(sweep.probe_point(k).is_none(), "point {k} must recover");
        }
    }

    /// Regression: (ASIT, GC) — the sweep found 67/180 unrecoverable
    /// points from two bugs: the cache-tree register was committed *after*
    /// the shadow push's persist event (register and shadow could tear),
    /// and the shadow leaf legitimately runs one increment ahead of the
    /// data plane between the shadow push and the data push (reconciled
    /// against MacRecords at recovery). Both orderings live in
    /// `asit_slot_update` / `recover_asit`.
    #[test]
    fn asit_gc_sampled_points_all_recover() {
        let sweep = CrashSweep::small(
            SchemeKind::Asit,
            CounterMode::General,
            40,
            PointSelection::AtMost(24),
        );
        let report = sweep.run();
        assert!(report.total_points > 0);
        assert!(report.clean(), "{report}");
    }

    /// Regression: (STAR, GC) — the sweep found 46/136 unrecoverable
    /// points: at a clean→dirty transition the register covered the
    /// post-mutation node while recovery reconstructs the pre-mutation
    /// content, and the set-MAC included the HMAC field, which the flush
    /// path rewrites without any counter changing. Fixed by the pre-image
    /// substitution in `star_tree_update_with` (refresh deferred to the
    /// mutation's own persist event) and by zeroing `hmac` in the set-MAC
    /// on both the runtime and recovery sides.
    #[test]
    fn star_gc_sampled_points_all_recover() {
        let sweep = CrashSweep::small(
            SchemeKind::Star,
            CounterMode::General,
            40,
            PointSelection::AtMost(24),
        );
        let report = sweep.run();
        assert!(report.total_points > 0);
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn wb_sweep_passes_via_recovery_unsupported_contract() {
        let sweep = CrashSweep::small(
            SchemeKind::WriteBack,
            CounterMode::General,
            24,
            PointSelection::AtMost(12),
        );
        let report = sweep.run();
        assert!(report.clean(), "{report}");
    }

    /// Batching stops at the crypto: for a fixed trace, the multi-lane
    /// (batched) crypto presentation must drive the *exact* durable-state
    /// transition sequence the serial presentation does — same persist
    /// events, same order, same addresses — or crash-point enumeration
    /// would silently change meaning between the two paths. Compared via a
    /// sequence hash (and the raw journals, for a readable diff on
    /// failure) across the schemes whose hot paths present batches.
    #[test]
    fn batched_flush_persist_sequence_matches_serial() {
        use steins_crypto::{RealCrypto, SerialPresentation};

        fn journal(
            scheme: SchemeKind,
            mode: CounterMode,
            serial: bool,
        ) -> (u64, Vec<PersistPoint>) {
            let cfg = SystemConfig::small_for_tests(scheme, mode);
            let mut sys = if serial {
                let eng = SerialPresentation(RealCrypto::new(cfg.secret_key()));
                SecureNvmSystem::with_engine(cfg, Box::new(eng))
            } else {
                SecureNvmSystem::new(cfg)
            };
            sys.ctrl.nvm.trace_pokes(true);
            sys.ctrl.nvm.journal_points(true);
            for op in SweepOp::stream(0xBA7C4ED, 64, 300) {
                CrashSweep::apply_op(&mut sys, op).expect("trace must run clean");
            }
            let points = sys.ctrl.nvm.point_journal().to_vec();
            // FNV-1a over (seq, kind, addr) — the sequence hash.
            let mut h = 0xcbf29ce484222325u64;
            for p in &points {
                for w in [p.seq, p.kind as u64, p.addr] {
                    for b in w.to_le_bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                    }
                }
            }
            (h, points)
        }

        for (scheme, mode) in [
            (SchemeKind::Steins, CounterMode::General),
            (SchemeKind::Steins, CounterMode::Split), // minor overflow ⇒ batched re-encryption
            (SchemeKind::Asit, CounterMode::General), // cache-tree level batches
        ] {
            let (bh, bj) = journal(scheme, mode, false);
            let (sh, sj) = journal(scheme, mode, true);
            assert!(
                !bj.is_empty(),
                "{scheme:?}/{mode:?}: trace persisted nothing"
            );
            assert_eq!(bj, sj, "{scheme:?}/{mode:?}: persist sequences diverge");
            assert_eq!(bh, sh, "{scheme:?}/{mode:?}: sequence hash diverges");
        }
    }

    #[test]
    fn bounded_selection_covers_first_and_last_point() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let ops = SweepOp::stream(7, 64, 20);
        let total = CrashSweep::enumerate(&cfg, &ops).unwrap();
        assert!(total > 16, "stream too short to exercise striding");
        // AtMost(n) with n < total must stride from 1 to total inclusive.
        let n = 8u64;
        let points: Vec<u64> = (0..n).map(|i| 1 + i * (total - 1) / (n - 1)).collect();
        assert_eq!(points[0], 1);
        assert_eq!(*points.last().unwrap(), total);
        assert_eq!(points.len() as u64, n);
    }

    /// Torn-write contract, sampled per recoverable scheme: at every
    /// selected line-write boundary, tearing the line (prefix, sparse,
    /// dropped) must leave every *other* acked line recoverable — strictly
    /// or via the scrub — with the torn line failing closed.
    fn torn_sweep(scheme: SchemeKind) {
        let sweep = CrashSweep::small(scheme, CounterMode::General, 25, PointSelection::AtMost(10));
        let report = sweep.run_torn(&[0x00, 0x0F, 0x5A]);
        assert!(report.total_points > 0, "no tearable points enumerated");
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn steins_gc_torn_points_recover_or_scrub() {
        torn_sweep(SchemeKind::Steins);
    }

    #[test]
    fn asit_gc_torn_points_recover_or_scrub() {
        torn_sweep(SchemeKind::Asit);
    }

    #[test]
    fn star_gc_torn_points_recover_or_scrub() {
        torn_sweep(SchemeKind::Star);
    }

    #[test]
    fn wb_torn_points_keep_refusing_recovery() {
        torn_sweep(SchemeKind::WriteBack);
    }

    #[test]
    fn full_mask_torn_sweep_matches_classic_contract() {
        // mask 0xFF through the torn driver must behave exactly like the
        // classic whole-line sweep: strict recovery at every point.
        let sweep = CrashSweep::small(
            SchemeKind::Steins,
            CounterMode::Split,
            20,
            PointSelection::AtMost(8),
        );
        let report = sweep.run_torn(&[0xFF]);
        assert!(report.clean(), "{report}");
    }

    /// Nested contract, sampled per scheme: crash at an outer point, crash
    /// *again* during recovery, and require the second recovery (or scrub)
    /// to converge — the recovery state machine is restartable.
    fn nested_sweep(scheme: SchemeKind) {
        let sweep = CrashSweep::small(scheme, CounterMode::General, 18, PointSelection::AtMost(5));
        let report = sweep.run_nested(&[0xFF, 0x0F], &[0xFF, 0x0F], PointSelection::AtMost(4));
        assert!(report.tested_points > 0, "no nested points enumerated");
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn steins_gc_nested_points_all_recover() {
        nested_sweep(SchemeKind::Steins);
    }

    #[test]
    fn asit_gc_nested_points_all_recover() {
        nested_sweep(SchemeKind::Asit);
    }

    #[test]
    fn star_gc_nested_points_all_recover() {
        nested_sweep(SchemeKind::Star);
    }

    #[test]
    fn wb_nested_points_keep_refusing_recovery() {
        nested_sweep(SchemeKind::WriteBack);
    }

    /// The nested contract must survive laned journals: with 4 lane-mark
    /// slots every interrupted attempt leaves per-lane marks in the ADR
    /// journal, and the second recovery resumes from the mark union.
    #[test]
    fn nested_points_recover_with_laned_journals() {
        for scheme in [SchemeKind::Steins, SchemeKind::Asit, SchemeKind::Star] {
            let sweep =
                CrashSweep::small(scheme, CounterMode::General, 18, PointSelection::AtMost(4))
                    .with_recovery_lanes(4);
            let report = sweep.run_nested(&[0xFF, 0x0F], &[0xFF], PointSelection::AtMost(3));
            assert!(report.tested_points > 0, "no nested points enumerated");
            assert!(report.clean(), "{report}");
        }
    }

    #[test]
    fn interrupted_recovery_reports_restart_metrics() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let ops = SweepOp::stream(0xD0C5, 64, 20);
        let total = CrashSweep::enumerate(&cfg, &ops).unwrap();
        let k = total / 2;
        let inner = CrashSweep::recovery_points(&cfg, &ops, k, 0xFF)
            .ok()
            .unwrap();
        assert!(!inner.is_empty(), "recovery fires no persist points");
        // Trip on recovery's very first durable write (the phase journal
        // update), then recover the doubly-crashed machine.
        let j = inner[0].seq;
        let (run, _ctx) = CrashSweep::crash_nested(&cfg, &ops, k, 0xFF, j, 0xFF, None)
            .ok()
            .unwrap()
            .unwrap();
        let NestedRun::Crashed(crashed2) = run else {
            panic!("inner point must trip mid-recovery");
        };
        assert!(
            crate::recovery::journal::in_progress(crashed2.nvm.recovery_journal().phase),
            "interrupted recovery must leave an in-progress journal phase"
        );
        let (_sys, report) = crashed2.recover().unwrap();
        assert!(
            report
                .metrics
                .counter("core.recovery.restarts")
                .unwrap_or(0)
                >= 1,
            "second recovery must report a restart"
        );
        assert_eq!(
            report.metrics.counter("core.recovery.resumed"),
            Some(1),
            "second recovery must report it resumed a journaled attempt"
        );
    }

    #[test]
    fn crash_repro_display_names_the_point() {
        let repro = CrashRepro {
            label: "Steins-GC".into(),
            ops: vec![SweepOp::Write { line: 3, tag: 9 }],
            op_index: 0,
            crash_point: 17,
            point: Some(PersistPoint {
                seq: 17,
                kind: PersistKind::AdrUpdate,
                addr: 0x40,
            }),
            error: "LInc registers inconsistent after recovery".into(),
            divergent: "lincs stored [1] != recomputed [2]".into(),
        };
        let s = repro.to_string();
        assert!(s.contains("crash point 17"), "{s}");
        assert!(s.contains("AdrUpdate"), "{s}");
        assert!(s.contains("LInc"), "{s}");
    }
}
