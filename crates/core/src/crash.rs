//! Crash injection: what survives a power failure and what does not.
//!
//! Lost: the metadata cache (all dirty nodes — the recovery problem), the
//! CPU caches (dirty user lines — an application-level loss the persistent
//! workloads avoid by flushing), and all volatile scheme state (cache-tree
//! intermediates).
//!
//! Survives: the NVM contents including every write the write queue had
//! accepted (the queue is in the ADR domain), the ADR-cached record/bitmap
//! lines (flushed with residual power), and the on-chip NV registers — the
//! SIT root, Steins' LIncs and NV buffer, ASIT/STAR's cache-tree root.

use crate::config::{SchemeKind, SystemConfig};
use crate::engine::SecureNvmSystem;
use crate::linc::LincBank;
use crate::nvbuffer::NvBuffer;
use crate::scheme::SchemeState;
use std::collections::HashMap;
use steins_crypto::CryptoEngine;
use steins_metadata::{MemoryLayout, RootNode};
use steins_nvm::NvmDevice;

/// Per-scheme non-volatile remnants.
pub enum NvState {
    /// WB keeps nothing (and can recover nothing).
    WriteBack,
    /// ASIT: cache-tree root register + shadow-table tags (non-volatile
    /// alongside the table; see `scheme::asit`).
    Asit {
        /// NV cache-tree root.
        nv_root: u64,
        /// slot → node offset for occupied shadow entries.
        shadow_tags: HashMap<u64, u64>,
    },
    /// STAR: cache-tree root register.
    Star {
        /// NV cache-tree root.
        nv_root: u64,
    },
    /// Steins: LInc register + NV parent-counter buffer.
    Steins {
        /// The per-level trust bases.
        lincs: LincBank,
        /// Parked parent updates.
        nv_buffer: NvBuffer,
    },
}

/// A machine that lost power: only non-volatile state remains.
pub struct CrashedSystem {
    pub(crate) cfg: SystemConfig,
    pub(crate) layout: MemoryLayout,
    pub(crate) crypto: Box<dyn CryptoEngine>,
    pub(crate) nvm: NvmDevice,
    pub(crate) root: RootNode,
    pub(crate) nv: NvState,
    /// Ground truth restricted to lines whose latest value was persisted
    /// (CPU-dirty lines are genuinely lost).
    pub(crate) truth: HashMap<u64, [u8; 64]>,
    /// Lines whose latest stores were lost in the CPU caches.
    pub(crate) lost_lines: Vec<u64>,
}

impl SecureNvmSystem {
    /// Pulls the power plug. Consumes the system; only non-volatile state
    /// crosses into the [`CrashedSystem`].
    pub fn crash(mut self) -> CrashedSystem {
        // CPU-cache-resident dirty lines are lost: their last-stored values
        // never reached the controller.
        let lost_lines = self.hier.dirty_lines();
        let mut truth = self.truth;
        for addr in &lost_lines {
            truth.remove(addr);
        }

        // ADR flush: residual power pushes the controller's ADR-domain lines
        // into NVM. (Write-queue entries were applied to the device at
        // acceptance, so they are already durable.)
        let nv = match self.ctrl.scheme {
            SchemeState::WriteBack => NvState::WriteBack,
            SchemeState::Asit(st) => NvState::Asit {
                nv_root: st.nv_root,
                shadow_tags: st.shadow_tags,
            },
            SchemeState::Star(mut st) => {
                for (addr, line) in st.bitmap_cache.crash_flush() {
                    self.ctrl.nvm.poke(addr, &line);
                }
                NvState::Star {
                    nv_root: st.nv_root,
                }
            }
            SchemeState::Steins(mut st) => {
                for (addr, line) in st.record_cache.crash_flush() {
                    self.ctrl.nvm.poke(addr, &line);
                }
                NvState::Steins {
                    lincs: st.lincs,
                    nv_buffer: st.nv_buffer,
                }
            }
        };

        CrashedSystem {
            cfg: self.cfg,
            layout: self.ctrl.layout,
            crypto: self.ctrl.crypto,
            nvm: self.ctrl.nvm,
            root: self.ctrl.root,
            nv,
            truth,
            lost_lines,
        }
    }
}

impl CrashedSystem {
    /// The configuration the machine ran with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Whether the scheme can recover at all.
    pub fn recoverable(&self) -> bool {
        !matches!(self.cfg.scheme, SchemeKind::WriteBack)
    }

    /// Lines whose latest values were lost in the volatile CPU caches.
    pub fn lost_lines(&self) -> &[u64] {
        &self.lost_lines
    }

    /// Raw NVM view (used by tests and the attack helpers).
    pub fn nvm(&self) -> &NvmDevice {
        &self.nvm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_metadata::CounterMode;

    #[test]
    fn crash_preserves_persisted_truth_and_drops_cpu_dirty() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let mut sys = SecureNvmSystem::new(cfg);
        // write() flushes, so this line is persisted truth.
        sys.write(0x100 * 64, &[7; 64]).unwrap();
        let crashed = sys.crash();
        assert!(crashed.truth.contains_key(&(0x100 * 64)));
        assert!(crashed.recoverable());
    }

    #[test]
    fn wb_is_not_recoverable() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::WriteBack, CounterMode::General);
        let sys = SecureNvmSystem::new(cfg);
        assert!(!sys.crash().recoverable());
    }
}
