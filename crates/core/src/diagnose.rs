//! Reusable integrity diagnostics: when a MAC check fails, search nearby
//! counter values for the one the stored MAC actually corresponds to.
//!
//! A failed data/node MAC tells you *that* state diverged, not *how*. In
//! practice almost every real divergence is a counter off by a bounded
//! amount (a lost increment, a stale parent, a replayed line), so probing a
//! window of candidate counters around the expected value pinpoints the
//! first divergent quantity — the `debug_repro` workflow, packaged for the
//! crash-sweep harness and ad-hoc debugging alike.

use crate::engine::SecureMemoryController;
use std::fmt;
use steins_metadata::SitNode;

/// Outcome of probing a stored data-block MAC against candidate counter
/// pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataMacDiagnosis {
    /// The stored MAC verifies under `(major, minor)` — the counters the
    /// block was really encrypted with.
    Matches {
        /// Matching major (encryption) counter.
        major: u64,
        /// Matching minor counter (0 in general-counter mode).
        minor: u64,
    },
    /// No candidate in the searched window verifies: the data or the MAC
    /// itself was corrupted/tampered, not merely a counter mismatch.
    NoCandidate {
        /// Majors searched: `[major_lo, major_hi]`.
        major_lo: u64,
        /// Upper bound of the searched major window (inclusive).
        major_hi: u64,
    },
}

impl fmt::Display for DataMacDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataMacDiagnosis::Matches { major, minor } => {
                write!(f, "stored mac matches pair ({major},{minor})")
            }
            DataMacDiagnosis::NoCandidate { major_lo, major_hi } => write!(
                f,
                "stored mac matches no pair with major in [{major_lo},{major_hi}] — data or record corrupted"
            ),
        }
    }
}

/// Searches which `(major, minor)` pair the stored MAC of the data block at
/// `addr` corresponds to: majors within `±major_radius` of `major_hint`,
/// minors in `0..minor_span` (use 1 for general counters, 64 for split).
/// `stored_mac` is the MAC record's value; `data` the persisted ciphertext.
pub fn probe_data_mac(
    ctrl: &SecureMemoryController,
    addr: u64,
    data: &[u8; 64],
    stored_mac: u64,
    major_hint: u64,
    major_radius: u64,
    minor_span: u64,
) -> DataMacDiagnosis {
    let lo = major_hint.saturating_sub(major_radius);
    let hi = major_hint + major_radius;
    for major in lo..=hi {
        for minor in 0..minor_span.max(1) {
            if ctrl.data_mac_probe(addr, data, major, minor) == stored_mac {
                return DataMacDiagnosis::Matches { major, minor };
            }
        }
    }
    DataMacDiagnosis::NoCandidate {
        major_lo: lo,
        major_hi: hi,
    }
}

/// Outcome of probing a stored node HMAC against candidate parent counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeMacDiagnosis {
    /// The stored HMAC verifies under parent counter `pc`; `expected` is the
    /// counter the caller believed current — the divergence is their gap.
    Matches {
        /// Parent counter the stored HMAC was computed with.
        pc: u64,
        /// Parent counter the caller expected.
        expected: u64,
    },
    /// No counter within the window verifies.
    NoCandidate {
        /// Counters searched: `[pc_lo, pc_hi]`.
        pc_lo: u64,
        /// Upper bound of the searched window (inclusive).
        pc_hi: u64,
    },
}

impl fmt::Display for NodeMacDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeMacDiagnosis::Matches { pc, expected } => write!(
                f,
                "stored hmac matches parent counter = {pc} (expected = {expected})"
            ),
            NodeMacDiagnosis::NoCandidate { pc_lo, pc_hi } => write!(
                f,
                "stored hmac matches no parent counter in [{pc_lo},{pc_hi}] — node tampered/diverged"
            ),
        }
    }
}

/// Searches which parent counter the stored HMAC of `node` (at metadata
/// offset `offset`) was computed with, probing `±radius` around
/// `pc_expected`. Under STAR the comparison masks to the packed MAC bits,
/// exactly as verification does.
pub fn probe_node_mac(
    ctrl: &SecureMemoryController,
    node: &SitNode,
    offset: u64,
    pc_expected: u64,
    radius: u64,
) -> NodeMacDiagnosis {
    let lo = pc_expected.saturating_sub(radius);
    let hi = pc_expected + radius;
    for pc in lo..=hi {
        if ctrl.mac_probe(node, offset, pc) == node.hmac {
            return NodeMacDiagnosis::Matches {
                pc,
                expected: pc_expected,
            };
        }
    }
    NodeMacDiagnosis::NoCandidate {
        pc_lo: lo,
        pc_hi: hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SchemeKind, SystemConfig};
    use crate::engine::SecureNvmSystem;
    use steins_metadata::CounterMode;

    fn steins_sys(mode: CounterMode) -> SecureNvmSystem {
        SecureNvmSystem::new(SystemConfig::small_for_tests(SchemeKind::Steins, mode))
    }

    #[test]
    fn data_probe_finds_true_pair_from_offset_hint() {
        for mode in [CounterMode::General, CounterMode::Split] {
            let mut sys = steins_sys(mode);
            // A few writes so the counters move off zero.
            for v in 0..5u8 {
                sys.write(0, &[v; 64]).unwrap();
            }
            let rec = sys.ctrl.data_mac_record(0);
            let data = sys.ctrl.nvm().peek(sys.ctrl.layout().data_base);
            let span = mode.leaf_coverage(); // 8 (GC) is harmlessly wide; 64 covers SC minors
            let got = probe_data_mac(
                &sys.ctrl,
                sys.ctrl.layout().data_base,
                &data,
                rec.mac,
                3, // wrong hint: true major is 5 (GC) / 0 with minor 5 (SC)
                8,
                span,
            );
            let (mj, mn) = crate::cme::MacRecord::unpack_recovery(rec.recovery);
            assert_eq!(
                got,
                DataMacDiagnosis::Matches {
                    major: mj,
                    minor: mn
                },
                "{mode:?}"
            );
        }
    }

    #[test]
    fn data_probe_reports_no_candidate_on_tamper() {
        let mut sys = steins_sys(CounterMode::General);
        sys.write(0, &[1; 64]).unwrap();
        let rec = sys.ctrl.data_mac_record(0);
        let mut data = sys.ctrl.nvm().peek(sys.ctrl.layout().data_base);
        data[0] ^= 0xFF; // corrupt the ciphertext
        let got = probe_data_mac(
            &sys.ctrl,
            sys.ctrl.layout().data_base,
            &data,
            rec.mac,
            1,
            4,
            1,
        );
        assert!(matches!(got, DataMacDiagnosis::NoCandidate { .. }));
        assert!(got.to_string().contains("no pair"));
    }

    #[test]
    fn node_probe_recovers_flush_time_parent_counter() {
        let mut sys = steins_sys(CounterMode::General);
        // Traffic wide enough to overflow the metadata cache, so leaves get
        // evicted and flushed to NVM with nonzero counters.
        for i in 0..1500u64 {
            sys.write((i * 37 % 4096) * 64, &[i as u8; 64]).unwrap();
        }
        let geo = sys.ctrl.layout().geometry.clone();
        // Find a flushed (nonzero) leaf in NVM and probe its stored HMAC.
        let mut checked = 0;
        for off in 0..geo.nodes_at(0) {
            let line = sys.ctrl.nvm().peek(sys.ctrl.layout().node_addr(off));
            if line == [0u8; 64] {
                continue;
            }
            let node = SitNode::general_from_line(&line);
            let truth = node.counters.parent_value();
            // Deliberately wrong expectation, a few counts off.
            let got = probe_node_mac(&sys.ctrl, &node, off, truth + 3, 16);
            assert_eq!(
                got,
                NodeMacDiagnosis::Matches {
                    pc: truth,
                    expected: truth + 3
                }
            );
            checked += 1;
            if checked >= 3 {
                break;
            }
        }
        assert!(checked > 0, "at least one flushed leaf must exist");
    }

    #[test]
    fn node_probe_reports_no_candidate_outside_window() {
        let mut sys = steins_sys(CounterMode::General);
        for i in 0..60u64 {
            sys.write(i * 64, &[i as u8; 64]).unwrap();
        }
        let off = 0;
        let line = sys.ctrl.nvm().peek(sys.ctrl.layout().node_addr(off));
        let mut node = SitNode::general_from_line(&line);
        node.hmac ^= 0xDEAD; // no counter can match a corrupted HMAC
        let got = probe_node_mac(&sys.ctrl, &node, off, 1, 50);
        assert!(matches!(got, NodeMacDiagnosis::NoCandidate { .. }));
    }
}
