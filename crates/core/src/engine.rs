//! The secure memory controller and the full trace-driven system.
//!
//! [`SecureMemoryController`] implements the paper's runtime (§III-E/F):
//! counter-mode encryption, the lazy-update SIT with per-scheme hooks, the
//! metadata cache, the write queue, and the controller front-end that
//! serializes requests (per §IV-F, requests to one DIMM are processed
//! serially). [`SecureNvmSystem`] wraps it with the CPU model and cache
//! hierarchy and runs workload traces.
//!
//! ## Timing model
//!
//! Every request carries its arrival cycle; the controller front-end is
//! busy until `front_free`. Fills stall the core (minus an MLP overlap
//! credit); write-backs do not stall the core directly but advance
//! `front_free` — so the *extra* metadata work a scheme performs (ASIT's
//! shadow writes and cache-tree chains, STAR's sorting and bitmap misses,
//! Steins' record-line misses) delays subsequent fills, which is exactly
//! how the paper's execution-time differences arise.

use crate::cme::{xor_otp, MacRecord};
use crate::config::{LeafRecovery, SchemeKind, SystemConfig};
use crate::error::IntegrityError;
use crate::nvbuffer::NvBufferEntry;
use crate::online::{OnlinePolicy, OnlineService};
use crate::report::{LatencyStats, RunReport};
use crate::scheme::{star, AsitState, SchemeState, StarState, SteinsState};
use steins_cache::{CacheHierarchy, CpuModel, MemEvent};
use steins_crypto::{data_mac_message, engine::make_engine, CryptoEngine, FxHashMap};
use steins_metadata::counter::{CounterBlock, CounterMode, SplitIncrement};
use steins_metadata::records::record_coords;
use steins_metadata::{MemoryLayout, MetadataCache, NodeId, RootNode, SitNode};
use steins_nvm::{Cycle, EnergyCounters, EnergyModel, NvmDevice, WriteQueue};
use steins_trace::{OpKind, TraceOp};

/// The secure memory controller: functional state + timing + statistics.
pub struct SecureMemoryController {
    pub(crate) cfg: SystemConfig,
    pub(crate) layout: MemoryLayout,
    pub(crate) crypto: Box<dyn CryptoEngine>,
    pub(crate) nvm: NvmDevice,
    pub(crate) wq: WriteQueue,
    pub(crate) meta: MetadataCache,
    pub(crate) root: RootNode,
    pub(crate) scheme: SchemeState,
    pub(crate) front_free: Cycle,
    pub(crate) energy: EnergyCounters,
    pub(crate) wlat: LatencyStats,
    pub(crate) rlat: LatencyStats,
    pinned: Vec<u64>,
    /// Scratch: STAR's per-write dirty-set collection, reused across calls
    /// so the set-MAC path performs no steady-state allocation.
    star_dirty: Vec<(u64, SitNode)>,
    /// Scratch: variable-length MAC message buffer, reused across calls.
    mac_msg: Vec<u8>,
}

impl SecureMemoryController {
    /// Builds a fresh controller (zeroed NVM, empty caches).
    pub fn new(cfg: SystemConfig) -> Self {
        let crypto = make_engine(cfg.crypto, cfg.secret_key());
        Self::with_engine(cfg, crypto)
    }

    /// Builds a fresh controller around an injected crypto engine. Tests use
    /// this to wrap the real engine (e.g. in a `SerialPresentation`) and
    /// prove batched and serial crypto presentation drive byte-identical
    /// system behavior; `cfg.crypto` is ignored in favor of `crypto`.
    pub fn with_engine(cfg: SystemConfig, crypto: Box<dyn CryptoEngine>) -> Self {
        cfg.validate();
        let layout = MemoryLayout::new(cfg.mode, cfg.data_lines, cfg.meta_cache.slots());
        assert!(
            layout.end <= cfg.nvm.capacity_bytes,
            "regions ({} B) exceed device capacity ({} B); shrink data_lines",
            layout.end,
            cfg.nvm.capacity_bytes
        );
        let nvm = NvmDevice::new(cfg.nvm.clone());
        let wq = WriteQueue::new(cfg.nvm.write_queue_entries);
        let meta = MetadataCache::new(cfg.meta_cache);
        let root = RootNode::new(layout.geometry.root_fanout());
        let scheme = match cfg.scheme {
            SchemeKind::WriteBack => SchemeState::WriteBack,
            SchemeKind::Asit => SchemeState::Asit(AsitState::new(
                crypto.as_ref(),
                cfg.meta_cache.slots() as usize,
            )),
            SchemeKind::Star => SchemeState::Star(StarState::new(
                crypto.as_ref(),
                cfg.meta_cache.sets() as usize,
                cfg.bitmap_cache_lines,
            )),
            SchemeKind::Steins => SchemeState::Steins(SteinsState::new(
                layout.geometry.levels(),
                cfg.nv_buffer_bytes,
                cfg.record_cache_lines,
            )),
        };
        SecureMemoryController {
            cfg,
            layout,
            crypto,
            nvm,
            wq,
            meta,
            root,
            scheme,
            front_free: 0,
            energy: EnergyCounters::default(),
            wlat: LatencyStats::default(),
            rlat: LatencyStats::default(),
            pinned: Vec::new(),
            star_dirty: Vec::new(),
            mac_msg: Vec::new(),
        }
    }

    /// Writes the ADR recovery journal sealed under the engine key. Every
    /// journal write in the controller crates goes through here — the MAC
    /// is what lets the next recovery attempt prove the resume marks were
    /// written by a holder of the key, not forged on the bus.
    pub(crate) fn journal_write(&mut self, journal: steins_nvm::RecoveryJournal) {
        let mac = crate::recovery::seal_journal(self.crypto.as_ref(), &journal);
        self.nvm.set_recovery_journal(journal, mac);
    }

    /// Temporary diagnostic watchpoint (STEINS_WATCH=child_offset).
    fn watch(&self, what: &str, offset: u64, extra: u64) {
        if let Ok(w) = std::env::var("STEINS_WATCH") {
            if w.parse::<u64>() == Ok(offset) {
                eprintln!("[watch {offset}] {what} extra={extra}");
            }
        }
    }

    /// Whether Steins is the active scheme.
    fn is_steins(&self) -> bool {
        matches!(self.cfg.scheme, SchemeKind::Steins)
    }

    /// Parses a metadata NVM line according to the node's level.
    pub(crate) fn parse_node(&self, id: NodeId, line: &[u8; 64]) -> SitNode {
        if id.level == 0 && self.cfg.mode == CounterMode::Split {
            SitNode::split_from_line(line)
        } else {
            SitNode::general_from_line(line)
        }
    }

    fn is_zero_node(node: &SitNode) -> bool {
        node.hmac == 0 && node.to_line() == [0u8; 64]
    }

    /// Computes the 64-bit MAC a node stores when flushed with parent
    /// counter `pc` (STAR packs the counter LSBs into the field).
    fn node_mac_field(&mut self, node: &SitNode, offset: u64, pc: u64) -> u64 {
        self.energy.hashes += 1;
        let mac = self
            .crypto
            .mac64_72(&node.mac_message(self.layout.node_addr(offset), pc));
        if matches!(self.cfg.scheme, SchemeKind::Star) {
            star::pack_hmac(mac, pc)
        } else {
            mac
        }
    }

    /// Verifies a fetched node against its parent counter. Zero nodes under
    /// a zero parent counter are the lazily-initialized state and pass.
    pub(crate) fn verify_node(
        &mut self,
        node: &SitNode,
        id: NodeId,
        pc: u64,
    ) -> Result<(), IntegrityError> {
        if pc == 0 && Self::is_zero_node(node) {
            return Ok(());
        }
        let offset = self.layout.geometry.offset_of(id);
        self.energy.hashes += 1;
        let mac = self
            .crypto
            .mac64_72(&node.mac_message(self.layout.node_addr(offset), pc));
        let ok = if matches!(self.cfg.scheme, SchemeKind::Star) {
            star::unpack_hmac(node.hmac).0 == mac & star::STAR_MAC_MASK
        } else {
            node.hmac == mac
        };
        if ok {
            Ok(())
        } else {
            Err(IntegrityError::NodeMac { node: id })
        }
    }

    /// The trusted parent counter for `id`, fetching/verifying ancestors as
    /// needed. Returns `(counter, time)`.
    fn parent_counter(&mut self, t: Cycle, id: NodeId) -> Result<(u64, Cycle), IntegrityError> {
        match self.layout.geometry.parent_of(id) {
            None => Ok((self.root.get(self.layout.geometry.root_slot(id)), t)),
            Some((pid, slot)) => {
                let t = self.ensure_cached(t, pid)?;
                let poff = self.layout.geometry.offset_of(pid);
                let p = self.meta.peek(poff).expect("parent just ensured");
                Ok((p.counters.as_general().get(slot), t))
            }
        }
    }

    /// Fetches `id` into the metadata cache (verifying the ancestor chain)
    /// if absent. Returns the cycle the node is available.
    pub(crate) fn ensure_cached(&mut self, t: Cycle, id: NodeId) -> Result<Cycle, IntegrityError> {
        let offset = self.layout.geometry.offset_of(id);
        if self.meta.lookup(offset).is_some() {
            self.energy.cache_accesses += 1;
            return Ok(t);
        }
        // Steins drains the NV parent-counter buffer before node fetches so
        // verification always sees up-to-date parent counters (§III-E).
        // Entries stay in the buffer until applied, so fetches issued *by*
        // the drain itself must not re-enter it.
        if self.is_steins()
            && !self.scheme.steins_ref().draining
            && !self.scheme.steins_ref().nv_buffer.is_empty()
        {
            self.drain_nv_buffer(t)?;
        }
        let (pc, t) = self.parent_counter(t, id)?;
        // Fetching the parent can evict a dirty node whose flush walks back
        // through `id` and installs it (e.g. the victim's parent *is* `id`).
        // Installing again would duplicate the node with stale counters.
        if self.meta.contains(offset) {
            return Ok(t);
        }
        // If this node was flushed with a generated counter that is still
        // parked in the NV buffer (or held by an in-progress drain), its
        // stored HMAC was computed with that value, not the parent's stale
        // counter (§III-E).
        let pc = if self.is_steins() {
            match self.scheme.steins_ref().parked_generated(offset) {
                Some(g) => pc.max(g),
                None => pc,
            }
        } else {
            pc
        };
        let (line, t) = self.nvm.read(t, self.layout.node_addr(offset));
        let node = self.parse_node(id, &line);
        let t = t + self.cfg.hash_latency;
        self.verify_node(&node, id, pc)?;
        self.install_node(t, id, node, false)
    }

    /// Installs a node, making room first by flushing dirty victims **in
    /// place** — while still resident and pinned — so that any node fetch
    /// the flush triggers (parent walks, NV-buffer drains) observes the
    /// victim's live counters instead of its stale NVM copy. Only clean
    /// victims are ever silently dropped.
    pub(crate) fn install_node(
        &mut self,
        t: Cycle,
        id: NodeId,
        node: SitNode,
        dirty: bool,
    ) -> Result<Cycle, IntegrityError> {
        let offset = self.layout.geometry.offset_of(id);
        self.pinned.push(offset);
        let mut t = t;
        let result = (|| {
            loop {
                if self.meta.contains(offset) {
                    // Nested work (a victim flush walking back through this
                    // node) installed it already — and may have modified it
                    // since, so for a clean fetch the cached copy wins. A
                    // dirty install (recovery) carries the authoritative
                    // reconstructed value and overwrites.
                    if dirty {
                        self.meta.write(offset, node);
                        self.meta.mark_dirty(offset);
                    }
                    return Ok(t);
                }
                match self.meta.probe_victim(offset, &self.pinned) {
                    Some((voff, true)) => {
                        t = self.flush_in_place(t, voff)?;
                        // Loop: the flush may have reshuffled the set (or
                        // installed `offset` itself).
                    }
                    _ => break,
                }
            }
            let evicted = self.meta.install_pinned(offset, node, dirty, &self.pinned);
            if let Some(ev) = evicted {
                debug_assert!(!ev.dirty, "victims are flushed in place first");
                t = self.scheme_slot_vacated(t, ev.slot, ev.offset);
            }
            Ok(t)
        })();
        self.pinned.pop();
        result
    }

    /// Scheme work when a cache slot's previous (clean) occupant leaves:
    /// ASIT retires the slot's shadow entry from the cache-tree. Clean
    /// fetches cost nothing under any scheme (ASIT mirrors modifications,
    /// not installs; STAR's cache-tree covers dirty nodes only).
    fn scheme_slot_vacated(&mut self, mut t: Cycle, slot: u64, _offset: u64) -> Cycle {
        if let SchemeState::Asit(st) = &mut self.scheme {
            if st.shadow_tags.remove(&slot).is_some() {
                let hashes = st.cache_tree.update(self.crypto.as_ref(), slot as usize, 0);
                st.commit_root();
                self.energy.hashes += hashes as u64;
                t += hashes as u64 * self.cfg.hash_latency;
            }
        }
        t
    }

    /// Marks a cached node dirty after a content change and runs the
    /// per-scheme tracking/persistence hooks (§III table in `scheme`).
    /// `pre` is the node's content just before the mutation — STAR's
    /// cache-tree needs it at a clean→dirty transition (see below).
    pub(crate) fn on_node_modified(
        &mut self,
        mut t: Cycle,
        offset: u64,
        pre: &SitNode,
    ) -> Result<Cycle, IntegrityError> {
        let (slot, was_clean) = self.meta.mark_dirty(offset);
        match self.cfg.scheme {
            SchemeKind::WriteBack => {}
            SchemeKind::Steins => {
                if was_clean {
                    t = self.steins_record_update(t, slot, offset);
                }
            }
            SchemeKind::Asit => {
                t = self.asit_slot_update(t, offset);
            }
            SchemeKind::Star => {
                if was_clean {
                    // Cache-tree register first — over the node's
                    // PRE-mutation content, which is what recovery can
                    // reconstruct from NVM at this boundary — so the
                    // register rides the bitmap line's persist event
                    // atomically (register writes emit no event).
                    let set = self.meta.set_index(offset);
                    t = self.star_tree_update_with(t, set, Some((offset, *pre)));
                    t = self.star_bitmap_update(t, offset, true);
                }
                // The register refresh over the NEW content is deferred to
                // the call site, where it rides the persist event that makes
                // the mutation itself durable (data-line or child write).
            }
        }
        Ok(t)
    }

    /// Steins §III-C: write the dirty node's offset into its record line,
    /// fetching the line into the ADR record cache on a miss.
    ///
    /// The fetch and any evicted-line write-back are *posted*: the record
    /// cache lives in the ADR domain, so the controller does not wait for
    /// them — they cost NVM traffic and bank occupancy, not front-end time
    /// (the write stalls only on write-queue back-pressure). This is the
    /// cost asymmetry versus STAR's write-through bitmap below.
    fn steins_record_update(&mut self, mut t: Cycle, cache_slot: u64, offset: u64) -> Cycle {
        let (rline, _) = record_coords(cache_slot);
        let raddr = self.layout.record_addr(rline);
        let st = match &mut self.scheme {
            SchemeState::Steins(s) => s,
            _ => unreachable!("steins hook under steins scheme"),
        };
        if !st.record_cache.touch(raddr) {
            let (line, _) = self.nvm.read(t, raddr); // posted: no t advance
            if let Some((ev_addr, ev_line)) = st.record_cache.insert(raddr, line) {
                t = self.wq.push(t, ev_addr, &ev_line, &mut self.nvm);
            }
        }
        st.set_record(raddr, cache_slot, offset);
        self.energy.cache_accesses += 1;
        // The record line lives in the ADR domain: this in-place update is a
        // durable-state transition (an enumerable crash point).
        self.nvm.adr_persist_event(raddr);
        t
    }

    /// STAR: flip the node's dirty bit in the bitmap.
    ///
    /// STAR predates Steins' ADR-resident record trick: its bitmap must be
    /// durable on its own, so every transition **writes the updated line
    /// through to NVM** (the "extra memory access overhead" of §II-D and
    /// the 1.3× traffic of Fig. 13). The line cache only absorbs re-reads.
    fn star_bitmap_update(&mut self, mut t: Cycle, offset: u64, set_bit: bool) -> Cycle {
        let (baddr, bit) = self.layout.bitmap_slot(offset);
        let st = match &mut self.scheme {
            SchemeState::Star(s) => s,
            _ => unreachable!("star hook under star scheme"),
        };
        if !st.bitmap_cache.touch(baddr) {
            let (line, t2) = self.nvm.read(t, baddr);
            t = t2;
            // Write-through lines are never dirty: drop evictions silently.
            st.bitmap_cache.insert(baddr, line);
        }
        let line = st.bitmap_cache.get_mut(baddr).expect("just ensured");
        let (byte, off) = (bit / 8, bit % 8);
        if set_bit {
            line[byte] |= 1 << off;
        } else {
            line[byte] &= !(1 << off);
        }
        let line = *line;
        self.energy.cache_accesses += 1;
        // The cached bitmap line is in the ADR domain: flipping the bit is a
        // durable transition on its own, ahead of the write-through below.
        self.nvm.adr_persist_event(baddr);
        t = self.wq.push(t, baddr, &line, &mut self.nvm);
        t
    }

    /// STAR: recompute the set-MAC (sorted dirty nodes) and the cache-tree
    /// path above it.
    pub(crate) fn star_tree_update(&mut self, t: Cycle, set: usize) -> Cycle {
        self.star_tree_update_with(t, set, None)
    }

    /// The set-MAC, optionally substituting one node's content (used at a
    /// clean→dirty transition, where the register must cover the node's
    /// PRE-mutation content: that is what recovery reconstructs from NVM at
    /// the bitmap write's persist boundary — the mutated content only
    /// becomes reconstructible at its own persist event, where the caller
    /// refreshes the register again).
    ///
    /// The HMAC field is excluded from the MAC (zeroed): a dirty node's
    /// stored HMAC is recomputed when it flushes, so including it would tie
    /// the register to a field whose NVM copy changes at the flush boundary
    /// without any counter changing.
    fn star_tree_update_with(
        &mut self,
        t: Cycle,
        set: usize,
        substitute: Option<(u64, SitNode)>,
    ) -> Cycle {
        // Reusable scratch (taken/restored around the &mut self borrows):
        // this runs once per STAR write, so a fresh Vec per call was the
        // scheme's single largest allocation source.
        let mut dirty = std::mem::take(&mut self.star_dirty);
        dirty.clear();
        self.meta.dirty_set_nodes_into(set, &mut dirty);
        if let Some((off, node)) = substitute {
            for e in &mut dirty {
                if e.0 == off {
                    e.1 = node;
                }
            }
        }
        dirty.sort_unstable_by_key(|(o, _)| *o);
        let leaf_mac = if dirty.is_empty() {
            0
        } else {
            let mut msg = std::mem::take(&mut self.mac_msg);
            msg.clear();
            msg.reserve(dirty.len() * 72);
            for (o, n) in &dirty {
                let mut n = *n;
                n.hmac = 0;
                msg.extend_from_slice(&o.to_le_bytes());
                msg.extend_from_slice(&n.to_line());
            }
            self.energy.hashes += 1;
            let mac = self.crypto.mac64(&msg);
            self.mac_msg = msg;
            mac
        };
        self.star_dirty = dirty;
        let st = match &mut self.scheme {
            SchemeState::Star(s) => s,
            _ => unreachable!("star hook under star scheme"),
        };
        let hashes = st.cache_tree.update(self.crypto.as_ref(), set, leaf_mac);
        st.commit_root();
        self.energy.hashes += hashes as u64;
        let ways = self.cfg.meta_cache.ways;
        t + StarState::sort_latency(ways) + (1 + hashes as u64) * self.cfg.hash_latency
    }

    /// ASIT: mirror the slot's content into the shadow table and rebuild the
    /// cache-tree path for it.
    pub(crate) fn asit_slot_update(&mut self, mut t: Cycle, offset: u64) -> Cycle {
        let slot = self.meta.slot_of(offset).expect("node resident");
        let node = *self.meta.peek(offset).expect("node resident");
        let line = node.to_line();
        // Leaf MAC over (content ‖ slot), then the path to the root. The
        // register updates are persist-event-free, so doing them BEFORE the
        // shadow-line write makes them atomic with it: a crash at the shadow
        // write's persist boundary observes the new shadow content together
        // with the root that authenticates it (updating the root after the
        // write left a boundary where recovery rebuilt a root the register
        // did not hold yet).
        let mut msg = [0u8; 72];
        msg[..64].copy_from_slice(&line);
        msg[64..].copy_from_slice(&slot.to_le_bytes());
        self.energy.hashes += 1;
        let leaf_mac = self.crypto.mac64_72(&msg);
        // Stage the pre-image (slot, previous root/tag/durable line) in the
        // ADR-domain in-flight buffer before touching any register: under
        // 8 B write atomicity the shadow line below can tear, and recovery
        // falls back to this authenticated pre-state (see `AsitInflight`).
        let prev_line = self.nvm.peek(self.layout.shadow_addr(slot));
        let st = match &mut self.scheme {
            SchemeState::Asit(s) => s,
            _ => unreachable!("asit hook under asit scheme"),
        };
        st.inflight = Some(crate::scheme::asit::AsitInflight {
            slot,
            prev_root: st.nv_root,
            prev_tag: st.shadow_tags.get(&slot).copied(),
            prev_line,
        });
        st.shadow_tags.insert(slot, offset);
        let hashes = st
            .cache_tree
            .update(self.crypto.as_ref(), slot as usize, leaf_mac);
        st.commit_root();
        self.energy.hashes += hashes as u64;
        t += (1 + hashes as u64) * self.cfg.hash_latency;
        // Shadow write: the 2× traffic of Fig. 13.
        t = self
            .wq
            .push(t, self.layout.shadow_addr(slot), &line, &mut self.nvm);
        // The queue accepted the line (durable): the update is no longer in
        // flight. A crash inside the push above unwinds before this clear.
        match &mut self.scheme {
            SchemeState::Asit(s) => s.inflight = None,
            _ => unreachable!("asit hook under asit scheme"),
        }
        t
    }

    /// Flushes a dirty node to NVM **in place** (§III-E): the node stays
    /// resident (and pinned) throughout, so nested fetches triggered by the
    /// parent walk always observe its live counters. On return the node is
    /// clean; its NVM copy matches the cached value at flush time.
    ///
    /// Steins generates the parent counter locally and never touches the
    /// parent on the critical path (NV buffer on a miss); baselines
    /// self-increment the — possibly fetched — parent first.
    pub(crate) fn flush_in_place(
        &mut self,
        mut t: Cycle,
        offset: u64,
    ) -> Result<Cycle, IntegrityError> {
        let id = self.layout.geometry.node_at_offset(offset);
        let addr = self.layout.node_addr(offset);
        self.pinned.push(offset);
        let result = (|| {
            if self.is_steins() {
                // Preparatory work that can run nested evictions (which may
                // even advance this pinned node's counters) goes FIRST: fetch
                // the parent for a re-entrant drain flush, or make room in
                // the NV buffer. Only afterwards is the node snapshotted.
                let parent = self.layout.geometry.parent_of(id);
                if let Some((pid, _)) = parent {
                    let poff = self.layout.geometry.offset_of(pid);
                    if !self.meta.contains(poff) {
                        if self.scheme.steins_ref().draining {
                            // Re-entrant eviction during a drain: fetch inline.
                            t = self.ensure_cached(t, pid)?;
                        } else if self.scheme.steins_ref().nv_buffer.is_full() {
                            self.drain_nv_buffer(t)?;
                        }
                    }
                }
                let mut node = *self.meta.peek(offset).expect("flush target resident");
                let p_new = node.counters.parent_value();
                // Crash-ordering invariant: the parent-side accounting for
                // `p_new` (parent record + counter apply, or NV-buffer park,
                // or root-register update) becomes durable BEFORE the
                // child's line write below, and the final register updates
                // share the child write's persist interval. A crash at any
                // persist boundary therefore observes either the old child
                // with the old accounting, or the new child with accounting
                // that recovery can replay — never a flushed child whose
                // generated counter no record, buffer entry, or register
                // accounts for.
                match parent {
                    None => {
                        let slot = self.layout.geometry.root_slot(id);
                        let delta = p_new - self.root.get(slot);
                        self.root.set(slot, p_new);
                        self.scheme.steins().lincs.sub(id.level, delta);
                    }
                    Some((pid, slot)) => {
                        let poff = self.layout.geometry.offset_of(pid);
                        if self.meta.contains(poff) {
                            self.watch("apply-direct", offset, p_new);
                            t = self.steins_apply_parent(t, id, pid, slot, p_new)?;
                        } else {
                            self.watch("park", offset, p_new);
                            self.scheme.steins().nv_buffer.push(NvBufferEntry {
                                child_offset: offset,
                                generated: p_new,
                            });
                        }
                    }
                }
                node.hmac = self.node_mac_field(&node, offset, p_new);
                t += self.cfg.hash_latency;
                t = self.wq.push(t, addr, &node.to_line(), &mut self.nvm);
                // The NVM copy is now current: mirror the recomputed HMAC
                // into the cached copy and clean it.
                self.meta.write(offset, node);
                self.meta.mark_clean(offset);
            } else {
                // WB / ASIT / STAR: self-increasing parent counter, needed
                // before the child's HMAC can be computed. The parent walk
                // may run arbitrary nested evictions — the node is pinned
                // and resident, so they see (and may even update) it; its
                // value is re-read afterwards.
                // Under eager updates the ancestors were already advanced
                // at write time; the flush just reads the current value.
                let eager = self.cfg.eager_update;
                let pc = match self.layout.geometry.parent_of(id) {
                    None => {
                        let slot = self.layout.geometry.root_slot(id);
                        if eager {
                            self.root.get(slot)
                        } else {
                            let v = self.root.get(slot) + 1;
                            self.root.set(slot, v);
                            v
                        }
                    }
                    Some((pid, slot)) => {
                        t = self.ensure_cached(t, pid)?;
                        let poff = self.layout.geometry.offset_of(pid);
                        if eager {
                            self.meta
                                .peek(poff)
                                .expect("parent just ensured")
                                .counters
                                .as_general()
                                .get(slot)
                        } else {
                            let pre = *self.meta.peek(poff).expect("parent just ensured");
                            let mut p = pre;
                            p.counters.as_general_mut().increment(slot);
                            let v = p.counters.as_general().get(slot);
                            self.meta.write(poff, p);
                            t = self.on_node_modified(t, poff, &pre)?;
                            if matches!(self.cfg.scheme, SchemeKind::Star) {
                                // Refresh the register over the incremented
                                // parent: it rides the child's line write
                                // below, which is the persist event making
                                // the increment reconstructible (the child's
                                // counter LSBs carry it).
                                let pset = self.meta.set_index(poff);
                                t = self.star_tree_update(t, pset);
                            }
                            v
                        }
                    }
                };
                let mut node = *self.meta.peek(offset).expect("flush target resident");
                node.hmac = self.node_mac_field(&node, offset, pc);
                t += self.cfg.hash_latency;
                t = self.wq.push(t, addr, &node.to_line(), &mut self.nvm);
                self.meta.write(offset, node);
                self.meta.mark_clean(offset);
                if matches!(self.cfg.scheme, SchemeKind::Star) {
                    // dirty→clean transition: STAR must clear the bitmap bit
                    // (the tracking write Steins avoids, §IV-B) and drop the
                    // node from the set-MAC. Register first: it emits no
                    // persist event, so it rides the bitmap clear's event
                    // atomically — clearing the bit first left a boundary
                    // where the bitmap excluded the node but the register
                    // still covered it.
                    let set = self.meta.set_index(offset);
                    t = self.star_tree_update(t, set);
                    t = self.star_bitmap_update(t, offset, false);
                }
            }
            Ok(t)
        })();
        self.pinned.pop();
        result
    }

    /// Applies a generated parent counter to a cached parent and transfers
    /// the LInc delta between levels (§III-E steps ④–⑤).
    fn steins_apply_parent(
        &mut self,
        t: Cycle,
        child: NodeId,
        pid: NodeId,
        slot: usize,
        p_new: u64,
    ) -> Result<Cycle, IntegrityError> {
        let poff = self.layout.geometry.offset_of(pid);
        let mut p = self.meta.read(poff).expect("parent resident");
        let p_old = p.counters.as_general().get(slot);
        if p_new <= p_old {
            // Already applied (a later flush of the same child raced ahead
            // through the buffer); nothing to do.
            self.watch("apply-skip", self.layout.geometry.offset_of(child), p_old);
            return Ok(t);
        }
        self.watch("apply", self.layout.geometry.offset_of(child), p_new);
        let delta = p_new - p_old;
        let pre = p;
        p.counters.as_general_mut().set(slot, p_new);
        self.meta.write(poff, p);
        let t = self.on_node_modified(t, poff, &pre)?;
        let st = self.scheme.steins();
        st.lincs.sub(child.level, delta);
        st.lincs.add(pid.level, delta);
        Ok(t)
    }

    /// Drains the NV buffer: fetch parents (off the critical path), apply
    /// generated counters, transfer LInc deltas (§III-E step ④–⑦).
    ///
    /// Each entry is retired from the (non-volatile) buffer only *after* its
    /// parent update and LInc transfer complete. A crash at any persist
    /// boundary inside the drain therefore still finds every not-yet-applied
    /// entry in the buffer, and recovery replays it (§III-G step ⑤). The
    /// already-applied prefix is harmless to replay: the `p_new ≤ p_old`
    /// guards here and in recovery skip it.
    fn drain_nv_buffer(&mut self, t: Cycle) -> Result<(), IntegrityError> {
        if self.scheme.steins_ref().nv_buffer.is_empty() {
            return Ok(());
        }
        self.scheme.steins().draining = true;
        let result = (|| {
            while let Some(e) = self.scheme.steins_ref().nv_buffer.front() {
                let cid = self.layout.geometry.node_at_offset(e.child_offset);
                let (pid, slot) = self
                    .layout
                    .geometry
                    .parent_of(cid)
                    .expect("root parents are applied inline, never buffered");
                // Background fetch: charges device occupancy but not
                // front_free.
                let t2 = self.ensure_cached(t, pid)?;
                self.steins_apply_parent(t2, cid, pid, slot, e.generated)?;
                self.scheme.steins().nv_buffer.pop_front();
            }
            Ok(())
        })();
        self.scheme.steins().draining = false;
        result
    }

    // ——— MAC records (functionally ECC-embedded; see DESIGN.md §2.7) ———

    pub(crate) fn get_mac_record(&self, data_line: u64) -> MacRecord {
        let (laddr, byte) = self.layout.mac_slot(data_line);
        let line = self.nvm.peek(laddr);
        MacRecord::read_slot(&line, byte / 16)
    }

    pub(crate) fn set_mac_record(&mut self, data_line: u64, rec: MacRecord) {
        let (laddr, byte) = self.layout.mac_slot(data_line);
        let mut line = self.nvm.peek(laddr);
        rec.write_slot(&mut line, byte / 16);
        self.nvm.poke(laddr, &line);
    }

    /// Re-encrypts every persisted block a split leaf covers after a minor
    /// overflow (§II-B), except the block currently being written.
    ///
    /// Every covered line is MAC-verified under its old counter pair before
    /// being re-encrypted; corrupt or unreadable lines are skipped so their
    /// stale `(ciphertext, record)` keeps failing closed instead of being
    /// laundered under a fresh MAC.
    #[allow(clippy::too_many_arguments)]
    fn reencrypt_leaf(
        &mut self,
        mut t: Cycle,
        leaf: NodeId,
        old_major: u64,
        old_minors: &[u8; 64],
        new_major: u64,
        skip_line: u64,
    ) -> Result<Cycle, IntegrityError> {
        // Phase 1 — verify, then compute. Each covered line's ciphertext is
        // read through the fault overlay, so it must be authenticated under
        // the *old* pair before being touched: re-encrypting a flipped or
        // stuck line and stamping it with a fresh MAC would launder the
        // corruption into an authenticated block. A line that fails the
        // check (or is unreadable outright) is left exactly as it was — old
        // ciphertext, old record — so it keeps failing closed on reads until
        // the scrub quarantines it. Only the crypto is batched; no durable
        // state changes in this phase.
        let mut candidates: Vec<(u64, u64, [u8; 64], u64)> = Vec::new();
        for d in self.layout.geometry.data_of_leaf(leaf) {
            if d == skip_line {
                continue;
            }
            let daddr = self.layout.data_base + d * 64;
            if !self.nvm.storage().contains(daddr) {
                continue; // never written: nothing to re-encrypt
            }
            if !self.nvm.is_readable(daddr) {
                continue; // fails closed already; the scrub will alarm it
            }
            let slot = (d % self.cfg.mode.leaf_coverage()) as usize;
            let (ct, t2) = self.nvm.read(t, daddr);
            t = t2;
            candidates.push((d, daddr, ct, u64::from(old_minors[slot])));
        }
        let verify_msgs: Vec<[u8; 88]> = candidates
            .iter()
            .map(|(_, daddr, ct, minor)| data_mac_message(*daddr, ct, old_major, *minor))
            .collect();
        let mut verify_macs = vec![0u64; verify_msgs.len()];
        self.crypto.mac64_88_many(&verify_msgs, &mut verify_macs);
        let mut pending: Vec<(u64, u64, [u8; 64])> = Vec::new();
        for ((d, daddr, ct, minor), vmac) in candidates.into_iter().zip(verify_macs) {
            self.energy.hashes += 1;
            if self.get_mac_record(d).mac != vmac {
                continue; // corrupt under the old pair: skip, never launder
            }
            let mut buf = ct;
            // Decrypt under the old pair, re-encrypt under (new major, 0).
            xor_otp(self.crypto.as_ref(), daddr, old_major, minor, &mut buf);
            xor_otp(self.crypto.as_ref(), daddr, new_major, 0, &mut buf);
            self.energy.aes_ops += 2;
            self.energy.hashes += 1;
            pending.push((d, daddr, buf));
        }
        let msgs: Vec<[u8; 88]> = pending
            .iter()
            .map(|(_, daddr, buf)| data_mac_message(*daddr, buf, new_major, 0))
            .collect();
        let mut macs = vec![0u64; msgs.len()];
        self.crypto.mac64_88_many(&msgs, &mut macs);
        // Phase 2 — persist, in exactly the serial order the crash sweeps
        // enumerate: [record_1, data_1, record_2, data_2, …]. Hoisting the
        // records ahead of the data writes would open crash windows where a
        // record describes counters no durable ciphertext matches, so the
        // per-line interleaving must never change — batching stops at the
        // crypto.
        for ((d, daddr, buf), mac) in pending.iter().zip(macs) {
            self.set_mac_record(
                *d,
                MacRecord {
                    mac,
                    recovery: MacRecord::pack_recovery(new_major, 0),
                },
            );
            t = self.wq.push(t, *daddr, buf, &mut self.nvm);
        }
        Ok(t)
    }

    /// Epoch re-encryption sweep step, driven by the online integrity
    /// service (`crate::online`): advances a split leaf's major counter
    /// past its current epoch and re-encrypts every persisted block it
    /// covers under the fresh `(major′, 0)` pairs — the same
    /// [`Self::reencrypt_leaf`] machinery the natural minor-overflow path
    /// uses, triggered by policy instead of by overflow. Returns `false`
    /// (no-op) for general-counter leaves, which have no epoch.
    ///
    /// The major bump absorbs the minors being reset (`Δ = ⌈Σminors/64⌉`,
    /// floored at 1), so the generated parent value (Eq. 2) stays
    /// monotone and the L0Inc accounting mirrors the overflow path
    /// exactly. Runs in the background: device and queue occupancy are
    /// charged, the controller front-end is not ratcheted.
    ///
    /// The caller should verify every covered line first; as defense in
    /// depth [`Self::reencrypt_leaf`] additionally re-checks each line's
    /// MAC under its old pair and skips any that fail, so a poisoned or
    /// stuck line is never laundered under a fresh MAC.
    pub(crate) fn epoch_reencrypt(&mut self, leaf_id: NodeId) -> Result<bool, IntegrityError> {
        let t = self.front_free;
        let t = self.ensure_cached(t, leaf_id)?;
        let loff = self.layout.geometry.offset_of(leaf_id);
        let pre = *self.meta.peek(loff).expect("leaf just ensured");
        let mut leaf = pre;
        let CounterBlock::Split(s) = &mut leaf.counters else {
            return Ok(false);
        };
        let old_major = s.major;
        let old_minors = s.minors;
        let minor_sum: u64 = s.minors.iter().map(|&m| u64::from(m)).sum();
        let delta = minor_sum.div_ceil(64).max(1);
        s.major += delta;
        s.minors = [0; 64];
        let pv_delta = leaf.counters.parent_value() - pre.counters.parent_value();
        self.meta.write(loff, leaf);
        let t = self.on_node_modified(t, loff, &pre)?;
        self.reencrypt_leaf(
            t,
            leaf_id,
            old_major,
            &old_minors,
            old_major + delta,
            u64::MAX,
        )?;
        if self.is_steins() {
            self.scheme.steins().lincs.add(0, pv_delta);
        }
        Ok(true)
    }

    /// Eager update (§II-C, ablation): advance every ancestor's counter for
    /// the written branch, fetching missing ancestors on the critical path —
    /// the cost the lazy scheme exists to avoid.
    fn eager_propagate(&mut self, mut t: Cycle, leaf: NodeId) -> Result<Cycle, IntegrityError> {
        let mut child = leaf;
        while let Some((pid, slot)) = self.layout.geometry.parent_of(child) {
            t = self.ensure_cached(t, pid)?;
            let poff = self.layout.geometry.offset_of(pid);
            let pre = *self.meta.peek(poff).expect("ancestor just ensured");
            let mut p = pre;
            p.counters.as_general_mut().increment(slot);
            self.meta.write(poff, p);
            t = self.on_node_modified(t, poff, &pre)?;
            if matches!(self.cfg.scheme, SchemeKind::Star) {
                // Eager ablation: refresh immediately (recovery is not
                // modeled crash-consistent under eager updates).
                let set = self.meta.set_index(poff);
                t = self.star_tree_update(t, set);
            }
            child = pid;
        }
        let slot = self.layout.geometry.root_slot(child);
        self.root.set(slot, self.root.get(slot) + 1);
        Ok(t)
    }

    /// Secure write of one 64 B user line (LLC write-back or flush, §III-F).
    /// Returns the cycle the controller front-end is free again.
    pub fn write_data(
        &mut self,
        arrival: Cycle,
        addr: u64,
        plaintext: &[u8; 64],
    ) -> Result<Cycle, IntegrityError> {
        assert!(
            self.layout.is_data(addr),
            "write at {addr:#x} outside the data region ({} lines)",
            self.layout.data_lines
        );
        let mut t = arrival.max(self.front_free);
        let dline = addr / 64;
        let (leaf_id, slot) = self.layout.geometry.leaf_of_data(dline);
        t = self.ensure_cached(t, leaf_id)?;
        let loff = self.layout.geometry.offset_of(leaf_id);
        let pre_leaf = *self.meta.peek(loff).expect("leaf just ensured");
        let mut leaf = pre_leaf;
        let pv_before = leaf.counters.parent_value();
        let mut reenc: Option<(u64, [u8; 64])> = None;
        match &mut leaf.counters {
            CounterBlock::General(g) => {
                g.increment(slot);
            }
            CounterBlock::Split(s) => {
                let old = *s;
                let skip = self.is_steins();
                if let SplitIncrement::Overflow { .. } = s.increment(slot, skip) {
                    reenc = Some((old.major, old.minors));
                }
            }
        }
        let (major, minor) = leaf.counters.enc_pair(slot);
        let pv_after = leaf.counters.parent_value();
        self.meta.write(loff, leaf);
        t = self.on_node_modified(t, loff, &pre_leaf)?;
        if self.cfg.eager_update {
            t = self.eager_propagate(t, leaf_id)?;
        }
        if let Some((old_major, old_minors)) = reenc {
            t = self.reencrypt_leaf(t, leaf_id, old_major, &old_minors, major, dline)?;
        }
        // Encrypt, MAC, persist.
        let mut line = *plaintext;
        xor_otp(self.crypto.as_ref(), addr, major, minor, &mut line);
        self.energy.aes_ops += 1;
        self.energy.hashes += 1;
        let mac = self.crypto.data_mac(addr, &line, major, minor);
        t += self.cfg.hash_latency;
        let recovery = match self.cfg.leaf_recovery {
            // Osiris keeps no counter beside the data; recovery probes.
            LeafRecovery::OsirisProbe { .. } => 0,
            LeafRecovery::MacRecord => MacRecord::pack_recovery(major, minor),
        };
        // The L0Inc bump must ride atomically with the write that makes the
        // counter increment durable (the data line + its MacRecord, below):
        // register updates emit no persist event, so placing the bump here —
        // with no persist boundary before the push — means a crash either
        // observes both the new MacRecord and the bumped register, or
        // neither. Bumping earlier (before the record update above) left a
        // crash window where L0Inc counted an increment no MacRecord had
        // durably recorded, which recovery rejects as a replay.
        if self.is_steins() {
            self.scheme.steins().lincs.add(0, pv_after - pv_before);
        }
        if matches!(self.cfg.scheme, SchemeKind::Star) {
            // STAR's deferred register refresh: the new leaf counter becomes
            // reconstructible exactly when this data line + MacRecord land,
            // so the refresh rides the push's persist event atomically.
            let set = self.meta.set_index(loff);
            t = self.star_tree_update(t, set);
        }
        self.set_mac_record(dline, MacRecord { mac, recovery });
        t = self.wq.push(t, addr, &line, &mut self.nvm);
        // Osiris stop-loss (§V): every `window` increments, write the leaf
        // through so the post-crash probe distance stays bounded.
        if let LeafRecovery::OsirisProbe { window } = self.cfg.leaf_recovery {
            if major % window == 0 && self.meta.is_dirty(loff) {
                t = self.flush_in_place(t, loff)?;
            }
        }
        self.front_free = t;
        self.wlat.record(arrival, t);
        Ok(t)
    }

    /// Secure read of one 64 B user line (LLC fill, §III-F). Returns the
    /// plaintext and the cycle it is available.
    pub fn read_data(
        &mut self,
        arrival: Cycle,
        addr: u64,
    ) -> Result<([u8; 64], Cycle), IntegrityError> {
        assert!(
            self.layout.is_data(addr),
            "read at {addr:#x} outside the data region ({} lines)",
            self.layout.data_lines
        );
        let mut t = arrival.max(self.front_free);
        let dline = addr / 64;
        let (leaf_id, slot) = self.layout.geometry.leaf_of_data(dline);
        t = self.ensure_cached(t, leaf_id)?;
        let loff = self.layout.geometry.offset_of(leaf_id);
        let (major, minor) = self
            .meta
            .peek(loff)
            .expect("leaf just ensured")
            .counters
            .enc_pair(slot);
        let (ct, t2) = self.nvm.read(t, addr);
        t = t2;
        if !self.nvm.is_readable(addr) {
            // Uncorrectable media error: the bytes are poison, not merely
            // tampered — report it as such instead of a spurious MAC verdict.
            return Err(IntegrityError::Unreadable { addr });
        }
        // The OTP is generated in parallel with the NVM read (§II-B), so it
        // adds no latency; the MAC check does.
        self.energy.aes_ops += 1;
        let rec = self.get_mac_record(dline);
        if rec == MacRecord::default() && ct == [0u8; 64] {
            // Never-written line: defined to read as zeros, nothing to MAC.
            // (The leaf's major may be nonzero if siblings overflowed — the
            // record, not the counter pair, says whether data exists.)
            self.front_free = t;
            self.rlat.record(arrival, t);
            return Ok((ct, t));
        }
        self.energy.hashes += 1;
        // Decrypt before the MAC verdict lands: the OTP was free (overlapped
        // with the read), so the XOR overlaps the hash-unit latency and the
        // plaintext is ready the moment the check passes. On a MAC mismatch
        // the plaintext is discarded with the error — never returned.
        let mut out = ct;
        xor_otp(self.crypto.as_ref(), addr, major, minor, &mut out);
        let mac = self.crypto.data_mac(addr, &ct, major, minor);
        t += self.cfg.hash_latency;
        if mac != rec.mac {
            return Err(IntegrityError::DataMac { addr });
        }
        self.front_free = t;
        self.rlat.record(arrival, t);
        Ok((out, t))
    }

    /// Immutable NVM device access (stats, storage inspection).
    pub fn nvm(&self) -> &NvmDevice {
        &self.nvm
    }

    /// Mutable NVM device access — fault injection in tests and chaos
    /// harnesses (mirrors [`crate::crash::CrashedSystem::nvm_mut`]).
    pub fn nvm_mut(&mut self) -> &mut NvmDevice {
        &mut self.nvm
    }

    /// Peeks a cached node (diagnostics).
    pub fn meta_peek(&self, offset: u64) -> Option<&SitNode> {
        self.meta.peek(offset)
    }

    /// Offsets of every dirty node currently in the metadata cache
    /// (tests/diagnostics — the state a crash would lose).
    pub fn meta_dirty_offsets(&self) -> Vec<u64> {
        self.meta
            .dirty_nodes()
            .into_iter()
            .map(|(_, offset, _)| offset)
            .collect()
    }

    /// Reads a data block's MAC record (diagnostics).
    pub fn data_mac_record(&self, data_line: u64) -> crate::cme::MacRecord {
        self.get_mac_record(data_line)
    }

    /// Recomputes a data MAC under an arbitrary counter pair (diagnostics).
    pub fn data_mac_probe(&self, addr: u64, data: &[u8; 64], major: u64, minor: u64) -> u64 {
        self.crypto.data_mac(addr, data, major, minor)
    }

    /// Recomputes the MAC a node would store under parent counter `pc`
    /// (diagnostics/ablation probing; does not touch energy counters).
    pub fn mac_probe(&self, node: &SitNode, offset: u64, pc: u64) -> u64 {
        let mac = self
            .crypto
            .mac64_72(&node.mac_message(self.layout.node_addr(offset), pc));
        if matches!(self.cfg.scheme, SchemeKind::Star) {
            star::pack_hmac(mac, pc)
        } else {
            mac
        }
    }

    /// The memory layout in force.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Metadata cache hit/miss counters.
    pub fn meta_stats(&self) -> (u64, u64) {
        self.meta.stats()
    }

    /// Current LInc values (Steins only; used by invariant tests).
    pub fn lincs(&self) -> Option<Vec<u64>> {
        match &self.scheme {
            SchemeState::Steins(s) => Some((0..s.lincs.levels()).map(|k| s.lincs.get(k)).collect()),
            _ => None,
        }
    }

    /// Recomputes, from first principles, what each LInc should be: the sum
    /// over dirty cached nodes of (generated parent value of cached) −
    /// (generated parent value of NVM-stale copy), **plus** parked NV-buffer
    /// deltas not yet transferred. Used by the LInc-invariant tests.
    pub fn recompute_lincs(&self) -> Option<Vec<u64>> {
        let st = match &self.scheme {
            SchemeState::Steins(s) => s,
            _ => return None,
        };
        let geo = &self.layout.geometry;
        let mut expect = vec![0u64; geo.levels()];
        for (_, offset, node, dirty) in self.meta.resident_nodes() {
            if !dirty {
                continue;
            }
            let id = geo.node_at_offset(offset);
            let stale = self.parse_node(id, &self.nvm.peek(self.layout.node_addr(offset)));
            expect[id.level] += node.counters.parent_value() - stale.counters.parent_value();
        }
        // Parked entries: the child's NVM copy already carries the new
        // counters, but the parent (and the level transfer) is pending, so
        // the child's level still owes the delta and the parent's does not
        // yet hold it.
        for e in st.nv_buffer.entries() {
            let cid = geo.node_at_offset(e.child_offset);
            let (pid, slot) = geo.parent_of(cid).expect("buffered parents are non-root");
            let stale_parent = self.parse_node(
                pid,
                &self.nvm.peek(self.layout.node_addr(geo.offset_of(pid))),
            );
            let p_old = if self.meta.is_dirty(geo.offset_of(pid)) {
                // Parent dirty in cache: its cached value is the reference.
                self.meta
                    .peek(geo.offset_of(pid))
                    .expect("dirty implies resident")
                    .counters
                    .as_general()
                    .get(slot)
            } else {
                stale_parent.counters.as_general().get(slot)
            };
            if e.generated > p_old {
                expect[cid.level] += e.generated - p_old;
            }
        }
        Some(expect)
    }
}

/// Deterministic synthetic content for trace-driven stores: a recognizable
/// pattern over (address, version).
pub fn synth_data(addr: u64, version: u64) -> [u8; 64] {
    let mut line = [0u8; 64];
    for (i, chunk) in line.chunks_exact_mut(16).enumerate() {
        chunk[..8].copy_from_slice(&(addr ^ (i as u64) << 60).to_le_bytes());
        chunk[8..].copy_from_slice(&version.wrapping_mul(0x9e3779b97f4a7c15).to_le_bytes());
    }
    line
}

/// The full system: CPU model + cache hierarchy + secure memory controller.
pub struct SecureNvmSystem {
    pub(crate) cfg: SystemConfig,
    /// The secure memory controller (exposed for inspection and tests).
    pub ctrl: SecureMemoryController,
    pub(crate) cpu: CpuModel,
    pub(crate) hier: CacheHierarchy,
    /// Last-stored plaintext per line — the functional ground truth.
    /// FxHash-keyed: consulted on every simulated read and write.
    pub(crate) truth: FxHashMap<u64, [u8; 64]>,
    write_seq: u64,
    /// The online integrity service ([`crate::online`]), when enabled.
    /// `None` by default: existing single-system workloads pay nothing.
    online: Option<OnlineService>,
}

impl SecureNvmSystem {
    /// Builds the system.
    pub fn new(cfg: SystemConfig) -> Self {
        let ctrl = SecureMemoryController::new(cfg.clone());
        Self::from_controller(cfg, ctrl)
    }

    /// Builds the system around an injected crypto engine (see
    /// [`SecureMemoryController::with_engine`]).
    pub fn with_engine(cfg: SystemConfig, crypto: Box<dyn CryptoEngine>) -> Self {
        let ctrl = SecureMemoryController::with_engine(cfg.clone(), crypto);
        Self::from_controller(cfg, ctrl)
    }

    fn from_controller(cfg: SystemConfig, ctrl: SecureMemoryController) -> Self {
        SecureNvmSystem {
            cpu: CpuModel::new(cfg.cpu),
            hier: CacheHierarchy::new(cfg.hierarchy),
            cfg,
            ctrl,
            truth: FxHashMap::default(),
            write_seq: 0,
            online: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn truth_line(&self, addr: u64) -> [u8; 64] {
        *self
            .truth
            .get(&addr)
            .expect("write-back of a line that was never stored")
    }

    /// Services the memory events one CPU access produced. Returns the fill
    /// latency (if the access reached memory).
    fn service_events(&mut self, events: &[MemEvent]) -> Result<Option<Cycle>, IntegrityError> {
        let mut fill = None;
        for ev in events {
            match *ev {
                MemEvent::WriteBack { addr } => {
                    let data = self.truth_line(addr);
                    self.ctrl.write_data(self.cpu.now, addr, &data)?;
                }
                MemEvent::Fill { addr } => {
                    let (data, ready) = self.ctrl.read_data(self.cpu.now, addr)?;
                    if let Some(expected) = self.truth.get(&addr) {
                        assert_eq!(
                            &data, expected,
                            "decrypted fill diverged from stored plaintext at {addr:#x}"
                        );
                    }
                    fill = Some(ready.saturating_sub(self.cpu.now));
                }
                MemEvent::Prefetch { addr } => {
                    // Off the critical path: the fill's latency is hidden.
                    // Stride candidates may run past the data region; skip.
                    if self.ctrl.layout.is_data(addr) {
                        let _ = self.ctrl.read_data(self.cpu.now, addr)?;
                    }
                }
            }
        }
        Ok(fill)
    }

    /// Runs a trace to completion, returning the run metrics.
    pub fn run_trace(
        &mut self,
        ops: impl Iterator<Item = TraceOp>,
    ) -> Result<RunReport, IntegrityError> {
        for op in ops {
            if op.gap > 0 {
                self.cpu.compute(op.gap as u64);
            }
            match op.kind {
                OpKind::Load => {
                    let acc = self.hier.access(op.addr, false);
                    let fill = self.service_events(&acc.events)?;
                    self.cpu.load(acc.on_chip_cycles, fill);
                }
                OpKind::Store => {
                    // Write-allocate: service the miss (whose fill returns
                    // the previously persisted contents) before the store's
                    // new value becomes the ground truth.
                    let acc = self.hier.access(op.addr, true);
                    let fill = self.service_events(&acc.events)?;
                    self.write_seq += 1;
                    self.truth
                        .insert(op.addr, synth_data(op.addr, self.write_seq));
                    // Write-allocate: the store waits for its fill like a
                    // load; write-backs ride the controller front-end.
                    self.cpu.load(acc.on_chip_cycles, fill);
                }
                OpKind::Flush => {
                    if let Some(MemEvent::WriteBack { addr }) = self.hier.flush_line(op.addr) {
                        let data = self.truth_line(addr);
                        let t = self.ctrl.write_data(self.cpu.now, addr, &data)?;
                        // clwb + fence: the core orders behind acceptance.
                        let stall = t.saturating_sub(self.cpu.now);
                        self.cpu.store(2, stall);
                    } else {
                        self.cpu.compute(1);
                    }
                }
            }
        }
        Ok(self.report())
    }

    /// Direct API: securely writes one line and persists it (store + clwb).
    pub fn write(&mut self, addr: u64, data: &[u8; 64]) -> Result<(), IntegrityError> {
        let addr = addr & !63;
        self.check_quarantine(addr)?;
        let acc = self.hier.access(addr, true);
        self.service_events(&acc.events)?;
        let prev = self.truth.insert(addr, *data);
        if let Some(MemEvent::WriteBack { addr: wb }) = self.hier.flush_line(addr) {
            let line = self.truth_line(wb);
            if let Err(e) = self.ctrl.write_data(self.cpu.now, wb, &line) {
                // The store never became durable (e.g. its metadata path is
                // damaged): the ack is an error, so ground truth must keep
                // the previous value — the device still holds it with a
                // valid MAC, and a later fill must not count as divergence.
                match prev {
                    Some(p) => self.truth.insert(addr, p),
                    None => self.truth.remove(&addr),
                };
                return Err(e);
            }
        }
        self.maybe_online_step();
        Ok(())
    }

    /// Direct API: securely reads one line (through the CPU caches; a hit
    /// returns the cached truth, a miss decrypts and verifies from NVM).
    pub fn read(&mut self, addr: u64) -> Result<[u8; 64], IntegrityError> {
        let addr = addr & !63;
        self.check_quarantine(addr)?;
        let acc = self.hier.access(addr, false);
        let mut from_mem = None;
        for ev in &acc.events {
            match *ev {
                MemEvent::WriteBack { addr: a } => {
                    let data = self.truth_line(a);
                    self.ctrl.write_data(self.cpu.now, a, &data)?;
                }
                MemEvent::Fill { addr: a } => {
                    let (data, _) = self.ctrl.read_data(self.cpu.now, a)?;
                    from_mem = Some(data);
                }
                MemEvent::Prefetch { addr: a } => {
                    if self.ctrl.layout.is_data(a) {
                        let _ = self.ctrl.read_data(self.cpu.now, a)?;
                    }
                }
            }
        }
        self.maybe_online_step();
        Ok(match from_mem {
            Some(data) => data,
            None => self.truth.get(&addr).copied().unwrap_or([0u8; 64]),
        })
    }

    /// Fails typed when the online integrity service has quarantined
    /// `addr`'s region — the request must never be silently mis-acked
    /// against content the scrub proved untrustworthy.
    fn check_quarantine(&self, addr: u64) -> Result<(), IntegrityError> {
        match &self.online {
            Some(o) if o.is_quarantined(addr) => Err(IntegrityError::Quarantined { addr }),
            _ => Ok(()),
        }
    }

    /// Runs a scrub step if the service is enabled and the period elapsed.
    /// The service is taken out of `self` for the step so it can drive the
    /// controller through `&mut self` without aliasing.
    fn maybe_online_step(&mut self) {
        if let Some(mut svc) = self.online.take() {
            if svc.note_op() {
                svc.step(self);
            }
            self.online = Some(svc);
        }
    }

    /// Enables the online integrity service under `policy`, replacing any
    /// prior service (cursor, quarantine, and telemetry reset).
    pub fn enable_online(&mut self, policy: OnlinePolicy) {
        self.online = Some(OnlineService::new(policy));
    }

    /// The online integrity service, when enabled.
    pub fn online(&self) -> Option<&OnlineService> {
        self.online.as_ref()
    }

    /// The online integrity service, mutably (policy retuning, cursor
    /// resume from a crashed image's journal marks).
    pub fn online_mut(&mut self) -> Option<&mut OnlineService> {
        self.online.as_mut()
    }

    /// Forces one scrub step now, regardless of the period (the throttle
    /// still applies). No-op when the service is disabled.
    pub fn online_step(&mut self) {
        if let Some(mut svc) = self.online.take() {
            svc.step(self);
            self.online = Some(svc);
        }
    }

    /// Forces one full scrub pass over every data line, ignoring both the
    /// period and the throttle — the operator's "finish the scrub now"
    /// lever. No-op when the service is disabled.
    pub fn online_scrub_pass(&mut self) {
        if let Some(mut svc) = self.online.take() {
            svc.full_pass(self);
            self.online = Some(svc);
        }
    }

    /// Drains the online service's alarm events (empty when disabled).
    pub fn drain_alarms(&mut self) -> Vec<steins_obs::Alarm> {
        match &mut self.online {
            Some(o) => o.alarms.drain(),
            None => Vec::new(),
        }
    }

    /// Operator override: releases `addr`'s line from quarantine, raising
    /// an auditable `QuarantineCleared` alarm. Returns whether it was
    /// quarantined. Prefer [`Self::heal_write`], which re-admits the line
    /// only after fresh data survives a verify-after-write round-trip.
    pub fn clear_quarantine(&mut self, addr: u64) -> bool {
        let shard = self.ctrl.nvm.shard();
        let cycle = self.sim_cycles();
        match &mut self.online {
            Some(o) => o.clear_quarantine(shard, addr, cycle),
            None => false,
        }
    }

    /// Supervised quarantine healing: writes fresh authenticated data to a
    /// quarantined line and re-admits it only if the data reads back
    /// MAC-verified and byte-equal. On a non-quarantined line this is a
    /// plain [`Self::write`]. On failure the line stays quarantined (the
    /// re-detection alarm is raised again) and the error is typed — the
    /// set never shrinks on anything but proof.
    pub fn heal_write(&mut self, addr: u64, data: &[u8; 64]) -> Result<(), IntegrityError> {
        let addr = addr & !63;
        let Some(svc) = self.online.as_mut() else {
            return self.write(addr, data);
        };
        if !svc.is_quarantined(addr) {
            return self.write(addr, data);
        }
        // Lift the quarantine silently for the probe — the audited clear
        // happens only after the round-trip proves the line sound.
        svc.remove_quarantined(addr);
        let requarantine = |s: &mut Self, e: IntegrityError| {
            let shard = s.ctrl.nvm.shard();
            let cycle = s.sim_cycles();
            if let Some(svc) = s.online.as_mut() {
                svc.requarantine(shard, addr, cycle);
            }
            Err(e)
        };
        if let Err(e) = self.write(addr, data) {
            return requarantine(self, e);
        }
        // Verify-after-write: read straight from the device through the
        // MAC-checking path (not the CPU cache, which would echo the
        // just-written truth back without touching media).
        match self.ctrl.read_data(self.cpu.now, addr) {
            Ok((got, _)) if got == *data => {
                let shard = self.ctrl.nvm.shard();
                let cycle = self.sim_cycles();
                if let Some(svc) = self.online.as_mut() {
                    svc.note_heal(shard, addr, cycle);
                }
                Ok(())
            }
            Ok(_) => requarantine(self, IntegrityError::DataMac { addr }),
            Err(e) => requarantine(self, e),
        }
    }

    /// Deterministic simulated-cycle makespan of this machine: the furthest
    /// any of its clocks has advanced — the CPU core, the controller
    /// front-end (which ratchets per accepted line even under the direct
    /// [`Self::write`]/[`Self::read`] API, where the core clock stays put),
    /// and the write queue's drain horizon. The sharded stress bench scales
    /// modeled throughput by the max of this value across shards.
    pub fn sim_cycles(&self) -> u64 {
        self.cpu
            .now
            .max(self.ctrl.front_free)
            .max(self.ctrl.wq.drain_horizon())
    }

    /// Current run metrics, including the full component-path metric
    /// registry (every layer exports its counters and histograms here).
    pub fn report(&self) -> RunReport {
        let nvm = *self.ctrl.nvm.stats();
        let mut energy = self.ctrl.energy;
        energy.nvm_reads = nvm.reads;
        energy.nvm_writes = nvm.writes;
        let (meta_hits, meta_misses) = self.ctrl.meta.stats();
        let mut metrics = steins_obs::MetricRegistry::new();
        self.ctrl.nvm.export_metrics(&mut metrics);
        self.ctrl.wq.export_metrics(&mut metrics);
        self.hier.export_metrics(&mut metrics);
        self.ctrl.meta.export_metrics(&mut metrics);
        metrics.counter_add("core.engine.aes_ops", energy.aes_ops);
        metrics.counter_add("core.engine.mac_calls", energy.hashes);
        metrics.counter_add("core.engine.cache_accesses", energy.cache_accesses);
        metrics.counter_add("core.cpu.cycles", self.cpu.now);
        metrics.counter_add("core.cpu.instructions", self.cpu.instructions);
        metrics.counter_add("core.cpu.read_stall_cycles", self.cpu.read_stall_cycles);
        metrics.counter_add("core.cpu.write_stall_cycles", self.cpu.write_stall_cycles);
        metrics.insert_hist("core.read.latency_cycles", &self.ctrl.rlat.hist);
        metrics.insert_hist("core.write.latency_cycles", &self.ctrl.wlat.hist);
        if let Some(o) = &self.online {
            o.export_metrics(&mut metrics);
        }
        RunReport {
            label: self.cfg.scheme.label(self.cfg.mode),
            cycles: self.cpu.now,
            seconds: self.cpu.seconds(self.cfg.nvm.timings.freq_ghz),
            instructions: self.cpu.instructions,
            write_latency: self.ctrl.wlat.avg(),
            read_latency: self.ctrl.rlat.avg(),
            nvm,
            energy_events: energy,
            energy_pj: energy.total_pj(&EnergyModel::default()),
            meta_hits,
            meta_misses,
            read_stall_cycles: self.cpu.read_stall_cycles,
            write_stall_cycles: self.cpu.write_stall_cycles,
            read_hist: self.ctrl.rlat.hist.clone(),
            write_hist: self.ctrl.wlat.hist.clone(),
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_metadata::CounterMode;

    fn all_schemes() -> Vec<(SchemeKind, CounterMode)> {
        vec![
            (SchemeKind::WriteBack, CounterMode::General),
            (SchemeKind::WriteBack, CounterMode::Split),
            (SchemeKind::Asit, CounterMode::General),
            (SchemeKind::Star, CounterMode::General),
            (SchemeKind::Steins, CounterMode::General),
            (SchemeKind::Steins, CounterMode::Split),
        ]
    }

    #[test]
    fn write_read_roundtrip_every_scheme() {
        for (scheme, mode) in all_schemes() {
            let cfg = SystemConfig::small_for_tests(scheme, mode);
            let mut sys = SecureNvmSystem::new(cfg);
            let data = [0xAB; 64];
            sys.write(0x400, &data).unwrap();
            assert_eq!(
                sys.read(0x400).unwrap(),
                data,
                "{scheme:?}/{mode:?} roundtrip"
            );
        }
    }

    #[test]
    fn many_writes_roundtrip_through_evictions() {
        for (scheme, mode) in all_schemes() {
            let cfg = SystemConfig::small_for_tests(scheme, mode);
            let mut sys = SecureNvmSystem::new(cfg);
            // Enough lines to overflow the tiny metadata cache repeatedly.
            for i in 0..600u64 {
                let mut data = [0u8; 64];
                data[..8].copy_from_slice(&i.to_le_bytes());
                sys.write(i * 64, &data).unwrap();
            }
            for i in (0..600u64).step_by(7) {
                let got = sys.read(i * 64).unwrap();
                assert_eq!(
                    u64::from_le_bytes(got[..8].try_into().unwrap()),
                    i,
                    "{scheme:?}/{mode:?} line {i}"
                );
            }
        }
    }

    #[test]
    fn repeated_writes_same_line_advance_counters() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::Split);
        let mut sys = SecureNvmSystem::new(cfg);
        for v in 0..200u64 {
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&v.to_le_bytes());
            sys.write(0, &data).unwrap();
        }
        let got = sys.read(0).unwrap();
        assert_eq!(u64::from_le_bytes(got[..8].try_into().unwrap()), 199);
    }

    #[test]
    fn split_minor_overflow_reencrypts_and_stays_readable() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::Split);
        let mut sys = SecureNvmSystem::new(cfg);
        // Neighbor in the same leaf, written once.
        sys.write(64, &[0x11; 64]).unwrap();
        // Hot line: > 63 writes forces a minor overflow (re-encryption).
        for v in 0..70u64 {
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&v.to_le_bytes());
            sys.write(0, &data).unwrap();
        }
        assert_eq!(
            sys.read(64).unwrap(),
            [0x11; 64],
            "neighbor survives re-encryption"
        );
        let got = sys.read(0).unwrap();
        assert_eq!(u64::from_le_bytes(got[..8].try_into().unwrap()), 69);
    }

    #[test]
    fn eager_update_works_and_costs_more() {
        let run = |eager: bool| {
            let mut cfg =
                SystemConfig::small_for_tests(SchemeKind::WriteBack, CounterMode::General);
            cfg.eager_update = eager;
            let mut sys = SecureNvmSystem::new(cfg);
            for i in 0..400u64 {
                sys.write((i * 13 % 1024) * 64, &[i as u8; 64]).unwrap();
            }
            for i in (0..1024u64).step_by(31) {
                let _ = sys.read(i * 64).unwrap();
            }
            sys.report()
        };
        let lazy = run(false);
        let eager = run(true);
        // Functional behaviour is identical (the in-run truth asserts cover
        // it); the cost signature differs: eager touches every ancestor on
        // every write, so its metadata-cache activity is far higher.
        assert!(
            eager.energy_events.cache_accesses > lazy.energy_events.cache_accesses * 5 / 4,
            "eager {} vs lazy {} metadata-cache accesses",
            eager.energy_events.cache_accesses,
            lazy.energy_events.cache_accesses
        );
    }

    #[test]
    fn linc_invariant_holds_under_mixed_traffic() {
        for mode in [CounterMode::General, CounterMode::Split] {
            let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, mode);
            let mut sys = SecureNvmSystem::new(cfg);
            for i in 0..400u64 {
                sys.write((i * 7 % 256) * 64, &[i as u8; 64]).unwrap();
                if i % 3 == 0 {
                    let _ = sys.read((i % 100) * 64).unwrap();
                }
            }
            let stored = sys.ctrl.lincs().unwrap();
            let expected = sys.ctrl.recompute_lincs().unwrap();
            assert_eq!(stored, expected, "{mode:?}: LInc invariant (§III-D)");
        }
    }

    #[test]
    fn trace_run_produces_consistent_report() {
        use steins_trace::{Workload, WorkloadKind};
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let data_lines = cfg.data_lines;
        let mut sys = SecureNvmSystem::new(cfg);
        let mut wl = Workload::new(WorkloadKind::PHash, 2_000, 11);
        wl.footprint_lines = data_lines;
        let report = sys.run_trace(wl.generate()).unwrap();
        assert!(report.cycles > 0);
        assert!(report.instructions >= 2_000);
        assert!(report.nvm.writes > 0, "persistent workload must write NVM");
        assert!(report.write_latency > 0.0);
        assert!(report.energy_pj > 0.0);
    }

    #[test]
    fn asit_writes_roughly_double_wb() {
        use steins_trace::{Workload, WorkloadKind};
        let run = |scheme| {
            let cfg = SystemConfig::small_for_tests(scheme, CounterMode::General);
            let data_lines = cfg.data_lines;
            let mut sys = SecureNvmSystem::new(cfg);
            let mut wl = Workload::new(WorkloadKind::PHash, 3_000, 5);
            wl.footprint_lines = data_lines;
            sys.run_trace(wl.generate()).unwrap().nvm.writes as f64
        };
        let wb = run(SchemeKind::WriteBack);
        let asit = run(SchemeKind::Asit);
        let ratio = asit / wb;
        assert!(
            ratio > 1.5 && ratio < 3.0,
            "ASIT write amplification off: {ratio:.2} (wb={wb}, asit={asit})"
        );
    }

    #[test]
    fn steins_traffic_close_to_wb() {
        use steins_trace::{Workload, WorkloadKind};
        let run = |scheme| {
            let cfg = SystemConfig::small_for_tests(scheme, CounterMode::General);
            let data_lines = cfg.data_lines;
            let mut sys = SecureNvmSystem::new(cfg);
            let mut wl = Workload::new(WorkloadKind::PHash, 3_000, 5);
            wl.footprint_lines = data_lines;
            sys.run_trace(wl.generate()).unwrap().nvm.writes as f64
        };
        let wb = run(SchemeKind::WriteBack);
        let steins = run(SchemeKind::Steins);
        let ratio = steins / wb;
        // The tiny test config (4 record-cache lines, 128-slot metadata
        // cache) thrashes the record cache far more than Table I's sizing;
        // the figure-scale check of the paper's ≈1.05× lives in the bench
        // harness. Here we only require Steins ≪ ASIT's 2×.
        assert!(
            ratio < 1.45,
            "Steins write amplification should be small: {ratio:.2}"
        );
    }
}
