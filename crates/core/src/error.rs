//! Integrity-violation errors.
//!
//! Every verification failure the secure controller or a recovery engine can
//! raise. Tests use these to assert that injected attacks are *detected at
//! the right layer* (tampering by HMAC, replay by LInc/root, §III-H).

use steins_metadata::NodeId;

/// A detected integrity violation.
#[derive(Clone, Debug, PartialEq)]
pub enum IntegrityError {
    /// A user data block failed its HMAC check.
    DataMac {
        /// Line address of the failing block.
        addr: u64,
    },
    /// A SIT node failed its HMAC check against its parent counter.
    NodeMac {
        /// Which node.
        node: NodeId,
    },
    /// During recovery, the recomputed per-level increment disagreed with
    /// the stored `LInc` — the signature of a replay (§III-D).
    LIncMismatch {
        /// Tree level whose sum failed.
        level: usize,
        /// Stored trusted value.
        stored: u64,
        /// Recomputed value (smaller ⇒ replay).
        recomputed: u64,
    },
    /// ASIT/STAR: the rebuilt cache-tree root disagreed with the on-chip
    /// register.
    CacheTreeMismatch {
        /// Stored trusted root.
        stored: u64,
        /// Recomputed root.
        recomputed: u64,
    },
    /// The scheme cannot recover at all (WB after a crash with dirty
    /// metadata).
    RecoveryUnsupported,
    /// A persisted structure decoded to a state no crash-free execution can
    /// produce — the signature of a torn (partially persisted) line.
    Torn {
        /// Line address of the torn structure.
        addr: u64,
    },
    /// A line failed with an uncorrectable media error: its bytes are not
    /// trustworthy at all (distinct from a MAC mismatch on readable bytes).
    Unreadable {
        /// Line address of the unreadable region.
        addr: u64,
    },
    /// The ADR recovery journal records an interrupted lenient scrub.
    /// A scrub rewrites the very regions strict recovery trusts (records,
    /// shadow table, bitmap), so once one has started, strict recovery is
    /// no longer sound — the caller must re-run the scrub instead.
    ScrubInterrupted,
    /// The request routed to a shard that has been parked `Degraded`
    /// (poisoned lock, crash mid-operation, or an unrecoverable scrub
    /// verdict). The shard fails typed instead of propagating a panic to
    /// its neighbors; the rest of the engine keeps serving.
    ShardDegraded {
        /// The degraded shard.
        shard: u16,
    },
    /// The line belongs to a region the online integrity service has
    /// quarantined (MAC mismatch, unreadable media, exhausted read
    /// retries). Reads and writes fail typed until an operator clears the
    /// quarantine; the ack is never silently wrong.
    Quarantined {
        /// Line address of the quarantined region.
        addr: u64,
    },
    /// The ADR recovery journal failed its MAC check: the resume marks are
    /// attacker-controlled (or the line rotted) and must not steer
    /// recovery. Strict recovery fails closed; the lenient scrub discards
    /// the journal and rebuilds from scratch.
    JournalForged,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::DataMac { addr } => {
                write!(
                    f,
                    "data HMAC mismatch at address {addr:#x} (tampering detected)"
                )
            }
            IntegrityError::NodeMac { node } => write!(
                f,
                "SIT node HMAC mismatch at level {} index {} (tampering detected)",
                node.level, node.index
            ),
            IntegrityError::LIncMismatch {
                level,
                stored,
                recomputed,
            } => write!(
                f,
                "L{level}Inc mismatch: stored {stored}, recomputed {recomputed} (replay detected)"
            ),
            IntegrityError::CacheTreeMismatch { stored, recomputed } => write!(
                f,
                "cache-tree root mismatch: stored {stored:#x}, recomputed {recomputed:#x}"
            ),
            IntegrityError::RecoveryUnsupported => {
                write!(f, "scheme does not support metadata recovery")
            }
            IntegrityError::Torn { addr } => {
                write!(
                    f,
                    "torn write detected at address {addr:#x} (partial persist)"
                )
            }
            IntegrityError::Unreadable { addr } => {
                write!(f, "uncorrectable media error at address {addr:#x}")
            }
            IntegrityError::ScrubInterrupted => {
                write!(
                    f,
                    "recovery journal records an interrupted scrub: re-run the scrub"
                )
            }
            IntegrityError::ShardDegraded { shard } => {
                write!(f, "shard {shard} is degraded and not serving requests")
            }
            IntegrityError::Quarantined { addr } => {
                write!(
                    f,
                    "address {addr:#x} is quarantined by the online integrity service"
                )
            }
            IntegrityError::JournalForged => {
                write!(
                    f,
                    "recovery journal failed its MAC check: resume state untrusted, rebuild from scratch"
                )
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IntegrityError::LIncMismatch {
            level: 3,
            stored: 10,
            recomputed: 7,
        };
        let s = e.to_string();
        assert!(s.contains("L3Inc"));
        assert!(s.contains("replay"));
        let e = IntegrityError::NodeMac {
            node: NodeId { level: 1, index: 5 },
        };
        assert!(e.to_string().contains("level 1"));
        let e = IntegrityError::ShardDegraded { shard: 3 };
        assert!(e.to_string().contains("shard 3"));
        let e = IntegrityError::Quarantined { addr: 0xC0 };
        assert!(e.to_string().contains("0xc0"));
        assert!(e.to_string().contains("quarantine"));
        let e = IntegrityError::JournalForged;
        assert!(e.to_string().contains("MAC"));
        assert!(e.to_string().contains("rebuild"));
    }
}
