//! The Steins secure memory controller and its competitors.
//!
//! This crate is the paper's primary contribution plus every baseline it is
//! evaluated against:
//!
//! * [`engine`] — the secure memory controller: counter-mode encryption,
//!   lazy-update SGX-style integrity tree, metadata cache, write queue, and
//!   the per-scheme runtime hooks; plus [`engine::SecureNvmSystem`], the
//!   full system (CPU model + cache hierarchy + controller) that runs
//!   traces.
//! * [`scheme`] — the four recovery schemes: **WB** (write-back baseline,
//!   no recovery), **ASIT** (Anubis: shadow table + cache-tree), **STAR**
//!   (dirty bitmap + sorted-set cache-tree), and **Steins**
//!   (counter-generation + offset records + LIncs + NV buffer).
//! * [`crash`] / [`recovery`] — crash injection (volatile state loss with
//!   ADR flush) and the per-scheme recovery engines with full verification.
//! * [`attack`] — tampering/replay injection used by the security tests.
//! * [`scrub`] — lenient recovery: the non-panicking integrity scrub with
//!   region-granular verdicts (`Intact`/`Recovered`/`Unrecoverable`).
//! * [`campaign`] — the seeded randomized fault campaign composing crash
//!   points × torn-word masks × attacks/media faults, plus the chaos mode
//!   that injects them under live multi-shard serving traffic.
//! * [`online`] — the online integrity service: incremental background
//!   scrub, epoch re-encryption, wear rotation, quarantine, and alarms.
//! * [`par`] — the work-stealing region queue and deterministic lane
//!   folding behind parallel recovery (see [`shard::ParallelRecovery`]).
//! * [`cme`], [`linc`], [`nvbuffer`], [`cachetree`] — building blocks.
//! * [`bmt`] — the Bonsai-Merkle-Tree baseline of §II-C, quantifying why
//!   the paper (and this engine) build on the SIT instead.
//! * [`report`] — run metrics backing every figure of §IV.

pub mod attack;
pub mod bmt;
pub mod cachetree;
pub mod campaign;
pub mod cme;
pub mod config;
pub mod crash;
pub mod diagnose;
pub mod engine;
pub mod error;
pub mod linc;
pub mod nvbuffer;
pub mod online;
pub mod par;
pub mod recovery;
pub mod report;
pub mod scheme;
pub mod scrub;
pub mod shard;

pub use campaign::{
    run_chaos, CampaignConfig, CampaignOutcome, CampaignReport, ChaosConfig, ChaosReport,
    FaultCampaign,
};
pub use config::{SchemeKind, SystemConfig};
pub use crash::{CrashRepro, CrashSweep, CrashedSystem, PointSelection, SweepOp, SweepReport};
pub use engine::SecureNvmSystem;
pub use error::IntegrityError;
pub use online::{OnlinePolicy, OnlineService};
pub use recovery::RecoveryReport;
pub use report::RunReport;
pub use scrub::{ScrubReport, Verdict};
pub use shard::{
    ParallelRecovery, RepairOutcome, RepairPolicy, ShardRepro, ShardSweep, ShardSweepReport,
    ShardedEngine,
};

// Re-export the counter mode so downstream users need only this crate.
pub use steins_metadata::CounterMode;
