//! The LInc trust bases (§III-D).
//!
//! `LInc[k]` is the total increase of the *cached* counters of level-`k`
//! nodes over their stale counterparts in NVM — equivalently, summed over
//! dirty level-`k` nodes only, since clean nodes contribute zero. Eight
//! 8-byte values fit one 64 B on-chip non-volatile register (enough for a
//! 16 GB, 9-level tree); this type allows a few more levels for
//! configurability but asserts the register-budget claim for Table I shapes.
//!
//! Updates are O(1) adds/subtracts — the paper's key cost advantage over
//! ASIT/STAR's cache-tree HMAC chains.

/// Per-level increment registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LincBank {
    incs: Vec<u64>,
}

impl LincBank {
    /// A bank for `levels` NVM-resident tree levels, all zero.
    pub fn new(levels: usize) -> Self {
        LincBank {
            incs: vec![0; levels],
        }
    }

    /// Adds `delta` to level `k` (a node at level `k` grew by `delta`).
    pub fn add(&mut self, k: usize, delta: u64) {
        self.incs[k] += delta;
    }

    /// Subtracts `delta` from level `k` (a dirty node was flushed: its gap
    /// over NVM closed).
    pub fn sub(&mut self, k: usize, delta: u64) {
        debug_assert!(
            self.incs[k] >= delta,
            "LInc[{k}] underflow: {} - {delta}",
            self.incs[k]
        );
        self.incs[k] -= delta;
    }

    /// Current value of level `k`.
    pub fn get(&self, k: usize) -> u64 {
        self.incs[k]
    }

    /// Number of levels tracked.
    pub fn levels(&self) -> usize {
        self.incs.len()
    }

    /// Storage footprint in bytes (§III-D: 8 B per level; one 64 B register
    /// suffices for ≤ 8 levels).
    pub fn storage_bytes(&self) -> usize {
        self.incs.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let mut b = LincBank::new(4);
        b.add(2, 10);
        b.add(2, 5);
        b.sub(2, 7);
        assert_eq!(b.get(2), 8);
        assert_eq!(b.get(0), 0);
    }

    #[test]
    fn fits_one_register_for_table1() {
        // 16 GB GC tree: 8 NVM levels ⇒ 64 B.
        let b = LincBank::new(8);
        assert!(b.storage_bytes() <= 64, "§III-D register-budget claim");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn underflow_is_a_bug() {
        let mut b = LincBank::new(1);
        b.sub(0, 1);
    }
}
