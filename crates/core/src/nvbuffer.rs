//! Steins' non-volatile parent-counter buffer (§III-E, Table I: 128 B).
//!
//! When a dirty node is evicted and its parent is *not* cached, Steins does
//! not read the parent on the write critical path. It computes the child's
//! HMAC from the locally generated parent counter and parks
//! `(child offset, generated counter)` in this small NV buffer. The buffer
//! drains — fetching parents, applying counter updates and LInc deltas —
//! before the next read operation or when full. Because the buffer is
//! non-volatile, a crash mid-drain loses nothing: recovery replays the
//! entries (§III-G step ⑤).

/// One parked update: the child at `child_offset` (metadata-region offset)
/// was flushed with generated parent counter `generated`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvBufferEntry {
    /// Metadata-region offset of the flushed child.
    pub child_offset: u64,
    /// The parent counter generated from the child at flush time.
    pub generated: u64,
}

/// Entry footprint in the 128 B register file: 4 B offset + 8 B counter,
/// padded to 16 B.
pub const ENTRY_BYTES: usize = 16;

/// Bounded FIFO of parked parent updates.
#[derive(Clone, Debug)]
pub struct NvBuffer {
    entries: Vec<NvBufferEntry>,
    capacity: usize,
}

impl NvBuffer {
    /// A buffer of `bytes` total (Table I: 128 ⇒ 8 entries).
    pub fn new(bytes: usize) -> Self {
        let capacity = bytes / ENTRY_BYTES;
        assert!(capacity >= 1, "NV buffer too small for one entry");
        NvBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Parks an entry. Returns `true` if the buffer is now full (caller must
    /// drain before accepting more).
    pub fn push(&mut self, entry: NvBufferEntry) -> bool {
        debug_assert!(self.entries.len() < self.capacity, "push into full buffer");
        self.entries.push(entry);
        self.entries.len() == self.capacity
    }

    /// Whether another push would overflow.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Whether any entries are parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains all parked entries in FIFO order.
    pub fn drain(&mut self) -> Vec<NvBufferEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Oldest parked entry, if any (drain processes FIFO).
    pub fn front(&self) -> Option<NvBufferEntry> {
        self.entries.first().copied()
    }

    /// Retires the oldest entry. The engine calls this only *after* the
    /// entry's parent update and LInc transfer have completed, so a crash
    /// mid-drain never loses a parked update (§III-E: the buffer is
    /// non-volatile precisely so recovery can replay it).
    pub fn pop_front(&mut self) -> Option<NvBufferEntry> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Read-only view (recovery replays without draining the register).
    pub fn entries(&self) -> &[NvBufferEntry] {
        &self.entries
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_from_table1_bytes() {
        let b = NvBuffer::new(128);
        assert_eq!(b.capacity(), 8);
    }

    #[test]
    fn push_reports_full() {
        let mut b = NvBuffer::new(32); // 2 entries
        assert!(!b.push(NvBufferEntry {
            child_offset: 1,
            generated: 10
        }));
        assert!(b.push(NvBufferEntry {
            child_offset: 2,
            generated: 20
        }));
        assert!(b.is_full());
    }

    #[test]
    fn drain_is_fifo_and_empties() {
        let mut b = NvBuffer::new(64);
        for i in 0..3 {
            b.push(NvBufferEntry {
                child_offset: i,
                generated: i * 100,
            });
        }
        let drained = b.drain();
        assert_eq!(
            drained.iter().map(|e| e.child_offset).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_rejected() {
        NvBuffer::new(8);
    }

    #[test]
    fn front_and_pop_front_are_fifo() {
        let mut b = NvBuffer::new(64);
        for i in 0..3 {
            b.push(NvBufferEntry {
                child_offset: i,
                generated: i * 100,
            });
        }
        assert_eq!(b.front().map(|e| e.child_offset), Some(0));
        assert_eq!(b.pop_front().map(|e| e.child_offset), Some(0));
        assert_eq!(b.front().map(|e| e.child_offset), Some(1));
        assert_eq!(b.entries().len(), 2);
        b.pop_front();
        b.pop_front();
        assert_eq!(b.pop_front(), None);
    }
}
