//! Online integrity service: incremental background scrub, epoch
//! re-encryption, wear rotation, and attack-detection alarms — running
//! concurrently with serving traffic instead of stop-the-world.
//!
//! The post-crash lenient scrub ([`crate::scrub`]) verifies the whole
//! machine in one pass while nothing else runs. This module converts that
//! pass into a *resumable, cursor-driven* background service a live
//! [`crate::SecureNvmSystem`] (and, per shard, a
//! [`crate::ShardedEngine`]) runs between serving requests:
//!
//! * **Incremental scrub** — every `scrub_period_ops` served operations,
//!   the service verifies the next `scrub_batch_lines` data lines: a timed
//!   background read (charging device bank occupancy — the serving cost
//!   the throttle bounds — and driving the device's bounded
//!   exponential-backoff retry schedule, which heals short transient
//!   faults), then the data MAC against the line's
//!   [`MacRecord`]. The cursor is stamped into the
//!   ADR recovery journal's per-lane marks (phase
//!   [`journal::ONLINE`], laid out by
//!   [`par::lane_spans`] exactly like parallel recovery's regions), so a
//!   crash mid-pass resumes the pass instead of rescanning from zero.
//! * **Throttle negotiation** — a scrub step first consults the live
//!   write-queue occupancy; above `throttle_occupancy` the step yields to
//!   serving traffic (alarm draining still runs — detections are never
//!   throttled).
//! * **Quarantine** — a line that fails its MAC, stays unreadable after
//!   the retry budget, or exhausts its transient re-reads is parked in a
//!   per-region quarantine: subsequent reads *and* writes fail typed with
//!   [`IntegrityError::Quarantined`](crate::IntegrityError::Quarantined) until an operator clears it. The ack
//!   is never silently wrong.
//! * **Epoch re-encryption** — split-counter leaves whose major counter
//!   reaches `epoch_threshold` are re-encrypted under a fresh epoch
//!   (`SecureMemoryController::epoch_reencrypt`), after every covered
//!   line verifies — re-encrypting an unverified line would launder
//!   garbage under a fresh MAC.
//! * **Wear rotation** — once per pass, if the wear telemetry's hottest
//!   line exceeds `wear_rotation_writes`, the line is refreshed through
//!   the secure read+write path (modeling a start-gap-style remap copy)
//!   and counted.
//! * **Alarms** — MAC mismatches, replay suspicion (LInc drift),
//!   unreadable regions, and exhausted retries surface as typed
//!   [`Alarm`]s through the obs alarm channel; the sharded engine adds
//!   `ShardDegraded` and `TornWrite` lifecycle alarms.

use std::collections::BTreeSet;

use steins_metadata::CounterMode;
use steins_nvm::{RecoveryJournal, RECOVERY_LANES};
use steins_obs::{Alarm, AlarmKind, AlarmLog, MetricRegistry};

use crate::cme::MacRecord;
use crate::config::LeafRecovery;
use crate::engine::SecureNvmSystem;
use crate::par;
use crate::recovery::journal;

/// Runtime policy knobs of the online integrity service (Triad-NVM-style:
/// the operator trades scrub latency against serving throughput).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlinePolicy {
    /// Served operations between scrub steps (the scrub period).
    pub scrub_period_ops: u64,
    /// Data lines verified per scrub step (the scrub batch).
    pub scrub_batch_lines: u64,
    /// Write-queue occupancy fraction above which a scrub step yields to
    /// serving traffic (alarm draining still runs).
    pub throttle_occupancy: f64,
    /// Split-counter major value that triggers an epoch re-encryption
    /// sweep of the covering leaf. `u64::MAX` disables epoch sweeps.
    pub epoch_threshold: u64,
    /// Hottest-line write count that triggers a wear-rotation refresh at
    /// the end of a pass. `u64::MAX` disables rotation.
    pub wear_rotation_writes: u64,
}

impl Default for OnlinePolicy {
    /// The default patrols slowly — two lines every 128 served ops — so
    /// enabling the service costs under 10% serving throughput (gated by
    /// the `chaos` bench); chaos/soak configs crank the period down.
    fn default() -> Self {
        OnlinePolicy {
            scrub_period_ops: 128,
            scrub_batch_lines: 2,
            throttle_occupancy: 0.5,
            epoch_threshold: u64::MAX,
            wear_rotation_writes: u64::MAX,
        }
    }
}

/// How one line's background verification resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LineVerdict {
    /// Never written, already quarantined, or counter mode carries no
    /// per-line record to check (Osiris probing is a recovery-only path).
    Skipped,
    /// Readable and the data MAC verified.
    Verified,
    /// Unreadable after the device's full retry budget.
    Unreadable,
    /// Readable bytes, wrong MAC: tampering or silent corruption.
    Mismatch,
}

/// The per-system online integrity service: scrub cursor, quarantine set,
/// alarm log, and telemetry counters. Owned by a
/// [`SecureNvmSystem`] (one per shard under a
/// [`ShardedEngine`](crate::ShardedEngine)); all state advances only
/// through modeled events, so every counter and alarm is deterministic.
#[derive(Clone, Debug)]
pub struct OnlineService {
    policy: OnlinePolicy,
    /// Next data line the scrub will verify.
    cursor: u64,
    /// Completed full passes over the data region.
    passes: u64,
    ops_since_step: u64,
    /// Quarantined line addresses (local byte addresses, 64 B aligned).
    quarantine: BTreeSet<u64>,
    pub(crate) alarms: AlarmLog,
    // Telemetry.
    steps: u64,
    throttled: u64,
    scanned: u64,
    verified: u64,
    healed: u64,
    quarantine_events: u64,
    /// Quarantine releases (operator clears + supervised heals).
    cleared: u64,
    retry_exhausted: u64,
    reencrypted_leaves: u64,
    rotations: u64,
    replay_suspected: u64,
}

impl OnlineService {
    /// A fresh service under `policy`, cursor at line zero.
    pub fn new(policy: OnlinePolicy) -> Self {
        OnlineService {
            policy,
            cursor: 0,
            passes: 0,
            ops_since_step: 0,
            quarantine: BTreeSet::new(),
            alarms: AlarmLog::new(),
            steps: 0,
            throttled: 0,
            scanned: 0,
            verified: 0,
            healed: 0,
            quarantine_events: 0,
            cleared: 0,
            retry_exhausted: 0,
            reencrypted_leaves: 0,
            rotations: 0,
            replay_suspected: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &OnlinePolicy {
        &self.policy
    }

    /// Replaces the policy knobs (takes effect at the next step).
    pub fn set_policy(&mut self, policy: OnlinePolicy) {
        self.policy = policy;
    }

    /// The scrub cursor (next data line to verify).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Repositions the scrub cursor — used to resume an interrupted pass
    /// from a crashed image's [`journal::ONLINE`] marks (see
    /// [`Self::resume_cursor`]).
    pub fn set_cursor(&mut self, cursor: u64) {
        self.cursor = cursor;
    }

    /// Completed full passes.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Audited quarantine releases so far (operator clears, supervised
    /// heals, post-repair replays).
    pub fn cleared(&self) -> u64 {
        self.cleared
    }

    /// Whether `addr`'s line is quarantined.
    pub fn is_quarantined(&self, addr: u64) -> bool {
        self.quarantine.contains(&(addr & !63))
    }

    /// The quarantined line addresses, in address order.
    pub fn quarantined(&self) -> impl Iterator<Item = u64> + '_ {
        self.quarantine.iter().copied()
    }

    /// Releases `addr`'s line from quarantine, raising an auditable
    /// [`AlarmKind::QuarantineCleared`] alarm when it was actually held —
    /// the quarantine set never shrinks silently. Returns whether it was
    /// quarantined. The scrub will re-quarantine the line on the next pass
    /// if the underlying fault persists. `shard`/`cycle` stamp the alarm
    /// (shard-local modeled time keeps the log deterministic).
    pub fn clear_quarantine(&mut self, shard: u16, addr: u64, cycle: u64) -> bool {
        let removed = self.quarantine.remove(&(addr & !63));
        if removed {
            self.cleared += 1;
            self.raise(AlarmKind::QuarantineCleared, shard, Some(addr & !63), cycle);
        }
        removed
    }

    /// Removes `addr` from the set without an alarm — the heal-write
    /// probe's temporary lift; the audited outcome ([`Self::note_heal`] or
    /// [`Self::requarantine`]) always follows before control returns to
    /// the caller.
    pub(crate) fn remove_quarantined(&mut self, addr: u64) {
        self.quarantine.remove(&(addr & !63));
    }

    /// Re-quarantines a line whose heal probe failed: the fault persists,
    /// so the re-detection alarm is raised again (same kind as a fresh
    /// scrub hit).
    pub(crate) fn requarantine(&mut self, shard: u16, addr: u64, cycle: u64) {
        self.quarantine_line(AlarmKind::MacMismatch, shard, addr, cycle);
    }

    /// Records a successful supervised heal: the verify-after-write
    /// round-trip proved the line sound, so the release is audited as a
    /// [`AlarmKind::QuarantineCleared`] event.
    pub(crate) fn note_heal(&mut self, shard: u16, addr: u64, cycle: u64) {
        self.cleared += 1;
        self.raise(AlarmKind::QuarantineCleared, shard, Some(addr & !63), cycle);
    }

    /// The alarm log (drain through
    /// [`SecureNvmSystem::drain_alarms`](crate::SecureNvmSystem::drain_alarms)).
    pub fn alarms(&self) -> &AlarmLog {
        &self.alarms
    }

    /// Counts one served operation; true when a scrub step is due.
    pub(crate) fn note_op(&mut self) -> bool {
        self.ops_since_step += 1;
        self.ops_since_step >= self.policy.scrub_period_ops
    }

    /// The cursor a crashed image's journal proves the interrupted pass
    /// had reached, when the journal is in the [`journal::ONLINE`] phase
    /// (per-lane marks over `lines` data lines, [`par::lane_spans`]
    /// layout — the same single↔multi-lane compatibility contract
    /// parallel recovery uses).
    pub fn resume_cursor(j: &RecoveryJournal, lines: u64) -> Option<u64> {
        if j.phase != journal::ONLINE || j.lanes == 0 {
            return None;
        }
        let covered: u64 = par::lane_spans(lines as usize, j.lanes as usize)
            .iter()
            .zip(j.marks.iter())
            .map(|(&(s, e), &m)| m.min((e - s) as u64))
            .sum();
        Some(covered % lines.max(1))
    }

    fn marks_for(cursor: u64, lines: u64) -> [u64; RECOVERY_LANES] {
        let mut marks = [0u64; RECOVERY_LANES];
        for (l, (s, e)) in par::lane_spans(lines as usize, RECOVERY_LANES)
            .into_iter()
            .enumerate()
        {
            marks[l] = (cursor as usize).clamp(s, e).saturating_sub(s) as u64;
        }
        marks
    }

    fn raise(&mut self, kind: AlarmKind, shard: u16, addr: Option<u64>, cycle: u64) {
        self.alarms.raise(Alarm {
            kind,
            shard,
            addr,
            cycle,
        });
    }

    fn quarantine_line(&mut self, kind: AlarmKind, shard: u16, addr: u64, cycle: u64) {
        if self.quarantine.insert(addr & !63) {
            self.quarantine_events += 1;
            self.raise(kind, shard, Some(addr & !63), cycle);
        }
    }

    /// Drains the device's exhausted-retry promotions into typed alarms
    /// and quarantine. Never throttled: a fault the serving path already
    /// hit must surface immediately.
    fn drain_retry_exhausted(&mut self, sys: &mut SecureNvmSystem) {
        let shard = sys.ctrl.nvm.shard();
        for (addr, cycle) in sys.ctrl.nvm.take_retry_exhausted() {
            self.retry_exhausted += 1;
            if sys.ctrl.layout.is_data(addr) {
                self.quarantine_line(AlarmKind::RetryExhausted, shard, addr, cycle);
            } else {
                // Metadata-region exhaustion: alarm (recovery's problem to
                // classify), but the data-plane quarantine does not apply.
                self.raise(AlarmKind::RetryExhausted, shard, Some(addr), cycle);
            }
        }
    }

    /// Verifies one data line in the background. Reads through the timed
    /// device path (charging bank occupancy, driving the retry/backoff
    /// schedule), then checks the data MAC against the line's record.
    fn verify_line(&mut self, sys: &mut SecureNvmSystem, d: u64) -> LineVerdict {
        let daddr = sys.ctrl.layout.data_base + d * 64;
        if self.quarantine.contains(&daddr) {
            return LineVerdict::Skipped;
        }
        // Never-written lines still get the media probe below (a patrol
        // scrub reads the whole region, and faults land anywhere); only
        // the MAC check is skipped for them.
        self.scanned += 1;
        let was_bad = !sys.ctrl.nvm.is_readable(daddr);
        let t = sys.ctrl.front_free;
        let (ct, done) = sys.ctrl.nvm.read(t, daddr);
        // The patrol read occupies the controller front like any other
        // access — this is exactly the throughput cost the throttle knob
        // trades against scrub latency.
        sys.ctrl.front_free = sys.ctrl.front_free.max(done);
        // The read may have promoted an exhausted transient — surface it.
        self.drain_retry_exhausted(sys);
        if !sys.ctrl.nvm.is_readable(daddr) {
            let shard = sys.ctrl.nvm.shard();
            let cycle = sys.sim_cycles();
            self.quarantine_line(AlarmKind::UnreadableRegion, shard, daddr, cycle);
            return LineVerdict::Unreadable;
        }
        if was_bad {
            self.healed += 1;
        }
        let rec = sys.ctrl.data_mac_record(d);
        if rec == MacRecord::default() && ct == [0u8; 64] {
            return LineVerdict::Skipped; // never-written: defined zeros
        }
        match sys.cfg.leaf_recovery {
            LeafRecovery::MacRecord => {
                let (major, minor) = MacRecord::unpack_recovery(rec.recovery);
                if sys.ctrl.data_mac_probe(daddr, &ct, major, minor) == rec.mac {
                    self.verified += 1;
                    LineVerdict::Verified
                } else {
                    let shard = sys.ctrl.nvm.shard();
                    let cycle = sys.sim_cycles();
                    self.quarantine_line(AlarmKind::MacMismatch, shard, daddr, cycle);
                    LineVerdict::Mismatch
                }
            }
            // Osiris keeps no counter beside the data; its probe is a
            // recovery-time protocol. Online, the scrub is readability-only.
            LeafRecovery::OsirisProbe { .. } => LineVerdict::Skipped,
        }
    }

    /// Epoch check for the line just verified: when its recorded major
    /// counter has reached the policy threshold, verify every sibling the
    /// covering leaf spans and re-encrypt the leaf under a fresh epoch.
    /// Any sibling that fails verification is quarantined instead (and
    /// vetoes the sweep — re-encrypting it would launder garbage).
    fn maybe_epoch_sweep(&mut self, sys: &mut SecureNvmSystem, d: u64) {
        if self.policy.epoch_threshold == u64::MAX
            || sys.cfg.mode != CounterMode::Split
            || !matches!(sys.cfg.leaf_recovery, LeafRecovery::MacRecord)
        {
            return;
        }
        let rec = sys.ctrl.data_mac_record(d);
        let (major, _) = MacRecord::unpack_recovery(rec.recovery);
        if major < self.policy.epoch_threshold {
            return;
        }
        let (leaf, _) = sys.ctrl.layout.geometry.leaf_of_data(d);
        let siblings = sys.ctrl.layout.geometry.data_of_leaf(leaf);
        let all_clean = siblings.iter().all(|&s| {
            !matches!(
                self.verify_line(sys, s),
                LineVerdict::Unreadable | LineVerdict::Mismatch
            )
        });
        if all_clean && sys.ctrl.epoch_reencrypt(leaf).unwrap_or(false) {
            self.reencrypted_leaves += 1;
        }
    }

    /// End-of-pass work: LInc drift check (replay suspicion) and wear
    /// rotation.
    fn end_of_pass(&mut self, sys: &mut SecureNvmSystem) {
        self.passes += 1;
        // Replay suspicion: the trusted LInc registers must equal a
        // recomputation from the cache + NV-buffer state. Drift means the
        // durable counters no longer account for the trusted increments —
        // the signature replay detection keys on (§III-D).
        if let (Some(have), Some(want)) = (sys.ctrl.lincs(), sys.ctrl.recompute_lincs()) {
            if have != want {
                self.replay_suspected += 1;
                let shard = sys.ctrl.nvm.shard();
                let cycle = sys.sim_cycles();
                self.raise(AlarmKind::Replay, shard, None, cycle);
            }
        }
        // Wear rotation: refresh the hottest data line through the secure
        // read+write path (modeling a start-gap remap copy) when telemetry
        // says it crossed the endurance budget. The scan is over data lines
        // only (record/metadata lines are inherently hotter and are the
        // device's problem, not remappable user content), lowest address
        // winning ties so the choice is deterministic.
        if self.policy.wear_rotation_writes == u64::MAX {
            return;
        }
        let mut best_count = 0u64;
        let mut best_addr = None;
        for d in 0..sys.ctrl.layout.data_lines {
            let a = sys.ctrl.layout.data_base + d * 64;
            if self.quarantine.contains(&a) {
                continue;
            }
            let c = sys.ctrl.nvm.wear().of(a);
            if c >= self.policy.wear_rotation_writes && c > best_count {
                best_count = c;
                best_addr = Some(a);
            }
        }
        let Some(hot) = best_addr else {
            return;
        };
        let t = sys.ctrl.front_free;
        match sys.ctrl.read_data(t, hot) {
            Ok((pt, t2)) => {
                if sys.ctrl.write_data(t2, hot, &pt).is_ok() {
                    self.rotations += 1;
                }
            }
            Err(_) => {
                let shard = sys.ctrl.nvm.shard();
                let cycle = sys.sim_cycles();
                self.quarantine_line(AlarmKind::MacMismatch, shard, hot, cycle);
            }
        }
    }

    /// One scrub step: drain promotions, negotiate the throttle against
    /// live write-queue occupancy, verify the next batch of lines, stamp
    /// the cursor into the journal's per-lane marks.
    pub(crate) fn step(&mut self, sys: &mut SecureNvmSystem) {
        self.steps += 1;
        self.ops_since_step = 0;
        self.drain_retry_exhausted(sys);
        let now = sys.ctrl.front_free;
        let occ = sys.ctrl.wq.occupancy(now) as f64 / sys.ctrl.wq.capacity().max(1) as f64;
        if occ > self.policy.throttle_occupancy {
            self.throttled += 1;
            return;
        }
        let lines = sys.ctrl.layout.data_lines;
        if lines == 0 {
            return;
        }
        for _ in 0..self.policy.scrub_batch_lines.min(lines) {
            let d = self.cursor;
            self.cursor += 1;
            if self.cursor >= lines {
                self.cursor = 0;
            }
            if matches!(self.verify_line(sys, d), LineVerdict::Verified) {
                self.maybe_epoch_sweep(sys, d);
            }
            if self.cursor == 0 {
                self.end_of_pass(sys);
            }
        }
        // Stamp the cursor (a cheap ADR persist): a crash between steps
        // resumes the pass from these marks instead of line zero.
        sys.ctrl.journal_write(RecoveryJournal::laned(
            journal::ONLINE,
            self.passes.min(u64::from(u32::MAX)) as u32,
            RECOVERY_LANES as u8,
            Self::marks_for(self.cursor, lines),
        ));
    }

    /// One full drain pass over every data line, ignoring the period and
    /// throttle — the operator's "finish the scrub now" lever, and the
    /// chaos harness's end-of-run settling pass.
    pub(crate) fn full_pass(&mut self, sys: &mut SecureNvmSystem) {
        self.drain_retry_exhausted(sys);
        let lines = sys.ctrl.layout.data_lines;
        for d in 0..lines {
            if matches!(self.verify_line(sys, d), LineVerdict::Verified) {
                self.maybe_epoch_sweep(sys, d);
            }
        }
        self.cursor = 0;
        if lines > 0 {
            self.end_of_pass(sys);
        }
    }

    /// Exports the service's telemetry under `core.online.` plus the
    /// alarm counters (`obs.alarms.*`).
    pub fn export_metrics(&self, reg: &mut MetricRegistry) {
        reg.counter_add("core.online.steps", self.steps);
        reg.counter_add("core.online.throttled", self.throttled);
        reg.counter_add("core.online.passes", self.passes);
        reg.counter_add("core.online.scanned", self.scanned);
        reg.counter_add("core.online.verified", self.verified);
        reg.counter_add("core.online.healed", self.healed);
        reg.counter_add("core.online.quarantine_events", self.quarantine_events);
        reg.counter_add("core.online.quarantine_cleared", self.cleared);
        reg.counter_add("core.online.retry_exhausted", self.retry_exhausted);
        reg.counter_add("core.online.reencrypted_leaves", self.reencrypted_leaves);
        reg.counter_add("core.online.rotations", self.rotations);
        reg.counter_add("core.online.replay_suspected", self.replay_suspected);
        reg.gauge_set("core.online.quarantined", self.quarantine.len() as f64);
        reg.gauge_set("core.online.cursor", self.cursor as f64);
        reg.merge(&self.alarms.metrics());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SchemeKind, SystemConfig};
    use crate::engine::synth_data;
    use crate::error::IntegrityError;

    fn sys(mode: CounterMode) -> SecureNvmSystem {
        SecureNvmSystem::new(SystemConfig::small_for_tests(SchemeKind::Steins, mode))
    }

    fn active_policy() -> OnlinePolicy {
        OnlinePolicy {
            scrub_period_ops: 8,
            scrub_batch_lines: 8,
            throttle_occupancy: 1.0,
            ..OnlinePolicy::default()
        }
    }

    #[test]
    fn clean_traffic_scrubs_and_raises_no_alarms() {
        let mut s = sys(CounterMode::General);
        s.enable_online(active_policy());
        for line in 0..64u64 {
            s.write(line * 64, &synth_data(line * 64, 1)).unwrap();
        }
        // Force enough steps to complete at least one pass.
        let lines = s.ctrl.layout.data_lines;
        for _ in 0..=lines / 8 {
            s.online_step();
        }
        let svc = s.online().unwrap();
        assert!(svc.passes() >= 1, "cursor never wrapped");
        assert!(svc.verified >= 64, "verified {}", svc.verified);
        assert!(svc.alarms().is_empty());
        assert_eq!(svc.quarantined().count(), 0);
        // The journal carries the online phase with resumable marks.
        let j = s.ctrl.nvm.recovery_journal();
        assert_eq!(j.phase, journal::ONLINE);
        assert_eq!(
            OnlineService::resume_cursor(&j, lines),
            Some(svc.cursor()),
            "marks must round-trip the cursor"
        );
    }

    #[test]
    fn tampered_line_is_quarantined_and_fails_typed() {
        let mut s = sys(CounterMode::General);
        s.enable_online(active_policy());
        for line in 0..16u64 {
            s.write(line * 64, &synth_data(line * 64, 2)).unwrap();
        }
        let victim = 5 * 64;
        s.ctrl.nvm.inject_bit_flip(victim, 3, 1);
        s.online_scrub_pass();
        let svc = s.online().unwrap();
        assert!(svc.is_quarantined(victim));
        assert_eq!(svc.alarms().count(AlarmKind::MacMismatch), 1);
        assert_eq!(
            s.read(victim),
            Err(IntegrityError::Quarantined { addr: victim })
        );
        assert_eq!(
            s.write(victim, &[0; 64]),
            Err(IntegrityError::Quarantined { addr: victim })
        );
        // Neighbors still serve.
        assert_eq!(s.read(6 * 64).unwrap(), synth_data(6 * 64, 2));
        // Operator clears the quarantine; the next pass re-detects.
        assert!(s.clear_quarantine(victim));
        s.online_scrub_pass();
        assert!(s.online().unwrap().is_quarantined(victim));
    }

    #[test]
    fn transient_fault_heals_and_permanent_fault_quarantines() {
        let mut s = sys(CounterMode::General);
        s.enable_online(active_policy());
        for line in 0..8u64 {
            s.write(line * 64, &synth_data(line * 64, 3)).unwrap();
        }
        // Short transient: healed by the scrub read's backoff schedule.
        s.ctrl.nvm.inject_transient_unreadable(2 * 64, 2);
        // Permanent: quarantined with an alarm.
        s.ctrl.nvm.inject_unreadable(4 * 64);
        s.online_scrub_pass();
        let svc = s.online().unwrap();
        assert!(svc.healed >= 1, "transient not healed");
        assert!(!svc.is_quarantined(2 * 64));
        assert!(svc.is_quarantined(4 * 64));
        assert_eq!(svc.alarms().count(AlarmKind::UnreadableRegion), 1);
        assert_eq!(s.read(2 * 64).unwrap(), synth_data(2 * 64, 3));
    }

    #[test]
    fn auto_stepping_follows_the_period_and_respects_throttle() {
        let mut s = sys(CounterMode::General);
        s.enable_online(OnlinePolicy {
            scrub_period_ops: 4,
            scrub_batch_lines: 2,
            throttle_occupancy: 0.0, // always throttled
            ..OnlinePolicy::default()
        });
        for line in 0..32u64 {
            s.write(line * 64, &synth_data(line * 64, 4)).unwrap();
        }
        let svc = s.online().unwrap();
        assert!(svc.steps >= 32 / 4, "steps {}", svc.steps);
        assert_eq!(svc.scanned, 0, "a fully-throttled scrub scans nothing");
        assert_eq!(svc.throttled, svc.steps);
    }

    #[test]
    fn epoch_sweep_reencrypts_hot_split_leaves() {
        let mut s = sys(CounterMode::Split);
        s.enable_online(OnlinePolicy {
            epoch_threshold: 1,
            ..active_policy()
        });
        // Hammer one line until its leaf's major counter crosses the
        // threshold (minor overflow advances the major).
        for v in 0..300u64 {
            s.write(0, &synth_data(0, v)).unwrap();
        }
        for line in 1..4u64 {
            s.write(line * 64, &synth_data(line * 64, 1)).unwrap();
        }
        s.online_scrub_pass();
        let before = s.online().unwrap().reencrypted_leaves;
        assert!(before >= 1, "no epoch sweep ran");
        // The swept lines still read back correctly.
        assert_eq!(s.read(0).unwrap(), synth_data(0, 299));
        for line in 1..4u64 {
            assert_eq!(s.read(line * 64).unwrap(), synth_data(line * 64, 1));
        }
        // And the sweep is convergent: majors were reset below the
        // threshold only if threshold > post-sweep major; with threshold 1
        // a re-scan may sweep again, but reads must stay correct.
        s.online_scrub_pass();
        assert_eq!(s.read(0).unwrap(), synth_data(0, 299));
    }

    #[test]
    fn wear_rotation_refreshes_the_hottest_line() {
        let mut s = sys(CounterMode::General);
        s.enable_online(OnlinePolicy {
            wear_rotation_writes: 8,
            ..active_policy()
        });
        for v in 0..32u64 {
            s.write(3 * 64, &synth_data(3 * 64, v)).unwrap();
        }
        for line in 0..4u64 {
            s.write(line * 64, &synth_data(line * 64, 100)).unwrap();
        }
        s.online_scrub_pass();
        let svc = s.online().unwrap();
        assert!(svc.rotations >= 1, "hot line never rotated");
        assert_eq!(s.read(3 * 64).unwrap(), synth_data(3 * 64, 100));
    }

    #[test]
    fn linc_drift_raises_a_replay_alarm() {
        let mut s = sys(CounterMode::General);
        s.enable_online(active_policy());
        for line in 0..8u64 {
            s.write(line * 64, &synth_data(line * 64, 5)).unwrap();
        }
        // Sabotage the trusted register directly: the recomputation no
        // longer matches, which is exactly what a replayed counter causes.
        s.ctrl.scheme.steins().lincs.add(0, 7);
        s.online_scrub_pass();
        let svc = s.online().unwrap();
        assert_eq!(svc.replay_suspected, 1);
        assert_eq!(svc.alarms().count(AlarmKind::Replay), 1);
    }

    #[test]
    fn retry_exhaustion_surfaces_via_alarm_and_quarantine() {
        let mut s = sys(CounterMode::General);
        s.enable_online(active_policy());
        for line in 0..8u64 {
            s.write(line * 64, &synth_data(line * 64, 6)).unwrap();
        }
        // More pending failures than the retry budget: the serving read
        // path promotes the fault; the service must surface it.
        s.ctrl.nvm.inject_transient_unreadable(64, 100);
        assert!(matches!(s.read(64), Err(IntegrityError::Unreadable { .. })));
        s.online_step();
        let svc = s.online().unwrap();
        assert!(svc.retry_exhausted >= 1);
        assert!(svc.is_quarantined(64));
        assert_eq!(svc.alarms().count(AlarmKind::RetryExhausted), 1);
        assert_eq!(s.read(64), Err(IntegrityError::Quarantined { addr: 64 }));
    }

    #[test]
    fn metrics_export_is_deterministic_and_prefixed() {
        let run = || {
            let mut s = sys(CounterMode::General);
            s.enable_online(active_policy());
            for line in 0..16u64 {
                s.write(line * 64, &synth_data(line * 64, 7)).unwrap();
            }
            s.ctrl.nvm.inject_unreadable(2 * 64);
            s.online_scrub_pass();
            s.report().metrics.to_json_deterministic().pretty()
        };
        let a = run();
        assert_eq!(a, run(), "online metrics must be deterministic");
        assert!(a.contains("core.online.steps"));
        assert!(a.contains("obs.alarms.total"));
    }
}
