//! Work-stealing execution and deterministic lane folding for parallel
//! recovery.
//!
//! Recovery parallelism in this codebase has two halves with different
//! determinism requirements:
//!
//! * **Execution** — independent regions (one crashed shard each, or one
//!   scrub leaf range) really do run on OS threads. [`StealQueue`] is a
//!   chunked work queue in the chase-lev mold: every worker owns a
//!   contiguous interval of the job index space packed into one
//!   `AtomicU64`, pops its own front with a single CAS, and when drained
//!   steals the *back half* of a victim's remaining interval with another
//!   single CAS. No locks, no ABA (intervals only ever shrink or move
//!   wholesale, and a drained interval is never re-grown by anyone but its
//!   owner installing a fresh steal).
//! * **Reporting** — every exported number must be byte-identical no matter
//!   how many threads the host actually ran. [`fold_lanes`] therefore
//!   *models* the parallel schedule: per-region costs are assigned to
//!   `lanes` modeled workers longest-processing-time-first (the balance an
//!   idle-stealing scheduler converges to), and the makespan is the max
//!   lane. Real thread count affects wall clock only.
//!
//! The env knob `STEINS_RECOVERY_WORKERS` selects the worker count
//! ([`recovery_workers`]); it is capped at
//! [`steins_nvm::RECOVERY_LANES`] because each in-flight region journals
//! its progress in its own per-lane mark slot of the ADR
//! [`steins_nvm::RecoveryJournal`] (see `crate::recovery`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hard cap on recovery workers — one journal mark slot per lane.
pub const MAX_WORKERS: usize = steins_nvm::RECOVERY_LANES;

/// Worker count for parallel recovery: `STEINS_RECOVERY_WORKERS`, default
/// 1, clamped to `1..=`[`MAX_WORKERS`].
pub fn recovery_workers() -> usize {
    std::env::var("STEINS_RECOVERY_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .clamp(1, MAX_WORKERS)
}

/// Splits `n` items into at most `lanes` contiguous spans of
/// `ceil(n / lanes)` items (the last span may be short; trailing spans may
/// be empty and are omitted). Span `l` covers canonical indices
/// `[l * chunk, min((l + 1) * chunk, n))`.
pub fn lane_spans(n: usize, lanes: usize) -> Vec<(usize, usize)> {
    let lanes = lanes.clamp(1, MAX_WORKERS);
    if n == 0 {
        return vec![(0, 0)];
    }
    let chunk = n.div_ceil(lanes);
    (0..lanes)
        .map(|l| ((l * chunk).min(n), ((l + 1) * chunk).min(n)))
        .filter(|(s, e)| e > s)
        .collect()
}

/// The lane whose span ([`lane_spans`]) contains canonical index `i`.
pub fn lane_of(n: usize, lanes: usize, i: usize) -> usize {
    let lanes = lanes.clamp(1, MAX_WORKERS);
    if n == 0 {
        return 0;
    }
    i / n.div_ceil(lanes)
}

/// Deterministic longest-processing-time-first fold of per-region costs
/// onto `lanes` modeled workers: regions sorted by descending cost (index
/// tiebreak) each go to the currently least-loaded lane (lowest index
/// tiebreak). Returns the per-lane load sums. This is the schedule an
/// idle-stealing worker pool converges to, computed without running one —
/// the folded numbers are byte-identical regardless of host parallelism.
pub fn fold_lanes(costs: &[u64], lanes: usize) -> Vec<u64> {
    let lanes = lanes.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut load = vec![0u64; lanes];
    for i in order {
        let best = (0..lanes)
            .min_by_key(|&l| (load[l], l))
            .expect("lanes >= 1");
        load[best] += costs[i];
    }
    load
}

/// Modeled makespan of [`fold_lanes`]: the max lane load (0 for no regions).
pub fn makespan(costs: &[u64], lanes: usize) -> u64 {
    fold_lanes(costs, lanes).into_iter().max().unwrap_or(0)
}

/// Packs a half-open job interval `[next, end)` into one atomic word.
fn pack(next: u32, end: u32) -> u64 {
    (u64::from(next) << 32) | u64::from(end)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Chunked work-stealing queue over the job index space `0..jobs`.
///
/// Construction deals each worker a contiguous interval (round-robin over
/// [`lane_spans`]-style chunks). `next(w)` pops worker `w`'s own front;
/// once drained, `w` scans the other lanes and steals the back half of the
/// largest-remaining victim interval. Both operations are single-word CAS.
pub struct StealQueue {
    lanes: Vec<AtomicU64>,
    steals: AtomicU64,
}

impl StealQueue {
    /// Deals `jobs` indices across `workers` lanes as contiguous chunks.
    pub fn new(jobs: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        assert!(jobs <= u32::MAX as usize, "job space fits u32 packing");
        let chunk = if jobs == 0 { 0 } else { jobs.div_ceil(workers) };
        let lanes = (0..workers)
            .map(|w| {
                let s = (w * chunk).min(jobs) as u32;
                let e = ((w + 1) * chunk).min(jobs) as u32;
                AtomicU64::new(pack(s, e))
            })
            .collect();
        StealQueue {
            lanes,
            steals: AtomicU64::new(0),
        }
    }

    /// Next job index for worker `w`: own front first, then a steal.
    /// `None` once the whole queue is drained.
    pub fn next(&self, w: usize) -> Option<usize> {
        if let Some(j) = self.pop_own(w) {
            return Some(j);
        }
        self.steal(w)
    }

    fn pop_own(&self, w: usize) -> Option<usize> {
        let lane = &self.lanes[w];
        loop {
            let cur = lane.load(Ordering::Acquire);
            let (next, end) = unpack(cur);
            if next >= end {
                return None;
            }
            if lane
                .compare_exchange_weak(
                    cur,
                    pack(next + 1, end),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return Some(next as usize);
            }
        }
    }

    /// Steals the back half of the victim with the most remaining work.
    /// The first stolen index is returned for immediate execution; the
    /// rest (if any) is installed as the thief's new interval.
    fn steal(&self, thief: usize) -> Option<usize> {
        loop {
            // Pick the currently largest victim; retry from scratch on any
            // CAS race (another thief or the owner moved the interval).
            let mut best: Option<(usize, u64, u32)> = None;
            for (v, lane) in self.lanes.iter().enumerate() {
                if v == thief {
                    continue;
                }
                let cur = lane.load(Ordering::Acquire);
                let (next, end) = unpack(cur);
                let rem = end.saturating_sub(next);
                if rem > best.map_or(0, |(_, _, r)| r) {
                    best = Some((v, cur, rem));
                }
            }
            let (victim, cur, rem) = best?;
            let (next, end) = unpack(cur);
            let take = rem.div_ceil(2);
            let split = end - take;
            if self.lanes[victim]
                .compare_exchange(cur, pack(next, split), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            self.steals.fetch_add(1, Ordering::Relaxed);
            // The stolen span [split, end) is now privately owned. Keep its
            // first index, park the rest in our own (drained) lane. Nobody
            // else writes a drained lane, so a plain store is safe.
            if take > 1 {
                self.lanes[thief].store(pack(split + 1, end), Ordering::Release);
            }
            return Some(split as usize);
        }
    }

    /// Successful steals so far (wall-side diagnostics only — scheduling-
    /// dependent, never exported into deterministic artifacts).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Runs `jobs` independent region jobs on `workers` OS threads driving a
/// [`StealQueue`], returning the per-job results in job order plus the
/// steal count. `f(job, worker)` must be independent across jobs — results
/// are deterministic in `job` regardless of which worker ran it. Panics in
/// `f` (e.g. an armed [`steins_nvm::CrashTripped`] inside one region's
/// recovery) propagate after all workers have drained or parked.
pub fn run_regions<T, F>(workers: usize, jobs: usize, f: F) -> (Vec<T>, u64)
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let workers = workers.clamp(1, MAX_WORKERS).min(jobs.max(1));
    let queue = StealQueue::new(jobs, workers);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    if workers == 1 {
        // Inline fast path: no threads for the serial case.
        while let Some(j) = queue.next(0) {
            *slots[j].lock().unwrap() = Some(f(j, 0));
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queue = &queue;
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move || {
                        while let Some(j) = queue.next(w) {
                            *slots[j].lock().unwrap() = Some(f(j, w));
                        }
                    })
                })
                .collect();
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                if let Err(p) = h.join() {
                    panic.get_or_insert(p);
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
        });
    }
    let results = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("drained queue visited every job")
        })
        .collect();
    (results, queue.steals())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lane_spans_partition_exactly() {
        for n in [0usize, 1, 7, 8, 9, 64, 1000] {
            for lanes in 1..=MAX_WORKERS {
                let spans = lane_spans(n, lanes);
                let mut covered = 0;
                for (i, (s, e)) in spans.iter().enumerate() {
                    assert!(e >= s);
                    assert_eq!(*s, covered, "spans contiguous (n={n} lanes={lanes})");
                    covered = *e;
                    if n > 0 {
                        for x in *s..*e {
                            assert_eq!(lane_of(n, lanes, x), i);
                        }
                    }
                }
                assert_eq!(covered, n, "spans cover 0..{n}");
            }
        }
    }

    #[test]
    fn fold_lanes_is_deterministic_and_balanced() {
        let costs = [100u64, 1, 1, 1, 97, 3, 50, 49];
        assert_eq!(fold_lanes(&costs, 1), vec![302]);
        let l4 = fold_lanes(&costs, 4);
        assert_eq!(l4, fold_lanes(&costs, 4), "same inputs, same fold");
        assert_eq!(l4.iter().sum::<u64>(), 302);
        assert_eq!(makespan(&costs, 4), *l4.iter().max().unwrap());
        // LPT on this set is near-perfect: 302/4 = 75.5, max lane = 100.
        assert_eq!(makespan(&costs, 4), 100);
        // Monotone: more lanes never increases the makespan.
        assert!(makespan(&costs, 8) <= makespan(&costs, 4));
        assert!(makespan(&costs, 4) <= makespan(&costs, 2));
    }

    #[test]
    fn steal_queue_visits_every_job_exactly_once() {
        for (jobs, workers) in [(0usize, 4usize), (1, 4), (5, 2), (64, 4), (257, 8)] {
            let q = StealQueue::new(jobs, workers);
            let mut seen = HashSet::new();
            // Serial drive through all workers round-robin, exercising the
            // steal path once lanes drain unevenly.
            let mut w = 0;
            while let Some(j) = q.next(w) {
                assert!(seen.insert(j), "job {j} dealt twice");
                w = (w + 1) % workers;
            }
            assert_eq!(seen.len(), jobs);
            for extra in 0..workers {
                assert_eq!(q.next(extra), None, "drained queue stays drained");
            }
        }
    }

    #[test]
    fn run_regions_returns_results_in_job_order() {
        for workers in [1usize, 2, 4, 8] {
            let (out, _) = run_regions(workers, 37, |j, _w| j * j);
            assert_eq!(out, (0..37).map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_regions_contended_threads_cover_all_jobs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        let (out, _steals) = run_regions(4, 200, |j, _w| {
            hits.fetch_add(1, Ordering::Relaxed);
            // Skewed job costs force steals from the heavy front lanes.
            let spin = if j < 50 { 2000 } else { 10 };
            let mut acc = j as u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (j as u64, acc)
        });
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        for (j, (got, _)) in out.iter().enumerate() {
            assert_eq!(*got, j as u64);
        }
    }

    #[test]
    fn run_regions_propagates_region_panics() {
        let r = std::panic::catch_unwind(|| {
            run_regions(4, 16, |j, _w| {
                if j == 11 {
                    panic!("region 11 tripped");
                }
                j
            })
        });
        assert!(r.is_err(), "a tripped region must unwind the pool");
    }

    #[test]
    fn env_worker_count_clamped() {
        // No env set in tests: default is 1.
        assert!(recovery_workers() >= 1);
        assert!(recovery_workers() <= MAX_WORKERS);
    }
}
