//! Post-crash recovery engines (§III-G) for Steins, ASIT and STAR.
//!
//! All three are *functional*: they actually read the persisted NVM state,
//! reconstruct the lost dirty nodes, verify everything (HMACs, LIncs or
//! cache-tree roots), and hand back a live [`SecureNvmSystem`] whose
//! metadata cache holds the recovered nodes marked dirty. NVM reads are
//! counted and converted to an estimated wall time at the paper's 100 ns
//! per read-and-verify (§IV-D) — the series Fig. 17 plots.

use crate::cachetree::CacheTree;
use crate::cme::MacRecord;
use crate::config::{LeafRecovery, SchemeKind};
use crate::crash::{CrashedSystem, NvState};
use crate::engine::SecureNvmSystem;
use crate::error::IntegrityError;
use crate::linc::LincBank;
use crate::nvbuffer::NvBuffer;
use crate::par;
use crate::scheme::{star, AsitState, SchemeState, SteinsState};
use std::collections::{BTreeSet, HashMap, HashSet};
use steins_crypto::CryptoEngine;
use steins_metadata::counter::{CounterBlock, SplitCounters};
use steins_metadata::records::{record_coords, RecordLine, RECORDS_PER_LINE};
use steins_metadata::{CounterMode, NodeId, SitNode};
use steins_nvm::{AdrRegion, NvmDevice, RecoveryJournal};
use steins_obs::MetricRegistry;

/// Phase tags of the ADR-resident recovery journal
/// ([`steins_nvm::RecoveryJournal`]). The journal makes recovery a
/// restartable state machine: every phase is re-entrant, and a crash at any
/// persist boundary inside recovery leaves a journal telling the next
/// attempt where the previous one stopped (and, for STAR, how much of the
/// cache-tree register the interrupted rebuild had regrown).
pub mod journal {
    /// No recovery has ever run on this image.
    pub const IDLE: u8 = 0;
    /// Steins: reinstalling recovered nodes into the metadata cache.
    /// Durable NVM state is untouched in this phase (installs are volatile;
    /// the LInc registers and NV buffer still hold their crash values), so
    /// a re-run simply repeats the whole recovery.
    pub const STEINS_REBUILD: u8 = 1;
    /// Steins: rewriting the offset-record region to the fresh slot
    /// assignment. Slot-pinned installs make the rewritten lines byte-equal
    /// to the pre-crash ones for every previously-recorded slot, and the
    /// still-unswitched LInc/NV-buffer registers reconcile any partially
    /// rewritten mix exactly as the first attempt did.
    pub const STEINS_RECORDS: u8 = 2;
    /// ASIT: replaying shadow-slot updates against a cache-tree seeded from
    /// the durable shadow content — each update is the normal runtime
    /// register-then-push sequence, so every boundary inside the replay is
    /// a runtime-consistent image.
    pub const ASIT_REPLAY: u8 = 3;
    /// STAR: reinstalling nodes in canonical order while regrowing the
    /// cache-tree register from empty; `hwm` counts completed items, so a
    /// re-run verifies the register over exactly the covered prefix.
    pub const STAR_REBUILD: u8 = 4;
    /// Lenient scrub rewriting the image (see `crate::scrub`). Strict
    /// recovery refuses to run over a half-scrubbed image.
    pub const SCRUB: u8 = 5;
    /// The last recovery or scrub ran to completion.
    pub const DONE: u8 = 6;
    /// The online integrity service's incremental background scrub
    /// (`crate::online`) is stamping its pass cursor into the per-lane
    /// marks. The online pass is peek-only and idempotent — it rewrites
    /// none of the structures strict recovery trusts — so this phase is
    /// *terminal* (not in-progress): a crash mid-pass recovers strictly,
    /// and the marks let the restarted service resume its cursor instead
    /// of rescanning from line zero.
    pub const ONLINE: u8 = 7;

    /// Human-readable phase name.
    pub fn name(phase: u8) -> &'static str {
        match phase {
            IDLE => "idle",
            STEINS_REBUILD => "steins-rebuild",
            STEINS_RECORDS => "steins-records",
            ASIT_REPLAY => "asit-replay",
            STAR_REBUILD => "star-rebuild",
            SCRUB => "scrub",
            DONE => "done",
            ONLINE => "online-scrub",
            _ => "unknown",
        }
    }

    /// Whether the journal records an interrupted (non-terminal) recovery.
    pub fn in_progress(phase: u8) -> bool {
        !matches!(phase, IDLE | DONE | ONLINE)
    }
}

/// The set of canonical item indices an interrupted rebuild's journal
/// proves durably completed, as a mask over `0..n`.
///
/// A single-threaded-era journal (`lanes == 0`) covers the first `hwm`
/// items. A laned journal covers, for each lane `l`, the first `marks[l]`
/// items of lane `l`'s contiguous region ([`par::lane_spans`] over the
/// *prior* attempt's lane count — the current attempt may run with a
/// different worker count and still reads the old layout correctly, which
/// is the whole single↔multi-lane compatibility contract).
fn journal_cover(prior: &RecoveryJournal, n: usize) -> Vec<bool> {
    let mut cover = vec![false; n];
    if prior.lanes == 0 {
        for c in cover.iter_mut().take((prior.hwm as usize).min(n)) {
            *c = true;
        }
    } else {
        // Defensive clamp: every journal that reaches here has passed the
        // MAC check, but the cover computation itself must stay in-bounds
        // for any lane count the type can express.
        let lanes = (prior.lanes as usize).min(steins_nvm::RECOVERY_LANES);
        for (l, (s, e)) in par::lane_spans(n, lanes).into_iter().enumerate() {
            let done = (prior.marks[l] as usize).min(e - s);
            for c in cover.iter_mut().skip(s).take(done) {
                *c = true;
            }
        }
    }
    cover
}

/// Seals a journal under the engine key: the 64-bit tag stored with the
/// durable journal line (see [`RecoveryJournal::mac_message`] for the
/// domain-separated byte string it covers).
pub(crate) fn seal_journal(crypto: &dyn CryptoEngine, j: &RecoveryJournal) -> u64 {
    crypto.mac64(&j.mac_message())
}

/// Whether the device's journal line authenticates under the engine key.
///
/// A never-written journal (default contents, zero MAC) is authentic: the
/// image predates journaling or was wiped by a from-scratch rebuild. An
/// attacker who zeroes both fields therefore gains nothing — a default
/// journal *is* the from-scratch resume decision, exactly what fail-closed
/// would pick anyway. Any other content must carry a matching MAC.
pub(crate) fn journal_authentic(crypto: &dyn CryptoEngine, nvm: &NvmDevice) -> bool {
    let j = nvm.recovery_journal();
    if j == RecoveryJournal::default() && nvm.journal_mac() == 0 {
        return true;
    }
    nvm.journal_mac() == seal_journal(crypto, &j)
}

/// Journals rebuild-loop progress in the layout the lane count selects:
/// the legacy single-mark form for one lane (byte-identical to the
/// pre-parallel recoverer), per-lane mark slots otherwise. `done` is the
/// canonical index count completed so far out of `total`.
pub(crate) fn progress_journal(
    phase: u8,
    restarts: u32,
    lanes: usize,
    total: usize,
    done: usize,
) -> RecoveryJournal {
    if lanes <= 1 {
        return RecoveryJournal::single(phase, done as u64, restarts);
    }
    let mut marks = [0u64; steins_nvm::RECOVERY_LANES];
    for (l, (s, e)) in par::lane_spans(total, lanes).into_iter().enumerate() {
        marks[l] = (done.min(e) - s.min(done)) as u64;
    }
    RecoveryJournal::laned(phase, restarts, lanes as u8, marks)
}

/// What a recovery run did and how long it would take on hardware.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Scheme label.
    pub scheme: String,
    /// NVM line reads performed during recovery.
    pub nvm_reads: u64,
    /// Dirty nodes reconstructed and verified.
    pub nodes_recovered: usize,
    /// Recovered-node count per tree level (leaves first).
    pub per_level: Vec<usize>,
    /// Estimated recovery wall time (reads × the configured 100 ns).
    pub est_seconds: f64,
    /// Per-phase metrics under `core.recovery.` — phase timings are modeled
    /// NVM read counts (deterministic), not wall clock.
    pub metrics: MetricRegistry,
}

/// Builds the `core.recovery.` registry: total/per-phase modeled read
/// counts, per-level recovered-node counts, and the restart/journal state
/// this attempt started from (`prior` is the journal as found at entry —
/// an in-progress phase there means this attempt is a restart).
fn recovery_metrics(
    phases: &[(&str, u64)],
    reads: u64,
    nodes: usize,
    per_level: &[usize],
    prior: RecoveryJournal,
    restarts: u32,
) -> MetricRegistry {
    let mut m = MetricRegistry::new();
    m.counter_add("core.recovery.reads", reads);
    m.counter_add("core.recovery.nodes", nodes as u64);
    m.counter_add("core.recovery.restarts", restarts as u64);
    m.counter_add(
        "core.recovery.resumed",
        journal::in_progress(prior.phase) as u64,
    );
    m.counter_add(
        &format!("core.recovery.journal.prior.{}", journal::name(prior.phase)),
        1,
    );
    m.counter_add("core.recovery.journal.prior_hwm", prior.hwm);
    for (name, r) in phases {
        m.counter_add(&format!("core.recovery.phase.{name}.reads"), *r);
    }
    for (k, n) in per_level.iter().enumerate() {
        m.counter_add(&format!("core.recovery.level.{k}.nodes"), *n as u64);
    }
    m
}

/// Internal read-counting view over the crashed NVM.
struct Reader<'a> {
    crashed: &'a CrashedSystem,
    reads: u64,
}

impl<'a> Reader<'a> {
    fn new(crashed: &'a CrashedSystem) -> Self {
        Reader { crashed, reads: 0 }
    }

    fn line(&mut self, addr: u64) -> [u8; 64] {
        self.reads += 1;
        self.crashed.nvm.peek(addr)
    }
}

/// Parses a metadata line per its level/mode.
fn parse_node(mode: CounterMode, id: NodeId, line: &[u8; 64]) -> SitNode {
    if id.level == 0 && mode == CounterMode::Split {
        SitNode::split_from_line(line)
    } else {
        SitNode::general_from_line(line)
    }
}

fn is_zero_node(node: &SitNode) -> bool {
    node.hmac == 0 && node.to_line() == [0u8; 64]
}

impl CrashedSystem {
    /// Recovers the machine: reconstructs and verifies every lost dirty
    /// metadata node, returning the live system and the recovery metrics.
    ///
    /// Fails with the precise [`IntegrityError`] when the persisted state
    /// was tampered with or replayed (§III-H).
    pub fn recover(self) -> Result<(SecureNvmSystem, RecoveryReport), IntegrityError> {
        let mut out = None;
        let report = self.recover_into(&mut out)?;
        Ok((
            out.take().expect("recovery parks the rebuilt system"),
            report,
        ))
    }

    /// Restartable form of [`Self::recover`]: the rebuilt system is parked
    /// in `out` *before* recovery issues its first durable write, so if a
    /// second crash trips mid-rebuild (an armed persist point inside
    /// recovery), the unwinding caller still owns the partially-rebuilt
    /// system — including its NVM image and ADR recovery journal — and can
    /// crash it again and re-run recovery. All planning and verification
    /// happen before parking and touch nothing durable.
    pub fn recover_into(
        self,
        out: &mut Option<SecureNvmSystem>,
    ) -> Result<RecoveryReport, IntegrityError> {
        if matches!(self.cfg.scheme, SchemeKind::WriteBack) {
            return Err(IntegrityError::RecoveryUnsupported);
        }
        // The journal is the root of every resume decision, so authenticate
        // it before trusting a single field. Strict recovery fails closed —
        // the caller falls back to the lenient scrub, which discards the
        // forged journal and rebuilds from scratch.
        if !journal_authentic(self.crypto.as_ref(), &self.nvm) {
            return Err(IntegrityError::JournalForged);
        }
        let prior = self.nvm.recovery_journal();
        if prior.phase == journal::SCRUB {
            return Err(IntegrityError::ScrubInterrupted);
        }
        let restarts = if journal::in_progress(prior.phase) {
            prior.restarts.saturating_add(1)
        } else {
            0
        };
        let shard = self.nvm.shard();
        // Lane count for this attempt's journal layout. The override (set by
        // the harnesses and the sharded recoverer) wins over the
        // `STEINS_RECOVERY_WORKERS` env default. Lane count shapes only the
        // in-progress journal's mark partition — never the install order,
        // the exported metrics, or the terminal journal.
        let lanes = self
            .recovery_lanes
            .unwrap_or_else(par::recovery_workers)
            .clamp(1, par::MAX_WORKERS);
        let mut report = match self.cfg.scheme {
            SchemeKind::WriteBack => unreachable!("handled above"),
            SchemeKind::Steins => self.recover_steins(out, prior, restarts, lanes),
            SchemeKind::Asit => self.recover_asit(out, prior, restarts, lanes),
            SchemeKind::Star => self.recover_star(out, prior, restarts, lanes),
        }?;
        // Which shard's journal line drove this attempt — the sharded
        // engine recovers each shard independently off its own line.
        report
            .metrics
            .gauge_set("core.recovery.shard", shard as f64);
        Ok(report)
    }

    fn mac_record(&self, data_line: u64) -> MacRecord {
        let (laddr, byte) = self.layout.mac_slot(data_line);
        MacRecord::read_slot(&self.nvm.peek(laddr), byte / 16)
    }

    /// Verifies a node's stored HMAC against a parent counter (Steins/ASIT
    /// full-width; STAR masks to 48 bits). Zero nodes under zero counters
    /// are the lazily-initialized state.
    fn check_node(&self, node: &SitNode, id: NodeId, pc: u64) -> Result<(), IntegrityError> {
        if pc == 0 && is_zero_node(node) {
            return Ok(());
        }
        let off = self.layout.geometry.offset_of(id);
        let mac = self
            .crypto
            .mac64(&node.mac_message(self.layout.node_addr(off), pc));
        let ok = if matches!(self.cfg.scheme, SchemeKind::Star) {
            star::unpack_hmac(node.hmac).0 == mac & star::STAR_MAC_MASK
        } else {
            node.hmac == mac
        };
        if ok {
            Ok(())
        } else {
            Err(IntegrityError::NodeMac { node: id })
        }
    }

    /// Recovers a leaf's counters from the persisted data blocks and their
    /// MAC records (§III-G; the 8 reads/leaf in GC, 64 in SC behind
    /// Fig. 17's Steins-SC point), verifying every data block's HMAC.
    fn recover_leaf(
        &self,
        rd: &mut u64,
        id: NodeId,
        stale: &SitNode,
    ) -> Result<SitNode, IntegrityError> {
        let geo = &self.layout.geometry;
        // Osiris-style probing (§V): no counter stored with the data; walk
        // counters from the stale value up to the stop-loss window until the
        // data MAC verifies. The retrieved leaves are then covered by the
        // usual L0Inc check.
        if let LeafRecovery::OsirisProbe { window } = self.cfg.leaf_recovery {
            let mut g = *stale.counters.as_general();
            for (j, d) in geo.data_of_leaf(id).into_iter().enumerate() {
                let rec = self.mac_record(d);
                *rd += 1;
                let addr = self.layout.data_base + d * 64;
                let data = self.nvm.peek(addr);
                if rec == MacRecord::default() && data == [0u8; 64] {
                    continue;
                }
                let c0 = g.get(j);
                let found = (c0..=c0 + window)
                    .find(|&c| self.crypto.data_mac(addr, &data, c, 0) == rec.mac);
                match found {
                    Some(c) => g.set(j, c),
                    None => return Err(IntegrityError::DataMac { addr }),
                }
            }
            return Ok(SitNode {
                counters: CounterBlock::General(g),
                hmac: stale.hmac,
            });
        }
        match self.cfg.mode {
            CounterMode::General => {
                let mut g = *stale.counters.as_general();
                for (j, d) in geo.data_of_leaf(id).into_iter().enumerate() {
                    let rec = self.mac_record(d);
                    *rd += 1;
                    let addr = self.layout.data_base + d * 64;
                    let data = self.nvm.peek(addr);
                    if rec == MacRecord::default() && data == [0u8; 64] {
                        g.set(j, 0);
                        continue;
                    }
                    let (ctr, minor) = MacRecord::unpack_recovery(rec.recovery);
                    if self.crypto.data_mac(addr, &data, ctr, minor) != rec.mac {
                        return Err(IntegrityError::DataMac { addr });
                    }
                    g.set(j, ctr);
                }
                Ok(SitNode {
                    counters: CounterBlock::General(g),
                    hmac: stale.hmac,
                })
            }
            CounterMode::Split => {
                let mut major = 0u64;
                let mut minors = [0u8; 64];
                for (j, d) in geo.data_of_leaf(id).into_iter().enumerate() {
                    let rec = self.mac_record(d);
                    *rd += 1;
                    let addr = self.layout.data_base + d * 64;
                    let data = self.nvm.peek(addr);
                    if rec == MacRecord::default() && data == [0u8; 64] {
                        continue;
                    }
                    let (mj, mn) = MacRecord::unpack_recovery(rec.recovery);
                    if self.crypto.data_mac(addr, &data, mj, mn) != rec.mac {
                        return Err(IntegrityError::DataMac { addr });
                    }
                    major = major.max(mj);
                    minors[j] = mn as u8;
                }
                Ok(SitNode {
                    counters: CounterBlock::Split(SplitCounters { major, minors }),
                    hmac: stale.hmac,
                })
            }
        }
    }

    // ——————————————————————— Steins ———————————————————————

    fn recover_steins(
        self,
        out: &mut Option<SecureNvmSystem>,
        prior: RecoveryJournal,
        restarts: u32,
        lanes: usize,
    ) -> Result<RecoveryReport, IntegrityError> {
        let geo = self.layout.geometry.clone();
        let (mut lincs, nv_buffer) = match &self.nv {
            NvState::Steins { lincs, nv_buffer } => (lincs.clone(), nv_buffer.clone()),
            _ => unreachable!("steins recovery under steins scheme"),
        };
        let mut reads = 0u64;

        // 1. Offset records → candidate dirty set (may over-approximate;
        //    clean nodes recover to themselves, §III-H). Remember each
        //    offset's recorded slot: the rebuild pins nodes back into their
        //    old slots so the rewritten record region is byte-identical to
        //    the pre-crash one (recovery idempotence).
        let slots = self.cfg.meta_cache.slots();
        let sets = self.cfg.meta_cache.sets();
        let ways = self.cfg.meta_cache.ways as u64;
        let rec_lines = slots.div_ceil(RECORDS_PER_LINE);
        let mut dirty: BTreeSet<u64> = BTreeSet::new();
        let mut pinned: HashMap<u64, u64> = HashMap::new();
        for r in 0..rec_lines {
            reads += 1;
            let line = self.nvm.peek(self.layout.record_addr(r));
            for (e, off) in RecordLine::from_line(&line).entries() {
                let off = u64::from(off);
                if off < geo.total_nodes() {
                    dirty.insert(off);
                    // Stale duplicates (a node re-dirtied in a new slot
                    // leaves its old entry behind) resolve last-wins; any
                    // consistent choice keeps chosen slots unique because a
                    // slot's entry names exactly one offset. Entries whose
                    // slot is not in the offset's set are never written by
                    // the runtime — they are zero-initialized record lines
                    // decoding as "offset 0" — so they only feed the dirty
                    // over-approximation, not the slot pinning.
                    let slot = r * RECORDS_PER_LINE + e as u64;
                    if slot / ways == off % sets {
                        pinned.insert(off, slot);
                    }
                }
            }
        }

        let reads_record_scan = reads;

        // 2. NV-buffer replay (§III-G step ⑤): transfer pending LInc deltas
        //    and mark the un-updated parents for recovery.
        for e in nv_buffer.entries() {
            if e.child_offset >= geo.total_nodes() {
                // No crash-free execution buffers an out-of-tree offset: the
                // buffer line tore. Fail-stop rather than index out of range.
                return Err(IntegrityError::Torn {
                    addr: e.child_offset,
                });
            }
            let cid = geo.node_at_offset(e.child_offset);
            // Root parents are applied inline and never buffered, so a root
            // entry here is likewise a torn/corrupt buffer image.
            let Some((pid, slot)) = geo.parent_of(cid) else {
                return Err(IntegrityError::Torn {
                    addr: e.child_offset,
                });
            };
            let poff = geo.offset_of(pid);
            reads += 1;
            let sp = parse_node(
                self.cfg.mode,
                pid,
                &self.nvm.peek(self.layout.node_addr(poff)),
            );
            let p_old = sp.counters.as_general().get(slot);
            if e.generated > p_old {
                let delta = e.generated - p_old;
                if lincs.get(cid.level) < delta {
                    return Err(IntegrityError::LIncMismatch {
                        level: cid.level,
                        stored: lincs.get(cid.level),
                        recomputed: 0,
                    });
                }
                lincs.sub(cid.level, delta);
                lincs.add(pid.level, delta);
            }
            dirty.insert(poff);
            dirty.insert(e.child_offset);
        }

        let reads_buffer_replay = reads - reads_record_scan;

        // 3. Group by level.
        let mut by_level: Vec<Vec<u64>> = vec![Vec::new(); geo.levels()];
        for off in dirty {
            by_level[geo.node_at_offset(off).level].push(off);
        }

        // 4. Top-down recovery with per-level LInc verification.
        let mut recovered: HashMap<u64, SitNode> = HashMap::new();
        for k in (0..geo.levels()).rev() {
            let mut delta_sum: i128 = 0;
            for &off in &by_level[k] {
                let id = geo.node_at_offset(off);
                reads += 1;
                let stale = parse_node(
                    self.cfg.mode,
                    id,
                    &self.nvm.peek(self.layout.node_addr(off)),
                );
                // Verify the stale copy against its (recovered) parent —
                // catches tampering/replay of the stale node itself.
                let pc = if k == geo.top_level() {
                    self.root.get(geo.root_slot(id))
                } else {
                    let (pid, slot) = geo.parent_of(id).expect("non-top");
                    let poff = geo.offset_of(pid);
                    let parent = match recovered.get(&poff) {
                        Some(p) => *p,
                        None => {
                            reads += 1;
                            parse_node(
                                self.cfg.mode,
                                pid,
                                &self.nvm.peek(self.layout.node_addr(poff)),
                            )
                        }
                    };
                    parent.counters.as_general().get(slot)
                };
                self.check_node(&stale, id, pc)?;

                // Reconstruct the latest counters from persistent children
                // (§III-B: the generation functions make this possible).
                let rec = if k >= 1 {
                    let mut g = *stale.counters.as_general();
                    for (j, cid) in geo.children_of(id).into_iter().enumerate() {
                        let coff = geo.offset_of(cid);
                        reads += 1;
                        let child = parse_node(
                            self.cfg.mode,
                            cid,
                            &self.nvm.peek(self.layout.node_addr(coff)),
                        );
                        let cval = child.counters.parent_value();
                        self.check_node(&child, cid, cval)?;
                        g.set(j, cval);
                    }
                    SitNode {
                        counters: CounterBlock::General(g),
                        hmac: stale.hmac,
                    }
                } else {
                    self.recover_leaf(&mut reads, id, &stale)?
                };
                delta_sum +=
                    rec.counters.parent_value() as i128 - stale.counters.parent_value() as i128;
                recovered.insert(off, rec);
            }
            if delta_sum != lincs.get(k) as i128 {
                return Err(IntegrityError::LIncMismatch {
                    level: k,
                    stored: lincs.get(k),
                    recomputed: delta_sum.max(0) as u64,
                });
            }
        }

        let per_level: Vec<usize> = by_level.iter().map(|v| v.len()).collect();
        let nodes = recovered.len();
        let metrics = recovery_metrics(
            &[
                ("record_scan", reads_record_scan),
                ("buffer_replay", reads_buffer_replay),
                ("rebuild", reads - reads_record_scan - reads_buffer_replay),
            ],
            reads,
            nodes,
            &per_level,
            prior,
            restarts,
        );
        let read_ns = self.cfg.recovery_read_ns;
        self.rebuild_steins(out, recovered, lincs, pinned, restarts, lanes)?;
        let est_seconds = reads as f64 * read_ns * 1e-9;
        Ok(RecoveryReport {
            scheme: "Steins".into(),
            nvm_reads: reads,
            nodes_recovered: nodes,
            per_level,
            est_seconds,
            metrics,
        })
    }

    /// Rebuilds the live Steins system, restartably. The phase structure:
    ///
    /// 1. `STEINS_REBUILD` — reinstall recovered nodes into the metadata
    ///    cache (volatile). The scheme registers keep their *crash-time*
    ///    LInc/NV-buffer values, so durable state is completely unchanged
    ///    through this phase: a crash here re-runs recovery verbatim.
    /// 2. `STEINS_RECORDS` — rewrite the offset-record region. Nodes were
    ///    pinned back into their recorded slots, so for those slots the new
    ///    lines equal the old ones; lines gaining buffer-replay parents may
    ///    differ, but the still-old registers make a partial mix replay to
    ///    the same recovered state (or, if an injected tear mangles a word,
    ///    fail closed into the scrub path).
    /// 3. Register switch + `DONE` — the recovered LIncs and an empty NV
    ///    buffer are installed in the same persist interval as the `DONE`
    ///    journal write, so no crash can observe new records with old
    ///    registers or vice versa beyond what phase 2 already reconciles.
    fn rebuild_steins(
        self,
        out: &mut Option<SecureNvmSystem>,
        recovered: HashMap<u64, SitNode>,
        lincs: LincBank,
        pinned: HashMap<u64, u64>,
        restarts: u32,
        lanes: usize,
    ) -> Result<(), IntegrityError> {
        let cfg = self.cfg.clone();
        let geo = self.layout.geometry.clone();
        let (old_lincs, old_buffer) = match &self.nv {
            NvState::Steins { lincs, nv_buffer } => (lincs.clone(), nv_buffer.clone()),
            _ => unreachable!("steins rebuild under steins scheme"),
        };
        let mut sys = SecureNvmSystem::new(cfg.clone());
        sys.ctrl.nvm = self.nvm;
        sys.ctrl.root = self.root;
        sys.truth = self.truth;
        sys.ctrl.scheme = SchemeState::Steins(SteinsState {
            lincs: old_lincs,
            nv_buffer: old_buffer,
            record_cache: AdrRegion::new(cfg.record_cache_lines),
            draining: false,
        });
        // Reinstall recovered nodes dirty, top level first (§III-G: "all
        // the retrieved nodes will be marked as dirty"). Nodes with a
        // record entry go back into their recorded slot; buffer-replay
        // parents (never recorded) take a free way in their set.
        let mut items: Vec<(u64, SitNode)> = recovered.into_iter().collect();
        items.sort_by_key(|(off, _)| {
            let id = geo.node_at_offset(*off);
            (std::cmp::Reverse(id.level), id.index)
        });
        let sets = cfg.meta_cache.sets();
        let ways = cfg.meta_cache.ways as u64;
        let mut occupied: HashSet<u64> = pinned.values().copied().collect();
        let assigned: Vec<Option<u64>> = items
            .iter()
            .map(|(off, _)| match pinned.get(off) {
                Some(&slot) => Some(slot),
                None => {
                    let set = off % sets;
                    let free = (0..ways)
                        .map(|w| set * ways + w)
                        .find(|f| !occupied.contains(f));
                    if let Some(f) = free {
                        occupied.insert(f);
                    }
                    free
                }
            })
            .collect();
        // Slot-assigned installs must all land before any over-full
        // fallback runs: the evicting install picks its own victim way and
        // would otherwise fill a way that `occupied` reserved for a later
        // pinned install (tripping install_at's occupied-slot assert at
        // small cache sizes). The sort is stable, so top-level-first order
        // is preserved within each class.
        let mut ordered: Vec<((u64, SitNode), Option<u64>)> =
            items.into_iter().zip(assigned).collect();
        ordered.sort_by_key(|(_, slot)| slot.is_none());
        *out = Some(sys);
        let sys = out.as_mut().expect("just parked");
        // The install loop below journals per-lane high-water marks: items
        // partition into `lanes` contiguous regions, and completing item
        // `i` bumps its region's mark slot. Installs are volatile in this
        // phase (a re-run repeats the whole recovery), so the marks are a
        // progress record, not a resume point — but they make every torn
        // mid-rebuild journal a state the multi-lane resume logic accepts,
        // whichever lane count the *next* attempt runs with.
        let n = ordered.len();
        sys.ctrl.journal_write(progress_journal(
            journal::STEINS_REBUILD,
            restarts,
            lanes,
            n,
            0,
        ));
        let total = n as u64;
        for (i, ((off, node), slot)) in ordered.into_iter().enumerate() {
            let id = geo.node_at_offset(off);
            match slot {
                Some(s) => sys.ctrl.meta.install_at(s, off, node, true),
                // Set over-full (a parent landed in a set whose ways were
                // all recorded dirty): fall back to the evicting install.
                None => {
                    sys.ctrl.install_node(0, id, node, true)?;
                }
            }
            sys.ctrl.journal_write(progress_journal(
                journal::STEINS_REBUILD,
                restarts,
                lanes,
                n,
                i + 1,
            ));
        }
        // Rewrite the record region to match the slot assignment.
        sys.ctrl.journal_write(RecoveryJournal::single(
            journal::STEINS_RECORDS,
            0,
            restarts,
        ));
        let slots = cfg.meta_cache.slots();
        let rec_lines = slots.div_ceil(RECORDS_PER_LINE) as usize;
        let mut lines = vec![RecordLine::default(); rec_lines];
        for (slot, offset, _) in sys.ctrl.meta.dirty_nodes() {
            let (rl, e) = record_coords(slot);
            lines[rl as usize].set(e, offset as u32);
        }
        for (r, rl) in lines.iter().enumerate() {
            let addr = sys.ctrl.layout.record_addr(r as u64);
            sys.ctrl.nvm.poke(addr, &rl.to_line());
        }
        // Atomic register switch: recovered LIncs + empty buffer become
        // live in the same persist interval as the DONE journal write.
        if let SchemeState::Steins(st) = &mut sys.ctrl.scheme {
            st.lincs = lincs;
            st.nv_buffer = NvBuffer::new(cfg.nv_buffer_bytes);
        }
        sys.ctrl
            .journal_write(RecoveryJournal::single(journal::DONE, total, restarts));
        sys.ctrl.nvm.reset_stats();
        Ok(())
    }

    // ——————————————————————— ASIT ———————————————————————

    fn recover_asit(
        self,
        out: &mut Option<SecureNvmSystem>,
        prior: RecoveryJournal,
        restarts: u32,
        lanes: usize,
    ) -> Result<RecoveryReport, IntegrityError> {
        let (nv_root, shadow_tags, inflight) = match &self.nv {
            NvState::Asit {
                nv_root,
                shadow_tags,
                inflight,
            } => (*nv_root, shadow_tags.clone(), *inflight),
            _ => unreachable!("asit recovery under asit scheme"),
        };
        let geo = self.layout.geometry.clone();
        let slots = self.cfg.meta_cache.slots();
        let mut rd = Reader::new(&self);
        // Tag reads (8 tags per line, kept beside the table).
        rd.reads += slots.div_ceil(8);
        let mut leaf_macs = vec![0u64; slots as usize];
        let mut slot_lines: Vec<Option<(u64, [u8; 64])>> = vec![None; slots as usize];
        // Read every occupied shadow slot first, then MAC all of their
        // leaf strings in one batch — the whole scan is independent reads,
        // the recovery shape that benefits most from full crypto lanes.
        let mut occupied: Vec<u64> = Vec::new();
        let mut msgs: Vec<[u8; 72]> = Vec::new();
        for slot in 0..slots {
            if let Some(&off) = shadow_tags.get(&slot) {
                let line = rd.line(self.layout.shadow_addr(slot));
                let mut msg = [0u8; 72];
                msg[..64].copy_from_slice(&line);
                msg[64..].copy_from_slice(&slot.to_le_bytes());
                occupied.push(slot);
                msgs.push(msg);
                slot_lines[slot as usize] = Some((off, line));
            }
        }
        let mut macs = vec![0u64; msgs.len()];
        self.crypto.mac64_72_many(&msgs, &mut macs);
        for (slot, mac) in occupied.iter().zip(macs) {
            leaf_macs[*slot as usize] = mac;
        }
        let reads_shadow_scan = rd.reads;
        // The seed for the rebuilt system's cache-tree: the tree over the
        // *durable-consistent* shadow content (post-rollback if the
        // in-flight write tore), with the matching root and — while the torn
        // slot's line is still unrewritten in NVM — the original in-flight
        // pre-image, so a crash during the replay below recovers again.
        let mut seed_root = nv_root;
        let mut seed_inflight = None;
        let (rebuilt, _) = CacheTree::rebuild(self.crypto.as_ref(), &leaf_macs);
        if rebuilt != nv_root {
            // Under 8 B write atomicity the one shadow write that was in
            // flight at the crash may have torn — the registers already hold
            // the post-update root, but NVM holds a mixed line. The ADR
            // staging buffer carries that update's authenticated pre-image:
            // substitute it and require the tree to match the *previous*
            // root. Anything else (no in-flight write, or a mismatch even
            // after rollback) is tampering, not tearing.
            let Some(inf) = inflight else {
                return Err(IntegrityError::CacheTreeMismatch {
                    stored: nv_root,
                    recomputed: rebuilt,
                });
            };
            let old_mac = if inf.prev_tag.is_some() {
                let mut msg = [0u8; 72];
                msg[..64].copy_from_slice(&inf.prev_line);
                msg[64..].copy_from_slice(&inf.slot.to_le_bytes());
                self.crypto.mac64_72(&msg)
            } else {
                0
            };
            let mut prev_macs = leaf_macs.clone();
            prev_macs[inf.slot as usize] = old_mac;
            let (prev_rebuilt, _) = CacheTree::rebuild(self.crypto.as_ref(), &prev_macs);
            if prev_rebuilt != inf.prev_root {
                return Err(IntegrityError::CacheTreeMismatch {
                    stored: nv_root,
                    recomputed: rebuilt,
                });
            }
            // Roll the torn slot back to its pre-image: the interrupted op
            // was never acked, so the pre-state is the correct durable state.
            slot_lines[inf.slot as usize] = inf.prev_tag.map(|off| (off, inf.prev_line));
            leaf_macs = prev_macs;
            seed_root = inf.prev_root;
            seed_inflight = Some(inf);
        }
        let mut entries: Vec<(u64, u64, SitNode)> = Vec::new();
        for (slot, sl) in slot_lines.iter().enumerate() {
            if let Some((off, line)) = sl {
                let id = geo.node_at_offset(*off);
                entries.push((slot as u64, *off, parse_node(self.cfg.mode, id, line)));
            }
        }
        // Torn-write reconciliation: within one write op the shadow push
        // persists before the data line + MacRecord push, so a crash in
        // between leaves a slot whose shadow counter runs exactly one
        // increment ahead of the data plane (the op was never acked).
        // Rebuild each leaf from the MacRecords — the data-consistent truth,
        // with every data block's HMAC verified — and reject any divergence
        // outside that one-ahead window as replay/tampering. The reconciled
        // leaf is installed dirty; the replayed slot update below re-syncs
        // its shadow copy and the cache-tree.
        for (_, off, node) in entries.iter_mut() {
            let id = geo.node_at_offset(*off);
            if id.level != 0 {
                continue;
            }
            let reconciled = self.recover_leaf(&mut rd.reads, id, node)?;
            let shadow = node.counters.as_general();
            let data = reconciled.counters.as_general();
            for j in 0..geo.data_of_leaf(id).len() {
                let (s, d) = (shadow.get(j), data.get(j));
                if s != d && s != d + 1 {
                    return Err(IntegrityError::NodeMac { node: id });
                }
            }
            *node = reconciled;
        }
        let reads = rd.reads;
        let nodes = entries.len();
        let mut per_level = vec![0usize; geo.levels()];
        for (_, off, _) in &entries {
            per_level[geo.node_at_offset(*off).level] += 1;
        }
        let metrics = recovery_metrics(
            &[
                ("shadow_scan", reads_shadow_scan),
                ("reconcile", reads - reads_shadow_scan),
            ],
            reads,
            nodes,
            &per_level,
            prior,
            restarts,
        );

        let cfg = self.cfg.clone();
        let read_ns = cfg.recovery_read_ns;
        let mut sys = SecureNvmSystem::new(cfg);
        // Seed the scheme state from the verified durable image instead of
        // starting empty: the tags, tree and root already describe what is
        // in NVM, so every boundary inside the replay below is a state this
        // same recovery procedure accepts — the replay is re-entrant.
        let seeded = CacheTree::from_leaves(self.crypto.as_ref(), &leaf_macs);
        debug_assert_eq!(seeded.root(), seed_root, "seed tree must match root");
        let tags: HashMap<u64, u64> = entries.iter().map(|(s, off, _)| (*s, *off)).collect();
        sys.ctrl.scheme = SchemeState::Asit(AsitState {
            cache_tree: seeded,
            nv_root: seed_root,
            shadow_tags: tags,
            inflight: seed_inflight,
        });
        sys.ctrl.nvm = self.nvm;
        sys.ctrl.root = self.root;
        sys.truth = self.truth;
        *out = Some(sys);
        let sys = out.as_mut().expect("just parked");
        // Install every shadow copy as dirty (home copies may be stale) in
        // its *original* slot, and replay the slot updates so the shadow
        // table and cache-tree converge on the reconciled content. Each
        // update is the normal runtime sequence (stage pre-image → update
        // registers → push shadow line), so a crash at any point inside it
        // is recoverable like a runtime crash. The journal tracks progress
        // in per-lane mark slots (lane = the item's contiguous region);
        // every boundary is runtime-consistent, so the marks are a progress
        // record for diagnostics, not a resume point.
        let mut items = entries;
        items.sort_by_key(|(_, off, _)| {
            let id = geo.node_at_offset(*off);
            (std::cmp::Reverse(id.level), id.index)
        });
        let n = items.len();
        sys.ctrl.journal_write(progress_journal(
            journal::ASIT_REPLAY,
            restarts,
            lanes,
            n,
            0,
        ));
        let total = n as u64;
        for (i, (slot, off, node)) in items.into_iter().enumerate() {
            sys.ctrl.meta.install_at(slot, off, node, true);
            sys.ctrl.asit_slot_update(0, off);
            sys.ctrl.journal_write(progress_journal(
                journal::ASIT_REPLAY,
                restarts,
                lanes,
                n,
                i + 1,
            ));
        }
        sys.ctrl
            .journal_write(RecoveryJournal::single(journal::DONE, total, restarts));
        sys.ctrl.nvm.reset_stats();
        let est_seconds = reads as f64 * read_ns * 1e-9;
        Ok(RecoveryReport {
            scheme: "ASIT".into(),
            nvm_reads: reads,
            nodes_recovered: nodes,
            per_level,
            est_seconds,
            metrics,
        })
    }

    // ——————————————————————— STAR ———————————————————————

    fn recover_star(
        self,
        out: &mut Option<SecureNvmSystem>,
        prior: RecoveryJournal,
        restarts: u32,
        lanes: usize,
    ) -> Result<RecoveryReport, IntegrityError> {
        let nv_root = match &self.nv {
            NvState::Star { nv_root } => *nv_root,
            _ => unreachable!("star recovery under star scheme"),
        };
        let geo = self.layout.geometry.clone();
        let mut reads = 0u64;

        // 1. Read the dirty bitmap.
        let total = geo.total_nodes();
        let bitmap_lines = total.div_ceil(8).div_ceil(64);
        let mut dirty: BTreeSet<u64> = BTreeSet::new();
        for l in 0..bitmap_lines {
            reads += 1;
            let line = self.nvm.peek(self.layout.bitmap_base + l * 64);
            for (byte_idx, byte) in line.iter().enumerate() {
                if *byte == 0 {
                    continue;
                }
                for bit in 0..8 {
                    if byte & (1 << bit) != 0 {
                        let off = l * 512 + byte_idx as u64 * 8 + bit;
                        if off < total {
                            dirty.insert(off);
                        }
                    }
                }
            }
        }

        let reads_bitmap_scan = reads;

        // 2. Top-down reconstruction from child-carried counter LSBs.
        let mut by_level: Vec<Vec<u64>> = vec![Vec::new(); geo.levels()];
        for off in &dirty {
            by_level[geo.node_at_offset(*off).level].push(*off);
        }
        let mut recovered: HashMap<u64, SitNode> = HashMap::new();
        for k in (0..geo.levels()).rev() {
            for &off in &by_level[k] {
                let id = geo.node_at_offset(off);
                reads += 1;
                let stale = parse_node(
                    self.cfg.mode,
                    id,
                    &self.nvm.peek(self.layout.node_addr(off)),
                );
                let rec = if k >= 1 {
                    let mut g = *stale.counters.as_general();
                    for (j, cid) in geo.children_of(id).into_iter().enumerate() {
                        let coff = geo.offset_of(cid);
                        reads += 1;
                        let child = parse_node(
                            self.cfg.mode,
                            cid,
                            &self.nvm.peek(self.layout.node_addr(coff)),
                        );
                        if is_zero_node(&child) {
                            continue;
                        }
                        let (_, lsbs) = star::unpack_hmac(child.hmac);
                        let rc = star::reconstruct_counter(g.get(j), lsbs);
                        self.check_node(&child, cid, rc)?;
                        g.set(j, rc);
                    }
                    SitNode {
                        counters: CounterBlock::General(g),
                        hmac: stale.hmac,
                    }
                } else {
                    self.recover_leaf(&mut reads, id, &stale)?
                };
                recovered.insert(off, rec);
            }
        }

        // Canonical install order, shared by first runs and restarts: the
        // rebuild below regrows the cache-tree register one item at a time
        // in exactly this order, bumping the journal high-water mark after
        // each item.
        let mut items: Vec<(u64, SitNode)> = recovered.iter().map(|(o, n)| (*o, *n)).collect();
        items.sort_by_key(|(off, _)| {
            let id = geo.node_at_offset(*off);
            (std::cmp::Reverse(id.level), id.index)
        });

        // 3. Verify the cache-tree register (per-set sorted MACs, exactly as
        //    maintained at runtime). A completed run's register covers every
        //    recovered node; an *interrupted rebuild's* register covers
        //    exactly the items its journal marks record — the journal write
        //    is the only persist boundary in the rebuild loop and always
        //    follows the register update for the same item. A legacy
        //    journal proves a canonical prefix; a laned journal proves the
        //    union of each lane-region's completed prefix
        //    ([`journal_cover`]) — the prior attempt's lane count decides
        //    the partition, whatever this attempt runs with.
        let cover = if prior.phase == journal::STAR_REBUILD {
            journal_cover(&prior, items.len())
        } else {
            vec![true; items.len()]
        };
        let sets = self.cfg.meta_cache.sets();
        let mut leaf_macs = vec![0u64; sets as usize];
        // Build every occupied set's MAC message, then present the set MACs
        // to the engine as one batch (messages are variable-length; sets of
        // equal occupancy still share lanes).
        let mut occupied_sets: Vec<u64> = Vec::new();
        let mut set_msgs: Vec<Vec<u8>> = Vec::new();
        for set in 0..sets {
            let mut in_set: Vec<(u64, &SitNode)> = items
                .iter()
                .zip(&cover)
                .filter(|((off, _), c)| **c && *off % sets == set)
                .map(|((off, n), _)| (*off, n))
                .collect();
            if in_set.is_empty() {
                continue;
            }
            in_set.sort_by_key(|(off, _)| *off);
            let mut msg = Vec::with_capacity(in_set.len() * 72);
            for (off, n) in &in_set {
                // The runtime set-MAC zeroes the HMAC field (it changes at
                // flush without the counters changing); mirror that here.
                let mut m = **n;
                m.hmac = 0;
                msg.extend_from_slice(&off.to_le_bytes());
                msg.extend_from_slice(&m.to_line());
            }
            occupied_sets.push(set);
            set_msgs.push(msg);
        }
        let refs: Vec<&[u8]> = set_msgs.iter().map(|m| m.as_slice()).collect();
        let mut macs = vec![0u64; refs.len()];
        self.crypto.mac64_many(&refs, &mut macs);
        for (set, mac) in occupied_sets.iter().zip(macs) {
            leaf_macs[*set as usize] = mac;
        }
        let (rebuilt, _) = CacheTree::rebuild(self.crypto.as_ref(), &leaf_macs);
        if rebuilt != nv_root {
            return Err(IntegrityError::CacheTreeMismatch {
                stored: nv_root,
                recomputed: rebuilt,
            });
        }

        let nodes = recovered.len();
        let per_level: Vec<usize> = by_level.iter().map(|v| v.len()).collect();
        let metrics = recovery_metrics(
            &[
                ("bitmap_scan", reads_bitmap_scan),
                ("rebuild", reads - reads_bitmap_scan),
            ],
            reads,
            nodes,
            &per_level,
            prior,
            restarts,
        );
        let cfg = self.cfg.clone();
        let read_ns = cfg.recovery_read_ns;
        let mut sys = SecureNvmSystem::new(cfg);
        sys.ctrl.nvm = self.nvm;
        sys.ctrl.root = self.root;
        sys.truth = self.truth;
        *out = Some(sys);
        let sys = out.as_mut().expect("just parked");
        let n = items.len();
        sys.ctrl.journal_write(progress_journal(
            journal::STAR_REBUILD,
            restarts,
            lanes,
            n,
            0,
        ));
        // Reinstall in canonical order, refreshing the register after every
        // item: the durable bitmap, node lines and data plane are untouched,
        // so a crash here re-derives the same `recovered` set, and the
        // cover rule above re-verifies the partially-regrown register off
        // the journal marks. Every dirty set was fully resident at crash
        // time, so no install can overflow its set (no evictions, no
        // durable node writes).
        let total = n as u64;
        for (i, (off, node)) in items.into_iter().enumerate() {
            let id = geo.node_at_offset(off);
            sys.ctrl.install_node(0, id, node, true)?;
            let set = sys.ctrl.meta.set_index(off);
            sys.ctrl.star_tree_update(0, set);
            sys.ctrl.journal_write(progress_journal(
                journal::STAR_REBUILD,
                restarts,
                lanes,
                n,
                i + 1,
            ));
        }
        sys.ctrl
            .journal_write(RecoveryJournal::single(journal::DONE, total, restarts));
        sys.ctrl.nvm.reset_stats();
        let est_seconds = reads as f64 * read_ns * 1e-9;
        Ok(RecoveryReport {
            scheme: "STAR".into(),
            nvm_reads: reads,
            nodes_recovered: nodes,
            per_level,
            est_seconds,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use steins_metadata::CounterMode;

    fn exercise(scheme: SchemeKind, mode: CounterMode) -> (SecureNvmSystem, Vec<(u64, [u8; 64])>) {
        let cfg = SystemConfig::small_for_tests(scheme, mode);
        let mut sys = SecureNvmSystem::new(cfg);
        let mut expected = Vec::new();
        for i in 0..300u64 {
            let addr = (i * 13 % 512) * 64;
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&i.to_le_bytes());
            sys.write(addr, &data).unwrap();
            expected.retain(|(a, _)| *a != addr);
            expected.push((addr, data));
        }
        (sys, expected)
    }

    fn crash_recover_check(scheme: SchemeKind, mode: CounterMode) {
        let (sys, expected) = exercise(scheme, mode);
        let crashed = sys.crash();
        let (mut recovered, report) = crashed.recover().expect("recovery verifies");
        assert!(report.nvm_reads > 0);
        assert!(report.est_seconds > 0.0);
        for (addr, data) in expected {
            assert_eq!(
                recovered.read(addr).unwrap(),
                data,
                "{scheme:?}/{mode:?}: data at {addr:#x} after recovery"
            );
        }
    }

    #[test]
    fn steins_gc_crash_recover() {
        crash_recover_check(SchemeKind::Steins, CounterMode::General);
    }

    #[test]
    fn steins_sc_crash_recover() {
        crash_recover_check(SchemeKind::Steins, CounterMode::Split);
    }

    #[test]
    fn asit_crash_recover() {
        crash_recover_check(SchemeKind::Asit, CounterMode::General);
    }

    #[test]
    fn star_crash_recover() {
        crash_recover_check(SchemeKind::Star, CounterMode::General);
    }

    #[test]
    fn steins_rebuild_with_overfull_sets() {
        // Regression for the Fig. 17 small-cache panic: stride one flushed
        // write across each leaf's coverage so (nearly) every cache slot
        // holds a recorded dirty node, plus buffer-replay parents that were
        // never recorded. Some sets then have more recovered nodes than
        // ways, and the rebuild's evicting fallback must not steal a way
        // reserved for a later slot-pinned install ("install_at into
        // occupied slot N").
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let coverage = CounterMode::General.leaf_coverage();
        let writes = cfg.meta_cache.slots() * 3 / 2;
        assert!(
            writes * coverage <= cfg.data_lines,
            "stride fits data region"
        );
        let mut sys = SecureNvmSystem::new(cfg);
        let mut expected = Vec::new();
        for i in 0..writes {
            let addr = i * coverage * 64;
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&i.to_le_bytes());
            sys.write(addr, &data).unwrap();
            expected.push((addr, data));
        }
        let (mut recovered, report) = sys.crash().recover().expect("recovery verifies");
        assert!(report.nvm_reads > 0);
        for (addr, data) in expected {
            assert_eq!(recovered.read(addr).unwrap(), data, "addr {addr:#x}");
        }
    }

    #[test]
    fn osiris_leaf_recovery_roundtrip() {
        use crate::config::LeafRecovery;
        let mut cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        cfg.leaf_recovery = LeafRecovery::OsirisProbe { window: 8 };
        let mut sys = SecureNvmSystem::new(cfg);
        let mut expected = Vec::new();
        for i in 0..250u64 {
            // Hot lines so counters advance several times between flushes.
            let addr = (i % 40) * 64;
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&i.to_le_bytes());
            sys.write(addr, &data).unwrap();
            expected.retain(|(a, _)| *a != addr);
            expected.push((addr, data));
        }
        let (mut recovered, report) = sys.crash().recover().expect("osiris recovery verifies");
        assert!(report.nvm_reads > 0);
        for (addr, data) in expected {
            assert_eq!(recovered.read(addr).unwrap(), data, "addr {addr:#x}");
        }
    }

    #[test]
    fn osiris_tampered_data_fails_probe() {
        use crate::config::LeafRecovery;
        let mut cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        cfg.leaf_recovery = LeafRecovery::OsirisProbe { window: 8 };
        let mut sys = SecureNvmSystem::new(cfg);
        for i in 0..100u64 {
            sys.write((i % 30) * 64, &[i as u8; 64]).unwrap();
        }
        let mut crashed = sys.crash();
        crashed.tamper_data(3);
        assert!(
            crashed.recover().is_err(),
            "no probed counter may authenticate tampered data"
        );
    }

    #[test]
    fn wb_cannot_recover() {
        let (sys, _) = exercise(SchemeKind::WriteBack, CounterMode::General);
        assert_eq!(
            sys.crash().recover().err().map(|e| e.to_string()),
            Some(IntegrityError::RecoveryUnsupported.to_string())
        );
    }

    #[test]
    fn recovered_system_keeps_working_and_recovers_again() {
        let (sys, _) = exercise(SchemeKind::Steins, CounterMode::Split);
        let (mut recovered, _) = sys.crash().recover().unwrap();
        // Keep writing, crash again, recover again.
        for i in 0..200u64 {
            recovered.write((i % 128) * 64, &[i as u8; 64]).unwrap();
        }
        let stored = recovered.ctrl.lincs().unwrap();
        let expect = recovered.ctrl.recompute_lincs().unwrap();
        assert_eq!(stored, expect, "LInc invariant survives recovery");
        let (mut again, _) = recovered.crash().recover().expect("second recovery");
        // Line 0 was last written with value 128 (i = 128 ⇒ 128 % 128 == 0)…
        // writes above go i ∈ [0,200), so line 0 saw i = 0 and i = 128.
        assert_eq!(again.read(0).unwrap(), [128u8; 64]);
    }

    #[test]
    fn journal_cover_legacy_is_a_prefix() {
        let j = RecoveryJournal::single(journal::STAR_REBUILD, 3, 0);
        assert_eq!(
            journal_cover(&j, 5),
            vec![true, true, true, false, false],
            "legacy hwm covers a canonical prefix"
        );
        // Overlong hwm saturates.
        let j = RecoveryJournal::single(journal::STAR_REBUILD, 99, 0);
        assert_eq!(journal_cover(&j, 3), vec![true; 3]);
    }

    #[test]
    fn journal_cover_laned_is_a_union_of_region_prefixes() {
        // 10 items, 4 lanes → regions of 3: [0,3) [3,6) [6,9) [9,10).
        let mut marks = [0u64; steins_nvm::RECOVERY_LANES];
        marks[0] = 3; // region 0 complete
        marks[1] = 1; // region 1: first item only
        marks[3] = 1; // region 3 complete (out-of-order vs region 2 — a
                      // state only true parallel interleaving reaches)
        let j = RecoveryJournal::laned(journal::STAR_REBUILD, 0, 4, marks);
        let cover = journal_cover(&j, 10);
        let want = [
            true, true, true, // region 0
            true, false, false, // region 1 prefix
            false, false, false, // region 2 untouched
            true,  // region 3
        ];
        assert_eq!(cover, want);
    }

    #[test]
    fn progress_journal_layouts_agree_on_totals() {
        // One lane: byte-identical to the single-threaded-era journal.
        assert_eq!(
            progress_journal(journal::STEINS_REBUILD, 2, 1, 10, 7),
            RecoveryJournal::single(journal::STEINS_REBUILD, 7, 2)
        );
        // Multi-lane: marks staircase over the regions, hwm = sum.
        for lanes in 2..=8usize {
            for n in [0usize, 1, 5, 10, 64] {
                for done in 0..=n {
                    let j = progress_journal(journal::ASIT_REPLAY, 0, lanes, n, done);
                    assert_eq!(j.lanes as usize, lanes);
                    assert_eq!(j.hwm, done as u64, "lanes={lanes} n={n} done={done}");
                    assert_eq!(j.progress(), done as u64);
                    // The cover of a staircase journal is exactly the
                    // canonical prefix the sequential loop completed.
                    let cover = journal_cover(&j, n);
                    assert_eq!(
                        cover.iter().filter(|c| **c).count(),
                        done,
                        "cover size matches"
                    );
                    assert!(cover[..done].iter().all(|c| *c), "cover is the prefix");
                }
            }
        }
    }

    #[test]
    fn lane_count_does_not_change_recovery_results() {
        // The workers=1 vs workers=4 determinism contract at unit scale:
        // same crash image, different lane counts, identical reports
        // (metrics included) and identical recovered reads.
        for scheme in [SchemeKind::Steins, SchemeKind::Asit, SchemeKind::Star] {
            let (sys, expected) = exercise(scheme, CounterMode::General);
            let crashed1 = sys.crash().with_recovery_lanes(1);
            let (mut rec1, rep1) = crashed1.recover().expect("lanes=1 recovers");
            let (sys4, _) = exercise(scheme, CounterMode::General);
            let crashed4 = sys4.crash().with_recovery_lanes(4);
            let (mut rec4, rep4) = crashed4.recover().expect("lanes=4 recovers");
            assert_eq!(rep1.nvm_reads, rep4.nvm_reads, "{scheme:?}");
            assert_eq!(
                rep1.metrics.to_json_deterministic().pretty(),
                rep4.metrics.to_json_deterministic().pretty(),
                "{scheme:?}: metrics must be lane-count-invariant"
            );
            assert_eq!(
                rec1.ctrl.nvm.recovery_journal(),
                rec4.ctrl.nvm.recovery_journal(),
                "{scheme:?}: terminal journal is layout-free"
            );
            for (addr, data) in expected {
                assert_eq!(rec1.read(addr).unwrap(), data);
                assert_eq!(rec4.read(addr).unwrap(), data);
            }
        }
    }
}
