//! Run metrics — the raw series behind every figure of §IV.

use steins_nvm::{EnergyCounters, EnergyModel, NvmStats};
use steins_obs::{Histogram, MetricRegistry};

/// Arrival→completion latency accumulator: running mean plus the full
/// log-bucketed distribution (the paper argues through averages; the
/// observability layer adds the tail).
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Completed operations.
    pub count: u64,
    /// Summed latency in cycles.
    pub total_cycles: u64,
    /// Per-operation latency distribution.
    pub hist: Histogram,
}

impl LatencyStats {
    /// Records one operation spanning `[arrival, done]`.
    pub fn record(&mut self, arrival: u64, done: u64) {
        debug_assert!(done >= arrival);
        self.count += 1;
        self.total_cycles += done - arrival;
        self.hist.record(done - arrival);
    }

    /// Mean latency in cycles (0 when empty).
    pub fn avg(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }
}

/// Everything a figure needs from one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheme-and-mode label ("Steins-SC", "WB-GC", …).
    pub label: String,
    /// Execution time in cycles (Figs. 9, 12).
    pub cycles: u64,
    /// Execution time in seconds at the configured clock.
    pub seconds: f64,
    /// Instructions retired.
    pub instructions: u64,
    /// Mean MC write latency, cycles (Fig. 10): writeback arrival →
    /// data + metadata path complete.
    pub write_latency: f64,
    /// Mean MC read latency, cycles (Fig. 11): fill arrival → verified data.
    pub read_latency: f64,
    /// NVM device statistics (Figs. 13, 14 use `writes`).
    pub nvm: NvmStats,
    /// Crypto/cache event counters.
    pub energy_events: EnergyCounters,
    /// Total energy, picojoules (Figs. 15, 16).
    pub energy_pj: f64,
    /// Metadata cache hits and misses.
    pub meta_hits: u64,
    /// Metadata cache misses.
    pub meta_misses: u64,
    /// Cycles the core spent stalled on reads.
    pub read_stall_cycles: u64,
    /// Cycles the core spent stalled on the write path.
    pub write_stall_cycles: u64,
    /// Per-op MC read-latency distribution (same series as `read_latency`).
    pub read_hist: Histogram,
    /// Per-op MC write-latency distribution (same series as
    /// `write_latency`).
    pub write_hist: Histogram,
    /// Full component-path metric registry (`nvm.`, `cache.`, `meta.`,
    /// `core.` subtrees) — the source of `results/METRICS_*.json`.
    pub metrics: MetricRegistry,
}

impl RunReport {
    /// Recomputes `energy_pj` under a different energy model (ablations).
    pub fn energy_under(&self, model: &EnergyModel) -> f64 {
        self.energy_events.total_pj(model)
    }

    /// Write traffic in bytes.
    pub fn write_traffic(&self) -> u64 {
        self.nvm.write_traffic_bytes()
    }

    /// Metadata cache hit rate.
    pub fn meta_hit_rate(&self) -> f64 {
        let total = self.meta_hits + self.meta_misses;
        if total == 0 {
            0.0
        } else {
            self.meta_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_average() {
        let mut s = LatencyStats::default();
        s.record(10, 20);
        s.record(0, 30);
        assert_eq!(s.count, 2);
        assert!((s.avg() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_latency_is_zero() {
        assert_eq!(LatencyStats::default().avg(), 0.0);
    }
}
