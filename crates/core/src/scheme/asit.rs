//! ASIT (Anubis for SGX Integrity Trees) runtime state.
//!
//! ASIT mirrors every metadata-cache line into a **shadow table** in NVM —
//! one 64 B entry per cache slot, written on install and on every
//! modification (the 2× write traffic of Fig. 13) — and verifies recovery
//! through a 4-level **cache-tree** whose leaves MAC each cache slot's
//! content (the serial HMAC chains behind ASIT's Fig. 9/10 slowdowns).

use crate::cachetree::CacheTree;
use std::collections::HashMap;
use steins_crypto::CryptoEngine;

/// The in-flight shadow update staged in the controller's ADR domain.
///
/// The cache-tree registers are updated *before* the shadow-line write (so
/// they ride its persist event atomically), which under whole-line-atomic
/// writes was sufficient. Under 8 B write atomicity the shadow line itself
/// can tear: the registers then hold the new root while NVM holds a torn
/// mix. The staging buffer keeps the outgoing update's **pre-image** — the
/// slot, the previous root, the previous tag, and the previous durable line
/// content — until the write-queue accepts the line (entries are durable at
/// acceptance). Recovery uses it to fall back to the authenticated pre-state
/// when the rebuilt root does not match; a clean shutdown leaves it `None`,
/// so tampering detection is unchanged when no write was in flight.
#[derive(Clone, Copy, Debug)]
pub struct AsitInflight {
    /// The cache slot whose shadow write was in flight.
    pub slot: u64,
    /// The NV root before this update was registered.
    pub prev_root: u64,
    /// The slot's tag before the update (`None`: slot was unoccupied).
    pub prev_tag: Option<u64>,
    /// The slot's durable shadow-line content before the update.
    pub prev_line: [u8; 64],
}

/// Mutable ASIT state.
pub struct AsitState {
    /// Cache-tree over cache slots (intermediate levels volatile, root in an
    /// NV register).
    pub cache_tree: CacheTree,
    /// The NV-register copy of the cache-tree root (survives crashes).
    pub nv_root: u64,
    /// Which node offset each shadow-table slot currently mirrors. Real
    /// hardware keeps these tags in the shadow entries' spare/ECC bits; they
    /// are non-volatile alongside the table itself.
    pub shadow_tags: HashMap<u64, u64>,
    /// Pre-image of the shadow update currently in flight (ADR domain:
    /// survives a crash, cleared once the write queue accepts the line).
    pub inflight: Option<AsitInflight>,
}

impl AsitState {
    /// Fresh state for a metadata cache with `slots` lines.
    pub fn new(engine: &dyn CryptoEngine, slots: usize) -> Self {
        let cache_tree = CacheTree::new(engine, slots);
        let nv_root = cache_tree.root();
        AsitState {
            cache_tree,
            nv_root,
            shadow_tags: HashMap::new(),
            inflight: None,
        }
    }

    /// Commits the current cache-tree root to the NV register.
    pub fn commit_root(&mut self) {
        self.nv_root = self.cache_tree.root();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_crypto::{engine::make_engine, CryptoKind, SecretKey};

    #[test]
    fn commit_tracks_tree() {
        let e = make_engine(CryptoKind::Fast, SecretKey([1; 16]));
        let mut s = AsitState::new(e.as_ref(), 64);
        s.cache_tree.update(e.as_ref(), 3, 99);
        assert_ne!(s.nv_root, s.cache_tree.root());
        s.commit_root();
        assert_eq!(s.nv_root, s.cache_tree.root());
    }
}
