//! Per-scheme runtime state.
//!
//! The engine owns one [`SchemeState`] and invokes it at three points:
//! node **installation** (fetch into the metadata cache), node
//! **modification** (any counter change of a cached node), and dirty node
//! **eviction** (flush to NVM). What each scheme does at those points — and
//! what it therefore pays at runtime — is the entire subject of the paper's
//! Figs. 9–16:
//!
//! | scheme | install | modification | eviction |
//! |--------|---------|--------------|----------|
//! | WB     | —       | —            | parent read on critical path |
//! | ASIT   | shadow write + cache-tree path | shadow write + cache-tree path | parent read + cache-tree |
//! | STAR   | —       | set-sort + cache-tree path; bitmap on clean→dirty | parent read + bitmap on dirty→clean + cache-tree |
//! | Steins | —       | record line on clean→dirty only; LInc add | generated counter (no parent read); NV buffer on parent miss; LInc transfer |

pub mod asit;
pub mod star;
pub mod steins;

pub use asit::AsitState;
pub use star::StarState;
pub use steins::SteinsState;

/// Scheme-specific mutable state held by the controller.
pub enum SchemeState {
    /// Write-back baseline: nothing extra.
    WriteBack,
    /// Anubis/ASIT.
    Asit(AsitState),
    /// STAR.
    Star(StarState),
    /// Steins.
    Steins(SteinsState),
}

impl SchemeState {
    /// Steins state accessor (panics if another scheme is active — engine
    /// call sites are scheme-gated).
    pub fn steins(&mut self) -> &mut SteinsState {
        match self {
            SchemeState::Steins(s) => s,
            _ => panic!("not running Steins"),
        }
    }

    /// Immutable Steins accessor.
    pub fn steins_ref(&self) -> &SteinsState {
        match self {
            SchemeState::Steins(s) => s,
            _ => panic!("not running Steins"),
        }
    }

    /// ASIT accessor.
    pub fn asit(&mut self) -> &mut AsitState {
        match self {
            SchemeState::Asit(s) => s,
            _ => panic!("not running ASIT"),
        }
    }

    /// STAR accessor.
    pub fn star(&mut self) -> &mut StarState {
        match self {
            SchemeState::Star(s) => s,
            _ => panic!("not running STAR"),
        }
    }
}
