//! STAR runtime state.
//!
//! STAR tracks dirty nodes in a multi-layer **bitmap** (updated on both
//! clean→dirty *and* dirty→clean transitions — twice Steins' record
//! traffic) and verifies recovery through a cache-tree whose leaves are
//! per-set MACs over the set's dirty nodes **sorted by address** (the
//! sorting cost §II-D calls out). Parent-counter LSBs ride in the child
//! node's HMAC field — here 16 LSBs beside a 48-bit MAC, so a stale parent
//! counter can be reconstructed from children at recovery as long as it
//! advanced < 2^16 between its own flushes (amply true: a metadata cache
//! holds thousands of nodes, not tens of thousands of evictions of one
//! child between parent evictions).

use crate::cachetree::CacheTree;
use steins_crypto::CryptoEngine;
use steins_nvm::AdrRegion;

/// Mask selecting the 48-bit MAC portion of a STAR node's `hmac` field.
pub const STAR_MAC_MASK: u64 = (1 << 48) - 1;

/// Packs a 48-bit MAC and the parent counter's low 16 bits into the node's
/// 64-bit HMAC field.
pub fn pack_hmac(mac: u64, parent_counter: u64) -> u64 {
    (mac & STAR_MAC_MASK) | ((parent_counter & 0xFFFF) << 48)
}

/// Extracts `(mac48, parent_lsbs)` from the packed field.
pub fn unpack_hmac(field: u64) -> (u64, u16) {
    (field & STAR_MAC_MASK, (field >> 48) as u16)
}

/// Reconstructs a full parent counter from its stale value and the 16 LSBs
/// a child carried: keep the stale high bits, splice the LSBs, bump by 2^16
/// if that went backwards (the counter advanced past an LSB wrap).
pub fn reconstruct_counter(stale: u64, lsbs: u16) -> u64 {
    let candidate = (stale & !0xFFFF) | u64::from(lsbs);
    if candidate < stale {
        candidate + 0x1_0000
    } else {
        candidate
    }
}

/// Mutable STAR state.
pub struct StarState {
    /// Cache-tree over metadata-cache *sets* (leaves = set-MACs of sorted
    /// dirty nodes).
    pub cache_tree: CacheTree,
    /// NV-register copy of the root.
    pub nv_root: u64,
    /// Bitmap lines cached in the controller (ADR-domain; evictions write
    /// back to the bitmap region).
    pub bitmap_cache: AdrRegion,
}

impl StarState {
    /// Fresh state for a cache with `sets` sets.
    pub fn new(engine: &dyn CryptoEngine, sets: usize, bitmap_cache_lines: usize) -> Self {
        let cache_tree = CacheTree::new(engine, sets);
        let nv_root = cache_tree.root();
        StarState {
            cache_tree,
            nv_root,
            bitmap_cache: AdrRegion::new(bitmap_cache_lines),
        }
    }

    /// Commits the cache-tree root to the NV register.
    pub fn commit_root(&mut self) {
        self.nv_root = self.cache_tree.root();
    }

    /// Approximate cycles an in-set address sort costs (a small sorting
    /// network; §II-D: "STAR needs to sort the dirty nodes in the same set
    /// by the addresses").
    pub fn sort_latency(ways: usize) -> u64 {
        // Batcher network depth ≈ log²(n) stages of compare-exchange.
        let n = ways.max(2) as u64;
        let log = 64 - n.leading_zeros() as u64;
        log * log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmac_packing_roundtrip() {
        let (mac, lsbs) = unpack_hmac(pack_hmac(0x0000_FFFF_FFFF_FFFF, 0x3_1A35));
        assert_eq!(mac, 0x0000_FFFF_FFFF_FFFF);
        assert_eq!(lsbs, 0x1A35);
    }

    #[test]
    fn counter_reconstruction() {
        // No wrap: stale 0x10005, child saw 0x10007.
        assert_eq!(reconstruct_counter(0x10005, 0x0007), 0x10007);
        // Wrap: stale 0x1FFFE, child saw 0x20003.
        assert_eq!(reconstruct_counter(0x1FFFE, 0x0003), 0x20003);
        // Equal: stale exact.
        assert_eq!(reconstruct_counter(0x42, 0x42), 0x42);
    }

    #[test]
    fn sort_latency_grows_with_ways() {
        assert!(StarState::sort_latency(16) > StarState::sort_latency(8));
        assert!(StarState::sort_latency(8) > 0);
    }
}
