//! Steins' runtime state: LIncs, NV buffer, and the ADR record-line cache.

use crate::linc::LincBank;
use crate::nvbuffer::NvBuffer;
use steins_metadata::records::{record_coords, RecordLine};
use steins_nvm::AdrRegion;

/// Mutable Steins state (§III).
pub struct SteinsState {
    /// Per-level trust bases (on-chip NV register, §III-D).
    pub lincs: LincBank,
    /// Parked parent-counter updates (on-chip NV buffer, §III-E).
    pub nv_buffer: NvBuffer,
    /// Record lines cached in the memory controller, inside the ADR domain
    /// (§III-C); evictions write back to the record region in NVM.
    pub record_cache: AdrRegion,
    /// Re-entrancy guard: evictions triggered *while draining* the NV buffer
    /// fall back to inline parent fetches instead of re-parking.
    pub draining: bool,
}

impl SteinsState {
    /// Fresh state for a tree with `levels` NVM levels.
    pub fn new(levels: usize, nv_buffer_bytes: usize, record_cache_lines: usize) -> Self {
        SteinsState {
            lincs: LincBank::new(levels),
            nv_buffer: NvBuffer::new(nv_buffer_bytes),
            record_cache: AdrRegion::new(record_cache_lines),
            draining: false,
        }
    }

    /// The newest parked generated-counter for `child_offset`. Entries stay
    /// in the (non-volatile) buffer until fully applied, so a mid-drain
    /// lookup still sees them.
    pub fn parked_generated(&self, child_offset: u64) -> Option<u64> {
        self.nv_buffer
            .entries()
            .iter()
            .filter(|e| e.child_offset == child_offset)
            .map(|e| e.generated)
            .max()
    }

    /// Updates the record entry for metadata-cache slot `cache_slot` to
    /// point at `node_offset`, operating on the cached record line.
    /// The caller must have ensured the record line at `record_addr` is
    /// resident (fetching it from NVM on miss).
    pub fn set_record(&mut self, record_addr: u64, cache_slot: u64, node_offset: u64) {
        let (_, entry) = record_coords(cache_slot);
        let line = self
            .record_cache
            .get_mut(record_addr)
            .expect("record line resident");
        let mut rl = RecordLine::from_line(line);
        rl.set(entry, node_offset as u32);
        *line = rl.to_line();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steins_metadata::records::RECORDS_PER_LINE;

    #[test]
    fn set_record_updates_the_right_entry() {
        let mut s = SteinsState::new(4, 128, 2);
        // Pretend the record line for slots 0..16 lives at address 0x1000
        // and was fetched (all-empty).
        s.record_cache
            .insert(0x1000, RecordLine::default().to_line());
        s.set_record(0x1000, 5, 777);
        let rl = RecordLine::from_line(s.record_cache.get(0x1000).unwrap());
        assert_eq!(rl.get(5), Some(777));
        assert_eq!(rl.get(4), None);
        assert_eq!(RECORDS_PER_LINE, 16);
    }
}
