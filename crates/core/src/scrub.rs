//! Lenient recovery: the integrity **scrub** (fault-model hardening).
//!
//! Strict [`CrashedSystem::recover`] is fail-stop: any MAC/LInc/root
//! mismatch aborts recovery with the precise [`crate::IntegrityError`] — the right
//! behaviour against an *attacker*, but unhelpful against *media faults*
//! and torn writes, where the operator wants every salvageable byte back
//! plus an honest damage report. [`CrashedSystem::recover_lenient`] is the
//! other mode: it never panics on an arbitrarily corrupted NVM image,
//! classifies every region, and rebuilds a fully consistent machine from
//! the data plane outward.
//!
//! The scrub is a **full re-initialization rebuild**:
//!
//! 1. *Data plane.* Every data line is verified against its MAC record
//!    (the per-block HMAC + recovery counter riding the ECC spare bits).
//!    Verdicts: `Intact` (MAC verifies), `Unrecoverable` (mismatch with no
//!    redundant source — torn data write, media fault, or tampering), or
//!    untouched (never written).
//! 2. *Tree.* Leaf counters are rebuilt from the verified MAC records;
//!    every parent counter is regenerated bottom-up from its children;
//!    every node is re-MACed against its regenerated parent counter and
//!    written home. Nodes whose rebuilt line equals the stale home copy are
//!    `Intact`, the rest `Recovered`.
//! 3. *Anchors.* The on-chip root registers are reset to the regenerated
//!    top-level values; scheme NV state (LIncs, cache-tree roots, shadow
//!    tags) restarts fresh; the record/shadow/bitmap regions are reset to
//!    their empty encodings (all nodes come back *clean*).
//!
//! Because the tree is regenerated rather than incrementally patched, no
//! decoded byte ever reaches an invariant-checking code path — the scrub is
//! total on arbitrary images. The price is a weaker trust statement than
//! strict recovery: the scrub re-anchors trust in the MAC records, so a
//! *wholesale* replay of data + records to an older consistent state is not
//! detected here (strict mode's LInc/cache-tree checks exist for exactly
//! that). Lenient mode is for fault recovery, not adversarial recovery;
//! callers pick per §III-H threat model.

use crate::cme::MacRecord;
use crate::config::{LeafRecovery, SchemeKind};
use crate::crash::CrashedSystem;
use crate::engine::SecureNvmSystem;
use crate::scheme::star;
use steins_metadata::counter::{CounterBlock, SplitCounters};
use steins_metadata::records::RecordLine;
use steins_metadata::{CounterMode, NodeId, SitNode};
use steins_obs::MetricRegistry;

/// Scrub classification for one region (a data line or a metadata node).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The persisted bytes verified as-is.
    Intact,
    /// The bytes were reconstructed from a redundant source (MAC records,
    /// child counters) and rewritten.
    Recovered,
    /// MAC mismatch with no redundant source: the content is lost. The
    /// region is left failing deterministically (reads return an error).
    Unrecoverable,
}

/// What the integrity scrub found and did.
#[derive(Clone, Debug, PartialEq)]
pub struct ScrubReport {
    /// Scheme/mode label.
    pub scheme: String,
    /// Data lines whose MAC verified against the stored record.
    pub data_intact: u64,
    /// Data lines never written (default record, zero content).
    pub data_untouched: u64,
    /// Data lines whose MAC failed: content unrecoverable.
    pub data_unrecoverable: u64,
    /// Line addresses of the unrecoverable data (reads of these return
    /// [`crate::IntegrityError`] deterministically after the scrub).
    pub unrecoverable_addrs: Vec<u64>,
    /// Metadata nodes whose rebuilt line matched the stale home copy.
    pub meta_intact: u64,
    /// Metadata nodes reconstructed and rewritten.
    pub meta_recovered: u64,
    /// On-chip root-register slots whose value changed.
    pub anchors_updated: u64,
    /// NVM line reads the scrub performed.
    pub nvm_reads: u64,
    /// How many earlier recovery/scrub attempts the ADR journal recorded as
    /// interrupted before this one completed (0 on a first, uninterrupted
    /// run).
    pub restarts: u64,
    /// Which shard's image was scrubbed (0 for unsharded systems); the
    /// sharded engine scrubs each shard's own journal line independently.
    pub shard: u16,
    /// The ADR recovery journal failed its MAC check at entry: its resume
    /// marks were discarded and the scrub rebuilt from scratch (the
    /// fail-closed half of the journal-authentication contract; strict
    /// recovery instead refuses with
    /// [`crate::IntegrityError::JournalForged`]).
    pub journal_rejected: bool,
}

impl ScrubReport {
    /// True when no data was lost (metadata rewrites are routine).
    pub fn clean(&self) -> bool {
        self.data_unrecoverable == 0
    }

    /// An all-zero report carrying only identity (label/restarts/shard) —
    /// the unit of [`Self::merge`].
    pub fn empty(scheme: String, restarts: u64, shard: u16) -> ScrubReport {
        ScrubReport {
            scheme,
            data_intact: 0,
            data_untouched: 0,
            data_unrecoverable: 0,
            unrecoverable_addrs: Vec::new(),
            meta_intact: 0,
            meta_recovered: 0,
            anchors_updated: 0,
            nvm_reads: 0,
            restarts,
            shard,
            journal_rejected: false,
        }
    }

    /// Folds another region's (or shard's) verdicts into this report:
    /// counters and read totals add, unrecoverable addresses concatenate,
    /// `restarts` takes the max. Identity fields (`scheme`, `shard`) keep
    /// `self`'s values — regions of one scrub share them; for cross-shard
    /// folds keep the per-shard reports too if per-shard identity matters.
    /// Merging is associative, so regions fold in any grouping.
    pub fn merge(&mut self, other: &ScrubReport) {
        self.data_intact += other.data_intact;
        self.data_untouched += other.data_untouched;
        self.data_unrecoverable += other.data_unrecoverable;
        self.unrecoverable_addrs
            .extend_from_slice(&other.unrecoverable_addrs);
        self.meta_intact += other.meta_intact;
        self.meta_recovered += other.meta_recovered;
        self.anchors_updated += other.anchors_updated;
        self.nvm_reads += other.nvm_reads;
        self.restarts = self.restarts.max(other.restarts);
        self.journal_rejected |= other.journal_rejected;
    }

    /// Exports the verdict counters under `core.scrub.`.
    pub fn metrics(&self) -> MetricRegistry {
        let mut m = MetricRegistry::new();
        m.counter_add("core.scrub.data.intact", self.data_intact);
        m.counter_add("core.scrub.data.untouched", self.data_untouched);
        m.counter_add("core.scrub.data.unrecoverable", self.data_unrecoverable);
        m.counter_add("core.scrub.meta.intact", self.meta_intact);
        m.counter_add("core.scrub.meta.recovered", self.meta_recovered);
        m.counter_add("core.scrub.anchors.updated", self.anchors_updated);
        m.counter_add("core.scrub.reads", self.nvm_reads);
        m.counter_add("core.scrub.restarts", self.restarts);
        m.counter_add("core.scrub.journal_rejected", self.journal_rejected as u64);
        m.gauge_set("core.scrub.shard", self.shard as f64);
        m
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} scrub: data {} intact / {} untouched / {} unrecoverable; \
             meta {} intact / {} recovered; {} anchors updated; {} reads",
            self.scheme,
            self.data_intact,
            self.data_untouched,
            self.data_unrecoverable,
            self.meta_intact,
            self.meta_recovered,
            self.anchors_updated,
            self.nvm_reads
        )
    }
}

/// One data line's scrub outcome plus the counter pair to rebuild with.
enum DataOutcome {
    Untouched,
    Verified { major: u64, minor: u64 },
    Bad { major: u64 },
}

fn parse_node(mode: CounterMode, id: NodeId, line: &[u8; 64]) -> SitNode {
    if id.level == 0 && mode == CounterMode::Split {
        SitNode::split_from_line(line)
    } else {
        SitNode::general_from_line(line)
    }
}

impl CrashedSystem {
    /// Lenient recovery: scrubs the image, classifies every region, and
    /// rebuilds a consistent live system (`None` for WB, which has no
    /// metadata redundancy to rebuild from — the report still classifies
    /// the data plane). Never panics, for any NVM image.
    pub fn recover_lenient(self) -> (Option<SecureNvmSystem>, ScrubReport) {
        let mut out = None;
        let report = self.recover_lenient_into(&mut out);
        (out, report)
    }

    /// Restartable form of [`Self::recover_lenient`]: the rebuilt system is
    /// parked in `out` *before* the scrub issues its first durable write
    /// (all classification and planning are peek-only). If a second crash
    /// trips mid-rewrite, the unwinding caller still owns the half-scrubbed
    /// system and can crash it and scrub again — the verdicts re-derive
    /// identically because the scrub never rewrites the data plane or the
    /// MAC records it classifies from. The ADR recovery journal holds
    /// `SCRUB` for the whole rewrite (strict recovery refuses such an
    /// image: [`crate::IntegrityError::ScrubInterrupted`]) and `DONE` once
    /// complete.
    pub fn recover_lenient_into(mut self, out: &mut Option<SecureNvmSystem>) -> ScrubReport {
        let geo = self.layout.geometry.clone();
        // Fail closed on a journal that does not authenticate: discard its
        // marks and rebuild from scratch (the scrub re-derives every verdict
        // from the data plane anyway, so a discarded journal costs only the
        // resume shortcut — never correctness).
        let journal_rejected = !crate::recovery::journal_authentic(self.crypto.as_ref(), &self.nvm);
        let prior = if journal_rejected {
            steins_nvm::RecoveryJournal::default()
        } else {
            self.nvm.recovery_journal()
        };
        let restarts = if crate::recovery::journal::in_progress(prior.phase) {
            u64::from(prior.restarts.saturating_add(1))
        } else {
            0
        };
        // Region structure: the leaf scan splits into `lanes` contiguous
        // leaf ranges, each classified into its own partial report, merged
        // afterwards ([`ScrubReport::merge`] — verdict counters add,
        // unrecoverable addresses concatenate). The verdicts of one region
        // depend only on that region's data plane, so the merged report is
        // lane-count-invariant and the regions are safe to farm out (the
        // sharded engine's parallel scrub runs one whole-shard region per
        // worker; see `crate::shard`).
        let lanes = self
            .recovery_lanes
            .unwrap_or_else(crate::par::recovery_workers)
            .clamp(1, crate::par::MAX_WORKERS);
        let mut reads = 0u64;
        let mut report = ScrubReport::empty(
            self.cfg.scheme.label(self.cfg.mode),
            restarts,
            self.nvm.shard(),
        );
        report.journal_rejected = journal_rejected;

        // —— 1. Data plane: verify every MAC record, rebuild the leaves,
        //       one lane region of leaves at a time. ——
        let total = geo.total_nodes() as usize;
        let leaves = geo.nodes_at(0) as usize;
        let mut nodes: Vec<SitNode> = vec![SitNode::general_from_line(&[0u8; 64]); total];
        for (start, end) in crate::par::lane_spans(leaves, lanes) {
            let mut region = ScrubReport::empty(report.scheme.clone(), restarts, report.shard);
            let mut region_reads = 0u64;
            for li in start as u64..end as u64 {
                let id = NodeId {
                    level: 0,
                    index: li,
                };
                let off = geo.offset_of(id);
                region_reads += 1;
                let stale = parse_node(
                    self.cfg.mode,
                    id,
                    &self.nvm.peek(self.layout.node_addr(off)),
                );
                let leaf = self.scrub_leaf(&mut region_reads, id, &stale, &mut region);
                nodes[off as usize] = leaf;
            }
            region.nvm_reads = region_reads;
            report.merge(&region);
        }
        reads += report.nvm_reads;
        report.nvm_reads = 0;

        if !self.recoverable() {
            report.nvm_reads = reads;
            return report;
        }

        // —— 2. Parents bottom-up: regenerate every counter from children. ——
        for k in 1..geo.levels() {
            for index in 0..geo.nodes_at(k) {
                let id = NodeId { level: k, index };
                let mut g = *SitNode::general_from_line(&[0u8; 64]).counters.as_general();
                for (j, cid) in geo.children_of(id).into_iter().enumerate() {
                    let coff = geo.offset_of(cid) as usize;
                    g.set(j, nodes[coff].counters.parent_value());
                }
                nodes[geo.offset_of(id) as usize] = SitNode {
                    counters: CounterBlock::General(g),
                    hmac: 0,
                };
            }
        }

        // —— 3. Anchors: root registers ← regenerated top-level values. ——
        let top = geo.top_level();
        for index in 0..geo.nodes_at(top) {
            let id = NodeId { level: top, index };
            let val = nodes[geo.offset_of(id) as usize].counters.parent_value();
            let slot = geo.root_slot(id);
            if self.root.get(slot) != val {
                report.anchors_updated += 1;
                self.root.set(slot, val);
            }
        }

        // —— 4. Plan: re-MAC every node against its regenerated parent
        //       counter and classify against the stale home copy (peek-only;
        //       the rewrites are collected and issued after parking). ——
        let mut rewrites: Vec<(u64, [u8; 64])> = Vec::new();
        // First sweep: derive every node's regenerated parent counter and
        // collect the 72 B MAC messages of all nodes that need one, so the
        // whole-tree re-MAC runs through the engine lanes in one batch
        // (this sweep is the scrub's dominant crypto cost).
        let mut pcs = vec![0u64; total];
        let mut node_macs: Vec<Option<u64>> = vec![None; total];
        let mut need: Vec<u64> = Vec::new();
        let mut msgs: Vec<[u8; 72]> = Vec::new();
        for off in 0..total as u64 {
            let id = geo.node_at_offset(off);
            let pc = match geo.parent_of(id) {
                None => self.root.get(geo.root_slot(id)),
                Some((pid, slot)) => nodes[geo.offset_of(pid) as usize]
                    .counters
                    .as_general()
                    .get(slot),
            };
            pcs[off as usize] = pc;
            let mut node = nodes[off as usize];
            node.hmac = 0;
            if !(pc == 0 && node.to_line() == [0u8; 64]) {
                need.push(off);
                msgs.push(node.mac_message(self.layout.node_addr(off), pc));
            }
        }
        let mut macs = vec![0u64; msgs.len()];
        self.crypto.mac64_72_many(&msgs, &mut macs);
        for (off, mac) in need.iter().zip(macs) {
            node_macs[*off as usize] = Some(mac);
        }
        // Second sweep: assemble each node's expected home line and classify
        // against the stale copy (peek-only; rewrites are issued after
        // parking).
        for off in 0..total as u64 {
            let mut node = nodes[off as usize];
            node.hmac = 0;
            let line = match node_macs[off as usize] {
                // Lazily-initialized state: zero node under a zero counter.
                None => [0u8; 64],
                Some(mac) => {
                    node.hmac = if matches!(self.cfg.scheme, SchemeKind::Star) {
                        star::pack_hmac(mac, pcs[off as usize])
                    } else {
                        mac
                    };
                    node.to_line()
                }
            };
            reads += 1;
            let stale_line = self.nvm.peek(self.layout.node_addr(off));
            if stale_line == line {
                report.meta_intact += 1;
            } else {
                report.meta_recovered += 1;
                rewrites.push((self.layout.node_addr(off), line));
            }
        }

        // —— 5. Fresh machine around the image, parked *before* the first
        //       durable write. `new` builds the per-scheme NV state from
        //       scratch (zero LIncs, empty shadow tags, fresh cache-tree
        //       roots) — exactly the state a clean, all-nodes-clean machine
        //       holds.
        report.nvm_reads = reads;
        let mut sys = SecureNvmSystem::new(self.cfg.clone());
        sys.ctrl.nvm = self.nvm;
        sys.ctrl.root = self.root;
        sys.truth = self.truth;
        *out = Some(sys);
        let sys = out.as_mut().expect("just parked");
        let restarts32 = restarts.min(u64::from(u32::MAX)) as u32;
        let n_rewrites = rewrites.len();
        sys.ctrl.journal_write(crate::recovery::progress_journal(
            crate::recovery::journal::SCRUB,
            restarts32,
            lanes,
            n_rewrites,
            0,
        ));

        // —— 6. Rewrite: planned node homes, then the derived regions reset
        //       to empty (all nodes come back clean, so records/shadow/
        //       bitmap must say so). Every write is idempotent — a crash
        //       anywhere in here re-runs the scrub, which re-plans the same
        //       rewrites from the untouched data plane. Under a multi-lane
        //       scrub the journal additionally tracks per-lane rewrite
        //       marks (same layout as strict recovery's rebuild phases);
        //       one lane keeps the single-threaded-era journal byte-for-
        //       byte, marks untouched.
        let rewritten = n_rewrites as u64;
        for (i, (addr, line)) in rewrites.into_iter().enumerate() {
            sys.ctrl.nvm.poke(addr, &line);
            if lanes > 1 {
                sys.ctrl.journal_write(crate::recovery::progress_journal(
                    crate::recovery::journal::SCRUB,
                    restarts32,
                    lanes,
                    n_rewrites,
                    i + 1,
                ));
            }
        }
        let slots = self.cfg.meta_cache.slots();
        let empty_record = RecordLine::default().to_line();
        for r in 0..slots.div_ceil(steins_metadata::records::RECORDS_PER_LINE) {
            sys.ctrl
                .nvm
                .poke(sys.ctrl.layout.record_addr(r), &empty_record);
        }
        for s in 0..slots {
            sys.ctrl
                .nvm
                .poke(sys.ctrl.layout.shadow_addr(s), &[0u8; 64]);
        }
        let bitmap_lines = geo.total_nodes().div_ceil(8).div_ceil(64);
        for l in 0..bitmap_lines {
            sys.ctrl
                .nvm
                .poke(sys.ctrl.layout.bitmap_base + l * 64, &[0u8; 64]);
        }
        sys.ctrl.journal_write(steins_nvm::RecoveryJournal::single(
            crate::recovery::journal::DONE,
            rewritten,
            restarts32,
        ));
        sys.ctrl.nvm.disarm_crash();
        sys.ctrl.nvm.reset_stats();
        report
    }

    /// Rebuilds one leaf from the data plane, recording verdicts. Total on
    /// arbitrary record/data bytes.
    fn scrub_leaf(
        &mut self,
        reads: &mut u64,
        id: NodeId,
        stale: &SitNode,
        report: &mut ScrubReport,
    ) -> SitNode {
        let geo = self.layout.geometry.clone();
        let outcomes: Vec<(usize, u64, DataOutcome)> = geo
            .data_of_leaf(id)
            .into_iter()
            .enumerate()
            .map(|(j, d)| (j, d, self.scrub_data_line(reads, j, d, stale)))
            .collect();
        let mut unrecoverable = Vec::new();
        for (_, d, o) in &outcomes {
            let addr = self.layout.data_base + d * 64;
            match o {
                DataOutcome::Untouched => report.data_untouched += 1,
                DataOutcome::Verified { .. } => report.data_intact += 1,
                DataOutcome::Bad { .. } => {
                    report.data_unrecoverable += 1;
                    report.unrecoverable_addrs.push(addr);
                    unrecoverable.push(addr);
                }
            }
        }
        // Lost content stays lost: drop it from the functional ground truth
        // so post-scrub reads of these lines fail deterministically (the
        // stored record still disagrees with the stored bytes).
        for addr in unrecoverable {
            self.truth.remove(&addr);
        }
        match self.cfg.mode {
            CounterMode::General => {
                let mut g = *SitNode::general_from_line(&[0u8; 64]).counters.as_general();
                for (j, _, o) in &outcomes {
                    match o {
                        DataOutcome::Untouched => g.set(*j, 0),
                        DataOutcome::Verified { major, .. } | DataOutcome::Bad { major, .. } => {
                            g.set(*j, *major)
                        }
                    }
                }
                SitNode {
                    counters: CounterBlock::General(g),
                    hmac: 0,
                }
            }
            CounterMode::Split => {
                let mut major = 0u64;
                let mut minors = [0u8; 64];
                for (j, _, o) in &outcomes {
                    if let DataOutcome::Verified { major: mj, minor } = o {
                        major = major.max(*mj);
                        minors[*j] = *minor as u8;
                    }
                }
                SitNode {
                    counters: CounterBlock::Split(SplitCounters { major, minors }),
                    hmac: 0,
                }
            }
        }
    }

    /// Classifies one data line against its MAC record.
    fn scrub_data_line(
        &self,
        reads: &mut u64,
        slot: usize,
        data_line: u64,
        stale_leaf: &SitNode,
    ) -> DataOutcome {
        let (laddr, byte) = self.layout.mac_slot(data_line);
        *reads += 1;
        let rec = MacRecord::read_slot(&self.nvm.peek(laddr), byte / 16);
        let addr = self.layout.data_base + data_line * 64;
        *reads += 1;
        let data = self.nvm.peek(addr);
        if rec == MacRecord::default() && data == [0u8; 64] {
            return DataOutcome::Untouched;
        }
        if let LeafRecovery::OsirisProbe { window } = self.cfg.leaf_recovery {
            // No counter stored with the data: probe from the (untrusted,
            // totally-decoded) stale leaf value up to the stop-loss window.
            let c0 = stale_leaf.counters.as_general().get(slot);
            return match (c0..=c0.saturating_add(window))
                .find(|&c| self.crypto.data_mac(addr, &data, c, 0) == rec.mac)
            {
                Some(c) => DataOutcome::Verified { major: c, minor: 0 },
                None => DataOutcome::Bad { major: c0 },
            };
        }
        let (major, minor) = MacRecord::unpack_recovery(rec.recovery);
        if self.crypto.data_mac(addr, &data, major, minor) == rec.mac {
            DataOutcome::Verified { major, minor }
        } else {
            DataOutcome::Bad { major }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn scrubbed(scheme: SchemeKind, mode: CounterMode) -> (Option<SecureNvmSystem>, ScrubReport) {
        let cfg = SystemConfig::small_for_tests(scheme, mode);
        let mut sys = SecureNvmSystem::new(cfg);
        for i in 0..24u64 {
            sys.write(i * 64, &[i as u8 + 1; 64]).unwrap();
        }
        sys.crash().recover_lenient()
    }

    #[test]
    fn clean_crash_scrubs_all_intact_data() {
        for scheme in [SchemeKind::Steins, SchemeKind::Asit, SchemeKind::Star] {
            let (sys, report) = scrubbed(scheme, CounterMode::General);
            assert!(report.clean(), "{report}");
            assert_eq!(report.data_intact, 24, "{report}");
            let mut sys = sys.expect("schemes with NV anchors rebuild");
            for i in 0..24u64 {
                assert_eq!(sys.read(i * 64).unwrap(), [i as u8 + 1; 64]);
            }
        }
    }

    #[test]
    fn wb_scrub_classifies_but_returns_no_system() {
        let (sys, report) = scrubbed(SchemeKind::WriteBack, CounterMode::General);
        assert!(sys.is_none());
        assert_eq!(report.data_intact, 24);
        assert!(report.clean());
    }

    #[test]
    fn tampered_data_line_is_unrecoverable_and_reads_fail() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let mut sys = SecureNvmSystem::new(cfg);
        for i in 0..8u64 {
            sys.write(i * 64, &[0xA0 | i as u8; 64]).unwrap();
        }
        let mut crashed = sys.crash();
        crashed.tamper_data_at(3, 17, 0x80);
        let (sys, report) = crashed.recover_lenient();
        assert_eq!(report.data_unrecoverable, 1, "{report}");
        assert_eq!(report.unrecoverable_addrs, vec![3 * 64]);
        let mut sys = sys.unwrap();
        sys.read(3 * 64).unwrap_err();
        for i in [0u64, 1, 2, 4, 5, 6, 7] {
            assert_eq!(sys.read(i * 64).unwrap(), [0xA0 | i as u8; 64]);
        }
    }

    #[test]
    fn scrub_never_panics_on_garbage_metadata() {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::Split);
        let mut sys = SecureNvmSystem::new(cfg);
        for i in 0..8u64 {
            sys.write(i * 64, &[5; 64]).unwrap();
        }
        let mut crashed = sys.crash();
        // Trash every metadata node line with a recognizable pattern.
        let total = crashed.layout.geometry.total_nodes();
        for off in 0..total {
            crashed.tamper_node_at(off, (off % 64) as usize, 0xFF);
        }
        let (sys, report) = crashed.recover_lenient();
        // Metadata is redundant: the data plane rebuilds it all.
        assert!(report.clean(), "{report}");
        assert!(report.meta_recovered > 0);
        let mut sys = sys.unwrap();
        for i in 0..8u64 {
            assert_eq!(sys.read(i * 64).unwrap(), [5; 64]);
        }
    }

    #[test]
    fn merge_is_associative_with_empty_unit() {
        let mut a = ScrubReport::empty("Steins-GC".into(), 0, 0);
        a.data_intact = 3;
        a.unrecoverable_addrs = vec![64, 128];
        a.data_unrecoverable = 2;
        a.nvm_reads = 10;
        let mut b = ScrubReport::empty("Steins-GC".into(), 1, 0);
        b.data_intact = 5;
        b.meta_recovered = 7;
        b.nvm_reads = 4;
        let mut c = ScrubReport::empty("Steins-GC".into(), 0, 0);
        c.data_untouched = 11;
        c.unrecoverable_addrs = vec![512];
        c.data_unrecoverable = 1;

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.data_intact, 8);
        assert_eq!(left.data_unrecoverable, 3);
        assert_eq!(left.unrecoverable_addrs, vec![64, 128, 512]);
        assert_eq!(left.nvm_reads, 14);
        assert_eq!(left.restarts, 1, "restarts take the max");

        // Empty is the unit.
        let mut unit = a.clone();
        unit.merge(&ScrubReport::empty("Steins-GC".into(), 0, 0));
        assert_eq!(unit, a);
    }

    #[test]
    fn scrub_verdicts_are_lane_count_invariant() {
        for lanes in [1usize, 2, 4, 8] {
            let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
            let mut sys = SecureNvmSystem::new(cfg);
            for i in 0..24u64 {
                sys.write(i * 64, &[i as u8 + 1; 64]).unwrap();
            }
            let mut crashed = sys.crash().with_recovery_lanes(lanes);
            crashed.tamper_data_at(5, 9, 0x40);
            let (sys, report) = crashed.recover_lenient();
            assert_eq!(report.data_intact, 23, "lanes={lanes}: {report}");
            assert_eq!(report.data_unrecoverable, 1, "lanes={lanes}");
            assert_eq!(report.unrecoverable_addrs, vec![5 * 64], "lanes={lanes}");
            let mut sys = sys.unwrap();
            assert_eq!(
                sys.ctrl.nvm.recovery_journal(),
                steins_nvm::RecoveryJournal::single(
                    crate::recovery::journal::DONE,
                    report.meta_recovered,
                    0
                ),
                "lanes={lanes}: terminal journal is layout-free"
            );
            for i in [0u64, 1, 2, 3, 4, 6, 7] {
                assert_eq!(sys.read(i * 64).unwrap(), [i as u8 + 1; 64]);
            }
        }
    }

    #[test]
    fn scrub_report_metrics_export() {
        let (_, report) = scrubbed(SchemeKind::Star, CounterMode::General);
        let m = report.metrics();
        let json = m.to_json_deterministic().pretty();
        assert!(json.contains("core.scrub.data.intact"), "{json}");
        assert!(json.contains("core.scrub.reads"), "{json}");
    }
}
