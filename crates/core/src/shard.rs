//! The sharded multi-controller front-end and its crash harness.
//!
//! [`ShardedEngine`] splits the protected data-line space across N
//! independent [`SecureNvmSystem`] instances — each with its own SIT,
//! metadata cache, write queue, NVM device, and ADR recovery-journal line —
//! and routes every request by address through a pure
//! [`steins_metadata::ShardMap`]. Shards share nothing: the only
//! cross-shard structure is the routing function itself, so N shards
//! accept requests from N threads with no coordination beyond one
//! per-shard mutex.
//!
//! Three properties the harness below enforces:
//!
//! * **Independent recovery.** Each shard crashes and recovers off its own
//!   journal line. The device stamps the journal with its owner
//!   ([`steins_nvm::NvmDevice::journal_owner`]); recovering a shard off a
//!   line stamped by another shard is a routing bug and fails loudly.
//! * **Neighbor liveness.** A crash on one shard never touches another:
//!   while the target shard recovers, neighbor shards keep accepting the
//!   rest of the stream mid-write, and every acknowledged line on every
//!   shard still reads back.
//! * **Restartable per shard.** A second crash during one shard's recovery
//!   bumps only that shard's `core.recovery.restarts`; untouched shards
//!   report a pristine (`IDLE`) journal.
//!
//! [`ShardSweep`] is the shard-aware mirror of [`crate::CrashSweep`]: the
//! same persist-boundary fault-injection protocol (torn-word masks,
//! in-flight reconciliation, sacrificial torn data lines, nested
//! crash-during-recovery), replayed through the sharded front-end with the
//! crash armed on one target shard at a time.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

use steins_metadata::{CounterMode, ShardMap, StripeMode};
use steins_nvm::{CrashTripped, PersistKind};
use steins_obs::{Alarm, AlarmKind, AlarmLog, MetricRegistry};

use crate::config::{SchemeKind, SystemConfig};
use crate::crash::{silence_crash_trips, CrashSweep, CrashedSystem, PointSelection, SweepOp};
use crate::engine::SecureNvmSystem;
use crate::error::IntegrityError;
use crate::online::OnlinePolicy;
use crate::par;
use crate::recovery::{journal, RecoveryReport};
use crate::scrub::ScrubReport;

/// Shard lifecycle states for the self-healing repair loop.
///
/// `Serving → Degraded` on any park ([`ShardedEngine::mark_degraded`]),
/// `Degraded → Rebuilding` when a repair attempt claims the shard,
/// `Rebuilding → Serving` when the rebuilt system is re-admitted, and
/// `Rebuilding → Degraded` when a scrub attempt fails (retryable after
/// backoff) or `→ Parked` once the attempt budget is spent. `Parked` is
/// terminal for the automatic loop; only an operator [`ShardedEngine::put_shard`]
/// un-parks it.
mod shard_state {
    pub const SERVING: u8 = 0;
    pub const DEGRADED: u8 = 1;
    pub const REBUILDING: u8 = 2;
    pub const PARKED: u8 = 3;
}

/// Knobs for the background shard-repair loop
/// ([`ShardedEngine::repair_shard`]).
#[derive(Clone, Copy, Debug)]
pub struct RepairPolicy {
    /// Repair attempts a shard may consume before it is parked
    /// permanently (state `Parked`; only an operator
    /// [`ShardedEngine::put_shard`] revives it).
    pub max_attempts: u32,
    /// Base of the exponential retry backoff: after failed attempt `k`
    /// (1-based) the next attempt is gated until
    /// `now + backoff_base_cycles << (k - 1)` modeled cycles. Callers
    /// passing `now = u64::MAX` (a forced/operator retry) bypass the gate.
    pub backoff_base_cycles: u64,
    /// Online-service policy re-armed on the rebuilt system before it is
    /// re-admitted (the pre-crash service state is volatile and lost).
    pub online: OnlinePolicy,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            max_attempts: 3,
            backoff_base_cycles: 1024,
            online: OnlinePolicy::default(),
        }
    }
}

/// What one [`ShardedEngine::repair_shard`] attempt did.
#[derive(Debug)]
pub enum RepairOutcome {
    /// The shard was rebuilt, re-verified, and is `Serving` again. The
    /// report is the lenient scrub's verdict over the rebuilt image.
    Restored(ScrubReport),
    /// The backoff gate is still closed: no attempt was consumed, the
    /// image (if any was supplied) is stashed for the retry at `until`.
    Backoff {
        /// Modeled cycle at which the next attempt may run.
        until: u64,
    },
    /// The attempt ran and could not rebuild a system; the shard is back
    /// in `Degraded` awaiting the next (backoff-gated) attempt.
    Failed {
        /// Attempts consumed so far, including this one.
        attempts: u32,
    },
    /// The attempt budget is spent (or there is nothing left to rebuild
    /// from): the shard is parked permanently pending operator action.
    Parked,
    /// The shard is serving; there is nothing to repair.
    NotDegraded,
}

/// A crashed image plus the quarantine set captured before the plug was
/// pulled, parked between repair attempts.
type StashedImage = (CrashedSystem, Vec<u64>);

/// N independent secure-memory controllers behind one address space.
///
/// Routing: a global byte address maps to `(shard, local address)` via the
/// [`ShardMap`]; the shard's own [`SecureNvmSystem`] — built over
/// `data_lines / N` lines with a `1/N` slice of the metadata-cache budget —
/// serves the request under its own mutex. All methods take `&self`, so
/// any number of threads may drive disjoint shards concurrently.
pub struct ShardedEngine {
    map: ShardMap,
    shard_cfg: SystemConfig,
    shards: Vec<Mutex<Option<SecureNvmSystem>>>,
    /// Per-shard degraded flags. A degraded shard fails requests with
    /// [`IntegrityError::ShardDegraded`] instead of serving (or panicking);
    /// [`Self::put_shard`] clears the flag when a recovered system is
    /// reinstated. Set on: a torn shard operation (a holder panicked
    /// mid-operation, so the in-memory state is suspect), an explicit
    /// [`Self::park_degraded`], or a scrub that could not rebuild a system.
    degraded: Vec<AtomicBool>,
    /// Per-shard "operation in flight" markers — the engine's own poison
    /// flag. Set under the shard lock before calling into the system and
    /// cleared after it returns; a panic unwinding through the call leaves
    /// it set, and the next [`Self::guard`] parks the shard `Degraded`.
    /// Unlike `std`'s sticky mutex poison (whose `clear_poison` needs Rust
    /// 1.77, above this crate's MSRV), this flag is resettable: a
    /// recovered system reinstated via [`Self::put_shard`] serves again.
    mid_op: Vec<AtomicBool>,
    /// Engine-level lifecycle alarms: `ShardDegraded` transitions raised
    /// by the engine itself, plus harness-observed events recorded via
    /// [`Self::raise_alarm`] (e.g. torn writes in the chaos campaign).
    /// Per-shard *service* alarms live inside each shard's
    /// [`crate::online::OnlineService`]; [`Self::drain_alarms`] merges
    /// both in deterministic order.
    alarms: Mutex<AlarmLog>,
    /// Per-shard repair lifecycle state ([`shard_state`]). Tracks the
    /// `Serving → Degraded → Rebuilding → Serving | Parked` machine the
    /// repair loop drives; `degraded` stays the fast-path serving gate.
    state: Vec<AtomicU8>,
    /// Repair attempts consumed per shard ([`RepairPolicy::max_attempts`]
    /// bounds them; [`Self::put_shard`] resets the count).
    repair_attempts: Vec<AtomicU32>,
    /// Modeled-cycle gate before which the next repair attempt is refused
    /// ([`RepairOutcome::Backoff`]). `u64::MAX` as `now` bypasses it.
    next_repair_at: Vec<AtomicU64>,
    /// Crashed image + captured quarantine set stashed between repair
    /// attempts (a backoff-refused attempt parks its inputs here so the
    /// retry does not need the caller to re-supply them).
    parked_images: Vec<Mutex<Option<StashedImage>>>,
    /// Knobs for the repair loop (see [`RepairPolicy`]).
    repair_policy: RepairPolicy,
}

impl ShardedEngine {
    /// Builds `shards` interleaved (bank-style) shards over `cfg`'s data
    /// space. A `cfg.data_lines` that does not divide evenly is rounded
    /// down to the nearest multiple (shards are identical machines; the
    /// remainder lines are simply not addressable through the front-end).
    pub fn new(cfg: SystemConfig, shards: usize) -> Self {
        Self::with_mode(cfg, shards, StripeMode::Interleave)
    }

    /// [`Self::new`] with an explicit striping mode.
    pub fn with_mode(mut cfg: SystemConfig, shards: usize, mode: StripeMode) -> Self {
        assert!(shards >= 1, "need at least one shard");
        cfg.data_lines -= cfg.data_lines % shards as u64;
        let map = ShardMap::new(mode, shards, cfg.data_lines);
        let shard_cfg = Self::split_config(&cfg, shards);
        let insts = (0..shards)
            .map(|i| {
                let mut sys = SecureNvmSystem::new(shard_cfg.clone());
                sys.ctrl.nvm.set_shard(i as u16);
                Mutex::new(Some(sys))
            })
            .collect();
        let degraded = (0..shards).map(|_| AtomicBool::new(false)).collect();
        let mid_op = (0..shards).map(|_| AtomicBool::new(false)).collect();
        let state = (0..shards)
            .map(|_| AtomicU8::new(shard_state::SERVING))
            .collect();
        let repair_attempts = (0..shards).map(|_| AtomicU32::new(0)).collect();
        let next_repair_at = (0..shards).map(|_| AtomicU64::new(0)).collect();
        let parked_images = (0..shards).map(|_| Mutex::new(None)).collect();
        ShardedEngine {
            map,
            shard_cfg,
            shards: insts,
            degraded,
            mid_op,
            alarms: Mutex::new(AlarmLog::new()),
            state,
            repair_attempts,
            next_repair_at,
            parked_images,
            repair_policy: RepairPolicy::default(),
        }
    }

    /// Replaces the repair-loop knobs (construction-time configuration;
    /// the default is [`RepairPolicy::default`]).
    pub fn set_repair_policy(&mut self, policy: RepairPolicy) {
        self.repair_policy = policy;
    }

    /// The repair-loop knobs in force.
    pub fn repair_policy(&self) -> RepairPolicy {
        self.repair_policy
    }

    /// The per-shard configuration a global `cfg` splits into: `1/N` of the
    /// data lines and `1/N` of the metadata-cache capacity (floored at one
    /// set), everything else identical.
    pub fn split_config(cfg: &SystemConfig, shards: usize) -> SystemConfig {
        assert!(shards >= 1, "need at least one shard");
        let mut c = cfg.clone();
        c.data_lines = cfg.data_lines / shards as u64;
        c.meta_cache = cfg.meta_cache.split(shards);
        c
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// The routing function.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The configuration each shard runs with.
    pub fn shard_config(&self) -> &SystemConfig {
        &self.shard_cfg
    }

    /// Locks shard `s`, recovering the guard if a previous holder panicked
    /// (the crash harness unwinds [`CrashTripped`] through these locks by
    /// design; the shard's state is exactly what the power cut left).
    /// If the previous holder died mid-operation (its [`Self::mid_op`]
    /// marker is still set), the shard is parked `Degraded`: until a
    /// recovered system is reinstated ([`Self::put_shard`]) it must fail
    /// typed rather than serve suspect state — and must never panic a
    /// *neighbor's* request.
    fn guard(&self, s: usize) -> MutexGuard<'_, Option<SecureNvmSystem>> {
        let g = match self.shards[s].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Checked under the lock, so a set marker can only mean a previous
        // holder unwound mid-call — not a concurrent op in progress.
        if self.mid_op[s].load(Ordering::Acquire) {
            self.mark_degraded(s);
        }
        g
    }

    /// Parks shard `s` `Degraded`, raising a `ShardDegraded` alarm on the
    /// false→true transition only. Lifecycle alarms carry cycle stamp 0:
    /// the engine has no global clock, and a constant stamp keeps the
    /// merged alarm log byte-identical across host thread schedules.
    fn mark_degraded(&self, s: usize) {
        // The lifecycle state leaves `Serving` with the flag; a shard
        // already `Rebuilding` or `Parked` keeps its repair state.
        let _ = self.state[s].compare_exchange(
            shard_state::SERVING,
            shard_state::DEGRADED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if self.degraded[s]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.raise_alarm(Alarm {
                kind: AlarmKind::ShardDegraded,
                shard: s as u16,
                addr: None,
                cycle: 0,
            });
        }
    }

    /// Records an engine-level lifecycle alarm (see the `alarms` field).
    pub fn raise_alarm(&self, alarm: Alarm) {
        self.alarms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .raise(alarm);
    }

    /// Runs `f` with the mid-op marker raised: a panic unwinding out of
    /// `f` leaves the marker set, which parks the shard `Degraded` at the
    /// next lock acquisition. Call only while holding shard `s`'s guard.
    fn marked<R>(&self, s: usize, f: impl FnOnce() -> R) -> R {
        self.mid_op[s].store(true, Ordering::Release);
        let r = f();
        self.mid_op[s].store(false, Ordering::Release);
        r
    }

    /// Whether shard `s` is parked `Degraded` (poisoned lock, explicit
    /// park, or an unrecoverable scrub).
    pub fn is_degraded(&self, s: usize) -> bool {
        self.degraded[s].load(Ordering::Acquire)
    }

    /// Shards currently parked `Degraded`, in shard order.
    pub fn degraded_shards(&self) -> Vec<u16> {
        (0..self.shards())
            .filter(|&s| self.is_degraded(s))
            .map(|s| s as u16)
            .collect()
    }

    /// Whether shard `s` is permanently `Parked`: its repair attempt
    /// budget is spent (or there was nothing left to rebuild from) and
    /// only an operator [`Self::put_shard`] revives it.
    pub fn is_parked(&self, s: usize) -> bool {
        self.state[s].load(Ordering::Acquire) == shard_state::PARKED
    }

    /// Shards permanently `Parked`, in shard order.
    pub fn parked_shards(&self) -> Vec<u16> {
        (0..self.shards())
            .filter(|&s| self.is_parked(s))
            .map(|s| s as u16)
            .collect()
    }

    /// Parks shard `s` `Degraded`, returning its system (if the slot still
    /// held one) so the caller can crash/scrub it offline. Requests routed
    /// to the shard fail with [`IntegrityError::ShardDegraded`] until
    /// [`Self::put_shard`] reinstates a recovered system.
    pub fn park_degraded(&self, s: usize) -> Option<SecureNvmSystem> {
        let mut g = self.guard(s);
        self.mark_degraded(s);
        g.take()
    }

    /// Securely writes one 64 B line at a global address. A request routed
    /// to a degraded or crashed/taken shard fails typed — a fault on one
    /// shard never panics traffic on the engine.
    pub fn write(&self, addr: u64, data: &[u8; 64]) -> Result<(), IntegrityError> {
        let (s, local) = self.map.route(addr);
        let mut g = self.guard(s);
        match g.as_mut() {
            Some(sys) if !self.is_degraded(s) => self.marked(s, || sys.write(local, data)),
            _ => Err(IntegrityError::ShardDegraded { shard: s as u16 }),
        }
    }

    /// Securely reads one 64 B line at a global address. Degraded and
    /// crashed/taken shards fail typed, like [`Self::write`].
    pub fn read(&self, addr: u64) -> Result<[u8; 64], IntegrityError> {
        let (s, local) = self.map.route(addr);
        let mut g = self.guard(s);
        match g.as_mut() {
            Some(sys) if !self.is_degraded(s) => self.marked(s, || sys.read(local)),
            _ => Err(IntegrityError::ShardDegraded { shard: s as u16 }),
        }
    }

    /// Supervised heal of a quarantined global address: routes to
    /// [`SecureNvmSystem::heal_write`], which lifts the quarantine only
    /// after the fresh data passes a verify-after-write round-trip (the
    /// audited alternative to a blind
    /// [`SecureNvmSystem::clear_quarantine`]). Degraded and crashed/taken
    /// shards fail typed, like [`Self::write`].
    pub fn heal_write(&self, addr: u64, data: &[u8; 64]) -> Result<(), IntegrityError> {
        let (s, local) = self.map.route(addr);
        let mut g = self.guard(s);
        match g.as_mut() {
            Some(sys) if !self.is_degraded(s) => self.marked(s, || sys.heal_write(local, data)),
            _ => Err(IntegrityError::ShardDegraded { shard: s as u16 }),
        }
    }

    /// Runs `f` against shard `s`'s live system under its lock. A panic
    /// unwinding out of `f` parks the shard `Degraded` (it died
    /// mid-operation), like [`Self::write`]/[`Self::read`].
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&mut SecureNvmSystem) -> R) -> R {
        let mut g = self.guard(s);
        let sys = g
            .as_mut()
            .unwrap_or_else(|| panic!("shard {s} is crashed/taken"));
        self.marked(s, || f(sys))
    }

    /// Removes shard `s`'s system from the engine (its slot stays empty
    /// until [`Self::put_shard`]; requests routed there panic meanwhile).
    pub fn take_shard(&self, s: usize) -> SecureNvmSystem {
        self.guard(s)
            .take()
            .unwrap_or_else(|| panic!("shard {s} already crashed/taken"))
    }

    /// Reinstates a system into shard `s`'s empty slot. The system must
    /// carry `s`'s own device label — installing a machine built for a
    /// different shard is a routing bug.
    pub fn put_shard(&self, s: usize, sys: SecureNvmSystem) {
        assert_eq!(
            sys.ctrl.nvm.shard(),
            s as u16,
            "installing shard {} machine into slot {s}",
            sys.ctrl.nvm.shard()
        );
        let mut g = self.guard(s);
        assert!(g.is_none(), "shard {s} slot already occupied");
        *g = Some(sys);
        // A freshly recovered/rebuilt system un-parks the shard; the
        // mid-op marker the dying holder left behind is spent with it.
        // This is also the operator's escape hatch for a permanently
        // `Parked` shard: installing a system resets the repair lifecycle
        // (state, attempt budget, backoff gate, stashed image).
        self.mid_op[s].store(false, Ordering::Release);
        self.degraded[s].store(false, Ordering::Release);
        self.state[s].store(shard_state::SERVING, Ordering::Release);
        self.repair_attempts[s].store(0, Ordering::Release);
        self.next_repair_at[s].store(0, Ordering::Release);
        *self.parked_images[s]
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Pulls the plug on shard `s` only. Every other shard keeps running.
    pub fn crash_shard(&self, s: usize) -> CrashedSystem {
        self.take_shard(s).crash()
    }

    /// Strictly recovers shard `s` from its crashed image and reinstates
    /// it. Validates journal ownership first: if the image's ADR journal
    /// line was ever written, it must have been stamped by shard `s`'s own
    /// controller. On error the slot stays empty (callers may fall back to
    /// [`Self::scrub_shard`]).
    pub fn recover_shard(
        &self,
        s: usize,
        crashed: CrashedSystem,
    ) -> Result<RecoveryReport, IntegrityError> {
        Self::check_journal_owner(s, &crashed);
        let (sys, report) = crashed.recover()?;
        self.put_shard(s, sys);
        Ok(report)
    }

    /// Leniently scrubs shard `s`'s crashed image, reinstating the rebuilt
    /// system when the scheme supports one. A scrub that cannot rebuild a
    /// system (WB has no metadata redundancy) leaves the slot empty and
    /// parks the shard `Degraded` — its verdict is unrecoverable at the
    /// shard level, so routing fails typed instead of panicking.
    pub fn scrub_shard(&self, s: usize, crashed: CrashedSystem) -> ScrubReport {
        Self::check_journal_owner(s, &crashed);
        let (sys, report) = crashed.recover_lenient();
        match sys {
            Some(sys) => self.put_shard(s, sys),
            None => self.mark_degraded(s),
        }
        report
    }

    fn check_journal_owner(s: usize, crashed: &CrashedSystem) {
        assert_eq!(
            crashed.nvm().shard(),
            s as u16,
            "crashed image labeled shard {} handed to slot {s}",
            crashed.nvm().shard()
        );
        let j = crashed.nvm().recovery_journal();
        if j.phase != journal::IDLE {
            assert_eq!(
                crashed.nvm().journal_owner(),
                s as u16,
                "shard {s}'s journal line was stamped by shard {}: cross-shard routing bug",
                crashed.nvm().journal_owner()
            );
        }
    }

    /// Stashes a crashed image (and its captured quarantine set) for a
    /// later repair attempt.
    fn stash_image(&self, s: usize, crashed: CrashedSystem, quarantine: &[u64]) {
        *self.parked_images[s]
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some((crashed, quarantine.to_vec()));
    }

    /// One attempt of the online shard-repair loop: sources a crashed
    /// image for degraded shard `s` and delegates to
    /// [`Self::repair_shard_from`].
    ///
    /// The image comes from, in order: the shard's own slot (a poisoned
    /// but still-present system — its volatile quarantine set is captured,
    /// then the plug is pulled), or a previously stashed image (a
    /// backoff-refused attempt). A degraded shard with neither has nothing
    /// left to rebuild from — no retry can ever succeed, so it is parked
    /// permanently right away.
    ///
    /// `now` is the caller's modeled-cycle clock for the backoff gate;
    /// pass `u64::MAX` to force the attempt (operator retry, or the chaos
    /// campaign, which must not read neighbor shards' clocks).
    pub fn repair_shard(&self, s: usize, now: u64) -> RepairOutcome {
        if self.is_parked(s) {
            return RepairOutcome::Parked;
        }
        if !self.is_degraded(s) {
            return RepairOutcome::NotDegraded;
        }
        let source = self.guard(s).take();
        let (crashed, quarantine) = match source {
            Some(sys) => {
                // The online service dies with the power: capture the
                // quarantine set before pulling the plug so the rebuilt
                // shard can replay it.
                let q: Vec<u64> = sys
                    .online()
                    .map(|o| o.quarantined().collect())
                    .unwrap_or_default();
                (sys.crash(), q)
            }
            None => match self.parked_images[s]
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take()
            {
                Some((c, q)) => (c, q),
                None => {
                    self.state[s].store(shard_state::PARKED, Ordering::Release);
                    return RepairOutcome::Parked;
                }
            },
        };
        self.repair_shard_from(s, crashed, &quarantine, now)
    }

    /// Runs one bounded, backoff-gated repair attempt for degraded shard
    /// `s` from a supplied crashed image, while neighbor shards keep
    /// serving (nothing here touches any other shard's lock).
    ///
    /// `Degraded → Rebuilding`: the attempt claims the shard, raises
    /// `ShardRepairStarted` (lifecycle alarm, cycle 0), and runs the laned
    /// lenient scrub over the image. On success the rebuilt system is
    /// re-verified end to end (a full online scrub pass re-quarantines,
    /// with fresh alarms, any line that is still bad), the captured
    /// `quarantine` set is replayed against it (lines the pass did *not*
    /// re-quarantine are provably clean now and released with an audited
    /// `QuarantineCleared`), and the system is atomically re-admitted
    /// (`→ Serving`, `ShardRestored`). On failure the shard returns to
    /// `Degraded` with an exponential backoff gate, until
    /// [`RepairPolicy::max_attempts`] parks it permanently (`→ Parked`).
    ///
    /// Determinism: lifecycle alarms carry cycle 0; replay releases are
    /// stamped with the rebuilt shard's *own* modeled clock. The attempt
    /// never reads another shard's clock, so concurrent repairs and host
    /// scheduling cannot perturb the exported alarm stream.
    pub fn repair_shard_from(
        &self,
        s: usize,
        crashed: CrashedSystem,
        quarantine: &[u64],
        now: u64,
    ) -> RepairOutcome {
        if self.is_parked(s) {
            // Keep the image for the operator's post-mortem.
            self.stash_image(s, crashed, quarantine);
            return RepairOutcome::Parked;
        }
        if self.state[s]
            .compare_exchange(
                shard_state::DEGRADED,
                shard_state::REBUILDING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            self.stash_image(s, crashed, quarantine);
            return RepairOutcome::NotDegraded;
        }
        let until = self.next_repair_at[s].load(Ordering::Acquire);
        if now < until {
            self.stash_image(s, crashed, quarantine);
            self.state[s].store(shard_state::DEGRADED, Ordering::Release);
            return RepairOutcome::Backoff { until };
        }
        let policy = self.repair_policy;
        let attempt = self.repair_attempts[s].fetch_add(1, Ordering::AcqRel) + 1;
        if attempt > policy.max_attempts {
            self.stash_image(s, crashed, quarantine);
            self.state[s].store(shard_state::PARKED, Ordering::Release);
            return RepairOutcome::Parked;
        }
        self.raise_alarm(Alarm {
            kind: AlarmKind::ShardRepairStarted,
            shard: s as u16,
            addr: None,
            cycle: 0,
        });
        Self::check_journal_owner(s, &crashed);
        let crashed = crashed.with_recovery_lanes(par::recovery_workers());
        let (sys, report) = crashed.recover_lenient();
        match sys {
            Some(mut sys) => {
                sys.enable_online(policy.online);
                // Re-verify the rebuilt tree end to end before re-admitting
                // the shard: every line that is still bad is re-quarantined
                // with a fresh alarm trail.
                sys.online_scrub_pass();
                // Replay the captured quarantine set: anything the full
                // pass did not re-quarantine read back authentic from the
                // rebuilt tree and is released, audited.
                let shard = s as u16;
                let cycle = sys.sim_cycles();
                if let Some(svc) = sys.online_mut() {
                    for &addr in quarantine {
                        if !svc.is_quarantined(addr) {
                            svc.note_heal(shard, addr, cycle);
                        }
                    }
                }
                self.put_shard(s, sys);
                self.raise_alarm(Alarm {
                    kind: AlarmKind::ShardRestored,
                    shard: s as u16,
                    addr: None,
                    cycle: 0,
                });
                RepairOutcome::Restored(report)
            }
            None => {
                // The image is consumed; a retry needs a fresh one.
                if attempt >= policy.max_attempts {
                    self.state[s].store(shard_state::PARKED, Ordering::Release);
                    return RepairOutcome::Parked;
                }
                let shift = (attempt - 1).min(16);
                self.next_repair_at[s].store(
                    now.saturating_add(policy.backoff_base_cycles << shift),
                    Ordering::Release,
                );
                self.state[s].store(shard_state::DEGRADED, Ordering::Release);
                RepairOutcome::Failed { attempts: attempt }
            }
        }
    }

    /// Deterministic simulated-cycle makespan: the furthest any shard's
    /// clocks have advanced (empty slots contribute 0). With perfect
    /// balance this is `1/N` of the serial machine's clock — the quantity
    /// the stress bench's scaling gate is computed from.
    pub fn sim_cycles(&self) -> u64 {
        (0..self.shards())
            .map(|s| self.guard(s).as_ref().map_or(0, |sys| sys.sim_cycles()))
            .max()
            .unwrap_or(0)
    }

    /// Merged metric registry: each shard's full registry appears twice —
    /// once under its own `shard.NN.` prefix (per-shard write-queue
    /// occupancy/stall histograms, cache hit rates, …) and once folded into
    /// the unprefixed aggregate (histograms merge bucket-wise; see
    /// [`MetricRegistry::fold_shard`]).
    pub fn report(&self) -> MetricRegistry {
        let mut agg = MetricRegistry::new();
        for s in 0..self.shards() {
            if let Some(sys) = self.guard(s).as_ref() {
                let m = sys.report().metrics;
                agg.fold_shard(&format!("shard.{s:02}"), &m);
            }
        }
        agg.gauge_set("core.shards", self.shards() as f64);
        agg.gauge_set("core.shards.degraded", self.degraded_shards().len() as f64);
        agg.gauge_set("core.shards.parked", self.parked_shards().len() as f64);
        agg.gauge_set("core.engine.sim_cycles", self.sim_cycles() as f64);
        let lifecycle = self
            .alarms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .metrics();
        agg.merge(&lifecycle);
        agg
    }

    /// Enables the online integrity service on every live shard under one
    /// shared `policy` (see [`crate::online::OnlinePolicy`]). Shards whose
    /// slot is empty or degraded are skipped; a system reinstated later via
    /// [`Self::put_shard`] must be re-enabled by the caller.
    pub fn enable_online(&self, policy: OnlinePolicy) {
        for s in 0..self.shards() {
            if let Some(sys) = self.guard(s).as_mut() {
                sys.enable_online(policy);
            }
        }
    }

    /// Runs one scrub step on every live, non-degraded shard (the
    /// per-shard period is bypassed; the occupancy throttle still
    /// applies). The engine-level analogue of
    /// [`SecureNvmSystem::online_step`].
    pub fn online_tick(&self) {
        for s in 0..self.shards() {
            let mut g = self.guard(s);
            if let Some(sys) = g.as_mut() {
                if !self.is_degraded(s) {
                    self.marked(s, || sys.online_step());
                }
            }
        }
    }

    /// Drains every pending alarm in deterministic order: the engine's
    /// lifecycle log first, then each shard's service log in shard order.
    /// Callers wanting a schedule-independent export sort the result with
    /// [`AlarmLog::canonical`].
    pub fn drain_alarms(&self) -> AlarmLog {
        let mut out = AlarmLog::new();
        for a in self
            .alarms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain()
        {
            out.raise(a);
        }
        for s in 0..self.shards() {
            let mut g = self.guard(s);
            if let Some(sys) = g.as_mut() {
                for a in sys.drain_alarms() {
                    out.raise(a);
                }
            }
        }
        out
    }

    /// Pulls the plug on the whole engine: every shard loses power at its
    /// current persist boundary (no op is in flight on any of them), and
    /// every slot is left empty until recovery reinstates it. Images come
    /// back in shard order.
    pub fn crash_all(&self) -> Vec<CrashedSystem> {
        (0..self.shards()).map(|s| self.crash_shard(s)).collect()
    }

    /// Recovers the whole engine in parallel: the per-shard crashed images
    /// are independent region jobs on a work-stealing queue served by
    /// `workers` threads (clamped to [`par::MAX_WORKERS`]). Each region
    /// recovers off its own ADR journal line with `workers` lane-mark slots
    /// and reinstates itself into its slot as soon as it finishes.
    ///
    /// Determinism: every number in the returned [`ParallelRecovery`]
    /// except `steals` is computed from the per-shard reports and the
    /// *modeled* lane fold ([`par::fold_lanes`]) — byte-identical no matter
    /// how the host actually schedules the worker threads. `steals` is the
    /// wall-side steal count and is deliberately kept out of `metrics`.
    ///
    /// On the first per-shard error the whole call errors; regions that
    /// already recovered stay installed and the failing slot stays empty
    /// (callers may fall back to [`Self::scrub_all`] on a replay).
    pub fn recover_all(
        &self,
        crashed: Vec<CrashedSystem>,
        workers: usize,
    ) -> Result<ParallelRecovery, IntegrityError> {
        assert_eq!(crashed.len(), self.shards(), "one crashed image per shard");
        let workers = workers.clamp(1, par::MAX_WORKERS);
        let images: Vec<Mutex<Option<CrashedSystem>>> =
            crashed.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let (results, steals) = par::run_regions(workers, images.len(), |s, _w| {
            let img = images[s]
                .lock()
                .unwrap()
                .take()
                .expect("each region runs exactly once")
                .with_recovery_lanes(workers);
            self.recover_shard(s, img)
        });
        let mut reports = Vec::with_capacity(results.len());
        for r in results {
            reports.push(r?);
        }

        let costs: Vec<u64> = reports.iter().map(|r| r.nvm_reads).collect();
        let loads = par::fold_lanes(&costs, workers);
        let makespan_reads = loads.iter().copied().max().unwrap_or(0);
        let total_reads: u64 = costs.iter().sum();
        let mut metrics = MetricRegistry::new();
        for (s, r) in reports.iter().enumerate() {
            metrics.fold_shard(&format!("shard.{s:02}"), &r.metrics);
        }
        metrics.gauge_set("core.par.workers", workers as f64);
        metrics.counter_add("core.par.makespan_reads", makespan_reads);
        metrics.counter_add("core.par.total_reads", total_reads);
        for (l, &load) in loads.iter().enumerate() {
            metrics.counter_add(&format!("par.lane.{l:02}.reads"), load);
        }
        Ok(ParallelRecovery {
            reports,
            workers,
            total_reads,
            makespan_reads,
            steals,
            metrics,
        })
    }

    /// The lenient mirror of [`Self::recover_all`]: scrubs every region in
    /// parallel and merges the per-region verdicts ([`ScrubReport::merge`])
    /// into one whole-engine report whose `unrecoverable_addrs` are
    /// translated back into global byte addresses. Shards whose scheme
    /// yields a rebuilt system are reinstated; WB slots stay empty.
    pub fn scrub_all(
        &self,
        crashed: Vec<CrashedSystem>,
        workers: usize,
    ) -> (Vec<ScrubReport>, ScrubReport) {
        assert_eq!(crashed.len(), self.shards(), "one crashed image per shard");
        let workers = workers.clamp(1, par::MAX_WORKERS);
        let images: Vec<Mutex<Option<CrashedSystem>>> =
            crashed.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let (reports, _steals) = par::run_regions(workers, images.len(), |s, _w| {
            let img = images[s]
                .lock()
                .unwrap()
                .take()
                .expect("each region runs exactly once")
                .with_recovery_lanes(workers);
            self.scrub_shard(s, img)
        });
        let mut merged = ScrubReport::empty(reports[0].scheme.clone(), 0, 0);
        for (s, r) in reports.iter().enumerate() {
            let mut global = r.clone();
            global.unrecoverable_addrs = r
                .unrecoverable_addrs
                .iter()
                .map(|&a| self.map.global_line(s, a / 64) * 64)
                .collect();
            merged.merge(&global);
        }
        (reports, merged)
    }
}

/// Outcome of a whole-engine parallel recovery ([`ShardedEngine::recover_all`]).
///
/// Everything here except `steals` is a pure function of the per-shard
/// recovery reports and the requested worker count — the quantities the
/// recovery ladder's scaling gate and its byte-identical JSON artifact are
/// built from. `steals` reflects the host's actual thread interleaving and
/// must never be exported.
pub struct ParallelRecovery {
    /// Per-shard recovery reports, in shard order.
    pub reports: Vec<RecoveryReport>,
    /// Worker/lane count the recovery (and its modeled fold) ran with.
    pub workers: usize,
    /// Sum of every region's recovery reads.
    pub total_reads: u64,
    /// Modeled makespan: the busiest lane's reads after the deterministic
    /// LPT fold of per-region costs onto `workers` lanes.
    pub makespan_reads: u64,
    /// Work-stealing events observed on the wall-side queue. Varies with
    /// host scheduling; excluded from `metrics` by design.
    pub steals: u64,
    /// Folded registry: per-region `shard.NN.` prefixes, the unprefixed
    /// aggregate, `core.par.*` fold results, and per-lane `par.lane.NN.reads`.
    pub metrics: MetricRegistry,
}

impl ParallelRecovery {
    /// Modeled wall seconds for the fold: `makespan_reads` sequential NVM
    /// reads at `read_ns` nanoseconds each.
    pub fn est_seconds(&self, read_ns: f64) -> f64 {
        self.makespan_reads as f64 * read_ns * 1e-9
    }

    /// Modeled speedup of this fold over a baseline fold of the same work.
    pub fn speedup_over(&self, baseline: &ParallelRecovery) -> f64 {
        baseline.makespan_reads as f64 / self.makespan_reads.max(1) as f64
    }
}

/// A minimized failing point from the sharded sweep.
#[derive(Clone, Debug)]
pub struct ShardRepro {
    /// The shard the crash was armed on.
    pub target: usize,
    /// The (outer) persist point that tripped.
    pub crash_point: u64,
    /// The inner persist point, for nested probes.
    pub inner_point: Option<u64>,
    /// Index of the op in flight when the crash tripped.
    pub op_index: usize,
    /// What went wrong.
    pub error: String,
    /// What diverged.
    pub divergent: String,
}

impl std::fmt::Display for ShardRepro {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} point {}{}: {} ({})",
            self.target,
            self.crash_point,
            self.inner_point
                .map(|j| format!(">{j}"))
                .unwrap_or_default(),
            self.error,
            self.divergent
        )
    }
}

/// Outcome of a sharded sweep.
#[derive(Debug)]
pub struct ShardSweepReport {
    /// Scheme/mode label plus shard count.
    pub label: String,
    /// Shards in the engine.
    pub shards: usize,
    /// Points probed across all target shards.
    pub tested_points: u64,
    /// Every failing point (bounded by the sweep's failure cap).
    pub failures: Vec<ShardRepro>,
}

impl ShardSweepReport {
    /// True when every probed point held the contract.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for ShardSweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} points across {} shards, {} failures",
            self.label,
            self.tested_points,
            self.shards,
            self.failures.len()
        )?;
        for fail in &self.failures {
            write!(f, "\n  {fail}")?;
        }
        Ok(())
    }
}

/// One shard crashed mid-stream, ground truth already reconciled.
struct ShardTornCrash {
    /// The engine with the target slot empty; neighbors are live, possibly
    /// holding CPU-dirty lines and half-drained write queues.
    engine: ShardedEngine,
    /// The power-cut target shard.
    crashed: CrashedSystem,
    op_index: usize,
    /// Global address → payload for every line that must read back.
    expected: HashMap<u64, [u8; 64]>,
    /// Global address of a torn-sacrificed data line (must fail closed).
    sacrificed: Option<u64>,
}

/// The shard-aware persist-boundary fault-injection driver: replays one
/// global op stream through a [`ShardedEngine`], crashes one target shard
/// at an armed persist point, recovers only that shard, drives the rest of
/// the stream across all shards, and verifies the whole address space.
pub struct ShardSweep {
    cfg: SystemConfig,
    shards: usize,
    mode: StripeMode,
    ops: Vec<SweepOp>,
    /// Stop after this many failures (mirrors [`CrashSweep`]).
    pub max_failures: usize,
}

impl ShardSweep {
    /// A sweep of `ops` (global line addresses) against `shards` shards
    /// of `cfg`, interleave-striped.
    pub fn new(cfg: SystemConfig, shards: usize, ops: Vec<SweepOp>) -> Self {
        ShardSweep {
            cfg,
            shards,
            mode: StripeMode::Interleave,
            ops,
            max_failures: 5,
        }
    }

    /// Convenience: the same standard stream [`CrashSweep::small`] uses,
    /// on the small test config, split across `shards` shards.
    pub fn small(scheme: SchemeKind, mode: CounterMode, shards: usize, ops: usize) -> Self {
        let cfg = SystemConfig::small_for_tests(scheme, mode);
        let ops = SweepOp::stream(0x5EED ^ ops as u64, 192, ops);
        ShardSweep::new(cfg, shards, ops)
    }

    fn engine(&self) -> ShardedEngine {
        ShardedEngine::with_mode(self.cfg.clone(), self.shards, self.mode)
    }

    fn apply_op(engine: &ShardedEngine, op: SweepOp) -> Result<(), IntegrityError> {
        match op {
            SweepOp::Write { line, tag } => engine.write(line * 64, &SweepOp::payload(line, tag)),
            SweepOp::Read { line } => engine.read(line * 64).map(|_| ()),
        }
    }

    fn fail(
        &self,
        target: usize,
        k: u64,
        op_index: usize,
        error: impl Into<String>,
        divergent: impl Into<String>,
    ) -> ShardRepro {
        ShardRepro {
            target,
            crash_point: k,
            inner_point: None,
            op_index,
            error: error.into(),
            divergent: divergent.into(),
        }
    }

    /// Runs the stream crash-free, returning each shard's persist-point
    /// count (the per-shard sweep horizons).
    pub fn total_points(&self) -> Result<Vec<u64>, IntegrityError> {
        let engine = self.engine();
        for &op in &self.ops {
            Self::apply_op(&engine, op)?;
        }
        Ok((0..self.shards)
            .map(|s| engine.with_shard(s, |sys| sys.ctrl.nvm.persist_seq()))
            .collect())
    }

    /// Replays the stream with a (possibly torn) crash armed at persist
    /// point `k` of shard `target`. `Ok(None)` when `k` lies beyond that
    /// shard's horizon. Mirrors `CrashSweep::crash_torn`, with addresses
    /// split between the global space (acked/expected maps, routed through
    /// the engine) and the target shard's local space (the device's trip
    /// point and the crashed image's ground truth).
    fn crash_torn(
        &self,
        target: usize,
        k: u64,
        word_mask: u8,
    ) -> Result<Option<ShardTornCrash>, ShardRepro> {
        silence_crash_trips();
        let engine = self.engine();
        engine.with_shard(target, |sys| sys.ctrl.nvm.arm_crash_torn(k, word_mask));

        let mut acked: HashMap<u64, [u8; 64]> = HashMap::new();
        let mut in_flight: Option<(usize, SweepOp)> = None;
        for (i, &op) in self.ops.iter().enumerate() {
            let run = catch_unwind(AssertUnwindSafe(|| Self::apply_op(&engine, op)));
            match run {
                Ok(Ok(())) => {
                    if let SweepOp::Write { line, tag } = op {
                        acked.insert(line * 64, SweepOp::payload(line, tag));
                    }
                }
                Ok(Err(e)) => {
                    return Err(self.fail(
                        target,
                        k,
                        i,
                        format!("integrity error before the crash: {e}"),
                        "runtime state diverged pre-crash",
                    ));
                }
                Err(payload) => {
                    if !payload.is::<CrashTripped>() {
                        std::panic::resume_unwind(payload);
                    }
                    in_flight = Some((i, op));
                    break;
                }
            }
        }
        let Some((op_index, op)) = in_flight else {
            // Armed beyond the target shard's horizon: nothing to test.
            return Ok(None);
        };
        let trip = engine.with_shard(target, |sys| {
            let t = sys.ctrl.nvm.tripped_at();
            sys.ctrl.nvm.disarm_crash();
            t
        });

        // Only the target shard loses power; neighbors keep their CPU-dirty
        // lines and queues. Reconcile the interrupted op exactly like the
        // unsharded sweep: its store is durable iff the tripping transition
        // was the data line's own full write. The trip address is local to
        // the target's device.
        let mut expected = acked.clone();
        let mut crashed = engine.crash_shard(target);
        if let SweepOp::Write { line, tag } = op {
            let gaddr = line * 64;
            let (s_op, laddr) = self.map(&engine).route(gaddr);
            debug_assert_eq!(s_op, target, "crash tripped on an op routed elsewhere");
            let durable = word_mask == 0xFF
                && trip
                    .map(|p| p.kind == PersistKind::LineWrite && p.addr == laddr)
                    .unwrap_or(false);
            if durable {
                let data = SweepOp::payload(line, tag);
                crashed.truth.insert(laddr, data);
                expected.insert(gaddr, data);
            } else {
                match acked.get(&gaddr) {
                    Some(v) => {
                        crashed.truth.insert(laddr, *v);
                    }
                    None => {
                        crashed.truth.remove(&laddr);
                    }
                }
            }
        }

        // A partial tear of a data line sacrifices that line (in-place
        // overwrite mixed old and new words): it must fail closed.
        let mut sacrificed = None;
        if word_mask != 0xFF {
            if let Some(p) = trip {
                if p.kind == PersistKind::LineWrite && crashed.layout.is_data(p.addr) {
                    let gaddr = self.map(&engine).global_line(target, p.addr / 64) * 64;
                    sacrificed = Some(gaddr);
                    expected.remove(&gaddr);
                    crashed.truth.remove(&p.addr);
                }
            }
        }

        Ok(Some(ShardTornCrash {
            engine,
            crashed,
            op_index,
            expected,
            sacrificed,
        }))
    }

    fn map<'a>(&self, engine: &'a ShardedEngine) -> &'a ShardMap {
        engine.map()
    }

    /// Verifies the whole engine after the target shard was reinstated:
    /// every acknowledged line on every shard reads back through the
    /// router, the sacrificed line (if any) fails closed, every shard's
    /// LInc registers match a recomputation, and the target's journal is
    /// stamped by the target. With `neighbors_idle` the non-target shards
    /// must still hold a pristine `IDLE` journal (single-shard outage);
    /// without it (whole-engine parallel recovery) they must instead hold a
    /// finished journal stamped by themselves.
    #[allow(clippy::too_many_arguments)]
    fn verify(
        &self,
        engine: &ShardedEngine,
        target: usize,
        k: u64,
        op_index: usize,
        expected: &HashMap<u64, [u8; 64]>,
        sacrificed: Option<u64>,
        neighbors_idle: bool,
    ) -> Result<(), ShardRepro> {
        let mut lines: Vec<u64> = expected.keys().copied().collect();
        lines.sort_unstable();
        for gaddr in lines {
            let want = expected[&gaddr];
            match engine.read(gaddr) {
                Ok(got) if got == want => {}
                Ok(got) => {
                    return Err(self.fail(
                        target,
                        k,
                        op_index,
                        format!("acked write at {gaddr:#x} diverged after recovery"),
                        format!(
                            "shard {} local line {}: got {:02x?}…, want {:02x?}…",
                            self.map(engine).shard_of(gaddr / 64),
                            self.map(engine).local_line(gaddr / 64),
                            &got[..8],
                            &want[..8]
                        ),
                    ));
                }
                Err(e) => {
                    return Err(self.fail(
                        target,
                        k,
                        op_index,
                        format!("read-back of {gaddr:#x} failed: {e}"),
                        format!("owned by shard {}", self.map(engine).shard_of(gaddr / 64)),
                    ));
                }
            }
        }

        if let Some(gaddr) = sacrificed {
            if engine.read(gaddr).is_ok() {
                return Err(self.fail(
                    target,
                    k,
                    op_index,
                    format!("torn data line {gaddr:#x} read back Ok"),
                    "a torn line must fail its MAC, never return mixed words",
                ));
            }
        }

        for s in 0..self.shards {
            let bad = engine.with_shard(s, |sys| {
                if let (Some(stored), Some(expect)) = (sys.ctrl.lincs(), sys.ctrl.recompute_lincs())
                {
                    if stored != expect {
                        return Some(format!(
                            "shard {s} lincs stored {stored:?} != recomputed {expect:?}"
                        ));
                    }
                }
                let owner = sys.ctrl.nvm.journal_owner();
                let phase = sys.ctrl.nvm.recovery_journal().phase;
                if s == target {
                    if owner != s as u16 {
                        return Some(format!(
                            "recovered shard {s} journal stamped by shard {owner}"
                        ));
                    }
                } else if neighbors_idle {
                    if phase != journal::IDLE {
                        return Some(format!(
                            "untouched shard {s} journal left phase {phase} (owner {owner})"
                        ));
                    }
                } else if journal::in_progress(phase) || owner != s as u16 {
                    return Some(format!(
                        "co-recovered shard {s} journal left phase {phase} (owner {owner})"
                    ));
                }
                None
            });
            if let Some(divergent) = bad {
                return Err(self.fail(
                    target,
                    k,
                    op_index,
                    "per-shard state inconsistent after recovery",
                    divergent,
                ));
            }
        }
        Ok(())
    }

    /// Probes one clean (untorn) crash point on `target`: crash, strict
    /// per-shard recovery, then the rest of the stream runs across *all*
    /// shards — the recovered shard keeps working and the neighbors were
    /// never interrupted — before the whole space is verified.
    pub fn probe_point(&self, target: usize, k: u64) -> Option<ShardRepro> {
        self.test_point(target, k).err()
    }

    fn test_point(&self, target: usize, k: u64) -> Result<(), ShardRepro> {
        let Some(tc) = self.crash_torn(target, k, 0xFF)? else {
            return Ok(());
        };
        let ShardTornCrash {
            engine,
            crashed,
            op_index,
            mut expected,
            sacrificed,
        } = tc;

        if !crashed.recoverable() {
            return match crashed.recover() {
                Err(IntegrityError::RecoveryUnsupported) => Ok(()),
                other => Err(self.fail(
                    target,
                    k,
                    op_index,
                    format!(
                        "WB must refuse recovery, got {:?}",
                        other.as_ref().err().map(|e| e.to_string())
                    ),
                    "n/a",
                )),
            };
        }

        match engine.recover_shard(target, crashed) {
            Ok(report) => {
                let restarts = report
                    .metrics
                    .counter("core.recovery.restarts")
                    .unwrap_or(0);
                if restarts != 0 {
                    return Err(self.fail(
                        target,
                        k,
                        op_index,
                        format!("first recovery reported {restarts} restarts"),
                        "a single crash starts from an idle journal",
                    ));
                }
            }
            Err(e) => {
                return Err(self.fail(
                    target,
                    k,
                    op_index,
                    format!("strict recovery of an untorn crash failed: {e}"),
                    "whole-line persists must always recover strictly",
                ));
            }
        }

        // Neighbor liveness + recovered-shard liveness: the rest of the
        // stream (skipping the interrupted op, whose ack never reached the
        // caller) runs across every shard.
        for (i, &op) in self.ops.iter().enumerate().skip(op_index + 1) {
            Self::apply_op(&engine, op).map_err(|e| {
                self.fail(
                    target,
                    k,
                    i,
                    format!("post-recovery op failed: {e}"),
                    "all shards must keep accepting the stream after one shard recovers",
                )
            })?;
            if let SweepOp::Write { line, tag } = op {
                expected.insert(line * 64, SweepOp::payload(line, tag));
            }
        }

        self.verify(&engine, target, k, op_index, &expected, sacrificed, true)
    }

    /// Probes one torn crash point on `target`: only `word_mask`'s 8-byte
    /// words of the tripping line persist. Strict recovery either succeeds
    /// (verified immediately) or errors cleanly, in which case the lenient
    /// scrub must salvage everything except the sacrificed line.
    pub fn probe_point_torn(&self, target: usize, k: u64, word_mask: u8) -> Option<ShardRepro> {
        self.test_point_torn(target, k, word_mask).err()
    }

    fn test_point_torn(&self, target: usize, k: u64, word_mask: u8) -> Result<(), ShardRepro> {
        if word_mask == 0xFF {
            return self.test_point(target, k);
        }
        let Some(tc) = self.crash_torn(target, k, word_mask)? else {
            return Ok(());
        };
        let ShardTornCrash {
            engine,
            crashed,
            op_index,
            expected,
            sacrificed,
        } = tc;

        if !crashed.recoverable() {
            return match crashed.recover() {
                Err(IntegrityError::RecoveryUnsupported) => Ok(()),
                other => Err(self.fail(
                    target,
                    k,
                    op_index,
                    format!(
                        "WB must refuse recovery, got {:?}",
                        other.as_ref().err().map(|e| e.to_string())
                    ),
                    "n/a",
                )),
            };
        }

        match engine.recover_shard(target, crashed) {
            Ok(_report) => self.verify(&engine, target, k, op_index, &expected, sacrificed, true),
            Err(_strict) => {
                // The torn line legitimately defeated fail-stop recovery.
                // Reproduce (deterministic replay) and scrub the target;
                // the engine's slot gets the rebuilt machine back.
                let Some(tc2) = self.crash_torn(target, k, word_mask)? else {
                    return Ok(());
                };
                let engine2 = tc2.engine;
                let report = engine2.scrub_shard(target, tc2.crashed);
                for &gaddr in report.unrecoverable_addrs.iter() {
                    let g = self.map(&engine2).global_line(target, gaddr / 64) * 64;
                    if tc2.expected.contains_key(&g) {
                        return Err(self.fail(
                            target,
                            k,
                            op_index,
                            format!("scrub lost acked line {g:#x}"),
                            "the scrub may only lose the sacrificed torn line",
                        ));
                    }
                }
                self.verify(
                    &engine2,
                    target,
                    k,
                    op_index,
                    &tc2.expected,
                    tc2.sacrificed,
                    true,
                )
            }
        }
    }

    /// Enumerates the persist points the target shard's *recovery itself*
    /// fires after a clean crash at `k` (absolute sequence numbers — the
    /// device's persist clock keeps counting across the crash). Empty when
    /// `k` is beyond the horizon or the scheme cannot recover.
    pub fn recovery_points(&self, target: usize, k: u64) -> Result<Vec<u64>, ShardRepro> {
        let Some(tc) = self.crash_torn(target, k, 0xFF)? else {
            return Ok(Vec::new());
        };
        let mut crashed = tc.crashed;
        if !crashed.recoverable() {
            return Ok(Vec::new());
        }
        crashed.nvm_mut().trace_pokes(true);
        crashed.nvm_mut().journal_points(true);
        let mut slot = None;
        if crashed.recover_into(&mut slot).is_ok() {
            let sys = slot.take().expect("recovery parks the rebuilt system");
            return Ok(sys.ctrl.nvm.point_journal().iter().map(|p| p.seq).collect());
        }
        Ok(Vec::new())
    }

    /// Probes one nested point: a clean crash on `target` at `k`, a second
    /// crash at absolute persist point `j` *during that shard's recovery*,
    /// then a second recovery. The contract: the interrupted shard's second
    /// recovery reports `core.recovery.restarts ≥ 1` (unless the inner
    /// crash landed after the journal already read `DONE`), and untouched
    /// shards stay pristine.
    pub fn probe_point_nested(&self, target: usize, k: u64, j: u64) -> Option<ShardRepro> {
        self.test_point_nested(target, k, j)
            .map_err(|mut r| {
                r.inner_point = Some(j);
                r
            })
            .err()
    }

    fn test_point_nested(&self, target: usize, k: u64, j: u64) -> Result<(), ShardRepro> {
        let Some(tc) = self.crash_torn(target, k, 0xFF)? else {
            return Ok(());
        };
        let ShardTornCrash {
            engine,
            mut crashed,
            op_index,
            expected,
            sacrificed,
        } = tc;

        if !crashed.recoverable() {
            return match crashed.recover() {
                Err(IntegrityError::RecoveryUnsupported) => Ok(()),
                _ => Err(self.fail(
                    target,
                    k,
                    op_index,
                    "WB must refuse recovery under nested injection",
                    "n/a",
                )),
            };
        }

        crashed.nvm_mut().trace_pokes(true);
        crashed.nvm_mut().arm_crash_torn(j, 0xFF);
        let mut slot = None;
        let outcome = catch_unwind(AssertUnwindSafe(|| crashed.recover_into(&mut slot)));
        match outcome {
            Ok(Ok(_report)) => {
                // Inner point beyond recovery's horizon: single recovery.
                let Some(mut sys) = slot.take() else {
                    return Err(self.fail(
                        target,
                        k,
                        op_index,
                        "recovery returned Ok without parking the system",
                        "recover_into must fill the caller's slot",
                    ));
                };
                sys.ctrl.nvm.disarm_crash();
                sys.ctrl.nvm.trace_pokes(false);
                engine.put_shard(target, sys);
                self.verify(&engine, target, k, op_index, &expected, sacrificed, true)
            }
            Ok(Err(e)) => Err(self.fail(
                target,
                k,
                op_index,
                format!("clean nested crash {k}>{j} failed strict recovery: {e}"),
                "untorn nested crashes must recover strictly",
            )),
            Err(payload) => {
                if !payload.is::<CrashTripped>() {
                    std::panic::resume_unwind(payload);
                }
                let Some(mut partial) = slot.take() else {
                    return Err(self.fail(
                        target,
                        k,
                        op_index,
                        format!("inner crash at {j} tripped before recovery parked the system"),
                        "recovery must park before its first durable write",
                    ));
                };
                partial.ctrl.nvm.disarm_crash();
                partial.ctrl.nvm.trace_pokes(false);
                let crashed2 = partial.crash();
                let finished = !journal::in_progress(crashed2.nvm().recovery_journal().phase);
                match engine.recover_shard(target, crashed2) {
                    Ok(report2) => {
                        let restarts = report2
                            .metrics
                            .counter("core.recovery.restarts")
                            .unwrap_or(0);
                        if restarts == 0 && !finished {
                            return Err(self.fail(
                                target,
                                k,
                                op_index,
                                format!(
                                    "second recovery after inner crash at {j} reported no restart"
                                ),
                                "the shard's own ADR journal must record the interrupted attempt",
                            ));
                        }
                        self.verify(&engine, target, k, op_index, &expected, sacrificed, true)
                    }
                    Err(strict) => Err(self.fail(
                        target,
                        k,
                        op_index,
                        format!("clean nested crash {k}>{j} failed second recovery: {strict}"),
                        "untorn nested crashes must recover strictly",
                    )),
                }
            }
        }
    }

    /// Probes one *worker* crash: a clean crash on `target` at `k`, then a
    /// whole-engine outage (neighbors power-cut at their own op
    /// boundaries), then a parallel [`ShardedEngine::recover_all`]-style
    /// rebuild by `workers` threads with a second crash armed at absolute
    /// persist point `j` on the target's device. The worker driving the
    /// target's region trips mid-rebuild and is caught in its region job;
    /// every other worker's region must finish untouched. The target is
    /// then crashed again and strictly re-recovered; its ADR journal (now
    /// carrying per-lane marks) must report `core.recovery.restarts ≥ 1`
    /// unless the inner crash landed after `DONE`.
    pub fn probe_point_worker_crash(
        &self,
        target: usize,
        k: u64,
        j: u64,
        workers: usize,
    ) -> Option<ShardRepro> {
        self.test_point_worker_crash(target, k, j, workers)
            .map_err(|mut r| {
                r.inner_point = Some(j);
                r
            })
            .err()
    }

    fn test_point_worker_crash(
        &self,
        target: usize,
        k: u64,
        j: u64,
        workers: usize,
    ) -> Result<(), ShardRepro> {
        enum Region {
            Done(u64),
            Tripped,
            Failed(String),
        }

        let Some(tc) = self.crash_torn(target, k, 0xFF)? else {
            return Ok(());
        };
        let ShardTornCrash {
            engine,
            mut crashed,
            op_index,
            mut expected,
            sacrificed,
        } = tc;

        if !crashed.recoverable() {
            return match crashed.recover() {
                Err(IntegrityError::RecoveryUnsupported) => Ok(()),
                _ => Err(self.fail(
                    target,
                    k,
                    op_index,
                    "WB must refuse recovery under worker-crash injection",
                    "n/a",
                )),
            };
        }

        // Whole-engine outage: the target crashed mid-op (already
        // reconciled); every neighbor loses power at its own op boundary.
        // The inner crash is armed on the target's device only.
        crashed.nvm_mut().arm_crash_torn(j, 0xFF);
        let mut target_img = Some(crashed);
        let images: Vec<Mutex<Option<CrashedSystem>>> = (0..self.shards)
            .map(|s| {
                Mutex::new(Some(if s == target {
                    target_img.take().expect("one target image")
                } else {
                    engine.crash_shard(s)
                }))
            })
            .collect();

        let workers = workers.clamp(1, par::MAX_WORKERS);
        let partials: Vec<Mutex<Option<SecureNvmSystem>>> =
            (0..self.shards).map(|_| Mutex::new(None)).collect();
        let (outcomes, _steals) = par::run_regions(workers, self.shards, |s, _w| {
            let img = images[s]
                .lock()
                .unwrap()
                .take()
                .expect("each region runs exactly once")
                .with_recovery_lanes(workers);
            let mut slot = None;
            match catch_unwind(AssertUnwindSafe(|| img.recover_into(&mut slot))) {
                Ok(Ok(report)) => {
                    let Some(mut sys) = slot.take() else {
                        return Region::Failed("recovery returned Ok without parking".into());
                    };
                    sys.ctrl.nvm.disarm_crash();
                    engine.put_shard(s, sys);
                    Region::Done(
                        report
                            .metrics
                            .counter("core.recovery.restarts")
                            .unwrap_or(0),
                    )
                }
                Ok(Err(e)) => Region::Failed(format!("strict recovery failed: {e}")),
                Err(payload) => {
                    if !payload.is::<CrashTripped>() {
                        std::panic::resume_unwind(payload);
                    }
                    match slot.take() {
                        Some(mut partial) => {
                            partial.ctrl.nvm.disarm_crash();
                            *partials[s].lock().unwrap() = Some(partial);
                            Region::Tripped
                        }
                        None => Region::Failed(
                            "inner crash tripped before recovery parked the system".into(),
                        ),
                    }
                }
            }
        });

        let mut target_finished = true;
        for (s, outcome) in outcomes.iter().enumerate() {
            match outcome {
                Region::Done(restarts) => {
                    if *restarts != 0 {
                        return Err(self.fail(
                            target,
                            k,
                            op_index,
                            format!("uninterrupted region {s} reported {restarts} restarts"),
                            "only the crashed worker's region may restart",
                        ));
                    }
                }
                Region::Tripped => {
                    if s != target {
                        return Err(self.fail(
                            target,
                            k,
                            op_index,
                            format!("inner crash armed on shard {target} tripped region {s}"),
                            "regions recover off their own devices",
                        ));
                    }
                    target_finished = false;
                }
                Region::Failed(e) => {
                    return Err(self.fail(
                        target,
                        k,
                        op_index,
                        format!("region {s}: {e}"),
                        "untorn parallel regions must recover strictly",
                    ));
                }
            }
        }

        if !target_finished {
            // Re-crash the interrupted worker's region and recover it
            // strictly; its journal must carry the interrupted attempt.
            let partial = partials[target]
                .lock()
                .unwrap()
                .take()
                .expect("tripped region parks its partial");
            let crashed2 = partial.crash();
            let finished = !journal::in_progress(crashed2.nvm().recovery_journal().phase);
            match engine.recover_shard(target, crashed2) {
                Ok(report2) => {
                    let restarts = report2
                        .metrics
                        .counter("core.recovery.restarts")
                        .unwrap_or(0);
                    if restarts == 0 && !finished {
                        return Err(self.fail(
                            target,
                            k,
                            op_index,
                            format!(
                                "second recovery after worker crash at {j} reported no restart"
                            ),
                            "the worker's lane marks must survive in the shard's ADR journal",
                        ));
                    }
                }
                Err(e) => {
                    return Err(self.fail(
                        target,
                        k,
                        op_index,
                        format!("worker crash {k}>{j} failed second recovery: {e}"),
                        "untorn nested crashes must recover strictly",
                    ));
                }
            }
        }

        // Liveness: every shard keeps serving the rest of the stream after
        // the parallel recovery, then the whole space verifies. Neighbors
        // were co-recovered, so their journals read DONE, not IDLE.
        for (i, &op) in self.ops.iter().enumerate().skip(op_index + 1) {
            Self::apply_op(&engine, op).map_err(|e| {
                self.fail(
                    target,
                    k,
                    i,
                    format!("post-recovery op failed: {e}"),
                    "all shards must keep serving after a parallel recovery",
                )
            })?;
            if let SweepOp::Write { line, tag } = op {
                expected.insert(line * 64, SweepOp::payload(line, tag));
            }
        }
        self.verify(&engine, target, k, op_index, &expected, sacrificed, false)
    }

    /// The worker-crash sweep: for every target shard and selected outer
    /// point, the inner points recovery itself fires are probed as worker
    /// crashes under a `workers`-thread parallel rebuild (bounded by
    /// `inner_sel`), plus one synthetic beyond-horizon inner point when
    /// recovery fires none.
    pub fn run_worker_crashes(
        &self,
        outer_sel: PointSelection,
        inner_sel: PointSelection,
        workers: usize,
    ) -> ShardSweepReport {
        let label = format!(
            "{} x{} sharded worker-crash w{workers}",
            self.cfg.scheme.label(self.cfg.mode),
            self.shards
        );
        let totals = match self.total_points() {
            Ok(t) => t,
            Err(e) => {
                return ShardSweepReport {
                    label,
                    shards: self.shards,
                    tested_points: 0,
                    failures: vec![ShardRepro {
                        target: 0,
                        crash_point: 0,
                        inner_point: None,
                        op_index: 0,
                        error: format!("baseline run failed: {e}"),
                        divergent: "stream does not complete without a crash".into(),
                    }],
                };
            }
        };
        let mut tested = 0u64;
        let mut failures = Vec::new();
        'sweep: for (target, &total) in totals.iter().enumerate() {
            let outers = CrashSweep::select_with(outer_sel, (1..=total).collect());
            for k in outers {
                let inner = match self.recovery_points(target, k) {
                    Ok(pts) if pts.is_empty() => vec![k + 1],
                    Ok(pts) => CrashSweep::select_with(inner_sel, pts),
                    Err(fail) => {
                        failures.push(fail);
                        if failures.len() >= self.max_failures {
                            break 'sweep;
                        }
                        continue;
                    }
                };
                for j in inner {
                    tested += 1;
                    if let Some(fail) = self.probe_point_worker_crash(target, k, j, workers) {
                        failures.push(fail);
                        if failures.len() >= self.max_failures {
                            break 'sweep;
                        }
                    }
                }
            }
        }
        ShardSweepReport {
            label,
            shards: self.shards,
            tested_points: tested,
            failures,
        }
    }

    /// The full sweep: for every target shard, every selected persist point
    /// gets the clean-crash probe; when `word_masks` holds torn masks each
    /// selected point is additionally probed torn.
    pub fn run(&self, selection: PointSelection, word_masks: &[u8]) -> ShardSweepReport {
        let label = format!(
            "{} x{} sharded",
            self.cfg.scheme.label(self.cfg.mode),
            self.shards
        );
        let totals = match self.total_points() {
            Ok(t) => t,
            Err(e) => {
                return ShardSweepReport {
                    label,
                    shards: self.shards,
                    tested_points: 0,
                    failures: vec![ShardRepro {
                        target: 0,
                        crash_point: 0,
                        inner_point: None,
                        op_index: 0,
                        error: format!("baseline run failed: {e}"),
                        divergent: "stream does not complete without a crash".into(),
                    }],
                };
            }
        };
        let mut tested = 0u64;
        let mut failures = Vec::new();
        'sweep: for (target, &total) in totals.iter().enumerate() {
            let points = CrashSweep::select_with(selection, (1..=total).collect());
            for k in points {
                for &mask in word_masks {
                    tested += 1;
                    if let Some(fail) = self.probe_point_torn(target, k, mask) {
                        failures.push(fail);
                        if failures.len() >= self.max_failures {
                            break 'sweep;
                        }
                    }
                }
            }
        }
        ShardSweepReport {
            label,
            shards: self.shards,
            tested_points: tested,
            failures,
        }
    }

    /// The nested sweep: for every target shard and selected outer point,
    /// the inner points recovery itself fires are probed (bounded by
    /// `inner_sel`), plus one synthetic beyond-horizon inner point when
    /// recovery fires none.
    pub fn run_nested(
        &self,
        outer_sel: PointSelection,
        inner_sel: PointSelection,
    ) -> ShardSweepReport {
        let label = format!(
            "{} x{} sharded nested",
            self.cfg.scheme.label(self.cfg.mode),
            self.shards
        );
        let totals = match self.total_points() {
            Ok(t) => t,
            Err(e) => {
                return ShardSweepReport {
                    label,
                    shards: self.shards,
                    tested_points: 0,
                    failures: vec![ShardRepro {
                        target: 0,
                        crash_point: 0,
                        inner_point: None,
                        op_index: 0,
                        error: format!("baseline run failed: {e}"),
                        divergent: "stream does not complete without a crash".into(),
                    }],
                };
            }
        };
        let mut tested = 0u64;
        let mut failures = Vec::new();
        'sweep: for (target, &total) in totals.iter().enumerate() {
            let outers = CrashSweep::select_with(outer_sel, (1..=total).collect());
            for k in outers {
                let inner = match self.recovery_points(target, k) {
                    Ok(pts) if pts.is_empty() => vec![k + 1],
                    Ok(pts) => CrashSweep::select_with(inner_sel, pts),
                    Err(fail) => {
                        failures.push(fail);
                        if failures.len() >= self.max_failures {
                            break 'sweep;
                        }
                        continue;
                    }
                };
                for j in inner {
                    tested += 1;
                    if let Some(fail) = self.probe_point_nested(target, k, j) {
                        failures.push(fail);
                        if failures.len() >= self.max_failures {
                            break 'sweep;
                        }
                    }
                }
            }
        }
        ShardSweepReport {
            label,
            shards: self.shards,
            tested_points: tested,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use steins_metadata::CounterMode;

    fn small(scheme: SchemeKind) -> SystemConfig {
        SystemConfig::small_for_tests(scheme, CounterMode::General)
    }

    #[test]
    fn routed_writes_read_back_across_shards() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 4);
        for line in 0..64u64 {
            let data = SweepOp::payload(line, 7);
            engine.write(line * 64, &data).unwrap();
        }
        for line in 0..64u64 {
            assert_eq!(engine.read(line * 64).unwrap(), SweepOp::payload(line, 7));
        }
        // Every shard saw exactly its stripe.
        for s in 0..4 {
            let writes = engine.with_shard(s, |sys| sys.ctrl.nvm.stats().writes);
            assert!(writes > 0, "shard {s} never touched");
        }
    }

    #[test]
    fn split_config_divides_lines_and_cache() {
        let cfg = small(SchemeKind::Steins);
        let per = ShardedEngine::split_config(&cfg, 4);
        assert_eq!(per.data_lines, cfg.data_lines / 4);
        assert!(per.meta_cache.capacity_bytes <= cfg.meta_cache.capacity_bytes / 4);
    }

    #[test]
    fn crash_one_shard_neighbors_keep_serving() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..32u64 {
            engine.write(line * 64, &SweepOp::payload(line, 3)).unwrap();
        }
        let crashed = engine.crash_shard(0);
        // Shard 1 still serves reads and writes while shard 0 is down.
        let m = *engine.map();
        let line1 = (0..32u64).find(|&l| m.shard_of(l) == 1).unwrap();
        assert_eq!(engine.read(line1 * 64).unwrap(), SweepOp::payload(line1, 3));
        engine
            .write(line1 * 64, &SweepOp::payload(line1, 9))
            .unwrap();
        // Recover shard 0 and verify its stripe.
        engine.recover_shard(0, crashed).unwrap();
        for line in (0..32u64).filter(|&l| m.shard_of(l) == 0) {
            assert_eq!(engine.read(line * 64).unwrap(), SweepOp::payload(line, 3));
        }
        assert_eq!(engine.read(line1 * 64).unwrap(), SweepOp::payload(line1, 9));
    }

    #[test]
    fn recovery_report_carries_shard_gauge() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 1)).unwrap();
        }
        let crashed = engine.crash_shard(1);
        let report = engine.recover_shard(1, crashed).unwrap();
        assert_eq!(report.metrics.gauge("core.recovery.shard"), Some(1.0));
        engine.with_shard(1, |sys| {
            assert_eq!(sys.ctrl.nvm.journal_owner(), 1);
        });
        engine.with_shard(0, |sys| {
            assert_eq!(sys.ctrl.nvm.recovery_journal().phase, journal::IDLE);
        });
    }

    #[test]
    #[should_panic(expected = "into slot")]
    fn put_shard_rejects_foreign_machine() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        let sys = engine.take_shard(1);
        engine.put_shard(0, sys);
    }

    #[test]
    fn report_folds_per_shard_prefixes() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 1)).unwrap();
        }
        let m = engine.report();
        let agg = m.counter("nvm.device.writes").unwrap_or(0);
        let s0 = m.counter("shard.00.nvm.device.writes").unwrap_or(0);
        let s1 = m.counter("shard.01.nvm.device.writes").unwrap_or(0);
        assert!(s0 > 0 && s1 > 0);
        assert_eq!(agg, s0 + s1, "aggregate must be the sum of the shards");
    }

    #[test]
    fn sim_cycles_scale_down_with_shards() {
        let cfg = small(SchemeKind::Steins);
        let serial = ShardedEngine::new(cfg.clone(), 1);
        let quad = ShardedEngine::new(cfg, 4);
        for line in 0..256u64 {
            let data = SweepOp::payload(line, 5);
            serial.write(line * 64, &data).unwrap();
            quad.write(line * 64, &data).unwrap();
        }
        let (one, four) = (serial.sim_cycles(), quad.sim_cycles());
        assert!(one > 0 && four > 0);
        assert!(
            (one as f64) / (four as f64) >= 3.0,
            "4 shards must cut the makespan ≥3x: serial {one}, sharded {four}"
        );
    }

    /// The cross-shard smoke contract: crash each shard at sampled persist
    /// points while its neighbor is mid-write; both shards' recovered
    /// state verifies. (The full four-scheme sweep lives in the
    /// integration tests.)
    #[test]
    fn cross_shard_crash_smoke() {
        let cfg = small(SchemeKind::Steins);
        let ops = SweepOp::stream(11, cfg.data_lines.min(64), 40);
        let sweep = ShardSweep::new(cfg, 2, ops);
        let totals = sweep.total_points().unwrap();
        for (target, &total) in totals.iter().enumerate() {
            let points = CrashSweep::select_with(PointSelection::AtMost(3), (1..=total).collect());
            for k in points {
                assert!(
                    sweep.probe_point(target, k).is_none(),
                    "shard {target} point {k} failed"
                );
            }
        }
    }

    #[test]
    fn wb_refuses_sharded_recovery_at_every_point() {
        let cfg = small(SchemeKind::WriteBack);
        let ops = SweepOp::stream(5, cfg.data_lines.min(64), 24);
        let sweep = ShardSweep::new(cfg, 2, ops);
        let report = sweep.run(PointSelection::AtMost(2), &[0xFF]);
        assert!(report.clean(), "{report}");
        assert!(report.tested_points > 0);
    }

    #[test]
    fn nested_crash_restarts_only_the_interrupted_shard() {
        let cfg = small(SchemeKind::Steins);
        let ops = SweepOp::stream(23, cfg.data_lines.min(64), 32);
        let sweep = ShardSweep::new(cfg, 2, ops);
        let report = sweep.run_nested(PointSelection::AtMost(2), PointSelection::AtMost(2));
        assert!(report.clean(), "{report}");
        assert!(report.tested_points > 0);
    }

    fn dirtied(shards: usize, lines: u64) -> ShardedEngine {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), shards);
        for line in 0..lines {
            engine.write(line * 64, &SweepOp::payload(line, 6)).unwrap();
        }
        engine
    }

    #[test]
    fn parallel_recover_all_restores_every_shard() {
        let engine = dirtied(4, 64);
        let images = engine.crash_all();
        let pr = engine.recover_all(images, 4).unwrap();
        assert_eq!(pr.reports.len(), 4);
        assert_eq!(pr.workers, 4);
        assert_eq!(
            pr.total_reads,
            pr.reports.iter().map(|r| r.nvm_reads).sum::<u64>()
        );
        assert!(pr.makespan_reads <= pr.total_reads);
        assert!(pr.makespan_reads >= pr.total_reads.div_ceil(4));
        assert_eq!(
            pr.metrics.counter("core.par.makespan_reads"),
            Some(pr.makespan_reads)
        );
        for line in 0..64u64 {
            assert_eq!(engine.read(line * 64).unwrap(), SweepOp::payload(line, 6));
        }
        for s in 0..4 {
            engine.with_shard(s, |sys| {
                assert_eq!(sys.ctrl.nvm.journal_owner(), s as u16);
                assert_eq!(sys.ctrl.nvm.recovery_journal().phase, journal::DONE);
            });
        }
    }

    #[test]
    fn worker_count_changes_makespan_but_not_shard_reports() {
        let run = |workers: usize| {
            let engine = dirtied(4, 96);
            let images = engine.crash_all();
            engine.recover_all(images, workers).unwrap()
        };
        let serial = run(1);
        let quad = run(4);
        assert_eq!(serial.makespan_reads, serial.total_reads);
        assert_eq!(serial.total_reads, quad.total_reads);
        assert!(
            quad.speedup_over(&serial) >= 3.0,
            "4 balanced regions must fold ≥3x: serial {} quad {}",
            serial.makespan_reads,
            quad.makespan_reads
        );
        // The per-shard reports — journals, verification work, exported
        // metrics — are identical whichever worker count rebuilt them.
        for (a, b) in serial.reports.iter().zip(&quad.reports) {
            assert_eq!(a.nvm_reads, b.nvm_reads);
            assert_eq!(
                a.metrics.to_json_deterministic().pretty(),
                b.metrics.to_json_deterministic().pretty()
            );
        }
    }

    #[test]
    fn parallel_scrub_all_merges_region_verdicts() {
        let engine = dirtied(4, 64);
        let images = engine.crash_all();
        let (reports, merged) = engine.scrub_all(images, 4);
        assert_eq!(reports.len(), 4);
        assert_eq!(
            merged.data_intact,
            reports.iter().map(|r| r.data_intact).sum::<u64>()
        );
        assert_eq!(merged.data_unrecoverable, 0, "{merged}");
        for line in 0..64u64 {
            assert_eq!(engine.read(line * 64).unwrap(), SweepOp::payload(line, 6));
        }
    }

    #[test]
    fn requests_to_taken_shard_fail_typed_not_panicking() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 2)).unwrap();
        }
        let m = *engine.map();
        let _img = engine.crash_shard(0);
        let line0 = (0..16u64).find(|&l| m.shard_of(l) == 0).unwrap();
        let line1 = (0..16u64).find(|&l| m.shard_of(l) == 1).unwrap();
        assert_eq!(
            engine.write(line0 * 64, &[0; 64]),
            Err(IntegrityError::ShardDegraded { shard: 0 })
        );
        assert_eq!(
            engine.read(line0 * 64),
            Err(IntegrityError::ShardDegraded { shard: 0 })
        );
        // The neighbor is untouched by the typed failure.
        assert_eq!(engine.read(line1 * 64).unwrap(), SweepOp::payload(line1, 2));
    }

    #[test]
    fn poisoned_shard_parks_degraded_and_recovers_via_scrub() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 4)).unwrap();
        }
        let m = *engine.map();
        let line0 = (0..16u64).find(|&l| m.shard_of(l) == 0).unwrap();
        let line1 = (0..16u64).find(|&l| m.shard_of(l) == 1).unwrap();
        // Poison shard 0's mutex: a holder panics mid-operation.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            engine.with_shard(0, |_| panic!("holder dies mid-op"));
        }));
        std::panic::set_hook(prev);
        assert!(unwound.is_err());
        // The next request parks the shard Degraded and fails typed — it
        // must not propagate the panic, and neighbors keep serving.
        assert_eq!(
            engine.read(line0 * 64),
            Err(IntegrityError::ShardDegraded { shard: 0 })
        );
        assert!(engine.is_degraded(0));
        assert_eq!(engine.degraded_shards(), vec![0]);
        assert_eq!(engine.read(line1 * 64).unwrap(), SweepOp::payload(line1, 4));
        assert_eq!(engine.report().gauge("core.shards.degraded"), Some(1.0));
        // Operator path: park (taking the suspect system), scrub offline,
        // reinstate. put_shard clears the flag.
        let suspect = engine.park_degraded(0).expect("system still in slot");
        let report = engine.scrub_shard(0, suspect.crash());
        assert!(report.clean(), "{report}");
        assert!(!engine.is_degraded(0));
        assert_eq!(engine.read(line0 * 64).unwrap(), SweepOp::payload(line0, 4));
    }

    #[test]
    fn unrebuildable_scrub_parks_shard_degraded() {
        let engine = ShardedEngine::new(small(SchemeKind::WriteBack), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 8)).unwrap();
        }
        let m = *engine.map();
        let crashed = engine.crash_shard(1);
        // WB has no metadata redundancy: the scrub classifies but cannot
        // rebuild, so the shard parks Degraded instead of panicking.
        let report = engine.scrub_shard(1, crashed);
        assert!(report.data_intact > 0);
        assert!(engine.is_degraded(1));
        let line1 = (0..16u64).find(|&l| m.shard_of(l) == 1).unwrap();
        assert_eq!(
            engine.read(line1 * 64),
            Err(IntegrityError::ShardDegraded { shard: 1 })
        );
        // Shard 0 never noticed.
        let line0 = (0..16u64).find(|&l| m.shard_of(l) == 0).unwrap();
        assert_eq!(engine.read(line0 * 64).unwrap(), SweepOp::payload(line0, 8));
    }

    /// Poisons shard `s`'s mutex (a holder panics mid-operation) and
    /// triggers the park via the next routed request.
    fn poison_shard(engine: &ShardedEngine, s: usize) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            engine.with_shard(s, |_| panic!("holder dies mid-op"));
        }));
        std::panic::set_hook(prev);
        assert!(unwound.is_err());
    }

    #[test]
    fn repair_restores_poisoned_shard_and_replays_quarantine() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 4)).unwrap();
        }
        engine.enable_online(OnlinePolicy::default());
        let m = *engine.map();
        let line0 = (0..16u64).find(|&l| m.shard_of(l) == 0).unwrap();
        let line1 = (0..16u64).find(|&l| m.shard_of(l) == 1).unwrap();
        let (_, local0) = m.route(line0 * 64);
        // A serving shard has nothing to repair.
        assert!(matches!(
            engine.repair_shard(0, u64::MAX),
            RepairOutcome::NotDegraded
        ));
        // Quarantine a (actually sound) line, then poison the shard: the
        // volatile quarantine set must survive the repair as an audited
        // replay, not silently evaporate with the power.
        engine.with_shard(0, |sys| {
            sys.online_mut().unwrap().requarantine(0, local0, 0);
        });
        assert!(matches!(
            engine.read(line0 * 64),
            Err(IntegrityError::Quarantined { .. })
        ));
        poison_shard(&engine, 0);
        assert_eq!(
            engine.read(line0 * 64),
            Err(IntegrityError::ShardDegraded { shard: 0 })
        );
        // Online repair: neighbors keep serving throughout.
        let outcome = engine.repair_shard(0, u64::MAX);
        let report = match outcome {
            RepairOutcome::Restored(r) => r,
            other => panic!("expected Restored, got {other:?}"),
        };
        assert!(report.clean(), "{report}");
        assert!(!engine.is_degraded(0));
        assert!(!engine.is_parked(0));
        // The replay found the line authentic in the rebuilt tree and
        // released it with an audited QuarantineCleared.
        assert_eq!(engine.read(line0 * 64).unwrap(), SweepOp::payload(line0, 4));
        assert_eq!(engine.read(line1 * 64).unwrap(), SweepOp::payload(line1, 4));
        engine.with_shard(0, |sys| {
            let svc = sys.online().unwrap();
            assert!(!svc.is_quarantined(local0));
            assert!(svc.cleared() >= 1);
        });
        let log = engine.drain_alarms();
        let kinds_s0: Vec<AlarmKind> = log
            .events()
            .iter()
            .filter(|a| a.shard == 0)
            .map(|a| a.kind)
            .collect();
        assert!(kinds_s0.contains(&AlarmKind::ShardDegraded));
        assert!(kinds_s0.contains(&AlarmKind::ShardRepairStarted));
        assert!(kinds_s0.contains(&AlarmKind::ShardRestored));
        assert!(kinds_s0.contains(&AlarmKind::QuarantineCleared));
        // Nothing left to repair.
        assert!(matches!(
            engine.repair_shard(0, u64::MAX),
            RepairOutcome::NotDegraded
        ));
    }

    #[test]
    fn failed_repairs_back_off_exponentially_then_park_permanently() {
        // WB images cannot be rebuilt, so every attempt fails — the loop
        // must consume its bounded budget and park, never spin.
        let donor = || {
            let d = ShardedEngine::new(small(SchemeKind::WriteBack), 2);
            for line in 0..16u64 {
                d.write(line * 64, &SweepOp::payload(line, 8)).unwrap();
            }
            d.crash_shard(1)
        };
        let engine = ShardedEngine::new(small(SchemeKind::WriteBack), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 8)).unwrap();
        }
        let img = engine.park_degraded(1).unwrap().crash();
        // Attempt 1 fails and arms the backoff gate at base << 0.
        assert!(matches!(
            engine.repair_shard_from(1, img, &[], 0),
            RepairOutcome::Failed { attempts: 1 }
        ));
        match engine.repair_shard_from(1, donor(), &[], 100) {
            RepairOutcome::Backoff { until } => assert_eq!(until, 1024),
            other => panic!("expected Backoff, got {other:?}"),
        }
        // Past the gate, the stashed image feeds attempt 2; the gate
        // doubles (5000 + 1024 << 1).
        assert!(matches!(
            engine.repair_shard(1, 5_000),
            RepairOutcome::Failed { attempts: 2 }
        ));
        match engine.repair_shard_from(1, donor(), &[], 6_000) {
            RepairOutcome::Backoff { until } => assert_eq!(until, 7_048),
            other => panic!("expected Backoff, got {other:?}"),
        }
        // Attempt 3 spends the budget: permanently parked.
        assert!(matches!(
            engine.repair_shard(1, u64::MAX),
            RepairOutcome::Parked
        ));
        assert!(engine.is_parked(1));
        assert!(engine.is_degraded(1));
        assert_eq!(engine.parked_shards(), vec![1]);
        assert_eq!(engine.report().gauge("core.shards.parked"), Some(1.0));
        assert!(matches!(
            engine.repair_shard(1, u64::MAX),
            RepairOutcome::Parked
        ));
        let m = *engine.map();
        let line1 = (0..16u64).find(|&l| m.shard_of(l) == 1).unwrap();
        assert_eq!(
            engine.read(line1 * 64),
            Err(IntegrityError::ShardDegraded { shard: 1 })
        );
        // Exact alarm trail: one park, three started attempts, no restore.
        let log = engine.drain_alarms();
        let kinds_s1: Vec<AlarmKind> = log
            .events()
            .iter()
            .filter(|a| a.shard == 1)
            .map(|a| a.kind)
            .collect();
        assert_eq!(
            kinds_s1,
            vec![
                AlarmKind::ShardDegraded,
                AlarmKind::ShardRepairStarted,
                AlarmKind::ShardRepairStarted,
                AlarmKind::ShardRepairStarted,
            ]
        );
        // Operator escape hatch: installing a fresh system un-parks the
        // shard and resets the repair lifecycle.
        let mut fresh = SecureNvmSystem::new(engine.shard_config().clone());
        fresh.ctrl.nvm.set_shard(1);
        engine.put_shard(1, fresh);
        assert!(!engine.is_parked(1));
        assert!(!engine.is_degraded(1));
        engine
            .write(line1 * 64, &SweepOp::payload(line1, 5))
            .unwrap();
        assert_eq!(engine.read(line1 * 64).unwrap(), SweepOp::payload(line1, 5));
    }

    #[test]
    fn repair_with_nothing_to_rebuild_from_parks_immediately() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 3)).unwrap();
        }
        // The degraded shard's image is gone for good (dropped, not
        // stashed): no retry can ever succeed, so repair parks it on the
        // spot rather than burning attempts.
        drop(engine.park_degraded(0).unwrap());
        assert!(matches!(
            engine.repair_shard(0, u64::MAX),
            RepairOutcome::Parked
        ));
        assert!(engine.is_parked(0));
        let log = engine.drain_alarms();
        let kinds_s0: Vec<AlarmKind> = log
            .events()
            .iter()
            .filter(|a| a.shard == 0)
            .map(|a| a.kind)
            .collect();
        assert_eq!(kinds_s0, vec![AlarmKind::ShardDegraded]);
    }

    #[test]
    fn heal_write_routes_and_clears_quarantine_audited() {
        let engine = ShardedEngine::new(small(SchemeKind::Steins), 2);
        for line in 0..16u64 {
            engine.write(line * 64, &SweepOp::payload(line, 2)).unwrap();
        }
        engine.enable_online(OnlinePolicy::default());
        let m = *engine.map();
        let line0 = (0..16u64).find(|&l| m.shard_of(l) == 0).unwrap();
        let (_, local0) = m.route(line0 * 64);
        engine.with_shard(0, |sys| {
            sys.online_mut().unwrap().requarantine(0, local0, 0);
        });
        assert!(matches!(
            engine.read(line0 * 64),
            Err(IntegrityError::Quarantined { .. })
        ));
        // Supervised heal through the sharded front-end: fresh data plus a
        // verify-after-write round-trip releases the line.
        engine
            .heal_write(line0 * 64, &SweepOp::payload(line0, 9))
            .unwrap();
        assert_eq!(engine.read(line0 * 64).unwrap(), SweepOp::payload(line0, 9));
        engine.with_shard(0, |sys| {
            let svc = sys.online().unwrap();
            assert!(!svc.is_quarantined(local0));
            assert!(svc.cleared() >= 1);
        });
        let log = engine.drain_alarms();
        assert!(log
            .events()
            .iter()
            .any(|a| a.kind == AlarmKind::QuarantineCleared && a.shard == 0));
    }

    #[test]
    fn worker_crash_mid_parallel_rebuild_restarts_only_that_region() {
        let cfg = small(SchemeKind::Steins);
        let ops = SweepOp::stream(29, cfg.data_lines.min(64), 32);
        let sweep = ShardSweep::new(cfg, 2, ops);
        let report =
            sweep.run_worker_crashes(PointSelection::AtMost(2), PointSelection::AtMost(2), 4);
        assert!(report.clean(), "{report}");
        assert!(report.tested_points > 0);
    }
}
