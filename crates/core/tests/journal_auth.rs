//! Authenticated recovery journal, end to end: a forged or tampered ADR
//! journal is detected by its MAC — strict recovery fails closed with
//! [`IntegrityError::JournalForged`], and the lenient scrub discards the
//! untrusted resume marks and rebuilds from scratch, byte-correct.

use steins_core::crash::CrashedSystem;
use steins_core::{CounterMode, IntegrityError, SchemeKind, SecureNvmSystem, SystemConfig};
use steins_nvm::RecoveryJournal;

const LINES: u64 = 48;

fn payload(line: u64, tag: u8) -> [u8; 64] {
    let mut d = [tag; 64];
    d[..8].copy_from_slice(&line.to_le_bytes());
    d
}

/// A dirtied, crashed Steins machine.
fn crashed_image(mode: CounterMode) -> CrashedSystem {
    let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, mode);
    let mut sys = SecureNvmSystem::new(cfg);
    for line in 0..LINES {
        sys.write(line * 64, &payload(line, 0xB7)).unwrap();
    }
    sys.crash()
}

/// Tampers the image's journal line: a non-default journal whose stored
/// MAC no longer covers it (the attacker steered the resume marks but
/// cannot produce the keyed MAC).
fn forge_journal(crashed: &mut CrashedSystem) {
    let mut j = crashed.nvm().recovery_journal();
    let stale_mac = crashed.nvm().journal_mac();
    // Claim a laned recovery was interrupted deep into the address space —
    // exactly the lie that would let an attacker skip re-verification.
    j.phase = 1;
    j.lanes = 2;
    j.marks = [0; steins_nvm::RECOVERY_LANES];
    j.marks[0] = LINES / 2;
    j.hwm = LINES / 2;
    j.restarts = 7;
    crashed.nvm_mut().set_recovery_journal(j, stale_mac);
}

#[test]
fn forged_journal_fails_strict_recovery_closed() {
    for mode in [CounterMode::General, CounterMode::Split] {
        let mut crashed = crashed_image(mode);
        forge_journal(&mut crashed);
        match crashed.recover() {
            Err(IntegrityError::JournalForged) => {}
            Ok(_) => panic!("strict recovery trusted a forged journal ({mode:?})"),
            Err(e) => panic!("expected JournalForged, got {e} ({mode:?})"),
        }
    }
}

#[test]
fn forged_journal_lenient_scrub_rebuilds_from_scratch_byte_correct() {
    for mode in [CounterMode::General, CounterMode::Split] {
        let mut crashed = crashed_image(mode);
        forge_journal(&mut crashed);
        let (sys, report) = crashed.recover_lenient();
        assert!(
            report.journal_rejected,
            "scrub must flag the forged journal ({mode:?})"
        );
        assert_eq!(
            report.metrics().counter("core.scrub.journal_rejected"),
            Some(1)
        );
        // The untrusted restart count must not leak into the report: the
        // scrub started from a pristine journal.
        assert_eq!(report.restarts, 0, "forged restarts leaked ({mode:?})");
        let mut sys = sys.expect("Steins rebuilds from redundancy");
        for line in 0..LINES {
            assert_eq!(
                sys.read(line * 64).unwrap(),
                payload(line, 0xB7),
                "line {line} wrong after from-scratch rebuild ({mode:?})"
            );
        }
    }
}

#[test]
fn attacker_zeroing_journal_and_mac_degrades_to_from_scratch() {
    // Wiping both the journal line and its MAC is indistinguishable from a
    // never-written journal — and that state already means "no resume
    // marks, rebuild from scratch", so the attacker gains nothing.
    let mut crashed = crashed_image(CounterMode::General);
    crashed
        .nvm_mut()
        .set_recovery_journal(RecoveryJournal::default(), 0);
    let (mut sys, report) = crashed.recover().expect("default journal is authentic");
    assert_eq!(
        report
            .metrics
            .counter("core.recovery.restarts")
            .unwrap_or(0),
        0
    );
    for line in 0..LINES {
        assert_eq!(sys.read(line * 64).unwrap(), payload(line, 0xB7));
    }
}

#[test]
fn authentic_journal_still_recovers_clean() {
    // Control: an untouched image recovers strictly with no journal
    // complaints (the MAC gate must not reject honest machines).
    let crashed = crashed_image(CounterMode::Split);
    let (mut sys, _report) = crashed.recover().expect("honest image recovers");
    for line in 0..LINES {
        assert_eq!(sys.read(line * 64).unwrap(), payload(line, 0xB7));
    }
}
