//! Online-service chaos properties (§III-H hardening, service edition).
//!
//! Two contracts for the online integrity service under fire:
//!
//! 1. **Seeded determinism.** A chaos run is a function of its seed alone:
//!    the event log, alarm log, metrics, and modeled makespan are
//!    byte-identical no matter how many host worker threads serve the
//!    shards (the work-stealing queue reorders *wall-clock* execution,
//!    never the per-shard modeled streams).
//! 2. **Monotone escalation.** The background scrub running concurrently
//!    with writes only ever escalates: the quarantine set grows
//!    monotonically, alarms are never retracted, and a line the service
//!    quarantined stays failed-closed until explicitly cleared — ordinary
//!    traffic can never whitewash a detection.

use std::collections::BTreeSet;

use steins_core::campaign::{run_chaos, ChaosConfig};
use steins_core::{CounterMode, OnlinePolicy, SchemeKind, SecureNvmSystem, SystemConfig};
use steins_trace::rng::SmallRng;

#[test]
fn chaos_reports_are_byte_identical_across_worker_counts() {
    let base = ChaosConfig {
        seed: 0x0DD5_EED0,
        ops_per_shard: 64,
        faults_per_shard: 4,
        ..ChaosConfig::default()
    };
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            run_chaos(&ChaosConfig {
                threads,
                ..base.clone()
            })
        })
        .collect();
    let reference = &runs[0];
    assert_eq!(reference.unwinds, 0, "panics escaped:\n{reference}");
    assert_eq!(reference.silent_wrong, 0, "wrong acks:\n{reference}");
    for r in &runs[1..] {
        assert_eq!(reference.events, r.events, "event logs diverged");
        assert_eq!(
            reference.alarms.to_json().pretty(),
            r.alarms.to_json().pretty(),
            "alarm logs diverged"
        );
        assert_eq!(
            reference.metrics().to_json_deterministic().pretty(),
            r.metrics().to_json_deterministic().pretty(),
            "metrics diverged"
        );
        assert_eq!(reference.makespan_cycles, r.makespan_cycles);
        assert_eq!(reference.degraded_shards, r.degraded_shards);
    }
}

/// Snapshot of the service's escalation state: quarantine set + alarm count.
fn escalation(sys: &SecureNvmSystem) -> (BTreeSet<u64>, usize) {
    let svc = sys.online().expect("service enabled");
    (svc.quarantined().collect(), svc.alarms().len())
}

#[test]
fn scrub_under_concurrent_writes_escalates_monotonically() {
    for mode in [CounterMode::General, CounterMode::Split] {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, mode);
        let mut sys = SecureNvmSystem::new(cfg);
        sys.enable_online(OnlinePolicy {
            scrub_period_ops: u64::MAX, // stepped manually below
            scrub_batch_lines: 16,
            throttle_occupancy: 1.0,
            ..OnlinePolicy::default()
        });
        let mut rng = SmallRng::seed_from_u64(0x5C2B_0000 ^ mode as u64);
        let lines = 96u64;
        let (mut prev_q, mut prev_alarms) = escalation(&sys);
        for round in 0..48u64 {
            // Concurrent traffic: a few writes between every scrub step.
            for _ in 0..4 {
                let line = rng.next_u64() % lines;
                let _ = sys.write(line * 64, &[(round as u8) ^ 0x3C; 64]);
            }
            // Periodic faults the scrub must pick up mid-traffic.
            if round % 6 == 0 {
                let line = rng.next_u64() % lines;
                match rng.next_u64() % 3 {
                    0 => sys
                        .ctrl
                        .nvm_mut()
                        .inject_bit_flip(line * 64, (round % 64) as usize, 1),
                    1 => sys.ctrl.nvm_mut().inject_unreadable(line * 64),
                    _ => sys
                        .ctrl
                        .nvm_mut()
                        .inject_transient_unreadable(line * 64, 64),
                }
            }
            sys.online_step();
            let (q, alarms) = escalation(&sys);
            assert!(
                q.is_superset(&prev_q),
                "{mode:?} round {round}: quarantine retracted {:?}",
                prev_q.difference(&q).collect::<Vec<_>>()
            );
            assert!(
                alarms >= prev_alarms,
                "{mode:?} round {round}: alarms shrank {prev_alarms} -> {alarms}"
            );
            // Quarantined lines stay failed-closed for ordinary traffic.
            for &addr in q.iter().take(2) {
                assert!(sys.read(addr).is_err(), "{mode:?}: quarantined read Ok");
                assert!(
                    sys.write(addr, &[0u8; 64]).is_err(),
                    "{mode:?}: quarantined write Ok"
                );
            }
            prev_q = q;
            prev_alarms = alarms;
        }
        // Drain pass: every permanent fault must now be classified.
        sys.online_scrub_pass();
        let (q, _) = escalation(&sys);
        assert!(q.is_superset(&prev_q), "{mode:?}: drain pass retracted");
        assert!(!q.is_empty(), "{mode:?}: no fault was ever quarantined");
    }
}
