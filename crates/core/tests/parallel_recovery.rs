//! Cross-cutting contracts of the parallel (laned) recovery path.
//!
//! * **Worker-count determinism** — the lane count a recovery runs with is
//!   a journal-layout choice, never a semantic one: recoveries with 1 and 4
//!   lanes produce byte-identical deterministic metric exports, identical
//!   post-recovery tree state, and the same terminal journal, for all four
//!   schemes (WB refuses either way).
//! * **Journal compatibility** — an attempt interrupted under the legacy
//!   single-mark layout resumes under the laned recoverer and vice versa,
//!   with exactly one restart recorded (no spurious extras), and a
//!   *completed* journal resumes with zero restarts whatever layout wrote
//!   it.

use steins_core::recovery::journal;
use steins_core::{
    CounterMode, CrashedSystem, SchemeKind, SecureNvmSystem, ShardedEngine, SystemConfig,
};

const LINES: u64 = 48;

fn payload(i: u64) -> [u8; 64] {
    let mut d = [0u8; 64];
    d[0] = i as u8;
    d[1] = (i >> 8) as u8;
    d[63] = !(i as u8);
    d
}

fn dirty_system(scheme: SchemeKind) -> SecureNvmSystem {
    let cfg = SystemConfig::small_for_tests(scheme, CounterMode::General);
    let mut sys = SecureNvmSystem::new(cfg);
    for i in 0..LINES {
        sys.write(i * 64, &payload(i)).unwrap();
    }
    // A second pass over a prefix leaves a mix of clean and re-dirtied
    // metadata, which is what makes the rebuild non-trivial.
    for i in 0..LINES / 3 {
        sys.write(i * 64, &payload(i ^ 0x55)).unwrap();
    }
    sys
}

fn expected(i: u64) -> [u8; 64] {
    if i < LINES / 3 {
        payload(i ^ 0x55)
    } else {
        payload(i)
    }
}

/// Runs the full crash+recover scenario with `lanes` lane slots and
/// returns everything an observer could compare across lane counts.
fn recovered_state(scheme: SchemeKind, lanes: usize) -> (String, u64, steins_nvm::RecoveryJournal) {
    let crashed = dirty_system(scheme).crash().with_recovery_lanes(lanes);
    let (mut sys, report) = crashed.recover().unwrap();
    for i in 0..LINES {
        assert_eq!(sys.read(i * 64).unwrap(), expected(i), "line {i} diverged");
    }
    (
        report.metrics.to_json_deterministic().pretty(),
        report.nvm_reads,
        sys.ctrl.nvm().recovery_journal(),
    )
}

#[test]
fn worker_count_is_invisible_in_recovery_reports() {
    for scheme in [SchemeKind::Steins, SchemeKind::Asit, SchemeKind::Star] {
        let (m1, r1, j1) = recovered_state(scheme, 1);
        for lanes in [2usize, 4, 8] {
            let (m, r, j) = recovered_state(scheme, lanes);
            assert_eq!(m1, m, "{scheme:?}: metrics diverge at {lanes} lanes");
            assert_eq!(r1, r, "{scheme:?}: read counts diverge at {lanes} lanes");
            assert_eq!(
                j1, j,
                "{scheme:?}: terminal journal diverges at {lanes} lanes"
            );
        }
        assert_eq!(j1.lanes, 0, "terminal journals are always legacy-form");
        assert_eq!(j1.phase, journal::DONE);
    }
}

#[test]
fn wb_refuses_recovery_at_every_lane_count() {
    for lanes in [1usize, 4] {
        let crashed = dirty_system(SchemeKind::WriteBack)
            .crash()
            .with_recovery_lanes(lanes);
        assert!(
            matches!(
                crashed.recover(),
                Err(steins_core::IntegrityError::RecoveryUnsupported)
            ),
            "WB must refuse recovery with {lanes} lanes"
        );
    }
}

/// Enumerates the absolute persist points a recovery of `scheme`'s crashed
/// image fires (on a sacrificial replay of the same deterministic scenario).
fn recovery_points(scheme: SchemeKind, lanes: usize) -> Vec<u64> {
    let mut probe = dirty_system(scheme).crash().with_recovery_lanes(lanes);
    probe.nvm_mut().journal_points(true);
    let mut slot = None;
    probe.recover_into(&mut slot).unwrap();
    let sys = slot.expect("recovery parks the rebuilt system");
    sys.ctrl
        .nvm()
        .point_journal()
        .iter()
        .map(|p| p.seq)
        .collect()
}

/// Interrupts a recovery journaling with `first_lanes` lane slots at its
/// `frac`-th durable write, then finishes the job with `second_lanes` —
/// the journal written by one layout must be resumable by the other.
fn interrupt_then_resume(scheme: SchemeKind, first_lanes: usize, second_lanes: usize, frac: f64) {
    let points = recovery_points(scheme, first_lanes);
    assert!(!points.is_empty(), "{scheme:?}: recovery fires no points");
    let j = points[((points.len() - 1) as f64 * frac) as usize];

    let mut crashed = dirty_system(scheme)
        .crash()
        .with_recovery_lanes(first_lanes);
    crashed.nvm_mut().arm_crash_torn(j, 0xFF);
    let mut slot = None;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crashed.recover_into(&mut slot)
    }));
    let Err(payload) = outcome else {
        panic!("{scheme:?}: inner point {j} never tripped");
    };
    assert!(payload.is::<steins_nvm::CrashTripped>());
    let partial = slot.take().expect("recovery parks before durable writes");
    let interrupted = partial.ctrl.nvm().recovery_journal();
    let mut crashed2: CrashedSystem = partial.crash().with_recovery_lanes(second_lanes);
    crashed2.nvm_mut().disarm_crash();
    let was_in_progress = journal::in_progress(interrupted.phase);
    let (mut sys, report) = crashed2.recover().unwrap_or_else(|e| {
        panic!("{scheme:?}: resume {first_lanes}→{second_lanes} lanes failed: {e}")
    });
    let restarts = report
        .metrics
        .counter("core.recovery.restarts")
        .unwrap_or(0);
    if was_in_progress {
        assert_eq!(
            restarts, 1,
            "{scheme:?}: {first_lanes}→{second_lanes} lanes must record exactly one restart"
        );
    } else {
        assert_eq!(restarts, 0, "{scheme:?}: finished journals restart nothing");
    }
    for i in 0..LINES {
        assert_eq!(sys.read(i * 64).unwrap(), expected(i), "line {i} diverged");
    }
    assert_eq!(sys.ctrl.nvm().recovery_journal().phase, journal::DONE);
}

#[test]
fn legacy_journal_resumes_under_the_parallel_recoverer() {
    for scheme in [SchemeKind::Steins, SchemeKind::Asit, SchemeKind::Star] {
        for frac in [0.25, 0.6, 0.9] {
            interrupt_then_resume(scheme, 1, 4, frac);
        }
    }
}

#[test]
fn laned_journal_resumes_under_the_single_threaded_recoverer() {
    for scheme in [SchemeKind::Steins, SchemeKind::Asit, SchemeKind::Star] {
        for frac in [0.25, 0.6, 0.9] {
            interrupt_then_resume(scheme, 4, 1, frac);
        }
    }
}

#[test]
fn completed_journals_resume_with_zero_restarts_in_either_layout() {
    for (first, second) in [(1usize, 4usize), (4, 1)] {
        let crashed = dirty_system(SchemeKind::Steins)
            .crash()
            .with_recovery_lanes(first);
        let (sys, _report) = crashed.recover().unwrap();
        // Crash again right away: the ADR journal still reads DONE from the
        // first recovery, whatever layout wrote its in-progress entries.
        let crashed2 = sys.crash().with_recovery_lanes(second);
        let (_sys, report) = crashed2.recover().unwrap();
        assert_eq!(
            report
                .metrics
                .counter("core.recovery.restarts")
                .unwrap_or(0),
            0,
            "{first}→{second} lanes: a DONE journal is not an interrupted attempt"
        );
    }
}

/// Whole-engine parallel recovery exercised through the public front-end:
/// the same crash recovered by 1 and by 4 workers yields identical
/// per-shard reports and identical modeled totals; only the fold changes.
#[test]
fn sharded_parallel_recovery_is_worker_count_deterministic() {
    let run = |workers: usize| {
        let cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
        let engine = ShardedEngine::new(cfg, 4);
        for i in 0..96u64 {
            engine.write(i * 64, &payload(i)).unwrap();
        }
        let images = engine.crash_all();
        let pr = engine.recover_all(images, workers).unwrap();
        for i in 0..96u64 {
            assert_eq!(engine.read(i * 64).unwrap(), payload(i));
        }
        pr
    };
    let serial = run(1);
    let quad = run(4);
    assert_eq!(serial.total_reads, quad.total_reads);
    assert!(quad.makespan_reads < serial.makespan_reads);
    let per_shard = |pr: &steins_core::ParallelRecovery| {
        pr.reports
            .iter()
            .map(|r| r.metrics.to_json_deterministic().pretty())
            .collect::<Vec<_>>()
    };
    assert_eq!(per_shard(&serial), per_shard(&quad));
}
