//! Robustness contract, end to end: the lenient scrub is *total* — no NVM
//! image, however corrupted, may panic recovery — and every randomized
//! driver is deterministic for a fixed seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use steins_core::campaign::{CampaignConfig, FaultCampaign};
use steins_core::crash::CrashedSystem;
use steins_core::{CounterMode, SchemeKind, SecureNvmSystem, SystemConfig};
use steins_metadata::MemoryLayout;
use steins_trace::rng::SmallRng;

/// Builds a crashed machine whose *entire* NVM span is overwritten with
/// seeded garbage, plus a few media faults — the worst image the scrub can
/// meet. Deterministic in `(scheme, mode, seed)`.
fn garbage_image(scheme: SchemeKind, mode: CounterMode, seed: u64) -> CrashedSystem {
    let cfg = SystemConfig::small_for_tests(scheme, mode);
    let layout = MemoryLayout::new(cfg.mode, cfg.data_lines, cfg.meta_cache.slots());
    let mut sys = SecureNvmSystem::new(cfg);
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..24u64 {
        let line = rng.next_u64() % 192;
        sys.write(line * 64, &[(i as u8) ^ 0x5A; 64]).unwrap();
    }
    let mut crashed = sys.crash();
    for line in 0..layout.end / 64 {
        let mut garbage = [0u8; 64];
        for chunk in garbage.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        crashed.poke_raw(line * 64, &garbage);
    }
    for _ in 0..4 {
        let addr = (rng.next_u64() % (layout.end / 64)) * 64;
        match rng.next_u64() % 3 {
            0 => crashed.nvm_mut().inject_stuck_line(addr, [0xEE; 64]),
            1 => crashed.nvm_mut().inject_unreadable(addr),
            _ => crashed.nvm_mut().inject_bit_flip(
                addr,
                (rng.next_u64() % 64) as usize,
                (rng.next_u64() % 8) as u8,
            ),
        }
    }
    crashed
}

#[test]
fn lenient_scrub_never_panics_on_fully_random_images() {
    for (scheme, mode) in [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ] {
        for seed in 0..8u64 {
            // Strict recovery may (and should) reject the image, but must
            // not unwind.
            let crashed = garbage_image(scheme, mode, seed);
            let strict = catch_unwind(AssertUnwindSafe(move || crashed.recover().err()));
            assert!(
                strict.is_ok(),
                "strict recovery panicked on garbage ({scheme:?}, {mode:?}, seed {seed})"
            );

            // The lenient scrub must classify and rebuild, never unwind —
            // and reads of whatever machine it returns must fail closed,
            // not panic or hand back unauthenticated bytes.
            let crashed = garbage_image(scheme, mode, seed);
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let (sys, report) = crashed.recover_lenient();
                if let Some(mut sys) = sys {
                    for line in 0..32u64 {
                        let _ = sys.read(line * 64);
                    }
                }
                report
            }));
            let report = outcome.unwrap_or_else(|_| {
                panic!("scrub panicked on garbage ({scheme:?}, {mode:?}, seed {seed})")
            });
            assert!(
                report.data_intact + report.data_untouched + report.data_unrecoverable > 0,
                "scrub must classify the data plane even on garbage"
            );
        }
    }
}

#[test]
fn scrub_reports_are_deterministic_for_a_fixed_seed() {
    let a = garbage_image(SchemeKind::Steins, CounterMode::General, 0xD5EED).recover_lenient();
    let b = garbage_image(SchemeKind::Steins, CounterMode::General, 0xD5EED).recover_lenient();
    let (ra, rb) = (a.1, b.1);
    assert_eq!(ra.data_intact, rb.data_intact);
    assert_eq!(ra.data_untouched, rb.data_untouched);
    assert_eq!(ra.data_unrecoverable, rb.data_unrecoverable);
    assert_eq!(ra.unrecoverable_addrs, rb.unrecoverable_addrs);
    assert_eq!(ra.meta_intact, rb.meta_intact);
    assert_eq!(ra.meta_recovered, rb.meta_recovered);
    assert_eq!(ra.anchors_updated, rb.anchors_updated);
    // The exported registries must be byte-identical too (CI diffs these).
    assert_eq!(
        ra.metrics().to_json_deterministic().pretty(),
        rb.metrics().to_json_deterministic().pretty()
    );
}

#[test]
fn fault_campaign_all_combos_clean_and_deterministic() {
    let cfg = CampaignConfig {
        seed: 0xCAFE,
        points_per_combo: 8,
        ops: 24,
    };
    let a = FaultCampaign::new(cfg.clone()).run_all();
    assert!(a.clean(), "campaign failed:\n{a}");
    assert_eq!(a.points(), 48);
    assert_eq!(a.panics, 0);
    let b = FaultCampaign::new(cfg).run_all();
    assert_eq!(
        a.metrics().to_json_deterministic().pretty(),
        b.metrics().to_json_deterministic().pretty()
    );
}
