//! Behavioural tests of the per-scheme tracking structures: what each
//! scheme actually persists while running — the observable difference
//! between WB, ASIT, STAR and Steins.

use steins_core::config::LeafRecovery;
use steins_core::{CounterMode, SchemeKind, SecureNvmSystem, SystemConfig};

fn sys(scheme: SchemeKind, mode: CounterMode) -> SecureNvmSystem {
    SecureNvmSystem::new(SystemConfig::small_for_tests(scheme, mode))
}

#[test]
fn steins_records_name_exactly_the_dirty_nodes() {
    let mut s = sys(SchemeKind::Steins, CounterMode::General);
    for i in 0..120u64 {
        s.write((i * 9 % 1024) * 64, &[i as u8; 64]).unwrap();
    }
    let dirty_in_cache: std::collections::BTreeSet<u64> =
        s.ctrl.meta_dirty_offsets().into_iter().collect();
    let crashed = s.crash();
    let recorded: std::collections::BTreeSet<u64> =
        crashed.recorded_dirty_offsets().into_iter().collect();
    // Records may over-approximate (clean-marked nodes are harmless,
    // §III-H) but must never miss a dirty node.
    for off in &dirty_in_cache {
        assert!(
            recorded.contains(off),
            "dirty node {off} missing from the records"
        );
    }
}

#[test]
fn asit_shadow_table_mirrors_dirty_nodes() {
    let mut s = sys(SchemeKind::Asit, CounterMode::General);
    for i in 0..80u64 {
        s.write((i * 5 % 512) * 64, &[i as u8; 64]).unwrap();
    }
    let dirty = s.ctrl.meta_dirty_offsets();
    assert!(!dirty.is_empty());
    let crashed = s.crash();
    // Every dirty node's content must sit in some shadow slot.
    let slots = crashed.config().meta_cache.slots();
    let mut shadowed = 0;
    for slot in 0..slots {
        if crashed.nvm().peek(crashed.shadow_probe(slot)) != [0u8; 64] {
            shadowed += 1;
        }
    }
    assert!(
        shadowed as usize >= dirty.len(),
        "{shadowed} shadow entries < {} dirty nodes",
        dirty.len()
    );
}

#[test]
fn wb_persists_no_tracking_state() {
    let mut s = sys(SchemeKind::WriteBack, CounterMode::General);
    for i in 0..80u64 {
        s.write((i * 5 % 512) * 64, &[i as u8; 64]).unwrap();
    }
    let crashed = s.crash();
    // WB writes neither shadow entries nor (meaningful) records.
    let slots = crashed.config().meta_cache.slots();
    for slot in 0..slots {
        assert_eq!(
            crashed.nvm().peek(crashed.shadow_probe(slot)),
            [0u8; 64],
            "WB must not touch the shadow region"
        );
    }
}

#[test]
fn steins_nv_buffer_bounded_by_config() {
    let mut cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
    cfg.nv_buffer_bytes = 32; // 2 entries
    let mut s = SecureNvmSystem::new(cfg);
    // Heavy eviction traffic: parked entries must never exceed capacity
    // (drains keep it bounded) and the system stays correct.
    for i in 0..600u64 {
        s.write((i * 31 % 2048) * 64, &[i as u8; 64]).unwrap();
    }
    for i in (0..2048u64).step_by(97) {
        let _ = s.read(i * 64).unwrap();
    }
    let (mut rec, _) = s.crash().recover().expect("recovery verifies");
    let _ = rec.read(0).unwrap();
}

#[test]
fn osiris_mode_stores_no_counters_with_data() {
    let mut cfg = SystemConfig::small_for_tests(SchemeKind::Steins, CounterMode::General);
    cfg.leaf_recovery = LeafRecovery::OsirisProbe { window: 8 };
    let mut s = SecureNvmSystem::new(cfg);
    for i in 0..50u64 {
        s.write((i % 20) * 64, &[i as u8; 64]).unwrap();
    }
    for line in 0..20u64 {
        let rec = s.ctrl.data_mac_record(line);
        assert_eq!(rec.recovery, 0, "Osiris mode must not persist counters");
        assert_ne!(rec.mac, 0, "MAC still stored");
    }
}

#[test]
fn mac_record_mode_stores_counters_with_data() {
    let mut s = sys(SchemeKind::Steins, CounterMode::General);
    for i in 0..50u64 {
        s.write((i % 20) * 64, &[i as u8; 64]).unwrap();
    }
    // Line 0 was written ⌈50/20⌉-ish times; its record carries the counter.
    let rec = s.ctrl.data_mac_record(0);
    let (ctr, minor) = steins_core::cme::MacRecord::unpack_recovery(rec.recovery);
    assert!(ctr >= 1);
    assert_eq!(minor, 0, "GC mode has no minors");
}

#[test]
fn split_mode_records_major_and_minor() {
    let mut s = sys(SchemeKind::Steins, CounterMode::Split);
    for _ in 0..5 {
        s.write(0, &[9; 64]).unwrap();
    }
    let rec = s.ctrl.data_mac_record(0);
    let (major, minor) = steins_core::cme::MacRecord::unpack_recovery(rec.recovery);
    assert_eq!(major, 0, "no overflow in 5 writes");
    assert_eq!(minor, 5, "five writes, five minor increments");
}
