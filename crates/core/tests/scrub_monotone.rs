//! Scrub verdicts are monotone in the fault set: re-scrubbing the *same*
//! crashed image with strictly more media faults never upgrades a region —
//! a line that was `Unrecoverable` (or merely `Recovered`) under fault set
//! `A` cannot become `Intact` under a superset `A ∪ B`. Seeded property
//! sweep over every scheme × a battery of fault mixes (~64 cases).

use std::collections::BTreeSet;

use steins_core::crash::CrashedSystem;
use steins_core::scrub::ScrubReport;
use steins_core::{CounterMode, SchemeKind, SecureNvmSystem, SystemConfig};
use steins_trace::rng::SmallRng;

/// One injectable media fault, pinned to a line address so fault sets can
/// be made address-disjoint.
#[derive(Clone, Copy, Debug)]
enum Fault {
    Unreadable(u64),
    Stuck(u64, u8),
    BitFlip(u64, usize, u8),
}

impl Fault {
    fn inject(&self, crashed: &mut CrashedSystem) {
        match *self {
            Fault::Unreadable(a) => crashed.nvm_mut().inject_unreadable(a),
            Fault::Stuck(a, fill) => crashed.nvm_mut().inject_stuck_line(a, [fill; 64]),
            Fault::BitFlip(a, byte, bit) => crashed.nvm_mut().inject_bit_flip(a, byte, bit),
        }
    }
}

/// Draws `n` faults on distinct data-plane lines, deterministically in the
/// RNG state. Restricting targets to written data lines keeps every fault
/// consequential (it must flip a verdict, not land on untouched space).
fn draw_faults(rng: &mut SmallRng, n: usize, taken: &mut BTreeSet<u64>) -> Vec<Fault> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let addr = (rng.next_u64() % 192) * 64;
        let kind = rng.next_u64() % 3;
        let byte = (rng.next_u64() % 64) as usize;
        let bit = (rng.next_u64() % 8) as u8;
        if !taken.insert(addr) {
            continue;
        }
        out.push(match kind {
            0 => Fault::Unreadable(addr),
            1 => Fault::Stuck(addr, 0xEE),
            _ => Fault::BitFlip(addr, byte, bit),
        });
    }
    out
}

/// Reproduces the same crashed image for a `(scheme, mode, seed)` tuple and
/// applies the given fault set. Image construction is fully seeded, so the
/// `A` and `A ∪ B` runs scrub byte-identical pre-fault state.
fn crashed_with(
    scheme: SchemeKind,
    mode: CounterMode,
    seed: u64,
    faults: &[Fault],
) -> CrashedSystem {
    let cfg = SystemConfig::small_for_tests(scheme, mode);
    let mut sys = SecureNvmSystem::new(cfg);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5C0B_0000);
    for i in 0..32u64 {
        let line = rng.next_u64() % 192;
        sys.write(line * 64, &[(i as u8).wrapping_mul(7) ^ 0xA5; 64])
            .unwrap();
    }
    let mut crashed = sys.crash();
    for f in faults {
        f.inject(&mut crashed);
    }
    crashed
}

fn scrub(scheme: SchemeKind, mode: CounterMode, seed: u64, faults: &[Fault]) -> ScrubReport {
    crashed_with(scheme, mode, seed, faults).recover_lenient().1
}

#[test]
fn more_faults_never_upgrade_a_verdict() {
    let combos = [
        (SchemeKind::WriteBack, CounterMode::General),
        (SchemeKind::Asit, CounterMode::General),
        (SchemeKind::Star, CounterMode::General),
        (SchemeKind::Steins, CounterMode::General),
        (SchemeKind::Steins, CounterMode::Split),
    ];
    let mut cases = 0u32;
    for (ci, &(scheme, mode)) in combos.iter().enumerate() {
        for seed in 0..13u64 {
            let case_seed = seed * 31 + ci as u64;
            let mut rng = SmallRng::seed_from_u64(0x700E_5EED ^ case_seed);
            let mut taken = BTreeSet::new();
            let a = draw_faults(&mut rng, 1 + (seed as usize % 4), &mut taken);
            let b = draw_faults(&mut rng, 1 + (seed as usize % 3), &mut taken);
            let mut ab = a.clone();
            ab.extend_from_slice(&b);

            let ra = scrub(scheme, mode, case_seed, &a);
            let rab = scrub(scheme, mode, case_seed, &ab);

            // Intact can only shrink: every extra fault lands on a distinct
            // line, so no region gains a redundant source it lacked under A.
            assert!(
                rab.data_intact <= ra.data_intact,
                "{scheme:?}/{mode:?} seed {case_seed}: data_intact rose \
                 {} -> {} under superset faults\nA: {a:?}\nB: {b:?}",
                ra.data_intact,
                rab.data_intact,
            );
            // Nothing can become unwritten under A ∪ B — but a fault in B
            // landing on a never-written line demotes it out of Untouched.
            assert!(
                rab.data_untouched <= ra.data_untouched,
                "{scheme:?}/{mode:?} seed {case_seed}: untouched count rose \
                 {} -> {}",
                ra.data_untouched,
                rab.data_untouched,
            );
            // Every line lost under A stays lost under A ∪ B — an extra
            // fault must never whitewash a previously unrecoverable line.
            let lost_a: BTreeSet<u64> = ra.unrecoverable_addrs.iter().copied().collect();
            let lost_ab: BTreeSet<u64> = rab.unrecoverable_addrs.iter().copied().collect();
            for addr in &lost_a {
                assert!(
                    lost_ab.contains(addr),
                    "{scheme:?}/{mode:?} seed {case_seed}: line {addr:#x} was \
                     Unrecoverable under A but upgraded under A ∪ B\nA: {a:?}\nB: {b:?}",
                );
            }
            assert!(
                rab.data_unrecoverable >= ra.data_unrecoverable,
                "{scheme:?}/{mode:?} seed {case_seed}: unrecoverable count shrank",
            );
            cases += 1;
        }
    }
    assert!(cases >= 64, "property sweep ran only {cases} cases");
}

/// The subset run itself must be reproducible: scrubbing the identical
/// image + fault set twice yields identical verdicts (the monotonicity
/// comparison above is meaningless without this).
#[test]
fn fault_set_scrub_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0x00DE_7E12);
    let mut taken = BTreeSet::new();
    let faults = draw_faults(&mut rng, 4, &mut taken);
    let a = scrub(SchemeKind::Steins, CounterMode::General, 7, &faults);
    let b = scrub(SchemeKind::Steins, CounterMode::General, 7, &faults);
    assert_eq!(a, b);
}
