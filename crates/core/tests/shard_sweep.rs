//! Bounded sharded crash/torn/nested sweeps across every scheme.
//!
//! Mirrors the unsharded sweeps in `robustness.rs`, but replayed through
//! the 2-shard [`ShardSweep`] harness: the crash is armed on one target
//! shard at a time while its neighbor keeps serving the rest of the
//! stream. Point selections are strided samples so the full matrix stays
//! cheap; the exhaustive runs live in the `crash_sweep` bench binary.

use steins_core::{CounterMode, PointSelection, SchemeKind, ShardSweep};

const TORN_MASKS: [u8; 2] = [0xFF, 0x0F];

fn sweep(scheme: SchemeKind, mode: CounterMode) {
    let sweep = ShardSweep::small(scheme, mode, 2, 28);
    let report = sweep.run(PointSelection::AtMost(3), &TORN_MASKS);
    assert!(report.clean(), "{report}");
    let nested = sweep.run_nested(PointSelection::AtMost(2), PointSelection::AtMost(2));
    assert!(nested.clean(), "{nested}");
}

#[test]
fn wb_general_sharded_sweep_refuses_cleanly() {
    sweep(SchemeKind::WriteBack, CounterMode::General);
}

#[test]
fn asit_general_sharded_sweep_is_clean() {
    sweep(SchemeKind::Asit, CounterMode::General);
}

#[test]
fn star_general_sharded_sweep_is_clean() {
    sweep(SchemeKind::Star, CounterMode::General);
}

#[test]
fn steins_general_sharded_sweep_is_clean() {
    sweep(SchemeKind::Steins, CounterMode::General);
}

#[test]
fn steins_split_sharded_sweep_is_clean() {
    sweep(SchemeKind::Steins, CounterMode::Split);
}
