//! AES-128 block cipher, implemented from scratch per FIPS-197.
//!
//! Counter-mode encryption in secure NVM generates a 64-byte one-time pad by
//! encrypting four 16-byte counter/address seeds. Only encryption is on the
//! hot path; decryption is provided for completeness and round-trip tests.
//!
//! The implementation is a straightforward table-free byte-oriented AES: the
//! S-box is precomputed once (it is a constant), rounds operate on a 16-byte
//! column-major state. This is not constant-time — it models a *hardware*
//! AES unit inside a simulator, it is not a production cipher for secrets on
//! shared hosts.

/// The AES S-box (SubBytes lookup), generated from the multiplicative inverse
/// in GF(2^8) followed by the FIPS-197 affine transformation.
const fn build_sbox() -> [u8; 256] {
    // GF(2^8) multiplication with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
    const fn gmul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        let mut i = 0;
        while i < 8 {
            if b & 1 != 0 {
                p ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1b;
            }
            b >>= 1;
            i += 1;
        }
        p
    }
    // a^254 = a^{-1} in GF(2^8), via square-and-multiply.
    const fn ginv(a: u8) -> u8 {
        if a == 0 {
            return 0;
        }
        let mut result = 1u8;
        let mut base = a;
        let mut exp = 254u32;
        while exp > 0 {
            if exp & 1 != 0 {
                result = gmul(result, base);
            }
            base = gmul(base, base);
            exp >>= 1;
        }
        result
    }
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let inv = ginv(i as u8);
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let mut x = inv;
        let mut y = inv;
        let mut r = 0;
        while r < 4 {
            y = y.rotate_left(1);
            x ^= y;
            r += 1;
        }
        sbox[i] = x ^ 0x63;
        i += 1;
    }
    sbox
}

const SBOX: [u8; 256] = build_sbox();

const fn build_inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const INV_SBOX: [u8; 256] = build_inv_sbox();

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

#[inline]
fn mul(a: u8, b: u8) -> u8 {
    // Small generic GF(2^8) multiply; b is always a small constant here
    // (1,2,3 for MixColumns; 9,11,13,14 for the inverse), so the loop is
    // short and branch-predictable.
    let mut p = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// AES-128 with a precomputed key schedule (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys of AES-128.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    #[inline]
    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    // State layout: state[c*4 + r] = row r, column c (FIPS-197 column-major).
    #[inline]
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[c * 4 + r] = row[(c + r) % 4];
            }
        }
    }

    #[inline]
    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[c * 4 + r] = row[(c + 4 - r) % 4];
            }
        }
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[c * 4..c * 4 + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
            col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
            col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
            col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        }
    }

    #[inline]
    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[c * 4..c * 4 + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = mul(a0, 14) ^ mul(a1, 11) ^ mul(a2, 13) ^ mul(a3, 9);
            col[1] = mul(a0, 9) ^ mul(a1, 14) ^ mul(a2, 11) ^ mul(a3, 13);
            col[2] = mul(a0, 13) ^ mul(a1, 9) ^ mul(a2, 14) ^ mul(a3, 11);
            col[3] = mul(a0, 11) ^ mul(a1, 13) ^ mul(a2, 9) ^ mul(a3, 14);
        }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Generates a 64-byte one-time pad from a 16-byte seed by encrypting
    /// `seed || ctr_i` for four consecutive block counters, exactly like the
    /// hardware CME pipelines in Supermem/Anubis which fan a (line address,
    /// counter) seed across four AES lanes.
    pub fn otp64(&self, seed: &[u8; 16]) -> [u8; 64] {
        let mut out = [0u8; 64];
        for i in 0..4u8 {
            let mut block = *seed;
            block[15] ^= i; // per-lane tweak keeps the four pads distinct
            self.encrypt_block(&mut block);
            out[i as usize * 16..i as usize * 16 + 16].copy_from_slice(&block);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_matches_fips197_samples() {
        // Spot values from the FIPS-197 S-box table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e1516..., plaintext 3243f6a8...
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    #[test]
    fn roundtrip_many_blocks() {
        let aes = Aes128::new(&[0xA5; 16]);
        for i in 0u64..64 {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&i.to_le_bytes());
            block[8..].copy_from_slice(&(i.wrapping_mul(0x9e3779b9)).to_le_bytes());
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn otp64_lanes_are_distinct() {
        let aes = Aes128::new(&[3; 16]);
        let otp = aes.otp64(&[9; 16]);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(otp[i * 16..i * 16 + 16], otp[j * 16..j * 16 + 16]);
            }
        }
    }

    #[test]
    fn otp64_differs_per_seed() {
        let aes = Aes128::new(&[3; 16]);
        let a = aes.otp64(&[1; 16]);
        let b = aes.otp64(&[2; 16]);
        assert_ne!(a[..], b[..]);
    }
}
