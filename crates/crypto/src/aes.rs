//! AES-128 block cipher, implemented from scratch per FIPS-197.
//!
//! Counter-mode encryption in secure NVM generates a 64-byte one-time pad by
//! encrypting four 16-byte counter/address seeds. Only encryption is on the
//! hot path; decryption is provided for completeness and round-trip tests.
//!
//! The encryption round function uses the classic 32-bit **T-table**
//! formulation: the four tables are `const`-generated at compile time from
//! the same S-box the byte-oriented reference uses, so every FIPS-197/NIST
//! vector is unchanged while each round collapses to 16 table lookups and a
//! handful of XORs. This is not constant-time — it models a *hardware* AES
//! unit inside a simulator, it is not a production cipher for secrets on
//! shared hosts.
//!
//! The original byte-oriented implementation is retained in [`mod@reference`]
//! (compiled for tests and under the `ref-impls` feature) as the
//! differential-test and microbenchmark baseline.

/// The AES S-box (SubBytes lookup), generated from the multiplicative inverse
/// in GF(2^8) followed by the FIPS-197 affine transformation.
const fn build_sbox() -> [u8; 256] {
    // GF(2^8) multiplication with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
    const fn gmul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0u8;
        let mut i = 0;
        while i < 8 {
            if b & 1 != 0 {
                p ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1b;
            }
            b >>= 1;
            i += 1;
        }
        p
    }
    // a^254 = a^{-1} in GF(2^8), via square-and-multiply.
    const fn ginv(a: u8) -> u8 {
        if a == 0 {
            return 0;
        }
        let mut result = 1u8;
        let mut base = a;
        let mut exp = 254u32;
        while exp > 0 {
            if exp & 1 != 0 {
                result = gmul(result, base);
            }
            base = gmul(base, base);
            exp >>= 1;
        }
        result
    }
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let inv = ginv(i as u8);
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let mut x = inv;
        let mut y = inv;
        let mut r = 0;
        while r < 4 {
            y = y.rotate_left(1);
            x ^= y;
            r += 1;
        }
        sbox[i] = x ^ 0x63;
        i += 1;
    }
    sbox
}

const SBOX: [u8; 256] = build_sbox();

const fn build_inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const INV_SBOX: [u8; 256] = build_inv_sbox();

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// xtime (multiplication by `x` in GF(2^8)), usable in const context.
const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// The four encryption T-tables. `TE[0][x]` packs one column of the combined
/// SubBytes+MixColumns matrix as a big-endian word:
/// `(2·S(x)) ‖ S(x) ‖ S(x) ‖ (3·S(x))`; `TE[k]` is `TE[0]` rotated right by
/// `8k` bits so the four state bytes of a column each index their own table.
const fn build_te() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = (s2 ^ s) as u32;
        let (s, s2) = (s as u32, s2 as u32);
        let w = (s2 << 24) | (s << 16) | (s << 8) | s3;
        t[0][i] = w;
        t[1][i] = w.rotate_right(8);
        t[2][i] = w.rotate_right(16);
        t[3][i] = w.rotate_right(24);
        i += 1;
    }
    t
}

const TE: [[u32; 256]; 4] = build_te();

/// SubBytes applied to each byte of a big-endian word (key schedule).
#[inline]
fn sub_word(w: u32) -> u32 {
    (u32::from(SBOX[(w >> 24) as usize]) << 24)
        | (u32::from(SBOX[(w >> 16 & 0xff) as usize]) << 16)
        | (u32::from(SBOX[(w >> 8 & 0xff) as usize]) << 8)
        | u32::from(SBOX[(w & 0xff) as usize])
}

/// Generic GF(2^8) multiply for the inverse MixColumns (decryption only;
/// `b` is one of 9, 11, 13, 14, so the loop is short and predictable).
#[inline]
fn mul(a: u8, b: u8) -> u8 {
    let mut p = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Hardware AES (AES-NI) kernels, used when the running CPU supports them.
///
/// The round keys are the standard byte-order schedule ([`Aes128`] keeps it
/// for decryption anyway), which is exactly what `AESENC` consumes, so no
/// reformatting is needed. All functions require the `aes` target feature;
/// [`Aes128::new`] probes for it once and the dispatchers fall back to the
/// portable T-table path everywhere else.
#[cfg(target_arch = "x86_64")]
mod hw {
    use core::arch::x86_64::*;

    /// Encrypts the four OTP lanes (`seed` with byte 15 XOR-tweaked per
    /// lane) through the pipelined AES-NI rounds.
    ///
    /// # Safety
    /// The `aes` target feature must be available (runtime-detected).
    #[target_feature(enable = "aes")]
    pub unsafe fn otp64(round_keys: &[[u8; 16]; 11], seed: &[u8; 16]) -> [u8; 64] {
        // SAFETY: each load reads 16 bytes from a [u8; 16].
        let rk: [__m128i; 11] =
            core::array::from_fn(|i| unsafe { _mm_loadu_si128(round_keys[i].as_ptr().cast()) });
        let mut lanes = [[0u8; 16]; 4];
        for (lane, block) in lanes.iter_mut().enumerate() {
            *block = *seed;
            block[15] ^= lane as u8;
        }
        // SAFETY: each load reads 16 bytes from a [u8; 16].
        let mut s: [__m128i; 4] =
            core::array::from_fn(|l| unsafe { _mm_loadu_si128(lanes[l].as_ptr().cast()) });
        for v in s.iter_mut() {
            *v = _mm_xor_si128(*v, rk[0]);
        }
        for key in &rk[1..10] {
            for v in s.iter_mut() {
                *v = _mm_aesenc_si128(*v, *key);
            }
        }
        let mut out = [0u8; 64];
        for (l, v) in s.iter_mut().enumerate() {
            *v = _mm_aesenclast_si128(*v, rk[10]);
            // SAFETY: writes 16 bytes at out[l*16..l*16+16], in bounds.
            unsafe { _mm_storeu_si128(out.as_mut_ptr().add(l * 16).cast(), *v) };
        }
        out
    }

    /// Encrypts one block in place.
    ///
    /// # Safety
    /// The `aes` target feature must be available (runtime-detected).
    #[target_feature(enable = "aes")]
    pub unsafe fn encrypt_block(round_keys: &[[u8; 16]; 11], block: &mut [u8; 16]) {
        // SAFETY: each load reads 16 bytes from a [u8; 16].
        let rk: [__m128i; 11] =
            core::array::from_fn(|i| unsafe { _mm_loadu_si128(round_keys[i].as_ptr().cast()) });
        // SAFETY: reads 16 bytes from a [u8; 16].
        let mut s = unsafe { _mm_loadu_si128(block.as_ptr().cast()) };
        s = _mm_xor_si128(s, rk[0]);
        for key in &rk[1..10] {
            s = _mm_aesenc_si128(s, *key);
        }
        s = _mm_aesenclast_si128(s, rk[10]);
        // SAFETY: writes 16 bytes into a [u8; 16].
        unsafe { _mm_storeu_si128(block.as_mut_ptr().cast(), s) };
    }
}

/// AES-128 with a precomputed key schedule.
///
/// Encryption (the hot path) uses hardware AES-NI when the CPU has it,
/// otherwise 32-bit T-table rounds; decryption (round-trip tests only)
/// reuses the byte-wise inverse rounds. All paths share one key schedule
/// and agree bit-for-bit (see the differential tests).
#[derive(Clone)]
pub struct Aes128 {
    /// The 44 expanded key words, big-endian (one column each).
    ek: [u32; 44],
    /// The same schedule as 11 byte-wise round keys (decryption, AES-NI).
    round_keys: [[u8; 16]; 11],
    /// Whether the running CPU's AES instructions are usable.
    use_hw: bool,
}

impl Aes128 {
    /// Expands `key` into the AES-128 key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut ek = [0u32; 44];
        for i in 0..4 {
            ek[i] = u32::from_be_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 4..44 {
            let mut t = ek[i - 1];
            if i % 4 == 0 {
                t = sub_word(t.rotate_left(8)) ^ (u32::from(RCON[i / 4 - 1]) << 24);
            }
            ek[i] = ek[i - 4] ^ t;
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&ek[r * 4 + c].to_be_bytes());
            }
        }
        #[cfg(target_arch = "x86_64")]
        let use_hw = std::arch::is_x86_feature_detected!("aes");
        #[cfg(not(target_arch = "x86_64"))]
        let use_hw = false;
        Aes128 {
            ek,
            round_keys,
            use_hw,
        }
    }

    /// The T-table round pipeline over the four big-endian column words
    /// (FIPS-197 column-major state: word `i` is column `i`).
    #[inline]
    fn encrypt_words(&self, mut s0: u32, mut s1: u32, mut s2: u32, mut s3: u32) -> [u32; 4] {
        let ek = &self.ek;
        s0 ^= ek[0];
        s1 ^= ek[1];
        s2 ^= ek[2];
        s3 ^= ek[3];
        for round in 1..10 {
            let k = round * 4;
            let t0 = TE[0][(s0 >> 24) as usize]
                ^ TE[1][(s1 >> 16 & 0xff) as usize]
                ^ TE[2][(s2 >> 8 & 0xff) as usize]
                ^ TE[3][(s3 & 0xff) as usize]
                ^ ek[k];
            let t1 = TE[0][(s1 >> 24) as usize]
                ^ TE[1][(s2 >> 16 & 0xff) as usize]
                ^ TE[2][(s3 >> 8 & 0xff) as usize]
                ^ TE[3][(s0 & 0xff) as usize]
                ^ ek[k + 1];
            let t2 = TE[0][(s2 >> 24) as usize]
                ^ TE[1][(s3 >> 16 & 0xff) as usize]
                ^ TE[2][(s0 >> 8 & 0xff) as usize]
                ^ TE[3][(s1 & 0xff) as usize]
                ^ ek[k + 2];
            let t3 = TE[0][(s3 >> 24) as usize]
                ^ TE[1][(s0 >> 16 & 0xff) as usize]
                ^ TE[2][(s1 >> 8 & 0xff) as usize]
                ^ TE[3][(s2 & 0xff) as usize]
                ^ ek[k + 3];
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows only (no MixColumns).
        #[inline]
        fn sb(b: u32) -> u32 {
            u32::from(SBOX[b as usize])
        }
        let o0 = (sb(s0 >> 24) << 24)
            | (sb(s1 >> 16 & 0xff) << 16)
            | (sb(s2 >> 8 & 0xff) << 8)
            | sb(s3 & 0xff);
        let o1 = (sb(s1 >> 24) << 24)
            | (sb(s2 >> 16 & 0xff) << 16)
            | (sb(s3 >> 8 & 0xff) << 8)
            | sb(s0 & 0xff);
        let o2 = (sb(s2 >> 24) << 24)
            | (sb(s3 >> 16 & 0xff) << 16)
            | (sb(s0 >> 8 & 0xff) << 8)
            | sb(s1 & 0xff);
        let o3 = (sb(s3 >> 24) << 24)
            | (sb(s0 >> 16 & 0xff) << 16)
            | (sb(s1 >> 8 & 0xff) << 8)
            | sb(s2 & 0xff);
        [o0 ^ ek[40], o1 ^ ek[41], o2 ^ ek[42], o3 ^ ek[43]]
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_hw {
            // SAFETY: `use_hw` is set only when `is_x86_feature_detected!`
            // confirmed the `aes` feature on this CPU.
            unsafe { hw::encrypt_block(&self.round_keys, block) };
            return;
        }
        self.encrypt_block_soft(block);
    }

    /// Portable T-table encryption (always available; the hardware path
    /// must match it bit-for-bit).
    fn encrypt_block_soft(&self, block: &mut [u8; 16]) {
        let s0 = u32::from_be_bytes(block[0..4].try_into().unwrap());
        let s1 = u32::from_be_bytes(block[4..8].try_into().unwrap());
        let s2 = u32::from_be_bytes(block[8..12].try_into().unwrap());
        let s3 = u32::from_be_bytes(block[12..16].try_into().unwrap());
        let out = self.encrypt_words(s0, s1, s2, s3);
        for (i, w) in out.iter().enumerate() {
            block[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    #[inline]
    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    // State layout: state[c*4 + r] = row r, column c (FIPS-197 column-major).
    #[inline]
    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[c * 4 + r] = row[(c + 4 - r) % 4];
            }
        }
    }

    #[inline]
    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[c * 4..c * 4 + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = mul(a0, 14) ^ mul(a1, 11) ^ mul(a2, 13) ^ mul(a3, 9);
            col[1] = mul(a0, 9) ^ mul(a1, 14) ^ mul(a2, 11) ^ mul(a3, 13);
            col[2] = mul(a0, 13) ^ mul(a1, 9) ^ mul(a2, 14) ^ mul(a3, 11);
            col[3] = mul(a0, 11) ^ mul(a1, 13) ^ mul(a2, 9) ^ mul(a3, 14);
        }
    }

    /// Decrypts one 16-byte block in place (off the hot path; byte-wise).
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Four-block interleaved T-table encryption. A single block's round is
    /// a serial chain of L1 table loads; four independent lanes stepped
    /// through each round *together* let those loads overlap, which is
    /// where most of the batched-OTP speedup over four serial
    /// [`Self::encrypt_words`] calls comes from.
    #[inline]
    fn encrypt4_words(&self, states: &mut [[u32; 4]; 4]) {
        let ek = &self.ek;
        for st in states.iter_mut() {
            for (c, w) in st.iter_mut().enumerate() {
                *w ^= ek[c];
            }
        }
        for round in 1..10 {
            let k = round * 4;
            // Fixed-trip lane loop: unrolled, 16 independent column
            // computations per round.
            for st in states.iter_mut() {
                let [s0, s1, s2, s3] = *st;
                st[0] = TE[0][(s0 >> 24) as usize]
                    ^ TE[1][(s1 >> 16 & 0xff) as usize]
                    ^ TE[2][(s2 >> 8 & 0xff) as usize]
                    ^ TE[3][(s3 & 0xff) as usize]
                    ^ ek[k];
                st[1] = TE[0][(s1 >> 24) as usize]
                    ^ TE[1][(s2 >> 16 & 0xff) as usize]
                    ^ TE[2][(s3 >> 8 & 0xff) as usize]
                    ^ TE[3][(s0 & 0xff) as usize]
                    ^ ek[k + 1];
                st[2] = TE[0][(s2 >> 24) as usize]
                    ^ TE[1][(s3 >> 16 & 0xff) as usize]
                    ^ TE[2][(s0 >> 8 & 0xff) as usize]
                    ^ TE[3][(s1 & 0xff) as usize]
                    ^ ek[k + 2];
                st[3] = TE[0][(s3 >> 24) as usize]
                    ^ TE[1][(s0 >> 16 & 0xff) as usize]
                    ^ TE[2][(s1 >> 8 & 0xff) as usize]
                    ^ TE[3][(s2 & 0xff) as usize]
                    ^ ek[k + 3];
            }
        }
        #[inline]
        fn sb(b: u32) -> u32 {
            u32::from(SBOX[b as usize])
        }
        for st in states.iter_mut() {
            let [s0, s1, s2, s3] = *st;
            st[0] = ((sb(s0 >> 24) << 24)
                | (sb(s1 >> 16 & 0xff) << 16)
                | (sb(s2 >> 8 & 0xff) << 8)
                | sb(s3 & 0xff))
                ^ ek[40];
            st[1] = ((sb(s1 >> 24) << 24)
                | (sb(s2 >> 16 & 0xff) << 16)
                | (sb(s3 >> 8 & 0xff) << 8)
                | sb(s0 & 0xff))
                ^ ek[41];
            st[2] = ((sb(s2 >> 24) << 24)
                | (sb(s3 >> 16 & 0xff) << 16)
                | (sb(s0 >> 8 & 0xff) << 8)
                | sb(s1 & 0xff))
                ^ ek[42];
            st[3] = ((sb(s3 >> 24) << 24)
                | (sb(s0 >> 16 & 0xff) << 16)
                | (sb(s1 >> 8 & 0xff) << 8)
                | sb(s2 & 0xff))
                ^ ek[43];
        }
    }

    /// Generates a 64-byte one-time pad from a 16-byte seed by encrypting
    /// `seed || ctr_i` for four consecutive block counters, exactly like the
    /// hardware CME pipelines in Supermem/Anubis which fan a (line address,
    /// counter) seed across four AES lanes.
    ///
    /// Batched: the seed is converted to column words once and all four
    /// lanes run through the interleaved `encrypt4_words` path against
    /// one shared key schedule — the per-lane tweak lands in byte 15, i.e.
    /// the low byte of the last column word.
    pub fn otp64(&self, seed: &[u8; 16]) -> [u8; 64] {
        #[cfg(target_arch = "x86_64")]
        if self.use_hw {
            // SAFETY: `use_hw` is set only when `is_x86_feature_detected!`
            // confirmed the `aes` feature on this CPU.
            return unsafe { hw::otp64(&self.round_keys, seed) };
        }
        self.otp64_soft(seed)
    }

    /// Portable interleaved T-table OTP (always available; the hardware
    /// path must match it bit-for-bit).
    fn otp64_soft(&self, seed: &[u8; 16]) -> [u8; 64] {
        let s0 = u32::from_be_bytes(seed[0..4].try_into().unwrap());
        let s1 = u32::from_be_bytes(seed[4..8].try_into().unwrap());
        let s2 = u32::from_be_bytes(seed[8..12].try_into().unwrap());
        let s3 = u32::from_be_bytes(seed[12..16].try_into().unwrap());
        // Per-lane tweak keeps the four pads distinct (seed[15] ^= lane).
        let mut states = [
            [s0, s1, s2, s3],
            [s0, s1, s2, s3 ^ 1],
            [s0, s1, s2, s3 ^ 2],
            [s0, s1, s2, s3 ^ 3],
        ];
        self.encrypt4_words(&mut states);
        let mut out = [0u8; 64];
        for (lane, st) in states.iter().enumerate() {
            for (i, w) in st.iter().enumerate() {
                let at = lane * 16 + i * 4;
                out[at..at + 4].copy_from_slice(&w.to_be_bytes());
            }
        }
        out
    }
}

/// The original table-free byte-oriented AES-128, kept as the
/// differential-test reference and the "before" side of the microbench
/// suite. Semantically identical to [`Aes128`]; an order of magnitude
/// slower.
#[cfg(any(test, feature = "ref-impls"))]
pub mod reference {
    use super::{xtime, Aes128, SBOX};

    /// Byte-oriented AES-128 (the pre-T-table implementation).
    #[derive(Clone)]
    pub struct RefAes128 {
        round_keys: [[u8; 16]; 11],
    }

    impl RefAes128 {
        /// Expands `key` into the 11 round keys of AES-128.
        pub fn new(key: &[u8; 16]) -> Self {
            // Reuse the word-oriented schedule; the byte round keys are
            // bit-identical to the original byte-wise expansion.
            RefAes128 {
                round_keys: Aes128::new(key).round_keys,
            }
        }

        #[inline]
        fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
            for (s, k) in state.iter_mut().zip(rk.iter()) {
                *s ^= k;
            }
        }

        #[inline]
        fn sub_bytes(state: &mut [u8; 16]) {
            for b in state.iter_mut() {
                *b = SBOX[*b as usize];
            }
        }

        // State layout: state[c*4 + r] = row r, column c (column-major).
        #[inline]
        fn shift_rows(state: &mut [u8; 16]) {
            for r in 1..4 {
                let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
                for c in 0..4 {
                    state[c * 4 + r] = row[(c + r) % 4];
                }
            }
        }

        #[inline]
        fn mix_columns(state: &mut [u8; 16]) {
            for c in 0..4 {
                let col = &mut state[c * 4..c * 4 + 4];
                let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
                col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
                col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
                col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
                col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
            }
        }

        /// Encrypts one 16-byte block in place (byte-oriented rounds).
        pub fn encrypt_block(&self, block: &mut [u8; 16]) {
            Self::add_round_key(block, &self.round_keys[0]);
            for round in 1..10 {
                Self::sub_bytes(block);
                Self::shift_rows(block);
                Self::mix_columns(block);
                Self::add_round_key(block, &self.round_keys[round]);
            }
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::add_round_key(block, &self.round_keys[10]);
        }

        /// 64-byte OTP, one lane-tweaked block encryption at a time.
        pub fn otp64(&self, seed: &[u8; 16]) -> [u8; 64] {
            let mut out = [0u8; 64];
            for i in 0..4u8 {
                let mut block = *seed;
                block[15] ^= i; // per-lane tweak keeps the four pads distinct
                self.encrypt_block(&mut block);
                out[i as usize * 16..i as usize * 16 + 16].copy_from_slice(&block);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::RefAes128;
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn rand_bytes<const N: usize>(st: &mut u64) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let w = xorshift(st).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        out
    }

    #[test]
    fn sbox_matches_fips197_samples() {
        // Spot values from the FIPS-197 S-box table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: key 2b7e1516..., plaintext 3243f6a8...
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    #[test]
    fn roundtrip_many_blocks() {
        let aes = Aes128::new(&[0xA5; 16]);
        for i in 0u64..64 {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&i.to_le_bytes());
            block[8..].copy_from_slice(&(i.wrapping_mul(0x9e3779b9)).to_le_bytes());
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    /// The T-table pipeline must agree with the retained byte-oriented
    /// reference on 10k random (key, block) pairs, and decrypt must invert
    /// every one of them.
    #[test]
    fn ttable_matches_reference_differential_10k() {
        let mut st = 0x0123_4567_89ab_cdefu64;
        for _ in 0..10_000 {
            let key: [u8; 16] = rand_bytes(&mut st);
            let block: [u8; 16] = rand_bytes(&mut st);
            let fast = Aes128::new(&key);
            let slow = RefAes128::new(&key);
            let mut a = block;
            fast.encrypt_block(&mut a);
            let mut b = block;
            slow.encrypt_block(&mut b);
            assert_eq!(a, b, "T-table vs reference diverged (key {key:02x?})");
            fast.decrypt_block(&mut a);
            assert_eq!(a, block, "decrypt must invert encrypt");
        }
    }

    /// The batched OTP must equal four reference single-block encryptions.
    #[test]
    fn otp64_matches_reference_differential() {
        let mut st = 0xdead_beef_1234_5678u64;
        for _ in 0..1_000 {
            let key: [u8; 16] = rand_bytes(&mut st);
            let seed: [u8; 16] = rand_bytes(&mut st);
            assert_eq!(
                Aes128::new(&key).otp64(&seed)[..],
                RefAes128::new(&key).otp64(&seed)[..]
            );
        }
    }

    #[test]
    fn otp64_lanes_are_distinct() {
        let aes = Aes128::new(&[3; 16]);
        let otp = aes.otp64(&[9; 16]);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(otp[i * 16..i * 16 + 16], otp[j * 16..j * 16 + 16]);
            }
        }
    }

    #[test]
    fn otp64_differs_per_seed() {
        let aes = Aes128::new(&[3; 16]);
        let a = aes.otp64(&[1; 16]);
        let b = aes.otp64(&[2; 16]);
        assert_ne!(a[..], b[..]);
    }

    /// Whatever the dispatcher picks (AES-NI here, T-tables elsewhere) must
    /// match the portable software path bit-for-bit on random inputs.
    #[test]
    fn dispatch_matches_soft_paths() {
        let mut st = 0x5eed_5eed_5eed_5eedu64;
        for _ in 0..2_000 {
            let key: [u8; 16] = rand_bytes(&mut st);
            let aes = Aes128::new(&key);
            let block: [u8; 16] = rand_bytes(&mut st);
            let mut a = block;
            aes.encrypt_block(&mut a);
            let mut b = block;
            aes.encrypt_block_soft(&mut b);
            assert_eq!(a, b, "encrypt_block dispatch diverged");
            let seed: [u8; 16] = rand_bytes(&mut st);
            assert_eq!(aes.otp64(&seed)[..], aes.otp64_soft(&seed)[..]);
        }
    }
}
