//! The [`CryptoEngine`] abstraction: one interface over the two fidelity
//! levels of the simulator's crypto units.
//!
//! * [`RealCrypto`]: AES-128 OTPs + HMAC-SHA-256/64 MACs — bit-faithful to
//!   the hardware design the papers assume. Used by functional tests.
//! * [`FastCrypto`]: SipHash-2-4 for both the OTP and MAC roles — keyed and
//!   collision-resistant enough for simulation, ~40× faster. Used by the
//!   long figure sweeps.
//!
//! Both variants perform *keyed* operations, so security checks (MAC
//! comparisons, replay detection) behave identically; only byte values
//! differ. The simulator charges the paper's fixed hash/AES latencies
//! regardless of which engine computes the bytes.

use crate::aes::Aes128;
use crate::fasthash::SipHash24;
use crate::hmac::HmacSha256;
use crate::SecretKey;

/// Which crypto fidelity to instantiate.

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CryptoKind {
    /// AES-128 + HMAC-SHA-256 (slow, faithful).
    Real,
    /// SipHash-2-4 everywhere (fast, still keyed).
    #[default]
    Fast,
}

/// A memory-controller crypto unit: OTP generation and 64-bit MACs.
pub trait CryptoEngine: Send + Sync {
    /// 64-byte one-time pad for counter-mode encryption of one cache line,
    /// parameterized by the line address and its (major, minor) counter pair.
    /// General counter blocks pass the counter as `major` with `minor = 0`.
    fn otp(&self, addr: u64, major: u64, minor: u64) -> [u8; 64];

    /// 64-bit MAC over arbitrary message bytes.
    fn mac64(&self, msg: &[u8]) -> u64;

    /// 64-bit MAC over a fixed 72-byte message — the SIT node-MAC string
    /// (`counters ‖ addr ‖ parent`) and the ASIT slot-update string are both
    /// exactly this size. A separate trait method (the trait is used as
    /// `dyn`, so a generic won't do) lets engines route it to a fully
    /// unrolled fixed-size path.
    fn mac64_72(&self, msg: &[u8; 72]) -> u64 {
        self.mac64(msg)
    }

    /// Convenience: MAC over a 64-byte payload plus address and counter —
    /// the data-block HMAC of §II-C.
    fn data_mac(&self, addr: u64, data: &[u8; 64], major: u64, minor: u64) -> u64 {
        let mut msg = [0u8; 64 + 8 + 8 + 8];
        msg[..64].copy_from_slice(data);
        msg[64..72].copy_from_slice(&addr.to_le_bytes());
        msg[72..80].copy_from_slice(&major.to_le_bytes());
        msg[80..88].copy_from_slice(&minor.to_le_bytes());
        self.mac64(&msg)
    }
}

/// Full-fidelity engine: AES-128 OTPs, HMAC-SHA-256/64 MACs.
pub struct RealCrypto {
    aes: Aes128,
    hmac: HmacSha256,
}

impl RealCrypto {
    /// Builds the engine, deriving separate OTP and MAC subkeys from `key`.
    pub fn new(key: SecretKey) -> Self {
        RealCrypto {
            aes: Aes128::new(&key.derive("otp").0),
            hmac: HmacSha256::new(&key.derive("mac").0),
        }
    }
}

impl CryptoEngine for RealCrypto {
    fn otp(&self, addr: u64, major: u64, minor: u64) -> [u8; 64] {
        // Seed = addr || major || minor-folded, the unique CME tuple.
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&addr.to_le_bytes());
        seed[8..16].copy_from_slice(&(major ^ minor.rotate_left(32)).to_le_bytes());
        // Fold minor separately so (major=1,minor=0) != (major=0,minor=1<<32).
        seed[7] ^= (minor & 0x7f) as u8;
        self.aes.otp64(&seed)
    }

    fn mac64(&self, msg: &[u8]) -> u64 {
        self.hmac.mac64(msg)
    }

    fn mac64_72(&self, msg: &[u8; 72]) -> u64 {
        self.hmac.mac64_fixed(msg)
    }

    fn data_mac(&self, addr: u64, data: &[u8; 64], major: u64, minor: u64) -> u64 {
        let mut msg = [0u8; 64 + 8 + 8 + 8];
        msg[..64].copy_from_slice(data);
        msg[64..72].copy_from_slice(&addr.to_le_bytes());
        msg[72..80].copy_from_slice(&major.to_le_bytes());
        msg[80..88].copy_from_slice(&minor.to_le_bytes());
        self.hmac.mac64_fixed(&msg)
    }
}

/// Fast engine: SipHash-2-4 expanded OTPs and SipHash MACs.
pub struct FastCrypto {
    otp_key: SipHash24,
    mac_key: SipHash24,
}

impl FastCrypto {
    /// Builds the engine, deriving separate OTP and MAC subkeys from `key`.
    pub fn new(key: SecretKey) -> Self {
        FastCrypto {
            otp_key: SipHash24::new(&key.derive("otp").0),
            mac_key: SipHash24::new(&key.derive("mac").0),
        }
    }
}

impl CryptoEngine for FastCrypto {
    fn otp(&self, addr: u64, major: u64, minor: u64) -> [u8; 64] {
        let mut out = [0u8; 64];
        for lane in 0..8u64 {
            let mut msg = [0u8; 32];
            msg[..8].copy_from_slice(&addr.to_le_bytes());
            msg[8..16].copy_from_slice(&major.to_le_bytes());
            msg[16..24].copy_from_slice(&minor.to_le_bytes());
            msg[24..32].copy_from_slice(&lane.to_le_bytes());
            let h = self.otp_key.hash(&msg);
            out[lane as usize * 8..lane as usize * 8 + 8].copy_from_slice(&h.to_le_bytes());
        }
        out
    }

    fn mac64(&self, msg: &[u8]) -> u64 {
        self.mac_key.hash(msg)
    }
}

/// Instantiates the requested engine behind a trait object.
pub fn make_engine(kind: CryptoKind, key: SecretKey) -> Box<dyn CryptoEngine> {
    match kind {
        CryptoKind::Real => Box::new(RealCrypto::new(key)),
        CryptoKind::Fast => Box::new(FastCrypto::new(key)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines() -> Vec<(&'static str, Box<dyn CryptoEngine>)> {
        let key = SecretKey([0x42; 16]);
        vec![
            ("real", make_engine(CryptoKind::Real, key)),
            ("fast", make_engine(CryptoKind::Fast, key)),
        ]
    }

    #[test]
    fn otp_unique_per_counter_and_address() {
        for (name, e) in engines() {
            let base = e.otp(0x1000, 5, 3);
            assert_ne!(base[..], e.otp(0x1000, 6, 3)[..], "{name}: major bump");
            assert_ne!(base[..], e.otp(0x1000, 5, 4)[..], "{name}: minor bump");
            assert_ne!(base[..], e.otp(0x1040, 5, 3)[..], "{name}: addr bump");
            assert_eq!(base[..], e.otp(0x1000, 5, 3)[..], "{name}: deterministic");
        }
    }

    #[test]
    fn otp_major_minor_not_confused() {
        // (major=1, minor=0) and (major=0, minor=1) must give distinct pads.
        for (name, e) in engines() {
            assert_ne!(e.otp(0, 1, 0)[..], e.otp(0, 0, 1)[..], "{name}");
        }
    }

    #[test]
    fn mac_detects_single_bit_flip() {
        for (name, e) in engines() {
            let mut data = [7u8; 64];
            let m0 = e.data_mac(0x80, &data, 9, 1);
            data[13] ^= 0x20;
            assert_ne!(m0, e.data_mac(0x80, &data, 9, 1), "{name}");
        }
    }

    #[test]
    fn mac_binds_address_and_counter() {
        for (name, e) in engines() {
            let data = [1u8; 64];
            let m = e.data_mac(0x40, &data, 2, 0);
            assert_ne!(m, e.data_mac(0x80, &data, 2, 0), "{name}: addr");
            assert_ne!(m, e.data_mac(0x40, &data, 3, 0), "{name}: major");
            assert_ne!(m, e.data_mac(0x40, &data, 2, 1), "{name}: minor");
        }
    }

    #[test]
    fn mac64_72_matches_slice_mac64() {
        for (name, e) in engines() {
            let mut msg = [0u8; 72];
            for (i, b) in msg.iter_mut().enumerate() {
                *b = (i * 37 + 11) as u8;
            }
            assert_eq!(e.mac64_72(&msg), e.mac64(&msg), "{name}");
        }
    }

    #[test]
    fn engines_differ_but_are_internally_consistent() {
        let key = SecretKey([0x42; 16]);
        let real = RealCrypto::new(key);
        let fast = FastCrypto::new(key);
        // Different algorithms must not collide on the same inputs (they are
        // independent PRFs; equality would be a 2^-64 fluke or a bug).
        assert_ne!(real.mac64(b"block"), fast.mac64(b"block"));
        assert_ne!(real.otp(0, 0, 0)[..], fast.otp(0, 0, 0)[..]);
    }
}
