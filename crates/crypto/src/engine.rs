//! The [`CryptoEngine`] abstraction: one interface over the two fidelity
//! levels of the simulator's crypto units.
//!
//! * [`RealCrypto`]: AES-128 OTPs + HMAC-SHA-256/64 MACs — bit-faithful to
//!   the hardware design the papers assume. Used by functional tests.
//! * [`FastCrypto`]: SipHash-2-4 for both the OTP and MAC roles — keyed and
//!   collision-resistant enough for simulation, ~40× faster. Used by the
//!   long figure sweeps.
//!
//! Both variants perform *keyed* operations, so security checks (MAC
//! comparisons, replay detection) behave identically; only byte values
//! differ. The simulator charges the paper's fixed hash/AES latencies
//! regardless of which engine computes the bytes.

use crate::aes::Aes128;
use crate::fasthash::SipHash24;
use crate::hmac::HmacSha256;
use crate::SecretKey;

/// Which crypto fidelity to instantiate.

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CryptoKind {
    /// AES-128 + HMAC-SHA-256 (slow, faithful).
    Real,
    /// SipHash-2-4 everywhere (fast, still keyed).
    #[default]
    Fast,
}

/// Builds the 88-byte data-MAC message of §II-C: `data ‖ addr ‖ major ‖
/// minor`, all little-endian. Shared by the scalar [`CryptoEngine::data_mac`]
/// default and the batched data-MAC paths, so both sides of a
/// batched-vs-serial comparison MAC the exact same bytes.
pub fn data_mac_message(addr: u64, data: &[u8; 64], major: u64, minor: u64) -> [u8; 88] {
    let mut msg = [0u8; 64 + 8 + 8 + 8];
    msg[..64].copy_from_slice(data);
    msg[64..72].copy_from_slice(&addr.to_le_bytes());
    msg[72..80].copy_from_slice(&major.to_le_bytes());
    msg[80..88].copy_from_slice(&minor.to_le_bytes());
    msg
}

/// A memory-controller crypto unit: OTP generation and 64-bit MACs.
pub trait CryptoEngine: Send + Sync {
    /// 64-byte one-time pad for counter-mode encryption of one cache line,
    /// parameterized by the line address and its (major, minor) counter pair.
    /// General counter blocks pass the counter as `major` with `minor = 0`.
    fn otp(&self, addr: u64, major: u64, minor: u64) -> [u8; 64];

    /// 64-bit MAC over arbitrary message bytes.
    fn mac64(&self, msg: &[u8]) -> u64;

    /// 64-bit MAC over a fixed 72-byte message — the SIT node-MAC string
    /// (`counters ‖ addr ‖ parent`) and the ASIT slot-update string are both
    /// exactly this size. A separate trait method (the trait is used as
    /// `dyn`, so a generic won't do) lets engines route it to a fully
    /// unrolled fixed-size path.
    fn mac64_72(&self, msg: &[u8; 72]) -> u64 {
        self.mac64(msg)
    }

    /// 64-bit MAC over a fixed 88-byte message — the data-MAC string built
    /// by [`data_mac_message`].
    fn mac64_88(&self, msg: &[u8; 88]) -> u64 {
        self.mac64(msg)
    }

    /// Convenience: MAC over a 64-byte payload plus address and counter —
    /// the data-block HMAC of §II-C.
    fn data_mac(&self, addr: u64, data: &[u8; 64], major: u64, minor: u64) -> u64 {
        self.mac64_88(&data_mac_message(addr, data, major, minor))
    }

    /// How many MAC lanes a batch should aim to fill. `1` means the engine
    /// has no lane parallelism; batch callers may then skip building message
    /// buffers and loop scalar calls directly.
    fn mac_lanes(&self) -> usize {
        1
    }

    /// Batched [`Self::mac64`]: `out[i] = mac64(msgs[i])`. Callers *present*
    /// batches (all sibling MACs of a flush, a recovery level, a scrub
    /// sweep); engines with lane parallelism fill their lanes, the default
    /// just loops. Output bytes never depend on batch shape.
    fn mac64_many(&self, msgs: &[&[u8]], out: &mut [u64]) {
        for (m, o) in msgs.iter().zip(out.iter_mut()) {
            *o = self.mac64(m);
        }
    }

    /// Batched [`Self::mac64_72`] over the 72-byte hot strings.
    fn mac64_72_many(&self, msgs: &[[u8; 72]], out: &mut [u64]) {
        for (m, o) in msgs.iter().zip(out.iter_mut()) {
            *o = self.mac64_72(m);
        }
    }

    /// Batched [`Self::mac64_88`] over the 88-byte data-MAC strings.
    fn mac64_88_many(&self, msgs: &[[u8; 88]], out: &mut [u64]) {
        for (m, o) in msgs.iter().zip(out.iter_mut()) {
            *o = self.mac64_88(m);
        }
    }
}

/// Full-fidelity engine: AES-128 OTPs, HMAC-SHA-256/64 MACs.
pub struct RealCrypto {
    aes: Aes128,
    hmac: HmacSha256,
}

impl RealCrypto {
    /// Builds the engine, deriving separate OTP and MAC subkeys from `key`.
    pub fn new(key: SecretKey) -> Self {
        RealCrypto {
            aes: Aes128::new(&key.derive("otp").0),
            hmac: HmacSha256::new(&key.derive("mac").0),
        }
    }
}

impl CryptoEngine for RealCrypto {
    fn otp(&self, addr: u64, major: u64, minor: u64) -> [u8; 64] {
        // Seed = addr || major || minor-folded, the unique CME tuple.
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&addr.to_le_bytes());
        seed[8..16].copy_from_slice(&(major ^ minor.rotate_left(32)).to_le_bytes());
        // Fold minor separately so (major=1,minor=0) != (major=0,minor=1<<32).
        seed[7] ^= (minor & 0x7f) as u8;
        self.aes.otp64(&seed)
    }

    fn mac64(&self, msg: &[u8]) -> u64 {
        self.hmac.mac64(msg)
    }

    fn mac64_72(&self, msg: &[u8; 72]) -> u64 {
        self.hmac.mac64_72(msg)
    }

    fn mac64_88(&self, msg: &[u8; 88]) -> u64 {
        self.hmac.mac64_88(msg)
    }

    fn mac_lanes(&self) -> usize {
        self.hmac.lane_count()
    }

    fn mac64_many(&self, msgs: &[&[u8]], out: &mut [u64]) {
        self.hmac.mac64_many(msgs, out);
    }

    fn mac64_72_many(&self, msgs: &[[u8; 72]], out: &mut [u64]) {
        self.hmac.mac64_72_many(msgs, out);
    }

    fn mac64_88_many(&self, msgs: &[[u8; 88]], out: &mut [u64]) {
        self.hmac.mac64_88_many(msgs, out);
    }
}

/// Fast engine: SipHash-2-4 expanded OTPs and SipHash MACs.
pub struct FastCrypto {
    otp_key: SipHash24,
    mac_key: SipHash24,
}

impl FastCrypto {
    /// Builds the engine, deriving separate OTP and MAC subkeys from `key`.
    pub fn new(key: SecretKey) -> Self {
        FastCrypto {
            otp_key: SipHash24::new(&key.derive("otp").0),
            mac_key: SipHash24::new(&key.derive("mac").0),
        }
    }
}

impl CryptoEngine for FastCrypto {
    fn otp(&self, addr: u64, major: u64, minor: u64) -> [u8; 64] {
        let mut out = [0u8; 64];
        for lane in 0..8u64 {
            let mut msg = [0u8; 32];
            msg[..8].copy_from_slice(&addr.to_le_bytes());
            msg[8..16].copy_from_slice(&major.to_le_bytes());
            msg[16..24].copy_from_slice(&minor.to_le_bytes());
            msg[24..32].copy_from_slice(&lane.to_le_bytes());
            let h = self.otp_key.hash(&msg);
            out[lane as usize * 8..lane as usize * 8 + 8].copy_from_slice(&h.to_le_bytes());
        }
        out
    }

    fn mac64(&self, msg: &[u8]) -> u64 {
        self.mac_key.hash(msg)
    }
}

/// Instantiates the requested engine behind a trait object.
pub fn make_engine(kind: CryptoKind, key: SecretKey) -> Box<dyn CryptoEngine> {
    match kind {
        CryptoKind::Real => Box::new(RealCrypto::new(key)),
        CryptoKind::Fast => Box::new(FastCrypto::new(key)),
    }
}

/// Wraps an engine but hides its lane parallelism: scalar operations forward
/// to the inner engine, while every batch entry point stays on the trait's
/// serial default loop. Byte-identical to the wrapped engine on every input —
/// only the batching strategy differs — so driving a whole simulation once
/// with `E` and once with `SerialPresentation<E>` and comparing the persist
/// traces proves batch presentation never reorders or alters an observable
/// event.
pub struct SerialPresentation<E: CryptoEngine>(pub E);

impl<E: CryptoEngine> CryptoEngine for SerialPresentation<E> {
    fn otp(&self, addr: u64, major: u64, minor: u64) -> [u8; 64] {
        self.0.otp(addr, major, minor)
    }

    fn mac64(&self, msg: &[u8]) -> u64 {
        self.0.mac64(msg)
    }

    fn mac64_72(&self, msg: &[u8; 72]) -> u64 {
        self.0.mac64_72(msg)
    }

    fn mac64_88(&self, msg: &[u8; 88]) -> u64 {
        self.0.mac64_88(msg)
    }

    // `data_mac`, `mac_lanes` (= 1) and the `*_many` loops are deliberately
    // left on the trait defaults: serial presentation is the point.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engines() -> Vec<(&'static str, Box<dyn CryptoEngine>)> {
        let key = SecretKey([0x42; 16]);
        vec![
            ("real", make_engine(CryptoKind::Real, key)),
            ("fast", make_engine(CryptoKind::Fast, key)),
        ]
    }

    #[test]
    fn otp_unique_per_counter_and_address() {
        for (name, e) in engines() {
            let base = e.otp(0x1000, 5, 3);
            assert_ne!(base[..], e.otp(0x1000, 6, 3)[..], "{name}: major bump");
            assert_ne!(base[..], e.otp(0x1000, 5, 4)[..], "{name}: minor bump");
            assert_ne!(base[..], e.otp(0x1040, 5, 3)[..], "{name}: addr bump");
            assert_eq!(base[..], e.otp(0x1000, 5, 3)[..], "{name}: deterministic");
        }
    }

    #[test]
    fn otp_major_minor_not_confused() {
        // (major=1, minor=0) and (major=0, minor=1) must give distinct pads.
        for (name, e) in engines() {
            assert_ne!(e.otp(0, 1, 0)[..], e.otp(0, 0, 1)[..], "{name}");
        }
    }

    #[test]
    fn mac_detects_single_bit_flip() {
        for (name, e) in engines() {
            let mut data = [7u8; 64];
            let m0 = e.data_mac(0x80, &data, 9, 1);
            data[13] ^= 0x20;
            assert_ne!(m0, e.data_mac(0x80, &data, 9, 1), "{name}");
        }
    }

    #[test]
    fn mac_binds_address_and_counter() {
        for (name, e) in engines() {
            let data = [1u8; 64];
            let m = e.data_mac(0x40, &data, 2, 0);
            assert_ne!(m, e.data_mac(0x80, &data, 2, 0), "{name}: addr");
            assert_ne!(m, e.data_mac(0x40, &data, 3, 0), "{name}: major");
            assert_ne!(m, e.data_mac(0x40, &data, 2, 1), "{name}: minor");
        }
    }

    #[test]
    fn mac64_72_matches_slice_mac64() {
        for (name, e) in engines() {
            let mut msg = [0u8; 72];
            for (i, b) in msg.iter_mut().enumerate() {
                *b = (i * 37 + 11) as u8;
            }
            assert_eq!(e.mac64_72(&msg), e.mac64(&msg), "{name}");
        }
    }

    #[test]
    fn mac64_88_matches_slice_mac64() {
        for (name, e) in engines() {
            let mut msg = [0u8; 88];
            for (i, b) in msg.iter_mut().enumerate() {
                *b = (i * 53 + 19) as u8;
            }
            assert_eq!(e.mac64_88(&msg), e.mac64(&msg), "{name}");
        }
    }

    #[test]
    fn data_mac_routes_through_data_mac_message() {
        for (name, e) in engines() {
            let data: [u8; 64] = core::array::from_fn(|i| (i * 3 + 1) as u8);
            let msg = data_mac_message(0xbeef, &data, 7, 2);
            assert_eq!(e.data_mac(0xbeef, &data, 7, 2), e.mac64_88(&msg), "{name}");
        }
    }

    /// Every batch entry point — on every engine, including the serial
    /// wrapper — must match a scalar loop for batch sizes straddling the
    /// lane boundaries.
    #[test]
    fn batched_trait_methods_match_scalar_loops() {
        let key = SecretKey([0x42; 16]);
        let mut engines: Vec<(&'static str, Box<dyn CryptoEngine>)> = vec![
            ("real", Box::new(RealCrypto::new(key))),
            ("fast", Box::new(FastCrypto::new(key))),
            (
                "serial(real)",
                Box::new(SerialPresentation(RealCrypto::new(key))),
            ),
        ];
        for (name, e) in engines.iter_mut() {
            for n in [0usize, 1, 3, 4, 5, 8, 9, 26] {
                let m72: Vec<[u8; 72]> = (0..n)
                    .map(|i| core::array::from_fn(|j| (i * 7 + j) as u8))
                    .collect();
                let m88: Vec<[u8; 88]> = (0..n)
                    .map(|i| core::array::from_fn(|j| (i * 11 + j + 1) as u8))
                    .collect();
                let refs: Vec<&[u8]> = m72.iter().map(|m| m.as_slice()).collect();

                let mut got = vec![0u64; n];
                e.mac64_many(&refs, &mut got);
                let expect: Vec<u64> = refs.iter().map(|m| e.mac64(m)).collect();
                assert_eq!(got, expect, "{name}: mac64_many n={n}");

                e.mac64_72_many(&m72, &mut got);
                let expect: Vec<u64> = m72.iter().map(|m| e.mac64_72(m)).collect();
                assert_eq!(got, expect, "{name}: mac64_72_many n={n}");

                e.mac64_88_many(&m88, &mut got);
                let expect: Vec<u64> = m88.iter().map(|m| e.mac64_88(m)).collect();
                assert_eq!(got, expect, "{name}: mac64_88_many n={n}");
            }
        }
    }

    /// The serial wrapper must be byte-identical to the engine it wraps on
    /// every operation — it changes presentation, never values.
    #[test]
    fn serial_presentation_is_byte_identical() {
        let key = SecretKey([0x42; 16]);
        let real = RealCrypto::new(key);
        let serial = SerialPresentation(RealCrypto::new(key));
        assert_eq!(serial.mac_lanes(), 1);
        assert!(real.mac_lanes() >= 4);
        let data: [u8; 64] = core::array::from_fn(|i| i as u8);
        assert_eq!(real.otp(0x1000, 5, 3)[..], serial.otp(0x1000, 5, 3)[..]);
        assert_eq!(
            real.data_mac(0x40, &data, 2, 1),
            serial.data_mac(0x40, &data, 2, 1)
        );
        let msgs: Vec<[u8; 72]> = (0..13)
            .map(|i| core::array::from_fn(|j| (i * 72 + j) as u8))
            .collect();
        let mut a = vec![0u64; msgs.len()];
        let mut b = vec![0u64; msgs.len()];
        real.mac64_72_many(&msgs, &mut a);
        serial.mac64_72_many(&msgs, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn engines_differ_but_are_internally_consistent() {
        let key = SecretKey([0x42; 16]);
        let real = RealCrypto::new(key);
        let fast = FastCrypto::new(key);
        // Different algorithms must not collide on the same inputs (they are
        // independent PRFs; equality would be a 2^-64 fluke or a bug).
        assert_ne!(real.mac64(b"block"), fast.mac64(b"block"));
        assert_ne!(real.otp(0, 0, 0)[..], fast.otp(0, 0, 0)[..]);
    }
}
