//! Fast non-cryptographic and lightweight-keyed hashing.
//!
//! * [`SipHash24`]: a 64-bit keyed pseudo-random function, implemented from
//!   scratch. The figure harness runs hundreds of millions of MAC
//!   computations across the 6-scheme × 10-workload sweep; SipHash keeps
//!   those sweeps tractable while remaining a *keyed* function so every
//!   security check (tamper / replay detection) still exercises real
//!   key-dependent comparisons. Functional tests run with HMAC-SHA-256 too.
//! * [`FxHasher64`]: an FxHash-style multiply-rotate hasher for `HashMap`s
//!   whose keys are plain line addresses. The std default (randomized
//!   SipHash-1-3) costs ~10× more per lookup than the maps' actual collision
//!   risk warrants inside a single-process simulator; these maps are not
//!   attacker-facing, so a fast deterministic hash is the right trade.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// SipHash-2-4 with a 128-bit key.
#[derive(Clone, Copy)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

impl SipHash24 {
    /// Creates a SipHash instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        SipHash24 {
            k0: u64::from_le_bytes(key[..8].try_into().unwrap()),
            k1: u64::from_le_bytes(key[8..].try_into().unwrap()),
        }
    }

    /// 64-bit keyed hash of `msg`.
    pub fn hash(&self, msg: &[u8]) -> u64 {
        let mut v = [
            self.k0 ^ 0x736f6d6570736575,
            self.k1 ^ 0x646f72616e646f6d,
            self.k0 ^ 0x6c7967656e657261,
            self.k1 ^ 0x7465646279746573,
        ];
        let mut chunks = msg.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().unwrap());
            v[3] ^= m;
            sipround(&mut v);
            sipround(&mut v);
            v[0] ^= m;
        }
        let rest = chunks.remainder();
        let mut last = (msg.len() as u64) << 56;
        for (i, &b) in rest.iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v[3] ^= last;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= last;
        v[2] ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v);
        }
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }
}

/// FxHash-style 64-bit hasher (rustc's `FxHasher`, re-derived from its
/// public description: `hash = (hash rol 5 ^ word) * K` per word, with a
/// fixed odd multiplier). Deterministic and unkeyed — only for internal,
/// non-adversarial maps such as the sparse line store and the oracle
/// `truth` map.
#[derive(Default, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline(always)]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher64`] (zero-sized, `Default`-constructible).
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` keyed by the fast deterministic [`FxHasher64`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper (Aumasson & Bernstein):
    /// key = 000102...0f, messages = [], [00], [00 01], ... little-endian out.
    #[test]
    fn reference_vectors() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let sip = SipHash24::new(&key);
        let expected: [u64; 8] = [
            u64::from_le_bytes([0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72]),
            u64::from_le_bytes([0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74]),
            u64::from_le_bytes([0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d]),
            u64::from_le_bytes([0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85]),
            u64::from_le_bytes([0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf]),
            u64::from_le_bytes([0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18]),
            u64::from_le_bytes([0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb]),
            u64::from_le_bytes([0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab]),
        ];
        let msg: Vec<u8> = (0..8u8).collect();
        for (len, &want) in expected.iter().enumerate() {
            assert_eq!(sip.hash(&msg[..len]), want, "len={len}");
        }
    }

    #[test]
    fn key_sensitivity() {
        let a = SipHash24::new(&[1; 16]).hash(b"block");
        let b = SipHash24::new(&[2; 16]).hash(b"block");
        assert_ne!(a, b);
    }

    #[test]
    fn message_sensitivity_single_bit() {
        let sip = SipHash24::new(&[9; 16]);
        let mut m = [0u8; 64];
        let h0 = sip.hash(&m);
        m[31] ^= 1;
        assert_ne!(sip.hash(&m), h0);
    }

    #[test]
    fn fx_hasher_is_deterministic_and_input_sensitive() {
        fn h(k: u64) -> u64 {
            let mut hasher = FxHasher64::default();
            hasher.write_u64(k);
            hasher.finish()
        }
        assert_eq!(h(0x40), h(0x40));
        assert_ne!(h(0x40), h(0x80));
        assert_ne!(h(0), h(1));
    }

    #[test]
    fn fx_hasher_slice_and_word_paths_differ_only_by_framing() {
        // Line addresses hash via write_u64; byte slices pad the tail.
        // Both must be usable: sanity-check there are no trivial collisions
        // across nearby keys in either path.
        let mut seen = std::collections::HashSet::new();
        for k in 0..1024u64 {
            let mut hasher = FxHasher64::default();
            hasher.write(&k.to_le_bytes());
            assert!(seen.insert(hasher.finish()), "slice-path collision at {k}");
        }
    }

    #[test]
    fn fx_hashmap_basic_ops() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in (0..4096u64).step_by(64) {
            m.insert(k, (k / 64) as u32);
        }
        assert_eq!(m.len(), 64);
        assert_eq!(m.get(&(63 * 64)), Some(&63));
        assert_eq!(m.get(&1), None);
    }
}
