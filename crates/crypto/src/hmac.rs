//! HMAC-SHA-256 (RFC 2104 / FIPS-198-1), built on [`crate::sha256::Sha256`].
//!
//! Secure-NVM metadata MACs are 64-bit; [`HmacSha256::mac64`] truncates the
//! full HMAC to its first 8 bytes, the standard truncation used by SGX-style
//! integrity-tree designs (VAULT, Anubis, STAR, SCUE).
//!
//! The implementation stores the two *midstates* — the SHA-256 chaining
//! values after absorbing the inner and outer pads — instead of cloneable
//! hasher objects. A MAC then runs the compression function directly over
//! the message from the inner midstate (padding built on the stack) and
//! finishes with exactly **one** outer compression: the 32-byte inner digest
//! plus its padding is a single block. No allocation, no buffer copies, no
//! intermediate `Sha256` clones.

use crate::sha256::{Sha256, H0};

/// Keyed HMAC-SHA-256 instance with precomputed inner/outer midstates.
#[derive(Clone)]
pub struct HmacSha256 {
    /// Chaining value after compressing `key ^ ipad`.
    istate: [u32; 8],
    /// Chaining value after compressing `key ^ opad`.
    ostate: [u32; 8],
}

impl HmacSha256 {
    /// Creates an HMAC instance for `key` (any length; hashed if > 64 bytes).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut istate = H0;
        Sha256::compress(&mut istate, &ipad);
        let mut ostate = H0;
        Sha256::compress(&mut ostate, &opad);
        HmacSha256 { istate, ostate }
    }

    /// Inner hash: `SHA-256(ipad-midstate ‖ msg)` with stack-built padding.
    #[inline]
    fn inner_state(&self, msg: &[u8]) -> [u32; 8] {
        let mut st = self.istate;
        let mut chunks = msg.chunks_exact(64);
        for chunk in &mut chunks {
            Sha256::compress(&mut st, chunk.try_into().unwrap());
        }
        let rest = chunks.remainder();
        // Total hashed length includes the 64-byte ipad block.
        let bit_len = ((64 + msg.len()) as u64) * 8;
        let mut block = [0u8; 64];
        block[..rest.len()].copy_from_slice(rest);
        block[rest.len()] = 0x80;
        if rest.len() >= 56 {
            Sha256::compress(&mut st, &block);
            block = [0u8; 64];
        }
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        Sha256::compress(&mut st, &block);
        st
    }

    /// Outer hash: one compression — 32 digest bytes, padding, and the
    /// length (64 + 32 bytes = 768 bits) all fit in a single block.
    #[inline]
    fn outer_state(&self, inner: [u32; 8]) -> [u32; 8] {
        let mut block = [0u8; 64];
        for (i, word) in inner.iter().enumerate() {
            block[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        block[32] = 0x80;
        block[56..].copy_from_slice(&(96u64 * 8).to_be_bytes());
        let mut st = self.ostate;
        Sha256::compress(&mut st, &block);
        st
    }

    /// Full 32-byte HMAC of `msg`.
    pub fn mac(&self, msg: &[u8]) -> [u8; 32] {
        let st = self.outer_state(self.inner_state(msg));
        let mut out = [0u8; 32];
        for (i, word) in st.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// 64-bit truncated HMAC, the wire format of secure-NVM metadata MACs.
    /// One-shot: only the first two state words are ever serialized.
    #[inline]
    pub fn mac64(&self, msg: &[u8]) -> u64 {
        let st = self.outer_state(self.inner_state(msg));
        let mut first8 = [0u8; 8];
        first8[..4].copy_from_slice(&st[0].to_be_bytes());
        first8[4..].copy_from_slice(&st[1].to_be_bytes());
        u64::from_le_bytes(first8)
    }

    /// Monomorphized [`Self::mac64`] for fixed-size messages (the 72-byte
    /// node-MAC and 88-byte data-MAC strings): with `N` known at compile
    /// time the block loop and tail padding fully unroll.
    #[inline]
    pub fn mac64_fixed<const N: usize>(&self, msg: &[u8; N]) -> u64 {
        self.mac64(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The pre-midstate implementation: cloned hashers and intermediate
    /// digests. Kept as the differential reference for the fast path.
    fn mac_ref(key: &[u8], msg: &[u8]) -> [u8; 32] {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        inner.update(msg);
        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(&inner.finalize());
        outer.finalize()
    }

    #[test]
    fn rfc4231_case1() {
        let h = HmacSha256::new(&[0x0b; 20]);
        assert_eq!(
            hex(&h.mac(b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let h = HmacSha256::new(b"Jefe");
        assert_eq!(
            hex(&h.mac(b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let h = HmacSha256::new(&[0xaa; 20]);
        assert_eq!(
            hex(&h.mac(&[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let h = HmacSha256::new(&[0xaa; 131]);
        assert_eq!(
            hex(&h.mac(b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// The midstate fast path must agree with the two-hasher reference on
    /// every message length around the block/padding boundaries.
    #[test]
    fn midstate_matches_reference_all_boundary_lengths() {
        let key = b"steins-mac-key";
        let h = HmacSha256::new(key);
        let data: Vec<u8> = (0..300).map(|i| (i * 31 + 7) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(h.mac(&data[..len]), mac_ref(key, &data[..len]), "len={len}");
        }
    }

    #[test]
    fn mac64_is_prefix_of_mac() {
        let h = HmacSha256::new(b"key");
        let full = h.mac(b"message");
        assert_eq!(
            h.mac64(b"message"),
            u64::from_le_bytes(full[..8].try_into().unwrap())
        );
    }

    #[test]
    fn mac64_fixed_matches_slice_path() {
        let h = HmacSha256::new(b"key");
        let msg72 = [0x5a; 72];
        assert_eq!(h.mac64_fixed(&msg72), h.mac64(&msg72));
        let msg88 = [0xc3; 88];
        assert_eq!(h.mac64_fixed(&msg88), h.mac64(&msg88));
    }

    #[test]
    fn different_keys_give_different_macs() {
        let a = HmacSha256::new(b"k1").mac64(b"m");
        let b = HmacSha256::new(b"k2").mac64(b"m");
        assert_ne!(a, b);
    }
}
