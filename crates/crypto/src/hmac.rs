//! HMAC-SHA-256 (RFC 2104 / FIPS-198-1), built on [`crate::sha256::Sha256`].
//!
//! Secure-NVM metadata MACs are 64-bit; [`HmacSha256::mac64`] truncates the
//! full HMAC to its first 8 bytes, the standard truncation used by SGX-style
//! integrity-tree designs (VAULT, Anubis, STAR, SCUE).

use crate::sha256::Sha256;

/// Keyed HMAC-SHA-256 instance with precomputed inner/outer pads.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC instance for `key` (any length; hashed if > 64 bytes).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Full 32-byte HMAC of `msg`.
    pub fn mac(&self, msg: &[u8]) -> [u8; 32] {
        let mut inner = self.inner.clone();
        inner.update(msg);
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// 64-bit truncated HMAC, the wire format of secure-NVM metadata MACs.
    pub fn mac64(&self, msg: &[u8]) -> u64 {
        let d = self.mac(msg);
        u64::from_le_bytes(d[..8].try_into().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let h = HmacSha256::new(&[0x0b; 20]);
        assert_eq!(
            hex(&h.mac(b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let h = HmacSha256::new(b"Jefe");
        assert_eq!(
            hex(&h.mac(b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let h = HmacSha256::new(&[0xaa; 20]);
        assert_eq!(
            hex(&h.mac(&[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let h = HmacSha256::new(&[0xaa; 131]);
        assert_eq!(
            hex(&h.mac(b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac64_is_prefix_of_mac() {
        let h = HmacSha256::new(b"key");
        let full = h.mac(b"message");
        assert_eq!(
            h.mac64(b"message"),
            u64::from_le_bytes(full[..8].try_into().unwrap())
        );
    }

    #[test]
    fn different_keys_give_different_macs() {
        let a = HmacSha256::new(b"k1").mac64(b"m");
        let b = HmacSha256::new(b"k2").mac64(b"m");
        assert_ne!(a, b);
    }
}
