//! HMAC-SHA-256 (RFC 2104 / FIPS-198-1), built on [`crate::sha256::Sha256`].
//!
//! Secure-NVM metadata MACs are 64-bit; [`HmacSha256::mac64`] truncates the
//! full HMAC to its first 8 bytes, the standard truncation used by SGX-style
//! integrity-tree designs (VAULT, Anubis, STAR, SCUE).
//!
//! The implementation stores the two *midstates* — the SHA-256 chaining
//! values after absorbing the inner and outer pads — instead of cloneable
//! hasher objects. A MAC then runs the compression function directly over
//! the message from the inner midstate (padding built on the stack) and
//! finishes with exactly **one** outer compression: the 32-byte inner digest
//! plus its padding is a single block. No allocation, no buffer copies, no
//! intermediate `Sha256` clones.
//!
//! On top of the scalar path sit the **batched** entry points
//! ([`HmacSha256::mac64_many`] and the fixed-length variants): `N`
//! independent messages are pressed through the multi-lane compression of
//! [`crate::sha256_multi`], 8 messages per call where AVX2 is available
//! (runtime-detected, like the AES-NI path) and 4 otherwise, with scalar
//! mop-up for ragged tails. Lane outputs are bit-identical to the serial
//! path — batching changes throughput, never bytes.

use crate::sha256::{Sha256, H0};
use crate::sha256_multi::{compress_lanes, wide_lanes_available, LANES_PORTABLE, LANES_WIDE};

/// Keyed HMAC-SHA-256 instance with precomputed inner/outer midstates.
#[derive(Clone)]
pub struct HmacSha256 {
    /// Chaining value after compressing `key ^ ipad`.
    istate: [u32; 8],
    /// Chaining value after compressing `key ^ opad`.
    ostate: [u32; 8],
    /// Whether the running CPU's 8-lane (AVX2) compression is usable.
    wide: bool,
}

impl HmacSha256 {
    /// Creates an HMAC instance for `key` (any length; hashed if > 64 bytes).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut istate = H0;
        Sha256::compress(&mut istate, &ipad);
        let mut ostate = H0;
        Sha256::compress(&mut ostate, &opad);
        HmacSha256 {
            istate,
            ostate,
            wide: wide_lanes_available(),
        }
    }

    /// Lanes the batched paths fill per multi-lane call on this CPU.
    pub fn lane_count(&self) -> usize {
        if self.wide {
            LANES_WIDE
        } else {
            LANES_PORTABLE
        }
    }

    /// Caps the instance at the portable 4-lane path even where AVX2 is
    /// available — differential tests exercise both widths on one machine.
    #[cfg(any(test, feature = "ref-impls"))]
    pub fn force_narrow_lanes(mut self) -> Self {
        self.wide = false;
        self
    }

    /// Inner hash: `SHA-256(ipad-midstate ‖ msg)` with stack-built padding.
    #[inline]
    fn inner_state(&self, msg: &[u8]) -> [u32; 8] {
        let mut st = self.istate;
        let mut chunks = msg.chunks_exact(64);
        for chunk in &mut chunks {
            Sha256::compress(&mut st, chunk.try_into().unwrap());
        }
        let rest = chunks.remainder();
        // Total hashed length includes the 64-byte ipad block.
        let bit_len = ((64 + msg.len()) as u64) * 8;
        let mut block = [0u8; 64];
        block[..rest.len()].copy_from_slice(rest);
        block[rest.len()] = 0x80;
        if rest.len() >= 56 {
            Sha256::compress(&mut st, &block);
            block = [0u8; 64];
        }
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        Sha256::compress(&mut st, &block);
        st
    }

    /// Outer hash: one compression — 32 digest bytes, padding, and the
    /// length (64 + 32 bytes = 768 bits) all fit in a single block.
    #[inline]
    fn outer_state(&self, inner: [u32; 8]) -> [u32; 8] {
        let mut block = [0u8; 64];
        for (i, word) in inner.iter().enumerate() {
            block[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        block[32] = 0x80;
        block[56..].copy_from_slice(&(96u64 * 8).to_be_bytes());
        let mut st = self.ostate;
        Sha256::compress(&mut st, &block);
        st
    }

    /// Full 32-byte HMAC of `msg`.
    pub fn mac(&self, msg: &[u8]) -> [u8; 32] {
        let st = self.outer_state(self.inner_state(msg));
        let mut out = [0u8; 32];
        for (i, word) in st.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// 64-bit truncated HMAC, the wire format of secure-NVM metadata MACs.
    /// One-shot: only the first two state words are ever serialized.
    #[inline]
    pub fn mac64(&self, msg: &[u8]) -> u64 {
        let st = self.outer_state(self.inner_state(msg));
        let mut first8 = [0u8; 8];
        first8[..4].copy_from_slice(&st[0].to_be_bytes());
        first8[4..].copy_from_slice(&st[1].to_be_bytes());
        u64::from_le_bytes(first8)
    }

    /// Message lengths with a dedicated monomorphized fast path wired into
    /// the [`crate::engine::RealCrypto`] hot paths: 72 B (node-MAC / ASIT
    /// slot strings) and 88 B (data-MAC strings). The microbench asserts the
    /// hot message sizes stay on this list, so a routing regression (like
    /// the one that sent 88 B messages down the generic slice path) fails
    /// the bench run instead of only showing up as a slow number.
    pub const FIXED_FAST_LENS: [usize; 2] = [72, 88];

    /// Monomorphized [`Self::mac64`] for fixed-size messages. Unlike the
    /// generic slice path, `N` is a compile-time constant here, so the block
    /// count, tail split, and padding layout all resolve at monomorphization
    /// time and the copies/loops fully unroll. Output is bit-identical to
    /// `mac64(msg)`.
    #[inline]
    pub fn mac64_fixed<const N: usize>(&self, msg: &[u8; N]) -> u64 {
        let mut st = self.istate;
        let full = N / 64;
        for b in 0..full {
            let block: &[u8; 64] = msg[b * 64..b * 64 + 64].try_into().unwrap();
            Sha256::compress(&mut st, block);
        }
        let rem = N % 64;
        // Total hashed length includes the 64-byte ipad block.
        let bit_len = ((64 + N) as u64) * 8;
        let mut block = [0u8; 64];
        block[..rem].copy_from_slice(&msg[full * 64..]);
        block[rem] = 0x80;
        if rem >= 56 {
            Sha256::compress(&mut st, &block);
            block = [0u8; 64];
        }
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        Sha256::compress(&mut st, &block);
        let st = self.outer_state(st);
        Self::truncate64(&st)
    }

    /// Fixed-length fast path for the 72-byte node-MAC string.
    #[inline]
    pub fn mac64_72(&self, msg: &[u8; 72]) -> u64 {
        self.mac64_fixed(msg)
    }

    /// Fixed-length fast path for the 88-byte data-MAC string.
    #[inline]
    pub fn mac64_88(&self, msg: &[u8; 88]) -> u64 {
        self.mac64_fixed(msg)
    }

    /// First 8 MAC bytes of an outer state, in the `mac64` wire format.
    #[inline(always)]
    fn truncate64(st: &[u32; 8]) -> u64 {
        let mut first8 = [0u8; 8];
        first8[..4].copy_from_slice(&st[0].to_be_bytes());
        first8[4..].copy_from_slice(&st[1].to_be_bytes());
        u64::from_le_bytes(first8)
    }

    /// `L` truncated MACs over `L` equal-length messages, lane-parallel: the
    /// inner block loop, tail padding, and single outer compression all run
    /// across lanes in lock-step through `compress`. Bit-identical to `L`
    /// serial [`Self::mac64`] calls for any correct lane compression.
    #[inline(always)]
    fn mac64_lanes_with<const L: usize>(
        &self,
        msgs: [&[u8]; L],
        compress: &mut impl FnMut(&mut [[u32; 8]; L], &[[u8; 64]; L]),
    ) -> [u64; L] {
        let len = msgs[0].len();
        debug_assert!(msgs.iter().all(|m| m.len() == len), "lanes need one length");
        let mut st: [[u32; 8]; L] = [self.istate; L];
        let mut blocks = [[0u8; 64]; L];
        for b in 0..len / 64 {
            for (l, block) in blocks.iter_mut().enumerate() {
                block.copy_from_slice(&msgs[l][b * 64..b * 64 + 64]);
            }
            compress(&mut st, &blocks);
        }
        let rem = len % 64;
        let bit_len = ((64 + len) as u64) * 8;
        for (l, block) in blocks.iter_mut().enumerate() {
            *block = [0u8; 64];
            block[..rem].copy_from_slice(&msgs[l][len - rem..]);
            block[rem] = 0x80;
        }
        if rem >= 56 {
            compress(&mut st, &blocks);
            blocks = [[0u8; 64]; L];
        }
        for block in blocks.iter_mut() {
            block[56..].copy_from_slice(&bit_len.to_be_bytes());
        }
        compress(&mut st, &blocks);
        // Outer: 32 digest bytes + padding + length fit in a single block.
        let mut ost: [[u32; 8]; L] = [self.ostate; L];
        for (l, block) in blocks.iter_mut().enumerate() {
            *block = [0u8; 64];
            for (i, word) in st[l].iter().enumerate() {
                block[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
            }
            block[32] = 0x80;
            block[56..].copy_from_slice(&(96u64 * 8).to_be_bytes());
        }
        compress(&mut ost, &blocks);
        core::array::from_fn(|l| Self::truncate64(&ost[l]))
    }

    /// Portable lane batch (autovectorized compression).
    #[inline(always)]
    fn mac64_lanes<const L: usize>(&self, msgs: [&[u8]; L]) -> [u64; L] {
        self.mac64_lanes_with(msgs, &mut compress_lanes::<L>)
    }

    /// The 8-lane batch on the explicit AVX2 compression.
    ///
    /// # Safety
    /// The `avx2` target feature must be available (runtime-detected via
    /// `self.wide`, which is set only by `is_x86_feature_detected!`).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn mac64_lanes8_avx2(&self, msgs: [&[u8]; 8]) -> [u64; 8] {
        // SAFETY: the caller guarantees AVX2; `compress8` requires it.
        self.mac64_lanes_with::<8>(msgs, &mut |st, blocks| unsafe {
            crate::sha256_multi::avx2::compress8(st, blocks)
        })
    }

    /// Batched [`Self::mac64`]: `out[i] = mac64(msgs[i])` for every `i`.
    ///
    /// Runs of [`Self::lane_count`] equal-length messages go through the
    /// multi-lane compression; mixed-length runs and the ragged tail fall
    /// back to the scalar path, so output bytes never depend on batch shape.
    pub fn mac64_many(&self, msgs: &[&[u8]], out: &mut [u64]) {
        assert_eq!(msgs.len(), out.len(), "one output slot per message");
        let mut i = 0;
        #[cfg(target_arch = "x86_64")]
        if self.wide {
            while i + LANES_WIDE <= msgs.len() {
                let chunk: [&[u8]; LANES_WIDE] = msgs[i..i + LANES_WIDE].try_into().unwrap();
                if chunk.iter().all(|m| m.len() == chunk[0].len()) {
                    // SAFETY: `wide` is set only when `is_x86_feature_detected!`
                    // confirmed AVX2 on this CPU.
                    let macs = unsafe { self.mac64_lanes8_avx2(chunk) };
                    out[i..i + LANES_WIDE].copy_from_slice(&macs);
                    i += LANES_WIDE;
                } else {
                    out[i] = self.mac64(msgs[i]);
                    i += 1;
                }
            }
        }
        while i + LANES_PORTABLE <= msgs.len() {
            let chunk: [&[u8]; LANES_PORTABLE] = msgs[i..i + LANES_PORTABLE].try_into().unwrap();
            if chunk.iter().all(|m| m.len() == chunk[0].len()) {
                let macs = self.mac64_lanes::<LANES_PORTABLE>(chunk);
                out[i..i + LANES_PORTABLE].copy_from_slice(&macs);
                i += LANES_PORTABLE;
            } else {
                out[i] = self.mac64(msgs[i]);
                i += 1;
            }
        }
        while i < msgs.len() {
            out[i] = self.mac64(msgs[i]);
            i += 1;
        }
    }

    /// Batched fixed-length MACs (uniform length by construction, so every
    /// full chunk takes the multi-lane path; the tail is scalar mop-up).
    #[inline]
    pub fn mac64_fixed_many<const N: usize>(&self, msgs: &[[u8; N]], out: &mut [u64]) {
        assert_eq!(msgs.len(), out.len(), "one output slot per message");
        let mut i = 0;
        #[cfg(target_arch = "x86_64")]
        if self.wide {
            while i + LANES_WIDE <= msgs.len() {
                let chunk: [&[u8]; LANES_WIDE] = core::array::from_fn(|l| msgs[i + l].as_slice());
                // SAFETY: `wide` is set only when `is_x86_feature_detected!`
                // confirmed AVX2 on this CPU.
                let macs = unsafe { self.mac64_lanes8_avx2(chunk) };
                out[i..i + LANES_WIDE].copy_from_slice(&macs);
                i += LANES_WIDE;
            }
        }
        while i + LANES_PORTABLE <= msgs.len() {
            let chunk: [&[u8]; LANES_PORTABLE] = core::array::from_fn(|l| msgs[i + l].as_slice());
            let macs = self.mac64_lanes::<LANES_PORTABLE>(chunk);
            out[i..i + LANES_PORTABLE].copy_from_slice(&macs);
            i += LANES_PORTABLE;
        }
        while i < msgs.len() {
            out[i] = self.mac64_fixed(&msgs[i]);
            i += 1;
        }
    }

    /// Batched 72-byte MACs (node-MAC strings of a flush batch).
    pub fn mac64_72_many(&self, msgs: &[[u8; 72]], out: &mut [u64]) {
        self.mac64_fixed_many(msgs, out);
    }

    /// Batched 88-byte MACs (data-MAC strings of a flush batch).
    pub fn mac64_88_many(&self, msgs: &[[u8; 88]], out: &mut [u64]) {
        self.mac64_fixed_many(msgs, out);
    }
}

/// Scalar reference implementations of the batch entry points, kept for the
/// differential tests and the `ref-impls` microbenchmark baseline (the
/// "before" side of the multi-lane speedup, like [`crate::aes::reference`]).
#[cfg(any(test, feature = "ref-impls"))]
pub mod reference {
    use super::HmacSha256;

    /// Per-message scalar `mac64` — the semantics `mac64_many` must match
    /// byte-for-byte on every batch shape.
    pub fn mac64_many_ref(h: &HmacSha256, msgs: &[&[u8]], out: &mut [u64]) {
        for (m, o) in msgs.iter().zip(out.iter_mut()) {
            *o = h.mac64(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The pre-midstate implementation: cloned hashers and intermediate
    /// digests. Kept as the differential reference for the fast path.
    fn mac_ref(key: &[u8], msg: &[u8]) -> [u8; 32] {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            let d = Sha256::digest(key);
            k[..32].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        inner.update(msg);
        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(&inner.finalize());
        outer.finalize()
    }

    #[test]
    fn rfc4231_case1() {
        let h = HmacSha256::new(&[0x0b; 20]);
        assert_eq!(
            hex(&h.mac(b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let h = HmacSha256::new(b"Jefe");
        assert_eq!(
            hex(&h.mac(b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let h = HmacSha256::new(&[0xaa; 20]);
        assert_eq!(
            hex(&h.mac(&[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let h = HmacSha256::new(&[0xaa; 131]);
        assert_eq!(
            hex(&h.mac(b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// The midstate fast path must agree with the two-hasher reference on
    /// every message length around the block/padding boundaries.
    #[test]
    fn midstate_matches_reference_all_boundary_lengths() {
        let key = b"steins-mac-key";
        let h = HmacSha256::new(key);
        let data: Vec<u8> = (0..300).map(|i| (i * 31 + 7) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(h.mac(&data[..len]), mac_ref(key, &data[..len]), "len={len}");
        }
    }

    #[test]
    fn mac64_is_prefix_of_mac() {
        let h = HmacSha256::new(b"key");
        let full = h.mac(b"message");
        assert_eq!(
            h.mac64(b"message"),
            u64::from_le_bytes(full[..8].try_into().unwrap())
        );
    }

    #[test]
    fn mac64_fixed_matches_slice_path() {
        let h = HmacSha256::new(b"key");
        let msg72 = [0x5a; 72];
        assert_eq!(h.mac64_fixed(&msg72), h.mac64(&msg72));
        let msg88 = [0xc3; 88];
        assert_eq!(h.mac64_fixed(&msg88), h.mac64(&msg88));
    }

    #[test]
    fn different_keys_give_different_macs() {
        let a = HmacSha256::new(b"k1").mac64(b"m");
        let b = HmacSha256::new(b"k2").mac64(b"m");
        assert_ne!(a, b);
    }

    #[test]
    fn fixed_paths_match_generic_and_are_registered() {
        let h = HmacSha256::new(b"fixed-key");
        let mut msg72 = [0u8; 72];
        let mut msg88 = [0u8; 88];
        for (i, b) in msg72.iter_mut().enumerate() {
            *b = (i * 13 + 1) as u8;
        }
        for (i, b) in msg88.iter_mut().enumerate() {
            *b = (i * 29 + 3) as u8;
        }
        assert_eq!(h.mac64_72(&msg72), h.mac64(&msg72));
        assert_eq!(h.mac64_88(&msg88), h.mac64(&msg88));
        // Both hot message sizes must stay routed off the generic path.
        assert!(HmacSha256::FIXED_FAST_LENS.contains(&72));
        assert!(HmacSha256::FIXED_FAST_LENS.contains(&88));
    }

    /// `mac64_fixed` must agree with the slice path on every tail layout:
    /// short tail, the 56-byte padding split, and exact block multiples.
    #[test]
    fn mac64_fixed_matches_generic_on_boundary_lengths() {
        let h = HmacSha256::new(b"key");
        fn check<const N: usize>(h: &HmacSha256) {
            let msg: [u8; N] = core::array::from_fn(|i| (i * 7 + N) as u8);
            assert_eq!(h.mac64_fixed(&msg), h.mac64(&msg), "N={N}");
        }
        check::<0>(&h);
        check::<1>(&h);
        check::<55>(&h);
        check::<56>(&h);
        check::<63>(&h);
        check::<64>(&h);
        check::<65>(&h);
        check::<72>(&h);
        check::<88>(&h);
        check::<119>(&h);
        check::<120>(&h);
        check::<128>(&h);
        check::<200>(&h);
    }

    fn lcg(x: &mut u64) -> u64 {
        *x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x
    }

    /// The tentpole differential: 10 000 random messages (random lengths,
    /// random bytes) pressed through the multi-lane batch path in random
    /// batch shapes must be byte-identical to the scalar reference — at both
    /// lane widths.
    #[test]
    fn multi_lane_matches_scalar_on_10k_random_messages() {
        let wide = HmacSha256::new(b"multi-lane-key");
        let narrow = wide.clone().force_narrow_lanes();
        let mut seed = 0x5eed_1234_u64;
        let mut msgs: Vec<Vec<u8>> = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            let len = (lcg(&mut seed) % 160) as usize;
            msgs.push((0..len).map(|_| lcg(&mut seed) as u8).collect());
        }
        let mut start = 0;
        while start < msgs.len() {
            let batch = 1 + (lcg(&mut seed) % 37) as usize;
            let end = (start + batch).min(msgs.len());
            let refs: Vec<&[u8]> = msgs[start..end].iter().map(|m| m.as_slice()).collect();
            let mut expect = vec![0u64; refs.len()];
            reference::mac64_many_ref(&wide, &refs, &mut expect);
            for h in [&wide, &narrow] {
                let mut got = vec![0u64; refs.len()];
                h.mac64_many(&refs, &mut got);
                assert_eq!(got, expect, "batch [{start}, {end})");
            }
            start = end;
        }
    }

    /// Uniform-length batches (the hot shape): 10 000 random 72 B and 88 B
    /// messages through the fixed batch paths.
    #[test]
    fn fixed_many_matches_scalar_on_10k_random_messages() {
        let wide = HmacSha256::new(b"fixed-many-key");
        let narrow = wide.clone().force_narrow_lanes();
        let mut seed = 0xfeed_5678_u64;
        fn run<const N: usize>(wide: &HmacSha256, narrow: &HmacSha256, seed: &mut u64) {
            let msgs: Vec<[u8; N]> = (0..5_000)
                .map(|_| core::array::from_fn(|_| lcg(seed) as u8))
                .collect();
            let expect: Vec<u64> = msgs.iter().map(|m| wide.mac64(m)).collect();
            for h in [wide, narrow] {
                let mut got = vec![0u64; msgs.len()];
                h.mac64_fixed_many(&msgs, &mut got);
                assert_eq!(got, expect, "N={N}");
            }
        }
        run::<72>(&wide, &narrow, &mut seed);
        run::<88>(&wide, &narrow, &mut seed);
    }

    /// Ragged batch sizes around the lane count: 1, L−1, L, L+1, 3L+2 — the
    /// shapes where a lane/tail split bug would hide.
    #[test]
    fn ragged_batch_sizes_match_serial() {
        for h in [
            HmacSha256::new(b"ragged-key"),
            HmacSha256::new(b"ragged-key").force_narrow_lanes(),
        ] {
            let lanes = h.lane_count();
            for n in [1, lanes - 1, lanes, lanes + 1, 3 * lanes + 2] {
                let msgs: Vec<[u8; 72]> = (0..n)
                    .map(|i| core::array::from_fn(|j| (i * 72 + j) as u8))
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
                let expect: Vec<u64> = msgs.iter().map(|m| h.mac64(m)).collect();
                let mut got = vec![0u64; n];
                h.mac64_many(&refs, &mut got);
                assert_eq!(got, expect, "mac64_many n={n} lanes={lanes}");
                let mut got_fixed = vec![0u64; n];
                h.mac64_72_many(&msgs, &mut got_fixed);
                assert_eq!(got_fixed, expect, "mac64_72_many n={n} lanes={lanes}");
            }
        }
    }

    /// Mixed-length batches must fall back per message, never mixing lanes.
    #[test]
    fn mixed_length_batches_match_serial() {
        let h = HmacSha256::new(b"mixed-key");
        let msgs: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; (i * 11) % 97]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let mut expect = vec![0u64; refs.len()];
        reference::mac64_many_ref(&h, &refs, &mut expect);
        let mut got = vec![0u64; refs.len()];
        h.mac64_many(&refs, &mut got);
        assert_eq!(got, expect);
    }
}
