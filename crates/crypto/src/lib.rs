//! From-scratch cryptographic primitives for the Steins secure-NVM stack.
//!
//! Secure NVM systems (Steins, ASIT, STAR, SCUE, …) rely on two hardware
//! crypto units inside the memory controller:
//!
//! * an **AES engine** producing one-time pads (OTPs) for counter-mode
//!   encryption (CME), and
//! * a **keyed-hash (HMAC) engine** producing 64-bit MACs over security
//!   metadata and user data.
//!
//! This crate implements both from scratch — AES-128 per FIPS-197 and
//! SHA-256/HMAC-SHA-256 per FIPS-180-4/RFC-2104 — plus a fast SipHash-2-4
//! style keyed hash. All are exposed behind the [`CryptoEngine`] trait so the
//! simulator can choose full-fidelity crypto for functional tests and the
//! fast keyed hash for long figure sweeps *without changing any code path*:
//! the set of crypto invocations (and hence the charged timing) is identical.

pub mod aes;
pub mod engine;
pub mod fasthash;
pub mod hmac;
pub mod sha256;
pub mod sha256_multi;

pub use aes::Aes128;
pub use engine::{
    data_mac_message, CryptoEngine, CryptoKind, FastCrypto, RealCrypto, SerialPresentation,
};
pub use fasthash::{FxBuildHasher, FxHashMap, FxHasher64, SipHash24};
pub use hmac::HmacSha256;
pub use sha256::Sha256;
pub use sha256_multi::{wide_lanes_available, LANES_PORTABLE, LANES_WIDE};

/// A 128-bit secret key, shared by the OTP and MAC engines.
///
/// In a real controller this never leaves the processor die; here it is a
/// plain value because the simulator *is* the trusted domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SecretKey(pub [u8; 16]);

impl SecretKey {
    /// Derives a deterministic per-purpose subkey (domain separation), so the
    /// OTP, node-MAC and data-MAC engines never share a raw key.
    pub fn derive(&self, purpose: &str) -> SecretKey {
        let mut h = Sha256::new();
        h.update(&self.0);
        h.update(purpose.as_bytes());
        let d = h.finalize();
        let mut k = [0u8; 16];
        k.copy_from_slice(&d[..16]);
        SecretKey(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_purpose_separated() {
        let k = SecretKey([7u8; 16]);
        assert_eq!(k.derive("otp"), k.derive("otp"));
        assert_ne!(k.derive("otp"), k.derive("mac"));
        assert_ne!(k.derive("otp").0, k.0);
    }
}
