//! SHA-256, implemented from scratch per FIPS-180-4.
//!
//! Used by [`crate::hmac::HmacSha256`] for the MAC engine and by
//! [`crate::SecretKey::derive`] for key derivation.
//!
//! The compression function keeps only a rolling 16-word message schedule
//! (instead of materializing all 64 `W[t]` up front) and unrolls the round
//! loop so the eight working variables never shuffle through a register
//! rotation — the standard software-SHA-256 shape, ~2× the naive loop.

pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// σ0: the small sigma of the message schedule.
#[inline(always)]
pub(crate) fn ssig0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}

/// σ1: the small sigma of the message schedule.
#[inline(always)]
pub(crate) fn ssig1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// One compression round over a 64-byte block (FIPS-180-4 §6.2.2),
    /// shared with the HMAC fast path.
    #[inline]
    pub(crate) fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        // One round, expressed so the working variables stay in fixed
        // registers: the caller rotates the *argument order* instead of the
        // values (the new `e` lands in the old `d`, the new `a` in the old
        // `h`).
        macro_rules! rnd {
            ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident,$t:expr,$i:expr) => {{
                let t1 = $h
                    .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
                    .wrapping_add(($e & $f) ^ (!$e & $g))
                    .wrapping_add(K[$t])
                    .wrapping_add(w[$i]);
                let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
                    .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(t2);
            }};
        }
        macro_rules! rnd16 {
            ($t:expr) => {{
                rnd!(a, b, c, d, e, f, g, h, $t, 0);
                rnd!(h, a, b, c, d, e, f, g, $t + 1, 1);
                rnd!(g, h, a, b, c, d, e, f, $t + 2, 2);
                rnd!(f, g, h, a, b, c, d, e, $t + 3, 3);
                rnd!(e, f, g, h, a, b, c, d, $t + 4, 4);
                rnd!(d, e, f, g, h, a, b, c, $t + 5, 5);
                rnd!(c, d, e, f, g, h, a, b, $t + 6, 6);
                rnd!(b, c, d, e, f, g, h, a, $t + 7, 7);
                rnd!(a, b, c, d, e, f, g, h, $t + 8, 8);
                rnd!(h, a, b, c, d, e, f, g, $t + 9, 9);
                rnd!(g, h, a, b, c, d, e, f, $t + 10, 10);
                rnd!(f, g, h, a, b, c, d, e, $t + 11, 11);
                rnd!(e, f, g, h, a, b, c, d, $t + 12, 12);
                rnd!(d, e, f, g, h, a, b, c, $t + 13, 13);
                rnd!(c, d, e, f, g, h, a, b, $t + 14, 14);
                rnd!(b, c, d, e, f, g, h, a, $t + 15, 15);
            }};
        }
        // Advance the rolling schedule by 16: slot `i` becomes `W[t+16]`
        // (`W[t] + σ0(W[t+1]) + W[t+9] + σ1(W[t+14])`, indices mod 16 — the
        // slots left of `i` were already advanced this pass, which is
        // exactly the generation the recurrence needs).
        macro_rules! sched16 {
            () => {{
                for i in 0..16 {
                    w[i] = w[i]
                        .wrapping_add(ssig0(w[(i + 1) & 15]))
                        .wrapping_add(w[(i + 9) & 15])
                        .wrapping_add(ssig1(w[(i + 14) & 15]));
                }
            }};
        }
        rnd16!(0);
        sched16!();
        rnd16!(16);
        sched16!();
        rnd16!(32);
        sched16!();
        rnd16!(48);
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Everything landed in the partial buffer; do not let the
                // remainder path below clobber it.
                return;
            }
            debug_assert_eq!(self.buf_len, 0, "buffer must be drained here");
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            Self::compress(&mut self.state, chunk.try_into().unwrap());
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: bypass update's total_len accounting.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        Self::compress(&mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// FIPS-180-4 long-message vector: one million 'a's — 15,625 straight
    /// compression rounds, the regression guard for the unrolled rewrite.
    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    /// Feeding a message one byte at a time must match the one-shot digest
    /// across every buffer-boundary alignment the streaming path has.
    #[test]
    fn one_byte_at_a_time_matches_oneshot() {
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 129, 300] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "len={len}");
        }
    }

    /// Irregular chunk sizes (prime-ish strides crossing the 64 B block
    /// boundary in every phase) must match the one-shot digest.
    #[test]
    fn chunked_updates_match_oneshot() {
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        for stride in [1usize, 3, 7, 31, 61, 64, 67, 256, 1000] {
            let mut h = Sha256::new();
            for chunk in data.chunks(stride) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "stride={stride}");
        }
    }
}
