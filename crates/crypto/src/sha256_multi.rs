//! Multi-lane (message-parallel) SHA-256 compression.
//!
//! The scalar compression in [`crate::sha256`] is latency-bound: every round
//! depends on the previous one, so a single message cannot use the CPU's SIMD
//! width. Independent messages can. This module runs `L` compressions in
//! lock-step with a *lane-array* data layout — each working variable is an
//! `[u32; L]` and each schedule slot an `[u32; L]` — so every round operation
//! is an elementwise loop over lanes that LLVM autovectorizes into one vector
//! instruction per lane-array op.
//!
//! Two widths are exposed, mirroring the AES-NI runtime-detection pattern in
//! [`crate::aes`]:
//!
//! * **4 lanes** — portable; the lane arrays fill one 128-bit register on
//!   every x86-64 (SSE2 is baseline) and NEON-class targets.
//! * **8 lanes** — behind an `avx2` `#[target_feature]` wrapper, selected at
//!   runtime via `is_x86_feature_detected!`; the same generic body compiled
//!   with 256-bit registers enabled.
//!
//! Callers (the HMAC batch paths in [`crate::hmac`]) dispatch on a flag
//! probed once at key setup, exactly like [`crate::aes::Aes128`]'s `use_hw`.

use crate::sha256::{ssig0, ssig1, K};

/// Portable lane count: four 32-bit lanes fill one 128-bit vector register.
pub const LANES_PORTABLE: usize = 4;

/// Wide lane count: eight 32-bit lanes fill one 256-bit (AVX2) register.
pub const LANES_WIDE: usize = 8;

/// One compression round over `L` independent (state, block) pairs.
///
/// Bit-exact to `L` calls of [`crate::sha256::Sha256::compress`]: the lanes
/// never mix, only the instruction scheduling is shared. Marked
/// `#[inline(always)]` so the AVX2 wrapper below inlines it and compiles the
/// body with 256-bit vectors enabled.
#[inline(always)]
// The schedule loop indexes four rotating rows of `w` at once; an iterator
// form would obscure the recurrence without helping codegen.
#[allow(clippy::needless_range_loop)]
pub(crate) fn compress_lanes<const L: usize>(states: &mut [[u32; 8]; L], blocks: &[[u8; 64]; L]) {
    // Message schedule, lane-innermost: w[t][lane].
    let mut w = [[0u32; L]; 16];
    for (t, wt) in w.iter_mut().enumerate() {
        for (l, lane) in wt.iter_mut().enumerate() {
            let o = t * 4;
            *lane = u32::from_be_bytes(blocks[l][o..o + 4].try_into().unwrap());
        }
    }
    let mut a: [u32; L] = core::array::from_fn(|l| states[l][0]);
    let mut b: [u32; L] = core::array::from_fn(|l| states[l][1]);
    let mut c: [u32; L] = core::array::from_fn(|l| states[l][2]);
    let mut d: [u32; L] = core::array::from_fn(|l| states[l][3]);
    let mut e: [u32; L] = core::array::from_fn(|l| states[l][4]);
    let mut f: [u32; L] = core::array::from_fn(|l| states[l][5]);
    let mut g: [u32; L] = core::array::from_fn(|l| states[l][6]);
    let mut h: [u32; L] = core::array::from_fn(|l| states[l][7]);
    for t in 0..64 {
        if t >= 16 {
            // Rolling 16-slot schedule, advanced elementwise per lane.
            let i = t & 15;
            for l in 0..L {
                w[i][l] = w[i][l]
                    .wrapping_add(ssig0(w[(i + 1) & 15][l]))
                    .wrapping_add(w[(i + 9) & 15][l])
                    .wrapping_add(ssig1(w[(i + 14) & 15][l]));
            }
        }
        let wt = w[t & 15];
        let mut t1 = [0u32; L];
        for l in 0..L {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            t1[l] = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(wt[l]);
        }
        let mut next_a = [0u32; L];
        for l in 0..L {
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            next_a[l] = t1[l].wrapping_add(s0).wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        e = core::array::from_fn(|l| d[l].wrapping_add(t1[l]));
        d = c;
        c = b;
        b = a;
        a = next_a;
    }
    for l in 0..L {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
        states[l][5] = states[l][5].wrapping_add(f[l]);
        states[l][6] = states[l][6].wrapping_add(g[l]);
        states[l][7] = states[l][7].wrapping_add(h[l]);
    }
}

/// 8-lane SHA-256 compression with explicit AVX2 intrinsics.
///
/// The portable [`compress_lanes`] relies on autovectorization, which LLVM
/// declines for the 64-round dependency chain (it keeps the lane arrays in
/// scalar registers and only vectorizes the loads). This path states the
/// lane parallelism directly: every working variable and schedule slot is one
/// `__m256i` holding the eight lanes, so each round is a fixed sequence of
/// vector ops — the same hand-over-hand structure as the scalar rounds, ×8.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use crate::sha256::K;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// `x >>> R` on all eight lanes. The shift intrinsics only accept
    /// standalone const arguments, so the complement `L = 32 − R` is a second
    /// parameter rather than an expression.
    #[inline(always)]
    unsafe fn rotr<const R: i32, const L: i32>(x: __m256i) -> __m256i {
        debug_assert_eq!(R + L, 32);
        _mm256_or_si256(_mm256_srli_epi32(x, R), _mm256_slli_epi32(x, L))
    }

    #[inline(always)]
    unsafe fn add(a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi32(a, b)
    }

    /// σ0 across lanes: `(x >>> 7) ^ (x >>> 18) ^ (x >> 3)`.
    #[inline(always)]
    unsafe fn ssig0v(x: __m256i) -> __m256i {
        _mm256_xor_si256(
            _mm256_xor_si256(rotr::<7, 25>(x), rotr::<18, 14>(x)),
            _mm256_srli_epi32(x, 3),
        )
    }

    /// σ1 across lanes: `(x >>> 17) ^ (x >>> 19) ^ (x >> 10)`.
    #[inline(always)]
    unsafe fn ssig1v(x: __m256i) -> __m256i {
        _mm256_xor_si256(
            _mm256_xor_si256(rotr::<17, 15>(x), rotr::<19, 13>(x)),
            _mm256_srli_epi32(x, 10),
        )
    }

    /// Loads one `[u32; 8]` gather as a lane vector.
    #[inline(always)]
    unsafe fn load(words: &[u32; 8]) -> __m256i {
        _mm256_loadu_si256(words.as_ptr() as *const __m256i)
    }

    /// Eight compressions in lock-step, bit-exact to eight scalar
    /// [`crate::sha256::Sha256::compress`] calls.
    ///
    /// # Safety
    /// The `avx2` target feature must be available (runtime-detected by the
    /// caller via [`super::wide_lanes_available`], never assumed).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn compress8(states: &mut [[u32; 8]; 8], blocks: &[[u8; 64]; 8]) {
        // Transpose message words and chaining values into lane vectors.
        let mut w = [_mm256_setzero_si256(); 16];
        for (t, wt) in w.iter_mut().enumerate() {
            let mut lanes = [0u32; 8];
            for (l, lane) in lanes.iter_mut().enumerate() {
                *lane = u32::from_be_bytes(blocks[l][t * 4..t * 4 + 4].try_into().unwrap());
            }
            *wt = load(&lanes);
        }
        let mut init = [_mm256_setzero_si256(); 8];
        for (i, v) in init.iter_mut().enumerate() {
            let mut lanes = [0u32; 8];
            for (l, lane) in lanes.iter_mut().enumerate() {
                *lane = states[l][i];
            }
            *v = load(&lanes);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = init;
        for t in 0..64 {
            if t >= 16 {
                let i = t & 15;
                w[i] = add(
                    add(w[i], ssig0v(w[(i + 1) & 15])),
                    add(w[(i + 9) & 15], ssig1v(w[(i + 14) & 15])),
                );
            }
            let s1 = _mm256_xor_si256(
                _mm256_xor_si256(rotr::<6, 26>(e), rotr::<11, 21>(e)),
                rotr::<25, 7>(e),
            );
            let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
            let t1 = add(
                add(add(h, s1), add(ch, _mm256_set1_epi32(K[t] as i32))),
                w[t & 15],
            );
            let s0 = _mm256_xor_si256(
                _mm256_xor_si256(rotr::<2, 30>(a), rotr::<13, 19>(a)),
                rotr::<22, 10>(a),
            );
            let maj = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
                _mm256_and_si256(b, c),
            );
            let t2 = add(s0, maj);
            h = g;
            g = f;
            f = e;
            e = add(d, t1);
            d = c;
            c = b;
            b = a;
            a = add(t1, t2);
        }
        let fin = [a, b, c, d, e, f, g, h];
        for (i, v) in fin.iter().enumerate() {
            let mut lanes = [0u32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, add(init[i], *v));
            for (l, lane) in lanes.iter().enumerate() {
                states[l][i] = *lane;
            }
        }
    }
}

/// Whether the running CPU supports the 8-lane (AVX2) path.
pub fn wide_lanes_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{Sha256, H0};

    /// Lane-array compression must be bit-exact to L scalar compressions on
    /// every lane, for both supported widths.
    #[test]
    fn lanes_match_scalar_compression() {
        fn check<const L: usize>() {
            let mut blocks = [[0u8; 64]; L];
            let mut states: [[u32; 8]; L] = [H0; L];
            for (l, block) in blocks.iter_mut().enumerate() {
                for (i, byte) in block.iter_mut().enumerate() {
                    *byte = (l * 131 + i * 37 + 5) as u8;
                }
                // Distinct starting states per lane too.
                for (i, word) in states[l].iter_mut().enumerate() {
                    *word = word.wrapping_add((l * 1000 + i) as u32);
                }
            }
            let mut expect = states;
            for l in 0..L {
                Sha256::compress(&mut expect[l], &blocks[l]);
            }
            compress_lanes(&mut states, &blocks);
            assert_eq!(states, expect, "L={L}");
        }
        check::<1>();
        check::<4>();
        check::<8>();
    }

    /// The AVX2 intrinsic compression must be bit-exact to the portable
    /// lane compression (and hence to the scalar path).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_compress_matches_portable() {
        if !wide_lanes_available() {
            return;
        }
        let blocks: [[u8; 64]; 8] =
            core::array::from_fn(|l| core::array::from_fn(|i| (l * 97 + i * 13 + 1) as u8));
        let mut portable: [[u32; 8]; 8] =
            core::array::from_fn(|l| core::array::from_fn(|i| H0[i].wrapping_add(l as u32)));
        let mut wide = portable;
        compress_lanes::<8>(&mut portable, &blocks);
        // SAFETY: guarded by the runtime feature probe above.
        unsafe { avx2::compress8(&mut wide, &blocks) };
        assert_eq!(portable, wide);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn wide_lanes_probe_is_stable() {
        // The probe must be deterministic: HMAC instances cache it at key
        // setup and dispatch on the cached flag.
        assert_eq!(wide_lanes_available(), wide_lanes_available());
    }
}
