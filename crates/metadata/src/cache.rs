//! The memory-controller metadata cache (Table I: 256 KB, 8-way, LRU, 64 B).
//!
//! Unlike the tag-only CPU caches, this cache holds *live node values*: the
//! secure engine mutates cached nodes in place and the crash model needs the
//! exact dirty contents that are lost. Slots are identified by a flat index
//! `set · ways + way`, the coordinate Steins' offset records are keyed by
//! (§III-C: "a record for each metadata cache line").
//!
//! Storage is a single contiguous slab of slots indexed `set * ways + way`
//! (not a `Vec<Vec<_>>`): every lookup on the simulation hot path walks one
//! set's ways, and the flat layout makes that a bounds-checked slice scan
//! with no second pointer chase.
//!
//! Slot occupancy lives in per-slot atomic tag/state words
//! ([`crate::slot_state`]), not `valid`/`dirty` bools: every transition is
//! a single CAS with acquire/release ordering, reservations are an explicit
//! `BUSY` state that is never an eviction candidate, and any thread sharing
//! `&MetadataCache` can [`MetadataCache::probe`] residency lock-free while
//! the owning shard mutates node payloads under `&mut`.

use crate::node::SitNode;
use crate::slot_state::{SlotView, SlotWord, CLEAN, DIRTY, EMPTY};
use steins_crypto as _; // crate-level dependency kept for doc links
use steins_obs::{Histogram, MetricRegistry};

/// Metadata cache geometry.
#[derive(Clone, Copy, Debug)]
pub struct MetaCacheConfig {
    /// Capacity in bytes (nodes are 64 B).
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl MetaCacheConfig {
    /// Table I default: 256 KB, 8-way.
    pub fn table1() -> Self {
        MetaCacheConfig {
            capacity_bytes: 256 << 10,
            ways: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / 64 / self.ways as u64
    }

    /// Total slots (= cache lines = record entries).
    pub fn slots(&self) -> u64 {
        self.capacity_bytes / 64
    }

    /// This cache split across `shards` equal parts (at least one set
    /// each): the sharded engine divides one cache budget, it does not
    /// multiply it.
    pub fn split(&self, shards: usize) -> MetaCacheConfig {
        assert!(shards >= 1);
        let min = 64 * self.ways as u64; // one set
        MetaCacheConfig {
            capacity_bytes: (self.capacity_bytes / shards as u64).max(min),
            ways: self.ways,
        }
    }
}

struct Slot {
    /// Atomic tag/state word: occupancy + node offset.
    word: SlotWord,
    node: SitNode,
    lru: u64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            word: SlotWord::default(),
            node: SitNode::zero_general(),
            lru: 0,
        }
    }
}

/// A node evicted to make room.
#[derive(Clone, Debug)]
pub struct EvictedNode {
    /// Its metadata-region offset.
    pub offset: u64,
    /// The evicted contents.
    pub node: SitNode,
    /// Whether it was dirty (must be flushed through the secure write path).
    pub dirty: bool,
    /// The flat slot index it vacated.
    pub slot: u64,
}

/// Result of a lock-free [`MetadataCache::probe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotProbe {
    /// Flat slot index holding the node.
    pub slot: u64,
    /// Whether the slot was dirty at the probe instant.
    pub dirty: bool,
}

/// Value-holding, true-LRU, set-associative metadata cache keyed by node
/// offset.
pub struct MetadataCache {
    cfg: MetaCacheConfig,
    /// Flat slot slab: slot `(set, way)` lives at index `set * ways + way`.
    slots: Vec<Slot>,
    sets: usize,
    ways: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
    /// Dirty resident nodes right now (maintained incrementally — the slab
    /// is never walked on the hot path).
    dirty_count: u64,
    /// Dirty-population distribution, sampled at each clean→dirty
    /// transition (how much state a crash at that instant would lose).
    dirty_occ_hist: Histogram,
    /// Sizes of dirty-node batches collected per flush/set-MAC pass.
    flush_batch_hist: Histogram,
}

impl MetadataCache {
    /// Builds an empty cache.
    pub fn new(cfg: MetaCacheConfig) -> Self {
        assert!(cfg.sets() >= 1, "metadata cache too small");
        let sets = cfg.sets() as usize;
        let ways = cfg.ways;
        MetadataCache {
            cfg,
            slots: (0..sets * ways).map(|_| Slot::default()).collect(),
            sets,
            ways,
            stamp: 0,
            hits: 0,
            misses: 0,
            dirty_count: 0,
            dirty_occ_hist: Histogram::new(),
            flush_batch_hist: Histogram::new(),
        }
    }

    fn set_of(&self, offset: u64) -> usize {
        (offset % self.sets as u64) as usize
    }

    /// Flat slot index of `(set, way)`.
    fn flat(&self, set: usize, way: usize) -> u64 {
        (set * self.ways + way) as u64
    }

    /// Acquire-load snapshot of `(set, way)`'s state word.
    #[inline]
    fn view_at(&self, set: usize, way: usize) -> SlotView {
        self.slots[set * self.ways + way].word.view()
    }

    /// The way of `set` holding `offset`, if resident.
    #[inline]
    fn way_of(&self, set: usize, offset: u64) -> Option<usize> {
        (0..self.ways).find(|&w| {
            let v = self.view_at(set, w);
            v.resident() && v.offset == offset
        })
    }

    /// Looks up the node at `offset`, updating LRU and hit/miss counters.
    pub fn lookup(&mut self, offset: u64) -> Option<&mut SitNode> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(offset);
        match self.way_of(set, offset) {
            Some(way) => {
                self.hits += 1;
                let s = &mut self.slots[set * self.ways + way];
                s.lru = stamp;
                Some(&mut s.node)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Copy-out read: like [`Self::lookup`] but returns the node by value,
    /// which keeps engine code free of long-lived borrows.
    pub fn read(&mut self, offset: u64) -> Option<SitNode> {
        self.lookup(offset).map(|n| *n)
    }

    /// Copy-in write of a resident node's contents (no hit/miss accounting;
    /// pairs with [`Self::read`]). Returns `false` if the node is absent.
    pub fn write(&mut self, offset: u64, node: SitNode) -> bool {
        let set = self.set_of(offset);
        match self.way_of(set, offset) {
            Some(way) => {
                self.slots[set * self.ways + way].node = node;
                true
            }
            None => false,
        }
    }

    /// The set index `offset` maps to (STAR's set-MACs are per cache set).
    pub fn set_index(&self, offset: u64) -> usize {
        self.set_of(offset)
    }

    /// All resident nodes of one set as `(offset, node, dirty)`, in way
    /// order (STAR sorts these by address before MACing).
    pub fn set_nodes(&self, set: usize) -> Vec<(u64, SitNode, bool)> {
        (0..self.ways)
            .filter_map(|w| {
                let v = self.view_at(set, w);
                v.resident().then(|| {
                    (
                        v.offset,
                        self.slots[set * self.ways + w].node,
                        v.state == DIRTY,
                    )
                })
            })
            .collect()
    }

    /// Appends the *dirty* resident nodes of one set to `out` as
    /// `(offset, node)`, in way order — the allocation-free form of
    /// [`Self::set_nodes`] for STAR's per-write set-MAC update, where the
    /// engine reuses one scratch vector across calls.
    pub fn dirty_set_nodes_into(&mut self, set: usize, out: &mut Vec<(u64, SitNode)>) {
        let before = out.len();
        for w in 0..self.ways {
            let v = self.view_at(set, w);
            if v.state == DIRTY {
                out.push((v.offset, self.slots[set * self.ways + w].node));
            }
        }
        self.flush_batch_hist.record((out.len() - before) as u64);
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Peeks without LRU/stat side effects.
    pub fn peek(&self, offset: u64) -> Option<&SitNode> {
        let set = self.set_of(offset);
        self.way_of(set, offset)
            .map(|w| &self.slots[set * self.ways + w].node)
    }

    /// Whether `offset` is resident.
    pub fn contains(&self, offset: u64) -> bool {
        self.way_of(self.set_of(offset), offset).is_some()
    }

    /// Lock-free residency probe: one acquire load per way, no LRU or stat
    /// side effects, callable from any thread sharing `&self` while the
    /// owning shard mutates payloads under `&mut`. The sharded front-end
    /// uses this to answer "is this node hot on that shard?" without taking
    /// the shard lock.
    pub fn probe(&self, offset: u64) -> Option<SlotProbe> {
        let set = self.set_of(offset);
        (0..self.ways).find_map(|w| {
            let v = self.view_at(set, w);
            (v.resident() && v.offset == offset).then(|| SlotProbe {
                slot: self.flat(set, w),
                dirty: v.state == DIRTY,
            })
        })
    }

    /// Whether `offset` is resident and dirty.
    pub fn is_dirty(&self, offset: u64) -> bool {
        self.probe(offset).map(|p| p.dirty).unwrap_or(false)
    }

    /// Marks a resident node dirty (single `CLEAN → DIRTY` CAS). Returns
    /// `(slot, was_clean)`; panics if the node is absent (engine bug).
    pub fn mark_dirty(&mut self, offset: u64) -> (u64, bool) {
        let set = self.set_of(offset);
        let way = self
            .way_of(set, offset)
            .unwrap_or_else(|| panic!("mark_dirty on non-resident node offset {offset}"));
        let was_clean = self.slots[set * self.ways + way].word.set_dirty(offset);
        if was_clean {
            self.dirty_count += 1;
            self.dirty_occ_hist.record(self.dirty_count);
        }
        (self.flat(set, way), was_clean)
    }

    /// Clears the dirty bit (after a flush that kept the node resident) —
    /// a single `DIRTY → CLEAN` CAS.
    pub fn mark_clean(&mut self, offset: u64) {
        let set = self.set_of(offset);
        if let Some(way) = self.way_of(set, offset) {
            if self.slots[set * self.ways + way].word.set_clean(offset) {
                self.dirty_count -= 1;
            }
        }
    }

    /// Installs `node` at `offset`, evicting the LRU way if the set is full.
    /// The caller handles the eviction through the secure flush path.
    pub fn install(&mut self, offset: u64, node: SitNode, dirty: bool) -> Option<EvictedNode> {
        self.install_pinned(offset, node, dirty, &[])
    }

    /// Reports what [`Self::install_pinned`] would evict for `offset` right
    /// now, without evicting: `None` if a free way exists, otherwise the
    /// victim's `(offset, dirty)`. The engine uses this to flush dirty
    /// victims *in place* (still resident, still visible to nested fetches)
    /// before the actual install.
    pub fn probe_victim(&self, offset: u64, pinned: &[u64]) -> Option<(u64, bool)> {
        let set = self.set_of(offset);
        if (0..self.ways).any(|w| self.view_at(set, w).state == EMPTY) {
            return None;
        }
        (0..self.ways)
            .filter_map(|w| {
                let v = self.view_at(set, w);
                (v.resident() && !pinned.contains(&v.offset)).then_some((w, v))
            })
            .min_by_key(|&(w, _)| self.slots[set * self.ways + w].lru)
            .map(|(_, v)| (v.offset, v.state == DIRTY))
    }

    /// Like [`Self::install`], but never evicts a way holding one of the
    /// `pinned` offsets. The secure engine pins the ancestor chain it is
    /// operating on so recursive evictions cannot displace in-flight nodes.
    ///
    /// The install is a claim/publish cycle on the victim's state word: the
    /// slot is `BUSY` (unreadable, un-evictable) between the CAS that
    /// claims it and the release store that publishes the new tag.
    ///
    /// Panics if every way of the set is pinned — with ≥ 8 ways and tree
    /// heights ≤ 9 this needs a pathological set collision the shipped
    /// configurations cannot produce.
    pub fn install_pinned(
        &mut self,
        offset: u64,
        node: SitNode,
        dirty: bool,
        pinned: &[u64],
    ) -> Option<EvictedNode> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(offset);
        assert!(
            !self.contains(offset),
            "install over resident node {offset} (duplicate would desync counters)"
        );
        // Pick an empty way, else the LRU way among resident non-pinned
        // ones. BUSY (reserved) ways are never candidates.
        let way = (0..self.ways)
            .find(|&w| self.view_at(set, w).state == EMPTY)
            .or_else(|| {
                (0..self.ways)
                    .filter(|&w| {
                        let v = self.view_at(set, w);
                        v.resident() && !pinned.contains(&v.offset)
                    })
                    .min_by_key(|&w| self.slots[set * self.ways + w].lru)
            })
            .expect("metadata cache set fully pinned: associativity exhausted");
        let flat = self.flat(set, way);
        let s = &mut self.slots[flat as usize];
        let old = s.word.view();
        s.word
            .try_claim(old, offset)
            .expect("exclusive owner's claim cannot be contended");
        let evicted = old.resident().then_some(EvictedNode {
            offset: old.offset,
            node: s.node,
            dirty: old.state == DIRTY,
            slot: flat,
        });
        if old.state == DIRTY {
            self.dirty_count -= 1;
        }
        s.node = node;
        s.lru = stamp;
        s.word.publish(if dirty { DIRTY } else { CLEAN }, offset);
        if dirty {
            self.dirty_count += 1;
            self.dirty_occ_hist.record(self.dirty_count);
        }
        evicted
    }

    /// Installs `node` at a *specific* flat slot index. Recovery uses this
    /// to put a node back into the slot the durable per-slot state (Steins'
    /// offset records, ASIT's shadow tags) says it occupied, so the rebuilt
    /// per-slot regions are byte-identical to the pre-crash ones and a
    /// re-run of recovery is idempotent.
    ///
    /// Panics if `slot` is not in `offset`'s set, is already occupied, or
    /// `offset` is already resident elsewhere — recovery installs into a
    /// fresh cache, so any of these is a recovery bug.
    pub fn install_at(&mut self, slot: u64, offset: u64, node: SitNode, dirty: bool) {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(offset);
        assert_eq!(
            (slot as usize) / self.ways,
            set,
            "slot {slot} is not in offset {offset}'s set"
        );
        assert!(
            !self.contains(offset),
            "install_at over resident node {offset}"
        );
        let s = &mut self.slots[slot as usize];
        s.word
            .try_claim(
                SlotView {
                    state: EMPTY,
                    offset: 0,
                },
                offset,
            )
            .unwrap_or_else(|v| panic!("install_at into occupied slot {slot} ({v:?})"));
        s.node = node;
        s.lru = stamp;
        s.word.publish(if dirty { DIRTY } else { CLEAN }, offset);
        if dirty {
            self.dirty_count += 1;
            self.dirty_occ_hist.record(self.dirty_count);
        }
    }

    /// The flat slot index currently holding `offset`.
    pub fn slot_of(&self, offset: u64) -> Option<u64> {
        let set = self.set_of(offset);
        self.way_of(set, offset).map(|w| self.flat(set, w))
    }

    /// All dirty resident nodes as `(slot, offset, node)` — the state a
    /// crash destroys.
    pub fn dirty_nodes(&self) -> Vec<(u64, u64, SitNode)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(flat, s)| {
                let v = s.word.view();
                (v.state == DIRTY).then_some((flat as u64, v.offset, s.node))
            })
            .collect()
    }

    /// All resident nodes as `(slot, offset, node, dirty)`.
    pub fn resident_nodes(&self) -> Vec<(u64, u64, SitNode, bool)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(flat, s)| {
                let v = s.word.view();
                v.resident()
                    .then_some((flat as u64, v.offset, s.node, v.state == DIRTY))
            })
            .collect()
    }

    /// Crash: every resident line vanishes.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.word.reset();
            s.node = SitNode::zero_general();
            s.lru = 0;
        }
        self.dirty_count = 0;
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Dirty resident nodes right now.
    pub fn dirty_count(&self) -> u64 {
        self.dirty_count
    }

    /// Exports hit/miss counters, the current dirty population, and the
    /// dirty-occupancy / flush-batch distributions under `meta.cache.`.
    pub fn export_metrics(&self, reg: &mut MetricRegistry) {
        reg.counter_add("meta.cache.hits", self.hits);
        reg.counter_add("meta.cache.misses", self.misses);
        reg.gauge_set("meta.cache.dirty_nodes", self.dirty_count as f64);
        reg.insert_hist("meta.cache.dirty_occupancy", &self.dirty_occ_hist);
        reg.insert_hist("meta.cache.flush_batch_nodes", &self.flush_batch_hist);
    }

    /// Geometry.
    pub fn config(&self) -> &MetaCacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MetadataCache {
        // 2 sets × 2 ways.
        MetadataCache::new(MetaCacheConfig {
            capacity_bytes: 4 * 64,
            ways: 2,
        })
    }

    #[test]
    fn install_at_pins_slot_and_accounts_dirty() {
        let mut c = tiny();
        // Offsets 0 and 2 map to set 0 (2 sets); pin them to specific ways.
        c.install_at(1, 2, SitNode::zero_general(), true);
        c.install_at(0, 0, SitNode::zero_general(), false);
        assert_eq!(c.slot_of(2), Some(1));
        assert_eq!(c.slot_of(0), Some(0));
        assert_eq!(c.dirty_count(), 1);
        let dirty = c.dirty_nodes();
        assert_eq!(dirty.len(), 1);
        assert_eq!((dirty[0].0, dirty[0].1), (1, 2));
    }

    #[test]
    #[should_panic(expected = "not in offset")]
    fn install_at_rejects_wrong_set() {
        let mut c = tiny();
        // Offset 1 maps to set 1 (slots 2..4); slot 0 is in set 0.
        c.install_at(0, 1, SitNode::zero_general(), false);
    }

    #[test]
    #[should_panic(expected = "install_at into occupied slot")]
    fn install_at_rejects_occupied_slot() {
        let mut c = tiny();
        c.install_at(0, 0, SitNode::zero_general(), false);
        c.install_at(0, 2, SitNode::zero_general(), false);
    }

    #[test]
    fn table1_geometry() {
        let c = MetaCacheConfig::table1();
        assert_eq!(c.slots(), 4096);
        assert_eq!(c.sets(), 512);
    }

    #[test]
    fn split_divides_capacity_with_one_set_floor() {
        let c = MetaCacheConfig::table1();
        assert_eq!(c.split(4).capacity_bytes, 64 << 10);
        assert_eq!(c.split(4).ways, c.ways);
        // A tiny cache split many ways still has one full set per shard.
        let tiny = MetaCacheConfig {
            capacity_bytes: 16 * 64,
            ways: 8,
        };
        assert_eq!(tiny.split(8).sets(), 1);
    }

    #[test]
    fn install_lookup_roundtrip() {
        let mut c = tiny();
        let mut node = SitNode::zero_general();
        node.hmac = 77;
        assert!(c.install(4, node, false).is_none());
        assert_eq!(c.lookup(4).map(|n| n.hmac), Some(77));
        assert!(c.lookup(6).is_none());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn mark_dirty_reports_first_transition() {
        let mut c = tiny();
        c.install(0, SitNode::zero_general(), false);
        let (slot, was_clean) = c.mark_dirty(0);
        assert!(was_clean);
        let (slot2, was_clean2) = c.mark_dirty(0);
        assert_eq!(slot, slot2);
        assert!(!was_clean2, "second marking is not a transition");
        assert!(c.is_dirty(0));
    }

    #[test]
    fn lru_eviction_returns_victim_contents() {
        let mut c = tiny();
        let mut n0 = SitNode::zero_general();
        n0.hmac = 10;
        // Offsets 0,2,4 share set 0 (sets=2).
        c.install(0, n0, true);
        c.install(2, SitNode::zero_general(), false);
        c.lookup(2); // 0 becomes LRU
        let ev = c
            .install(4, SitNode::zero_general(), false)
            .expect("evicts");
        assert_eq!(ev.offset, 0);
        assert!(ev.dirty);
        assert_eq!(ev.node.hmac, 10);
        assert!(!c.contains(0));
    }

    #[test]
    fn dirty_nodes_enumeration_and_clear() {
        let mut c = tiny();
        c.install(0, SitNode::zero_general(), true);
        c.install(1, SitNode::zero_general(), false);
        c.install(2, SitNode::zero_general(), true);
        let dirty = c.dirty_nodes();
        let offsets: Vec<u64> = dirty.iter().map(|(_, o, _)| *o).collect();
        assert_eq!(offsets.len(), 2);
        assert!(offsets.contains(&0) && offsets.contains(&2));
        c.clear();
        assert!(c.dirty_nodes().is_empty());
        assert!(!c.contains(0));
    }

    #[test]
    fn slot_indices_are_stable_coordinates() {
        let mut c = tiny();
        c.install(0, SitNode::zero_general(), false);
        let slot = c.slot_of(0).unwrap();
        let (slot2, _) = c.mark_dirty(0);
        assert_eq!(slot, slot2);
        assert!(slot < c.config().slots());
    }

    #[test]
    fn in_place_mutation_via_lookup() {
        let mut c = tiny();
        c.install(8, SitNode::zero_general(), false);
        c.lookup(8).unwrap().counters.as_general_mut().set(3, 99);
        assert_eq!(c.peek(8).unwrap().counters.as_general().get(3), 99);
    }

    #[test]
    fn flat_slot_indices_match_set_ways_layout() {
        let mut c = tiny(); // 2 sets × 2 ways → slots 0..4
        c.install(0, SitNode::zero_general(), false); // set 0, way 0
        c.install(2, SitNode::zero_general(), false); // set 0, way 1
        c.install(1, SitNode::zero_general(), false); // set 1, way 0
        assert_eq!(c.slot_of(0), Some(0));
        assert_eq!(c.slot_of(2), Some(1));
        assert_eq!(c.slot_of(1), Some(2));
    }

    #[test]
    fn dirty_set_nodes_into_matches_set_nodes_filter() {
        let mut c = tiny();
        c.install(0, SitNode::zero_general(), true);
        c.install(2, SitNode::zero_general(), false);
        c.install(1, SitNode::zero_general(), true);
        let mut out = Vec::new();
        c.dirty_set_nodes_into(0, &mut out);
        let expect: Vec<(u64, SitNode)> = c
            .set_nodes(0)
            .into_iter()
            .filter(|(_, _, d)| *d)
            .map(|(o, n, _)| (o, n))
            .collect();
        assert_eq!(out, expect);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        // Appends without clearing: caller owns the lifecycle.
        c.dirty_set_nodes_into(1, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].0, 1);
    }

    #[test]
    fn probe_agrees_with_contains_and_dirty() {
        let mut c = tiny();
        c.install(0, SitNode::zero_general(), true);
        c.install(2, SitNode::zero_general(), false);
        let p0 = c.probe(0).expect("resident");
        assert!(p0.dirty);
        assert_eq!(Some(p0.slot), c.slot_of(0));
        let p2 = c.probe(2).expect("resident");
        assert!(!p2.dirty);
        assert!(c.probe(4).is_none());
        // Probes leave LRU and hit/miss stats untouched.
        assert_eq!(c.stats(), (0, 0));
    }

    /// The cache is Sync: concurrent probes from many threads over `&self`
    /// observe only published slot states.
    #[test]
    fn concurrent_probes_are_consistent() {
        let mut c = MetadataCache::new(MetaCacheConfig {
            capacity_bytes: 64 * 64,
            ways: 4,
        });
        for off in 0..32u64 {
            c.install(off, SitNode::zero_general(), off % 2 == 0);
        }
        let c = &c;
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for round in 0..100 {
                        let off = (t * 7 + round) % 32;
                        let p = c.probe(off).expect("installed and never evicted");
                        assert_eq!(p.dirty, off % 2 == 0);
                    }
                });
            }
        });
    }
}
