//! Counter blocks and Steins' parent-counter generation functions.
//!
//! Two layouts, both 56 bytes of counters inside a 64 B node (§II-C, §II-D):
//!
//! * **General**: eight 56-bit counters, one per child — every SIT level in
//!   GC mode, and all intermediate levels in SC mode.
//! * **Split**: one 64-bit major + sixty-four 6-bit minors, covering 64
//!   children — the leaf level in SC mode (§II-D: "the major counter is set
//!   to 64-bit and the minor counter is set to 6-bit").
//!
//! Steins replaces the parent's *self-increasing* counter with a value
//! **generated from the child block** (§III-B):
//!
//! * Eq. 1 (general): `Parent = Σ C_i`
//! * Eq. 2 (split): `Parent = Major · 2^6 + Σ minors`, where on minor
//!   overflow the major *skips*: `Major += ceil(Σ minors / 2^6)` and the
//!   minors reset — keeping the generated value strictly monotone while
//!   roughly halving overflow pressure versus weighting the major by
//!   `2^6 · 64`.

/// Maximum value of a 56-bit SIT counter.
pub const CTR56_MAX: u64 = (1 << 56) - 1;

/// Maximum value of a 6-bit minor counter.
pub const MINOR_MAX: u8 = (1 << 6) - 1;

/// Leaf-counter organization (the paper's GC/SC variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CounterMode {
    /// General counter blocks everywhere; each leaf covers 8 data blocks.
    General,
    /// Split counter blocks at the leaves; each leaf covers 64 data blocks.
    Split,
}

impl CounterMode {
    /// Data blocks covered by one leaf node.
    pub fn leaf_coverage(&self) -> u64 {
        match self {
            CounterMode::General => 8,
            CounterMode::Split => 64,
        }
    }

    /// Short label used in figures ("GC"/"SC").
    pub fn label(&self) -> &'static str {
        match self {
            CounterMode::General => "GC",
            CounterMode::Split => "SC",
        }
    }
}

/// Eight 56-bit counters (a general counter block).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeneralCounters(pub [u64; 8]);

impl GeneralCounters {
    /// Increments counter `slot`, returning the overflow flag (56-bit wrap
    /// would require re-keying; in simulation it never fires).
    pub fn increment(&mut self, slot: usize) -> bool {
        debug_assert!(slot < 8);
        self.0[slot] += 1;
        self.0[slot] > CTR56_MAX
    }

    /// Sets counter `slot` (used when a parent adopts a generated value).
    /// Values are masked to the 56-bit field — callers may pass sums
    /// reconstructed from corrupt NVM lines, which must truncate exactly
    /// like the wire format does rather than abort.
    pub fn set(&mut self, slot: usize, value: u64) {
        debug_assert!(slot < 8);
        self.0[slot] = value & CTR56_MAX;
    }

    /// Reads counter `slot`.
    pub fn get(&self, slot: usize) -> u64 {
        self.0[slot]
    }

    /// Eq. 1: the generated parent counter.
    pub fn parent_value(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// One 64-bit major + 64 six-bit minors (a split counter block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitCounters {
    /// Shared major counter.
    pub major: u64,
    /// Per-block minor counters (each ≤ [`MINOR_MAX`]).
    pub minors: [u8; 64],
}

impl Default for SplitCounters {
    fn default() -> Self {
        SplitCounters {
            major: 0,
            minors: [0; 64],
        }
    }
}

/// What happened on a split-counter increment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitIncrement {
    /// The minor simply advanced.
    Minor,
    /// The minor overflowed: minors reset, major advanced by `major_delta`,
    /// and all 64 covered data blocks must be re-encrypted.
    Overflow {
        /// Amount added to the major counter (1 traditionally; the rounded-up
        /// skip under Steins' scheme).
        major_delta: u64,
    },
}

impl SplitCounters {
    /// Increments minor `slot`.
    ///
    /// `skip_update = true` applies Steins' Eq. 2 alignment on overflow
    /// (`major += ceil(S/64)` where `S` is the attempted minor sum);
    /// `false` applies the traditional split-counter reset (`major += 1`,
    /// used by the WB/ASIT/STAR baselines).
    pub fn increment(&mut self, slot: usize, skip_update: bool) -> SplitIncrement {
        debug_assert!(slot < 64);
        if self.minors[slot] < MINOR_MAX {
            self.minors[slot] += 1;
            return SplitIncrement::Minor;
        }
        // Overflow: compute the attempted sum S = Σ minors + 1.
        let s: u64 = self.minors.iter().map(|&m| m as u64).sum::<u64>() + 1;
        let major_delta = if skip_update {
            s.div_ceil(u64::from(MINOR_MAX) + 1)
        } else {
            1
        };
        self.major += major_delta;
        self.minors = [0; 64];
        SplitIncrement::Overflow { major_delta }
    }

    /// Reads minor `slot`.
    pub fn minor(&self, slot: usize) -> u8 {
        self.minors[slot]
    }

    /// Eq. 2: the generated parent counter,
    /// `major · 2^6 + Σ minors`. Saturating: a torn/corrupt stored major
    /// can be arbitrarily large, and the generated value must stay a total
    /// function of the decoded bytes (the MAC check rejects the node; the
    /// arithmetic must not abort first).
    pub fn parent_value(&self) -> u64 {
        self.major
            .saturating_mul(u64::from(MINOR_MAX) + 1)
            .saturating_add(self.minors.iter().map(|&m| u64::from(m)).sum::<u64>())
    }
}

/// A counter block of either layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterBlock {
    /// General layout.
    General(GeneralCounters),
    /// Split layout (leaf nodes in SC mode only).
    Split(SplitCounters),
}

impl CounterBlock {
    /// Zeroed block of the given layout.
    pub fn zero_general() -> Self {
        CounterBlock::General(GeneralCounters::default())
    }

    /// Zeroed split block.
    pub fn zero_split() -> Self {
        CounterBlock::Split(SplitCounters::default())
    }

    /// The generated parent counter (Eq. 1 or Eq. 2).
    pub fn parent_value(&self) -> u64 {
        match self {
            CounterBlock::General(g) => g.parent_value(),
            CounterBlock::Split(s) => s.parent_value(),
        }
    }

    /// Number of children this block covers.
    pub fn fanout(&self) -> usize {
        match self {
            CounterBlock::General(_) => 8,
            CounterBlock::Split(_) => 64,
        }
    }

    /// The (major, minor) encryption-counter pair for child `slot`.
    /// General blocks expose `(counter, 0)`.
    pub fn enc_pair(&self, slot: usize) -> (u64, u64) {
        match self {
            CounterBlock::General(g) => (g.get(slot), 0),
            CounterBlock::Split(s) => (s.major, u64::from(s.minor(slot))),
        }
    }

    /// Borrow as general counters (panics on a split block — intermediate
    /// SIT levels are always general).
    pub fn as_general(&self) -> &GeneralCounters {
        match self {
            CounterBlock::General(g) => g,
            CounterBlock::Split(_) => panic!("expected general counter block"),
        }
    }

    /// Mutable general view (same contract as [`Self::as_general`]).
    pub fn as_general_mut(&mut self) -> &mut GeneralCounters {
        match self {
            CounterBlock::General(g) => g,
            CounterBlock::Split(_) => panic!("expected general counter block"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// Tiny deterministic generator for the randomized tests below
    /// (replaces proptest; keeps the suite dependency-free).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn general_parent_is_sum() {
        let mut g = GeneralCounters::default();
        g.set(0, 5);
        g.set(7, 10);
        assert_eq!(g.parent_value(), 15);
        g.increment(0);
        assert_eq!(g.parent_value(), 16);
    }

    #[test]
    fn split_minor_increment() {
        let mut s = SplitCounters::default();
        assert_eq!(s.increment(3, true), SplitIncrement::Minor);
        assert_eq!(s.minor(3), 1);
        assert_eq!(s.parent_value(), 1);
    }

    #[test]
    fn split_overflow_traditional() {
        let mut s = SplitCounters::default();
        s.minors[0] = MINOR_MAX;
        let out = s.increment(0, false);
        assert_eq!(out, SplitIncrement::Overflow { major_delta: 1 });
        assert_eq!(s.major, 1);
        assert_eq!(s.minors, [0; 64]);
    }

    #[test]
    fn split_overflow_skip_update_aligns_up() {
        // Only minor 0 is hot: S = 64, delta = ceil(64/64) = 1.
        let mut s = SplitCounters::default();
        s.minors[0] = MINOR_MAX;
        assert_eq!(
            s.increment(0, true),
            SplitIncrement::Overflow { major_delta: 1 }
        );
        // All minors hot: S = 63·64 + 1 = 4033, delta = ceil(4033/64) = 64.
        let mut s = SplitCounters {
            major: 0,
            minors: [MINOR_MAX; 64],
        };
        let before = s.parent_value();
        assert_eq!(before, 63 * 64);
        let out = s.increment(5, true);
        assert_eq!(out, SplitIncrement::Overflow { major_delta: 64 });
        assert!(s.parent_value() > before, "monotone across overflow");
        assert_eq!(s.parent_value(), 64 * 64);
    }

    #[test]
    fn paper_corner_case_major_skips_by_two() {
        // §III-B2: "the sum of minor counters reaches 2^6 + 1 (immediately
        // following a minor counter overflow)" ⇒ major increases by two.
        let mut s = SplitCounters::default();
        s.minors[0] = MINOR_MAX; // 63
        s.minors[1] = 1;
        // S = 63 + 1 + 1 = 65 = 2^6 + 1 ⇒ delta = ceil(65/64) = 2.
        assert_eq!(
            s.increment(0, true),
            SplitIncrement::Overflow { major_delta: 2 }
        );
        assert_eq!(s.major, 2);
    }

    #[test]
    fn enc_pair_distinguishes_layouts() {
        let mut g = GeneralCounters::default();
        g.set(2, 9);
        assert_eq!(CounterBlock::General(g).enc_pair(2), (9, 0));
        let mut s = SplitCounters {
            major: 4,
            ..Default::default()
        };
        s.minors[10] = 3;
        assert_eq!(CounterBlock::Split(s).enc_pair(10), (4, 3));
    }

    #[test]
    fn leaf_coverage() {
        assert_eq!(CounterMode::General.leaf_coverage(), 8);
        assert_eq!(CounterMode::Split.leaf_coverage(), 64);
    }

    /// Core Steins invariant (§III-B): the generated parent counter is
    /// strictly monotone under any sequence of child increments, for
    /// both layouts and both overflow policies.
    #[test]
    fn parent_value_strictly_monotone_general_randomized() {
        let mut st = 0x5151_5151_5151_5151u64;
        for case in 0..64 {
            let len = 1 + (case * 3) % 199;
            let mut g = GeneralCounters::default();
            let mut prev = g.parent_value();
            for _ in 0..len {
                g.increment((xorshift(&mut st) % 8) as usize);
                let now = g.parent_value();
                assert!(now > prev);
                prev = now;
            }
        }
    }

    #[test]
    fn parent_value_strictly_monotone_split_randomized() {
        let mut st = 0x2222_aaaa_4444_bbbbu64;
        for case in 0..64 {
            let skip = case % 2 == 0;
            let len = 1 + (case * 7) % 499;
            let mut s = SplitCounters::default();
            let mut prev = s.parent_value();
            for _ in 0..len {
                let slot = (xorshift(&mut st) % 64) as usize;
                let out = s.increment(slot, skip);
                let now = s.parent_value();
                if skip {
                    assert!(now > prev, "skip-update must stay monotone");
                } else if matches!(out, SplitIncrement::Minor) {
                    assert!(now > prev);
                }
                // Traditional reset may *not* be monotone in the generated
                // value — that is exactly why baselines cannot use Eq. 2.
                prev = now;
            }
        }
    }

    /// Skip-update alignment: after an overflow the generated value is a
    /// multiple of 64 and at least the attempted sum.
    #[test]
    fn skip_update_alignment_randomized() {
        let mut st = 0x7777_1111_3333_9999u64;
        for _ in 0..128 {
            let mut minors = [0u8; 64];
            for b in minors.iter_mut() {
                *b = (xorshift(&mut st) as u8) & MINOR_MAX;
            }
            minors[7] = MINOR_MAX; // force overflow on slot 7
            let mut s = SplitCounters { major: 3, minors };
            let before = s.parent_value();
            s.increment(7, true);
            let after = s.parent_value();
            assert_eq!(after % 64, 0);
            assert!(after > before);
        }
    }
}
