//! SIT tree geometry: level sizes, parent/child maps, node offsets.
//!
//! The tree covers `data_lines` 64 B data blocks. Level 0 (the leaves) are
//! counter blocks covering 8 (GC) or 64 (SC) data blocks each; every
//! intermediate level is 8-ary general nodes; the **root** is an on-chip
//! register covering up to 64 top-level nodes (§IV: SIT height 9 for GC /
//! 8 for SC over 16 GB, including the root).
//!
//! Node identity is `(level, index)`; the *offset* of a node is its line
//! index inside the contiguous metadata region — the quantity Steins'
//! 4-byte records store (§III-C).

use crate::counter::CounterMode;

/// Maximum children the on-chip root register covers.
pub const ROOT_FANOUT: u64 = 64;

/// Internal (non-leaf, non-root) fanout.
pub const NODE_FANOUT: u64 = 8;

/// A node's identity within the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Level, 0 = leaves, `levels()-1` = top NVM level (children of root).
    pub level: usize,
    /// Index within the level.
    pub index: u64,
}

/// Shape of one SIT instance.
#[derive(Clone, Debug)]
pub struct SitGeometry {
    mode: CounterMode,
    data_lines: u64,
    /// Node counts per level, `[0]` = leaves.
    counts: Vec<u64>,
    /// Offset (in lines) of each level's first node within the metadata
    /// region.
    bases: Vec<u64>,
}

impl SitGeometry {
    /// Builds the geometry for `data_lines` data blocks in `mode`.
    pub fn new(mode: CounterMode, data_lines: u64) -> Self {
        assert!(data_lines >= 1, "empty data region");
        let mut counts = vec![data_lines.div_ceil(mode.leaf_coverage())];
        while *counts.last().expect("nonempty") > ROOT_FANOUT {
            let next = counts.last().unwrap().div_ceil(NODE_FANOUT);
            counts.push(next);
        }
        let mut bases = Vec::with_capacity(counts.len());
        let mut acc = 0u64;
        for &c in &counts {
            bases.push(acc);
            acc += c;
        }
        SitGeometry {
            mode,
            data_lines,
            counts,
            bases,
        }
    }

    /// Counter mode.
    pub fn mode(&self) -> CounterMode {
        self.mode
    }

    /// Number of data lines covered.
    pub fn data_lines(&self) -> u64 {
        self.data_lines
    }

    /// Number of NVM-resident levels (excluding the root).
    pub fn levels(&self) -> usize {
        self.counts.len()
    }

    /// Total tree height including the on-chip root.
    pub fn height(&self) -> usize {
        self.levels() + 1
    }

    /// Node count at `level`.
    pub fn nodes_at(&self, level: usize) -> u64 {
        self.counts[level]
    }

    /// Total NVM-resident nodes (= metadata region size in lines).
    pub fn total_nodes(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Children of the root (= node count of the top level).
    pub fn root_fanout(&self) -> usize {
        *self.counts.last().expect("nonempty") as usize
    }

    /// The top NVM level (whose parent is the root).
    pub fn top_level(&self) -> usize {
        self.counts.len() - 1
    }

    /// Leaf covering data line `d`, plus the child slot `d` occupies.
    pub fn leaf_of_data(&self, data_line: u64) -> (NodeId, usize) {
        debug_assert!(data_line < self.data_lines);
        let cov = self.mode.leaf_coverage();
        (
            NodeId {
                level: 0,
                index: data_line / cov,
            },
            (data_line % cov) as usize,
        )
    }

    /// Parent of `node`, plus the slot `node` occupies in it. `None` when
    /// the parent is the root (use [`Self::root_slot`]).
    pub fn parent_of(&self, node: NodeId) -> Option<(NodeId, usize)> {
        if node.level == self.top_level() {
            None
        } else {
            Some((
                NodeId {
                    level: node.level + 1,
                    index: node.index / NODE_FANOUT,
                },
                (node.index % NODE_FANOUT) as usize,
            ))
        }
    }

    /// Root slot of a top-level node.
    pub fn root_slot(&self, node: NodeId) -> usize {
        debug_assert_eq!(node.level, self.top_level());
        node.index as usize
    }

    /// Children of an *intermediate* node (level ≥ 1): the level-below node
    /// ids in slot order, clipped to the level's actual population.
    pub fn children_of(&self, node: NodeId) -> Vec<NodeId> {
        assert!(node.level >= 1, "leaf children are data blocks");
        let child_level = node.level - 1;
        let first = node.index * NODE_FANOUT;
        let last = (first + NODE_FANOUT).min(self.counts[child_level]);
        (first..last)
            .map(|index| NodeId {
                level: child_level,
                index,
            })
            .collect()
    }

    /// Data lines covered by a leaf, in slot order.
    pub fn data_of_leaf(&self, leaf: NodeId) -> Vec<u64> {
        debug_assert_eq!(leaf.level, 0);
        let cov = self.mode.leaf_coverage();
        let first = leaf.index * cov;
        let last = (first + cov).min(self.data_lines);
        (first..last).collect()
    }

    /// The node's offset (line index) within the metadata region — what a
    /// 4-byte record stores.
    pub fn offset_of(&self, node: NodeId) -> u64 {
        debug_assert!(node.index < self.counts[node.level]);
        self.bases[node.level] + node.index
    }

    /// Inverse of [`Self::offset_of`].
    pub fn node_at_offset(&self, offset: u64) -> NodeId {
        for level in (0..self.counts.len()).rev() {
            if offset >= self.bases[level] {
                let index = offset - self.bases[level];
                debug_assert!(index < self.counts[level], "offset past level end");
                return NodeId { level, index };
            }
        }
        unreachable!("offset below level 0 base")
    }

    /// Storage the leaf level occupies, in bytes (§IV-E's headline numbers:
    /// 2 GB for GC vs 256 MB for SC over 16 GB).
    pub fn leaf_bytes(&self) -> u64 {
        self.counts[0] * 64
    }

    /// Storage of all intermediate (non-leaf) levels, bytes.
    pub fn intermediate_bytes(&self) -> u64 {
        (self.total_nodes() - self.counts[0]) * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// Tiny deterministic generator for the randomized tests below
    /// (replaces proptest; keeps the suite dependency-free).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn paper_heights_for_16gb() {
        let data_lines = (16u64 << 30) / 64; // 2^28
        let gc = SitGeometry::new(CounterMode::General, data_lines);
        assert_eq!(gc.height(), 9, "Table I: 9 levels incl. root (GC)");
        let sc = SitGeometry::new(CounterMode::Split, data_lines);
        assert_eq!(sc.height(), 8, "Table I: 8 levels incl. root (SC)");
    }

    #[test]
    fn paper_leaf_storage_for_16gb() {
        let data_lines = (16u64 << 30) / 64;
        let gc = SitGeometry::new(CounterMode::General, data_lines);
        assert_eq!(gc.leaf_bytes(), 2 << 30, "§IV-E: 2 GB GC leaves");
        let sc = SitGeometry::new(CounterMode::Split, data_lines);
        assert_eq!(sc.leaf_bytes(), 256 << 20, "§IV-E: 256 MB SC leaves");
        assert!(sc.intermediate_bytes() < gc.intermediate_bytes());
    }

    #[test]
    fn small_tree_shape() {
        // 1024 data lines, GC: leaves 128, then 16 ≤ 64 ⇒ stop.
        let g = SitGeometry::new(CounterMode::General, 1024);
        assert_eq!(g.levels(), 2);
        assert_eq!(g.nodes_at(0), 128);
        assert_eq!(g.nodes_at(1), 16);
        assert_eq!(g.root_fanout(), 16);
        assert_eq!(g.total_nodes(), 144);
    }

    #[test]
    fn parent_child_consistency() {
        let g = SitGeometry::new(CounterMode::General, 1024);
        let leaf = NodeId {
            level: 0,
            index: 77,
        };
        let (parent, slot) = g.parent_of(leaf).expect("has parent");
        assert_eq!(parent, NodeId { level: 1, index: 9 });
        assert_eq!(slot, 5);
        assert!(g.children_of(parent).contains(&leaf));
        assert!(g.parent_of(parent).is_none(), "level 1 is top");
        assert_eq!(g.root_slot(parent), 9);
    }

    #[test]
    fn leaf_data_mapping() {
        let g = SitGeometry::new(CounterMode::Split, 1000);
        let (leaf, slot) = g.leaf_of_data(130);
        assert_eq!(leaf, NodeId { level: 0, index: 2 });
        assert_eq!(slot, 2);
        assert!(g.data_of_leaf(leaf).contains(&130));
        // Last leaf is clipped.
        let last = NodeId {
            level: 0,
            index: g.nodes_at(0) - 1,
        };
        assert_eq!(g.data_of_leaf(last).len(), (1000 % 64) as usize);
    }

    #[test]
    fn offsets_are_dense_and_invertible() {
        let g = SitGeometry::new(CounterMode::General, 4096);
        let mut seen = vec![false; g.total_nodes() as usize];
        for level in 0..g.levels() {
            for index in 0..g.nodes_at(level) {
                let id = NodeId { level, index };
                let off = g.offset_of(id);
                assert!(!seen[off as usize], "offset collision at {off}");
                seen[off as usize] = true;
                assert_eq!(g.node_at_offset(off), id);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn offset_roundtrip_randomized() {
        let mut st = 0x1357_9bdf_2468_ace0u64;
        for _ in 0..256 {
            let data_lines = 1 + xorshift(&mut st) % 99_999;
            let mode = if xorshift(&mut st) & 1 == 0 {
                CounterMode::Split
            } else {
                CounterMode::General
            };
            let g = SitGeometry::new(mode, data_lines);
            let off = xorshift(&mut st) % g.total_nodes();
            assert_eq!(g.offset_of(g.node_at_offset(off)), off);
        }
    }

    #[test]
    fn every_data_line_has_a_leaf_and_path_to_root() {
        let mut st = 0xc0de_c0de_c0de_c0deu64;
        for _ in 0..128 {
            let data_lines = 1 + xorshift(&mut st) % 99_999;
            let g = SitGeometry::new(CounterMode::General, data_lines);
            let d = xorshift(&mut st) % data_lines;
            let (mut node, _) = g.leaf_of_data(d);
            let mut hops = 0;
            while let Some((p, slot)) = g.parent_of(node) {
                assert!(slot < 8);
                assert!(p.index < g.nodes_at(p.level));
                node = p;
                hops += 1;
                assert!(hops < 64, "path must terminate");
            }
            assert_eq!(node.level, g.top_level());
            assert!(g.root_slot(node) < g.root_fanout());
        }
    }
}
