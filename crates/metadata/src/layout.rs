//! The NVM address map.
//!
//! One contiguous physical space, carved into regions (all 64 B-aligned):
//!
//! ```text
//! [ user data | data MAC records | SIT metadata | offset records |
//!   shadow table (ASIT) | dirty bitmap (STAR) ]
//! ```
//!
//! * **Data MAC records**: 16 B per data block — the 64-bit data HMAC plus
//!   the 64-bit recovery counter (SC: the major; GC: the full counter).
//!   DESIGN.md §2.7 documents this as the ECC-spare-bits substitution.
//! * **SIT metadata**: the tree nodes, level 0 first ([`SitGeometry`]
//!   offsets index into this region).
//! * **Offset records**: Steins' record lines, one 4 B entry per metadata
//!   cache slot (§III-C).
//! * **Shadow table**: ASIT's duplicate of every metadata cache line.
//! * **Bitmap**: STAR's dirty bitmap, 1 bit per metadata node.

use crate::counter::CounterMode;
use crate::geometry::SitGeometry;

/// Bytes of MAC+recovery record kept per data block.
pub const MAC_RECORD_BYTES: u64 = 16;

/// Byte offsets of each region plus the computed tree geometry.
#[derive(Clone, Debug)]
pub struct MemoryLayout {
    /// Number of user data lines.
    pub data_lines: u64,
    /// Tree geometry over those lines.
    pub geometry: SitGeometry,
    /// Base of the user data region (always 0).
    pub data_base: u64,
    /// Base of the data MAC record region.
    pub mac_base: u64,
    /// Base of the SIT metadata region.
    pub metadata_base: u64,
    /// Base of the offset record region.
    pub records_base: u64,
    /// Base of ASIT's shadow table.
    pub shadow_base: u64,
    /// Base of STAR's dirty bitmap.
    pub bitmap_base: u64,
    /// First byte past all regions.
    pub end: u64,
}

impl MemoryLayout {
    /// Lays out a system with `data_lines` user lines in `mode`, reserving a
    /// record region for `cache_slots` metadata cache slots.
    pub fn new(mode: CounterMode, data_lines: u64, cache_slots: u64) -> Self {
        let geometry = SitGeometry::new(mode, data_lines);
        let data_base = 0u64;
        let data_bytes = data_lines * 64;
        let mac_base = data_base + data_bytes;
        let mac_bytes = (data_lines * MAC_RECORD_BYTES).next_multiple_of(64);
        let metadata_base = mac_base + mac_bytes;
        let metadata_bytes = geometry.total_nodes() * 64;
        let records_base = metadata_base + metadata_bytes;
        // 4 B per cache slot, line-rounded (§III-C: 16 KB for a 256 KB cache).
        let records_bytes = (cache_slots * 4).next_multiple_of(64);
        let shadow_base = records_base + records_bytes;
        // One 64 B shadow line per cache slot (ASIT).
        let shadow_bytes = cache_slots * 64;
        let bitmap_base = shadow_base + shadow_bytes;
        // 1 bit per metadata node, line-rounded (STAR).
        let bitmap_bytes = geometry.total_nodes().div_ceil(8).next_multiple_of(64);
        let end = bitmap_base + bitmap_bytes;
        MemoryLayout {
            data_lines,
            geometry,
            data_base,
            mac_base,
            metadata_base,
            records_base,
            shadow_base,
            bitmap_base,
            end,
        }
    }

    /// NVM byte address of a metadata node given its region offset.
    pub fn node_addr(&self, offset: u64) -> u64 {
        self.metadata_base + offset * 64
    }

    /// Region offset of a metadata node NVM address.
    pub fn node_offset(&self, addr: u64) -> u64 {
        debug_assert!(addr >= self.metadata_base && addr < self.records_base);
        (addr - self.metadata_base) / 64
    }

    /// NVM line address + intra-line byte offset of data block `d`'s MAC
    /// record.
    pub fn mac_slot(&self, data_line: u64) -> (u64, usize) {
        let byte = self.mac_base + data_line * MAC_RECORD_BYTES;
        (byte & !63, (byte % 64) as usize)
    }

    /// NVM address of record line `r`.
    pub fn record_addr(&self, record_line: u64) -> u64 {
        self.records_base + record_line * 64
    }

    /// NVM address of the shadow-table line for cache slot `s`.
    pub fn shadow_addr(&self, slot: u64) -> u64 {
        self.shadow_base + slot * 64
    }

    /// NVM line address + bit position of node-offset `o` in the bitmap.
    pub fn bitmap_slot(&self, offset: u64) -> (u64, usize) {
        let bit = offset;
        let byte = self.bitmap_base + bit / 8;
        (byte & !63, (bit % 8 + (byte % 64) * 8) as usize)
    }

    /// Whether `addr` falls in the user data region.
    pub fn is_data(&self, addr: u64) -> bool {
        addr < self.mac_base
    }

    /// Whether `addr` falls in the SIT metadata region.
    pub fn is_metadata(&self, addr: u64) -> bool {
        addr >= self.metadata_base && addr < self.records_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemoryLayout {
        MemoryLayout::new(CounterMode::General, 4096, 64)
    }

    #[test]
    fn regions_are_ordered_and_disjoint() {
        let l = layout();
        assert!(l.data_base < l.mac_base);
        assert!(l.mac_base < l.metadata_base);
        assert!(l.metadata_base < l.records_base);
        assert!(l.records_base < l.shadow_base);
        assert!(l.shadow_base < l.bitmap_base);
        assert!(l.bitmap_base < l.end);
        for base in [
            l.mac_base,
            l.metadata_base,
            l.records_base,
            l.shadow_base,
            l.bitmap_base,
            l.end,
        ] {
            assert_eq!(base % 64, 0, "region base {base} not line-aligned");
        }
    }

    #[test]
    fn node_addr_roundtrip() {
        let l = layout();
        for off in [0u64, 1, 100, l.geometry.total_nodes() - 1] {
            assert_eq!(l.node_offset(l.node_addr(off)), off);
            assert!(l.is_metadata(l.node_addr(off)));
        }
    }

    #[test]
    fn mac_slots_pack_four_per_line() {
        let l = layout();
        let (line0, o0) = l.mac_slot(0);
        let (line1, o1) = l.mac_slot(1);
        let (line4, _) = l.mac_slot(4);
        assert_eq!(line0, line1);
        assert_eq!(o1 - o0, 16);
        assert_eq!(line4, line0 + 64);
    }

    #[test]
    fn record_region_matches_paper_ratio() {
        // §III-C: a 256 KB cache (4096 slots) needs a 16 KB record region.
        let l = MemoryLayout::new(CounterMode::General, 1 << 20, 4096);
        assert_eq!(l.shadow_base - l.records_base, 16 << 10);
    }

    #[test]
    fn bitmap_slots_unique() {
        let l = layout();
        let mut seen = std::collections::HashSet::new();
        for off in 0..l.geometry.total_nodes() {
            assert!(seen.insert(l.bitmap_slot(off)), "bitmap slot collision");
        }
    }

    #[test]
    fn data_predicate() {
        let l = layout();
        assert!(l.is_data(0));
        assert!(l.is_data(4096 * 64 - 64));
        assert!(!l.is_data(l.mac_base));
        assert!(!l.is_metadata(0));
    }
}
