//! Security metadata structures for SGX-style integrity trees (SIT).
//!
//! Everything at the paper's exact 64 B granularity:
//!
//! * [`counter`] — general counter blocks (8 × 56-bit) and split counter
//!   blocks (64-bit major + 64 × 6-bit minors), including Steins' two
//!   parent-counter generation functions (Eq. 1 and Eq. 2 with skip-update),
//! * [`node`] — SIT nodes (counter block + 64-bit HMAC) with bit-exact
//!   64 B (de)serialization,
//! * [`geometry`] — tree shape: level sizes, parent/child maps, node
//!   offsets inside the metadata region, data↔leaf mapping,
//! * [`layout`] — the NVM address map (data, MAC, metadata, record,
//!   shadow-table, bitmap regions),
//! * [`cache`] — the memory-controller metadata cache, holding live node
//!   values with CAS-based per-slot state words and true-LRU replacement,
//! * [`slot_state`] — the atomic tag/state word those cache slots are
//!   built on (EMPTY/CLEAN/DIRTY/BUSY with acquire/release transitions),
//! * [`shard`] — address striping across shard-local coordinate systems,
//! * [`records`] — Steins' 4-byte-offset record lines (16 offsets / 64 B).

pub mod cache;
pub mod counter;
pub mod geometry;
pub mod layout;
pub mod node;
pub mod records;
pub mod shard;
pub mod slot_state;

pub use cache::{EvictedNode, MetadataCache, SlotProbe};
pub use counter::{
    CounterBlock, CounterMode, GeneralCounters, SplitCounters, CTR56_MAX, MINOR_MAX,
};
pub use geometry::{NodeId, SitGeometry};
pub use layout::MemoryLayout;
pub use node::{RootNode, SitNode};
pub use records::{RecordLine, RECORDS_PER_LINE, RECORD_EMPTY};
pub use shard::{ShardMap, StripeMode};
