//! SIT nodes and the on-chip root, with bit-exact 64 B serialization.
//!
//! * General node: `8 × 56-bit counters (56 B) ‖ 64-bit HMAC (8 B)`.
//! * Split leaf: `64-bit major (8 B) ‖ 64 × 6-bit minors (48 B) ‖ HMAC (8 B)`.
//!
//! The node HMAC is computed over `(counter bytes ‖ node address ‖ parent
//! counter)` under the MAC key (§II-C) — [`SitNode::mac_message`] builds
//! that exact byte string so every scheme MACs identically.

use crate::counter::{CounterBlock, GeneralCounters, SplitCounters, CTR56_MAX, MINOR_MAX};

/// 64-byte line, re-declared locally to keep this crate independent of the
/// device crate.
pub type Line = [u8; 64];

/// One SIT node: a counter block plus its 64-bit HMAC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SitNode {
    /// The counters.
    pub counters: CounterBlock,
    /// 64-bit truncated HMAC over counters ‖ address ‖ parent counter.
    pub hmac: u64,
}

impl SitNode {
    /// Fresh all-zero general node.
    pub fn zero_general() -> Self {
        SitNode {
            counters: CounterBlock::zero_general(),
            hmac: 0,
        }
    }

    /// Fresh all-zero split node.
    pub fn zero_split() -> Self {
        SitNode {
            counters: CounterBlock::zero_split(),
            hmac: 0,
        }
    }

    /// Serializes the counter payload (56 bytes, no HMAC).
    pub fn counter_bytes(&self) -> [u8; 56] {
        let mut out = [0u8; 56];
        match &self.counters {
            CounterBlock::General(g) => {
                // 8 × 56-bit, little-endian, packed back to back. Values
                // are masked, not asserted: nodes reconstructed from corrupt
                // images may carry out-of-range sums, and serialization must
                // truncate exactly as the field width dictates.
                for (i, &c) in g.0.iter().enumerate() {
                    let bytes = (c & CTR56_MAX).to_le_bytes();
                    out[i * 7..i * 7 + 7].copy_from_slice(&bytes[..7]);
                }
            }
            CounterBlock::Split(s) => {
                out[..8].copy_from_slice(&s.major.to_le_bytes());
                // 64 × 6-bit minors into 48 bytes: 4 minors per 3 bytes.
                for (group, chunk) in s.minors.chunks_exact(4).enumerate() {
                    let packed: u32 = u32::from(chunk[0])
                        | u32::from(chunk[1]) << 6
                        | u32::from(chunk[2]) << 12
                        | u32::from(chunk[3]) << 18;
                    let b = packed.to_le_bytes();
                    out[8 + group * 3..8 + group * 3 + 3].copy_from_slice(&b[..3]);
                }
            }
        }
        out
    }

    /// Serializes the full node into a 64 B line.
    pub fn to_line(&self) -> Line {
        let mut line = [0u8; 64];
        line[..56].copy_from_slice(&self.counter_bytes());
        line[56..].copy_from_slice(&self.hmac.to_le_bytes());
        line
    }

    /// Deserializes a general node from a 64 B line.
    pub fn general_from_line(line: &Line) -> Self {
        let mut g = GeneralCounters::default();
        for i in 0..8 {
            let mut bytes = [0u8; 8];
            bytes[..7].copy_from_slice(&line[i * 7..i * 7 + 7]);
            g.0[i] = u64::from_le_bytes(bytes);
        }
        SitNode {
            counters: CounterBlock::General(g),
            hmac: u64::from_le_bytes(line[56..64].try_into().unwrap()),
        }
    }

    /// Deserializes a split node from a 64 B line.
    pub fn split_from_line(line: &Line) -> Self {
        let major = u64::from_le_bytes(line[..8].try_into().unwrap());
        let mut minors = [0u8; 64];
        for group in 0..16 {
            let mut b = [0u8; 4];
            b[..3].copy_from_slice(&line[8 + group * 3..8 + group * 3 + 3]);
            let packed = u32::from_le_bytes(b);
            for j in 0..4 {
                minors[group * 4 + j] = ((packed >> (6 * j)) as u8) & MINOR_MAX;
            }
        }
        SitNode {
            counters: CounterBlock::Split(SplitCounters { major, minors }),
            hmac: u64::from_le_bytes(line[56..64].try_into().unwrap()),
        }
    }

    /// The exact byte string the node HMAC covers:
    /// `counters (56 B) ‖ node address (8 B) ‖ parent counter (8 B)`.
    pub fn mac_message(&self, node_addr: u64, parent_counter: u64) -> [u8; 72] {
        let mut msg = [0u8; 72];
        msg[..56].copy_from_slice(&self.counter_bytes());
        msg[56..64].copy_from_slice(&node_addr.to_le_bytes());
        msg[64..72].copy_from_slice(&parent_counter.to_le_bytes());
        msg
    }
}

/// The on-chip root: up to 64 trusted counters in a non-volatile register
/// file. It needs no HMAC (it never leaves the trusted domain) and covers
/// the top NVM level directly — giving the paper's 9-level (GC) / 8-level
/// (SC) total heights over 16 GB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootNode {
    /// One counter per top-level node.
    pub counters: Vec<u64>,
}

impl RootNode {
    /// Root covering `children` top-level nodes (≤ 64).
    pub fn new(children: usize) -> Self {
        assert!(children <= 64, "root register covers at most 64 nodes");
        RootNode {
            counters: vec![0; children],
        }
    }

    /// Counter for top-level node `slot`.
    pub fn get(&self, slot: usize) -> u64 {
        self.counters[slot]
    }

    /// Sets the counter for top-level node `slot`.
    pub fn set(&mut self, slot: usize, value: u64) {
        self.counters[slot] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// Tiny deterministic generator for the randomized tests below
    /// (replaces proptest; keeps the suite dependency-free).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn general_roundtrip_exact() {
        let mut g = GeneralCounters::default();
        for i in 0..8 {
            g.set(i, (i as u64 + 1) * 0x0011_2233_4455 % CTR56_MAX);
        }
        let node = SitNode {
            counters: CounterBlock::General(g),
            hmac: 0xDEAD_BEEF_CAFE_F00D,
        };
        let line = node.to_line();
        assert_eq!(SitNode::general_from_line(&line), node);
    }

    #[test]
    fn split_roundtrip_exact() {
        let mut s = SplitCounters {
            major: u64::MAX - 7,
            ..Default::default()
        };
        for i in 0..64 {
            s.minors[i] = (i as u8).wrapping_mul(7) & MINOR_MAX;
        }
        let node = SitNode {
            counters: CounterBlock::Split(s),
            hmac: 42,
        };
        let line = node.to_line();
        assert_eq!(SitNode::split_from_line(&line), node);
    }

    #[test]
    fn zero_nodes_serialize_to_zero_lines() {
        assert_eq!(SitNode::zero_general().to_line(), [0u8; 64]);
        assert_eq!(SitNode::zero_split().to_line(), [0u8; 64]);
    }

    #[test]
    fn mac_message_binds_all_inputs() {
        let node = SitNode::zero_general();
        let m1 = node.mac_message(0x40, 1);
        assert_ne!(m1[..], node.mac_message(0x80, 1)[..]);
        assert_ne!(m1[..], node.mac_message(0x40, 2)[..]);
        let mut node2 = node;
        node2.counters.as_general_mut().set(0, 1);
        assert_ne!(m1[..], node2.mac_message(0x40, 1)[..]);
    }

    #[test]
    fn root_bounds() {
        let mut r = RootNode::new(16);
        r.set(15, 9);
        assert_eq!(r.get(15), 9);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn root_too_wide_rejected() {
        RootNode::new(65);
    }

    #[test]
    fn general_roundtrip_randomized() {
        let mut st = 0x1234_5678_9abc_def1u64;
        for _ in 0..256 {
            let mut g = GeneralCounters::default();
            for i in 0..8 {
                g.set(i, xorshift(&mut st) % (CTR56_MAX + 1));
            }
            let node = SitNode {
                counters: CounterBlock::General(g),
                hmac: xorshift(&mut st),
            };
            assert_eq!(SitNode::general_from_line(&node.to_line()), node);
        }
    }

    #[test]
    fn split_roundtrip_randomized() {
        let mut st = 0xfeed_face_dead_beefu64;
        for _ in 0..256 {
            let mut m = [0u8; 64];
            for b in m.iter_mut() {
                *b = (xorshift(&mut st) as u8) & MINOR_MAX;
            }
            let node = SitNode {
                counters: CounterBlock::Split(SplitCounters {
                    major: xorshift(&mut st),
                    minors: m,
                }),
                hmac: xorshift(&mut st),
            };
            assert_eq!(SitNode::split_from_line(&node.to_line()), node);
        }
    }

    /// Distinct counter blocks never serialize identically (the packing
    /// is injective).
    #[test]
    fn general_packing_injective_randomized() {
        let mut st = 0x0bad_cafe_0bad_cafeu64;
        for case in 0..256 {
            let a: Vec<u64> = (0..8)
                .map(|_| xorshift(&mut st) % (CTR56_MAX + 1))
                .collect();
            // Every third case checks the equal-inputs direction too.
            let b: Vec<u64> = if case % 3 == 0 {
                a.clone()
            } else {
                (0..8)
                    .map(|_| xorshift(&mut st) % (CTR56_MAX + 1))
                    .collect()
            };
            let mut ga = GeneralCounters::default();
            let mut gb = GeneralCounters::default();
            for i in 0..8 {
                ga.set(i, a[i]);
                gb.set(i, b[i]);
            }
            let na = SitNode {
                counters: CounterBlock::General(ga),
                hmac: 0,
            };
            let nb = SitNode {
                counters: CounterBlock::General(gb),
                hmac: 0,
            };
            assert_eq!(na.to_line() == nb.to_line(), a == b);
        }
    }
}
